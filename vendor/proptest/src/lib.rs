//! Offline shim of the `proptest` API surface used by the HyCiM
//! workspace.
//!
//! The build environment has no access to crates.io, so this crate
//! vendors the subset of proptest the property suites rely on:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]`)
//! * [`Strategy`](strategy::Strategy) with `prop_map` /
//!   `prop_flat_map`, range and tuple strategies
//! * [`any`](arbitrary::any), [`collection::vec`]
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`]
//!
//! Semantics versus upstream: generation is purely random (seeded
//! deterministically from the test name and case index) and there is
//! **no shrinking** — a failing case panics with the standard assert
//! message, and re-running reproduces it exactly.
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(16))]
//!     // `#[test]` goes here in a real suite; omitted so this
//!     // doctest can call the generated function directly.
//!     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! addition_commutes();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The exports every property test pulls in via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `ProptestConfig::cases`
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut runner_rng =
                        $crate::test_runner::deterministic_rng(stringify!($name), case);
                    let run_one = |rng: &mut $crate::test_runner::TestRng| {
                        $(
                            let $pat =
                                $crate::strategy::Strategy::new_value(&($strategy), rng);
                        )+
                        $body
                    };
                    run_one(&mut runner_rng);
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// `assert!` under a proptest-flavored name (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under a proptest-flavored name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` under a proptest-flavored name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when the precondition does not hold.
///
/// Expands to an early `return` from the per-case closure, so it is
/// only valid directly inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}
