//! Per-test configuration and the deterministic case RNG.

use rand::SeedableRng;

/// Controls how many random cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than upstream's 256 to keep the full
    /// workspace suite fast; heavyweight suites override it anyway.
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// The RNG strategies draw from. Seeded from the property name and the
/// case index, so every failure is reproducible by rerunning the test.
pub type TestRng = rand::rngs::StdRng;

/// Builds the deterministic RNG for one case of one property, seeding
/// from `(test_name, case_index)` via FNV-1a.
pub fn deterministic_rng(name: &str, case: u32) -> TestRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes().chain(case.to_le_bytes()) {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::seed_from_u64(hash)
}
