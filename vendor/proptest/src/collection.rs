//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Length specifications accepted by [`vec()`]: a fixed `usize` or a
/// (half-open or inclusive) range of lengths.
pub trait SizeRange {
    /// Draws a concrete length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.random_range(self.clone())
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.random_range(self.clone())
    }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.len.pick(rng);
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}

/// A strategy producing `Vec`s whose elements come from `element` and
/// whose length is drawn from `len`.
pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { element, len }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::deterministic_rng;

    #[test]
    fn vec_lengths_honor_spec() {
        let mut rng = deterministic_rng("vec_lengths_honor_spec", 0);
        for _ in 0..100 {
            assert_eq!(vec(0u8..10, 5usize).new_value(&mut rng).len(), 5);
            let ranged = vec(0u8..10, 2usize..=4).new_value(&mut rng);
            assert!((2..=4).contains(&ranged.len()));
        }
    }
}
