//! `any::<T>()` — the canonical whole-domain strategy for a type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.random()
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.random()
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    /// Uniform over a wide symmetric interval. Upstream proptest also
    /// emits non-finite values; the workspace's properties only need
    /// finite coverage.
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.random_range(-1.0e12..1.0e12)
    }
}

impl Arbitrary for f32 {
    /// See the `f64` impl: finite, wide, symmetric.
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.random_range(-1.0e6f32..1.0e6)
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
