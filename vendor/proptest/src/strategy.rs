//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use rand::distr::SampleRange;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no shrinking: a strategy is just
/// a seeded generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Discards generated values failing `f`, retrying a bounded
    /// number of times.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence,
            f,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.source.new_value(rng)).new_value(rng)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        for _ in 0..1000 {
            let value = self.source.new_value(rng);
            if (self.f)(&value) {
                return value;
            }
        }
        panic!(
            "prop_filter '{}' rejected 1000 consecutive values",
            self.whence
        );
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_single(rng)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_single(rng)
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::deterministic_rng;

    #[test]
    fn combinators_compose() {
        let mut rng = deterministic_rng("combinators_compose", 0);
        let strategy = (1usize..=4)
            .prop_flat_map(|n| crate::collection::vec(0.0f64..1.0, n).prop_map(move |v| (n, v)));
        for _ in 0..200 {
            let (n, v) = strategy.new_value(&mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn filter_and_just() {
        let mut rng = deterministic_rng("filter_and_just", 0);
        let even = (0u32..100).prop_filter("even", |x| x % 2 == 0);
        for _ in 0..100 {
            assert_eq!(even.new_value(&mut rng) % 2, 0);
            assert_eq!(Just(7u8).new_value(&mut rng), 7);
        }
    }
}
