//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++
/// (Blackman & Vigna 2019).
///
/// Upstream `rand`'s `StdRng` is ChaCha12; this shim substitutes a
/// small, fast, high-quality non-cryptographic PRNG with identical
/// construction semantics (`seed_from_u64` via SplitMix64). All
/// workspace seeds are interpreted through this generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        Self { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::from_seed([0; 32]);
        assert_ne!(rng.next_u64(), 0);
    }
}
