//! Offline shim of the `rand` 0.9 API surface used by the HyCiM
//! workspace.
//!
//! The build environment has no access to crates.io, so this crate
//! vendors the minimal subset of `rand` the simulator depends on:
//!
//! * [`RngCore`] / [`Rng`] with `random`, `random_range`, `random_bool`
//! * [`SeedableRng`] with `seed_from_u64` / `from_seed`
//! * [`rngs::StdRng`] — a xoshiro256++ generator (not the upstream
//!   ChaCha12, but a high-quality, deterministic, seedable PRNG with
//!   the same construction semantics)
//!
//! Determinism contract: for a fixed seed the sequence is stable
//! across runs and platforms, which is what the paper-reproduction
//! harness relies on. The streams differ from upstream `rand`, so
//! seeds are comparable only within this workspace.
//!
//! ```
//! use rand::{rngs::StdRng, Rng, SeedableRng};
//!
//! let mut a = StdRng::seed_from_u64(7);
//! let mut b = StdRng::seed_from_u64(7);
//! let xs: Vec<f64> = (0..4).map(|_| a.random::<f64>()).collect();
//! let ys: Vec<f64> = (0..4).map(|_| b.random::<f64>()).collect();
//! assert_eq!(xs, ys);
//! assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
//! let k = a.random_range(0..10usize);
//! assert!(k < 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distr;
pub mod rngs;

/// Low-level source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform in `[0, 1)` for floats, uniform over all values for
    /// integers, fair coin for `bool`).
    fn random<T>(&mut self) -> T
    where
        T: distr::StandardUniform,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: distr::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        // Compare 53 uniform bits against p, like upstream's
        // Bernoulli distribution (up to rounding at the last ulp).
        <f64 as distr::StandardUniform>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded via SplitMix64 —
    /// the same construction upstream `rand` uses.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (Steele, Lea, Flood 2014).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (dst, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}
