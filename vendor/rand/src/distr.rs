//! Standard and range-uniform sampling used by [`Rng`](crate::Rng).

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// Types with a "standard" distribution for [`Rng::random`].
///
/// [`Rng::random`]: crate::Rng::random
pub trait StandardUniform: Sized {
    /// Samples one value from the standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

/// Range types accepted by [`Rng::random_range`].
///
/// [`Rng::random_range`]: crate::Rng::random_range
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a uniform value in `[0, span)` by widening to `u128`
/// (modulo bias is < 2⁻⁶⁴ for every span the workspace uses).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() as u128 & (span - 1);
    }
    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
    wide % span
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let unit = <$t as StandardUniform>::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range in random_range");
                let unit = <$t as StandardUniform>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
range_float!(f32, f64);

#[cfg(test)]
mod tests {
    use crate::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let a = rng.random_range(-7i64..9);
            assert!((-7..9).contains(&a));
            let b = rng.random_range(3usize..=3);
            assert_eq!(b, 3);
            let c = rng.random_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&c));
            let d: f64 = rng.random();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn random_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(2);
        let heads = (0..20_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((9_000..11_000).contains(&heads), "heads={heads}");
        assert!((0..1000).all(|_| !rng.random_bool(0.0)));
        assert!((0..1000).all(|_| rng.random_bool(1.0)));
    }
}
