//! Offline shim of the `criterion` API surface used by the HyCiM
//! workspace.
//!
//! The build environment has no access to crates.io, so this crate
//! vendors the subset of criterion the bench targets rely on:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher`]
//! with `iter` / `iter_batched`, [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — median of wall-clock samples,
//! printed as one line per benchmark — with none of upstream's
//! statistics, plots, or baselines. When invoked by `cargo test`
//! (which passes `--test` to `harness = false` targets), every
//! benchmark body runs exactly once so the suite stays fast while the
//! bench code is still exercised.
//!
//! ```
//! use criterion::{Bencher, BenchmarkId, Criterion};
//!
//! let mut c = Criterion::test_mode();
//! let mut group = c.benchmark_group("demo");
//! group.sample_size(10);
//! group.bench_function(BenchmarkId::from_parameter(32), |b: &mut Bencher| {
//!     b.iter(|| std::hint::black_box(32u64.pow(2)))
//! });
//! group.finish();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` keeps working alongside
/// `std::hint::black_box`.
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The shim accepts every
/// upstream variant and treats them identically (one setup per
/// measured invocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Inputs of unknown size.
    PerIteration,
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new<S: std::fmt::Display, P: std::fmt::Display>(name: S, parameter: P) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        Self { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Drives the timing loop of one benchmark.
pub struct Bencher {
    samples: usize,
    /// Measured sample durations, one per executed sample.
    times: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, running it once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.times.push(start.elapsed());
        }
    }

    /// Times `routine` over fresh inputs built by `setup`; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.times.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.times.is_empty() {
            return Duration::ZERO;
        }
        self.times.sort();
        self.times[self.times.len() / 2]
    }
}

/// The benchmark manager: entry point of every bench target.
pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
}

impl Default for Criterion {
    /// Reads the process arguments the way upstream does: the presence
    /// of `--test` (passed by `cargo test` to `harness = false`
    /// targets) switches to one-shot smoke execution.
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Self {
            test_mode,
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// A criterion that runs every benchmark exactly once (used by
    /// `cargo test` and the shim's own doctests).
    pub fn test_mode() -> Self {
        Self {
            test_mode: true,
            sample_size: 20,
        }
    }

    /// Upstream compatibility hook; argument handling already happened
    /// in [`Criterion::default`].
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let samples = if self.test_mode { 1 } else { self.sample_size };
        run_bench(&id.id, samples, f);
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let samples = if self.criterion.test_mode {
            1
        } else {
            self.sample_size.unwrap_or(self.criterion.sample_size)
        };
        run_bench(&format!("{}/{}", self.name, id.id), samples, f);
        self
    }

    /// Ends the group (upstream compatibility; reporting is per-bench).
    pub fn finish(&mut self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples,
        times: Vec::with_capacity(samples),
    };
    f(&mut bencher);
    let executed = bencher.times.len();
    let median = bencher.median();
    println!("bench: {label:<50} median {median:>12.3?} ({executed} samples)");
}

/// Declares a group function that runs each listed benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the `main` of a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_batched_iteration_run() {
        let mut c = Criterion::test_mode();
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        let mut runs = 0usize;
        group.bench_function("iter", |b| b.iter(|| black_box(1 + 1)));
        group.bench_function(BenchmarkId::new("batched", 4), |b| {
            b.iter_batched(|| vec![0u8; 4], |v| v.len(), BatchSize::SmallInput)
        });
        group.bench_function("counts", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert_eq!(runs, 1, "test mode runs each body exactly once");
    }
}
