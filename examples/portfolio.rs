//! Budget-constrained project portfolio selection — a realistic QKP
//! application of the kind the paper's introduction motivates
//! (resource allocation): pick projects under a budget, where pairs of
//! projects have synergy profits.
//!
//! Run with: `cargo run --release --example portfolio`

use hycim::cop::{solvers, QkpInstance};
use hycim::core::{BatchRunner, HyCimConfig, HyCimSolver};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 12 candidate projects: standalone payoff and cost (in $100k).
    let names = [
        "datacenter-upgrade",
        "edge-rollout",
        "ml-pipeline",
        "mobile-app",
        "api-gateway",
        "security-audit",
        "iot-fleet",
        "data-lake",
        "billing-rework",
        "cdn-expansion",
        "devops-platform",
        "analytics-suite",
    ];
    let payoffs = vec![40, 30, 55, 22, 18, 25, 35, 50, 20, 28, 32, 45];
    let costs = vec![24, 15, 30, 10, 8, 12, 20, 28, 9, 14, 16, 25];
    let budget = 90;

    let mut portfolio = QkpInstance::new(payoffs, costs, budget)?.with_name("portfolio");
    // Synergies: projects that amplify each other when funded together.
    for (a, b, synergy) in [
        (2, 7, 25),  // ml-pipeline + data-lake
        (2, 11, 20), // ml-pipeline + analytics-suite
        (7, 11, 18), // data-lake + analytics-suite
        (0, 9, 12),  // datacenter-upgrade + cdn-expansion
        (1, 6, 15),  // edge-rollout + iot-fleet
        (4, 8, 8),   // api-gateway + billing-rework
        (5, 10, 10), // security-audit + devops-platform
    ] {
        portfolio.set_pair_profit(a, b, synergy);
    }

    println!("portfolio selection: 12 projects, budget ${budget}00k");

    // Ground truth for a problem this small.
    let (exact_x, exact_value) = solvers::exhaustive(&portfolio)?;

    // HyCiM pipeline.
    let solver = HyCimSolver::new(&portfolio, &HyCimConfig::default().with_sweeps(300), 1)?;
    // A handful of annealing runs from different Monte-Carlo starts
    // (the paper's protocol), fanned out over worker threads by the
    // deterministic BatchRunner; keep the best.
    let solution = BatchRunner::new()
        .run(&solver, 5, 1)
        .into_iter()
        .max_by_key(|s| s.value())
        .expect("at least one run");

    println!(
        "exhaustive optimum: value {exact_value}, cost {}",
        portfolio.load(&exact_x)
    );
    println!(
        "HyCiM solution:     value {}, cost {}, optimal: {}",
        solution.value(),
        portfolio.load(&solution.assignment),
        solution.value() == exact_value
    );
    println!("funded projects:");
    for i in solution.assignment.support() {
        println!("  - {}", names[i]);
    }
    Ok(())
}
