//! Resilience demo: a coordinator drives a worker **through a
//! fault-injection proxy** that drops the conversation mid-run. The
//! worker is suspended, probed, readmitted — and the merged result is
//! asserted byte-identical to a local single-thread solve. A second
//! act points the coordinator at a dead address and lets graceful
//! degradation finish the grid locally, again to the same bytes.
//!
//! Run with: `cargo run --release --example chaos_demo`

use std::time::Duration;

use hycim::cop::maxcut::MaxCut;
use hycim::cop::AnyProblem;
use hycim::core::{BatchRunner, EngineKind, EngineSettings};
use hycim::net::{
    shard_replica_column, ChaosProxy, ConnFault, Coordinator, FaultPlan, JobSpec, WireSolution,
    WorkerConfig, WorkerServer,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let problem = MaxCut::random(12, 0.5, 7);
    let any = AnyProblem::from(problem.clone());
    let spec = JobSpec {
        family: any.family_tag().to_string(),
        problem: any.to_wire(),
        engine: "software".to_string(),
        sweeps: 60,
        hardware_seed: 2,
        record_trace: true,
        seeds: Vec::new(),
    };
    let (total, jobs) = shard_replica_column(&spec, 8, 33, 0, 2);

    // The ground truth every act must reproduce exactly.
    let engine = EngineKind::Software.build(&problem, &EngineSettings::new(60, 2))?;
    let reference: Vec<WireSolution> = BatchRunner::serial()
        .run(&engine, 8, 33)
        .iter()
        .map(WireSolution::from_solution)
        .collect();

    // --- act 1: the worker drops mid-run, comes back, and no byte moves
    let worker = WorkerServer::bind("127.0.0.1:0", WorkerConfig::new())?.spawn();
    let plan = FaultPlan::clean(1).script(0, ConnFault::CloseAfterResponses { responses: 2 });
    let proxy = ChaosProxy::spawn(worker.addr().to_string(), plan)?;
    println!(
        "worker on {}, chaos proxy on {} (connection 0 dies after 2 responses)",
        worker.addr(),
        proxy.addr()
    );

    let coordinator = Coordinator::new(vec![proxy.addr().to_string()])
        .with_connect_timeout(Duration::from_secs(5))
        .with_read_timeout(Duration::from_millis(300));
    let merged = coordinator.run(total, &jobs)?;
    assert_eq!(merged, reference, "the drop must not move a single byte");
    println!(
        "survived the mid-run drop: {} solutions, bit-identical to the local run",
        merged.len()
    );

    let stats = coordinator.obs().snapshot();
    println!(
        "coordinator story: retired={} probes={} readmitted={} retries={}",
        stats.counter("coord.workers_retired").unwrap_or(0),
        stats.counter("coord.probes_sent").unwrap_or(0),
        stats.counter("coord.workers_readmitted").unwrap_or(0),
        stats.counter("coord.shard_retries").unwrap_or(0),
    );
    for event in coordinator.obs().tracer().events() {
        println!("  event: {event}");
    }
    assert!(proxy.faults_injected() >= 1, "the proxy injected its fault");
    proxy.stop();
    worker.stop();

    // --- act 2: nobody answers at all; the coordinator degrades locally
    let lonely = Coordinator::new(vec!["127.0.0.1:1".to_string()])
        .with_connect_timeout(Duration::from_secs(5));
    let fallback = lonely.run(total, &jobs)?;
    assert_eq!(fallback, reference, "local fallback is the same bytes");
    println!(
        "\nfleet of one dead address: {} shards finished locally, same bytes again",
        lonely
            .obs()
            .snapshot()
            .counter("coord.shards_local")
            .unwrap_or(0)
    );

    println!("\nchaos demo complete");
    Ok(())
}
