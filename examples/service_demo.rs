//! Job-service demo: serve heterogeneous solve jobs (QKP + max-cut)
//! to concurrent callers through `hycim::service::JobService`, then
//! verify the fetched results are bit-identical to direct synchronous
//! `Engine::solve` calls with the same seeds.
//!
//! Run with: `cargo run --release --example service_demo`

use std::sync::Arc;

use hycim::cop::generator::QkpGenerator;
use hycim::cop::maxcut::MaxCut;
use hycim::cop::QkpInstance;
use hycim::core::{Engine, HyCimConfig, HyCimEngine};
use hycim::service::{FetchError, JobService, ServiceConfig, SubmitError};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two unrelated problem types behind one queue.
    let qkp = QkpGenerator::new(40, 0.5).generate(7);
    let graph = MaxCut::random(24, 0.4, 7);
    let config = HyCimConfig::default().with_sweeps(200);
    let qkp_engine = Arc::new(HyCimEngine::new(&qkp, &config, 1)?);
    let cut_engine = Arc::new(HyCimEngine::new(&graph, &config, 1)?);

    let service = JobService::start(
        ServiceConfig::default()
            .with_workers(4)
            .with_queue_capacity(64),
    );
    println!(
        "service up: {} workers, queue bound {}",
        service.workers(),
        service.queue_capacity()
    );

    // --- submit → poll → fetch, across both problem types ------------
    let qkp_jobs: Vec<_> = (0..4)
        .map(|seed| service.submit(&qkp_engine, seed).expect("queue has room"))
        .collect();
    let cut_batch = service.submit_batch(&cut_engine, 8, 42)?;
    println!(
        "submitted {} QKP solves + 1 max-cut batch (8 replicas); {} queued",
        qkp_jobs.len(),
        service.queued()
    );

    for (seed, &job) in (0u64..).zip(&qkp_jobs) {
        let result = service.wait_fetch::<QkpInstance>(job)?;
        let direct = qkp_engine.solve(seed);
        assert_eq!(result.solution().assignment, direct.assignment);
        println!(
            "  {job} (qkp, seed {seed}): value {} — matches direct solve",
            result.solution().value()
        );
    }

    let batch = service.wait_fetch::<MaxCut>(cut_batch)?;
    let best = batch.best();
    println!(
        "  {cut_batch} (max-cut batch): best cut {} over {} replicas (backend {})",
        best.value(),
        batch.replicas(),
        batch.backend
    );
    // Every replica reproduces from its recorded seed alone.
    for (seed, solution) in batch.seeds.iter().zip(&batch.solutions) {
        assert_eq!(solution.assignment, cut_engine.solve(*seed).assignment);
    }
    println!(
        "  all {} replicas bit-identical to Engine::solve",
        batch.replicas()
    );

    // --- cancellation ------------------------------------------------
    // A tiny single-worker service so queued jobs stay cancellable.
    let small = JobService::start(
        ServiceConfig::default()
            .with_workers(1)
            .with_queue_capacity(2),
    );
    let running = small.submit(&qkp_engine, 100)?;
    let queued = small.submit(&qkp_engine, 101)?;
    let won = small.cancel(queued);
    println!("cancel({queued}) while queued: {won}");
    match small.wait_fetch::<QkpInstance>(queued) {
        Err(FetchError::Cancelled(id)) => println!("  {id} reports cancelled, never ran"),
        Ok(_) => println!("  worker won the race; job completed before cancel"),
        Err(other) => return Err(other.into()),
    }
    small.wait(running);

    // --- backpressure ------------------------------------------------
    let mut accepted = 0;
    loop {
        match small.submit(&qkp_engine, 200 + accepted) {
            Ok(_) => accepted += 1,
            Err(SubmitError::QueueFull { capacity }) => {
                println!("backpressure after {accepted} accepted jobs (queue bound {capacity})");
                break;
            }
            Err(e) => return Err(e.into()),
        }
    }
    let dropped = small.cancel_queued();
    println!("cancelled {dropped} queued jobs; shutting down");

    small.shutdown();
    service.shutdown();
    println!("done: every fetched result matched its synchronous reference");
    Ok(())
}
