//! Traveling Salesman through the QUBO stack — the Table 1 \[31\]
//! problem family (equality-constrained, encoded as penalties).
//! Anneals a small Euclidean tour and compares against the
//! nearest-neighbor heuristic.
//!
//! Run with: `cargo run --release --example tsp_tour`

use hycim::anneal::{Annealer, GeometricSchedule, PenaltyState};
use hycim::cop::tsp::Tsp;
use hycim::qubo::dqubo::{AuxEncoding, DquboForm, PenaltyWeights};
use hycim::qubo::{Assignment, LinearConstraint};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tsp = Tsp::random_euclidean(7, 100.0, 11)?;
    println!("tsp: {} cities in a 100x100 square", tsp.num_cities());

    let nn_tour = tsp.nearest_neighbor();
    let nn_len = tsp.tour_length(&nn_tour)?;
    println!("nearest neighbor: {nn_tour:?}, length {nn_len:.1}");

    // TSP's constraints are equalities, already inside the QUBO; wrap
    // it in a trivial inequality so PenaltyState machinery applies
    // uniformly (the paper's point: equality problems are the easy
    // special case).
    let q = tsp.objective_matrix(500.0);
    let trivial = LinearConstraint::new(vec![1; tsp.dim()], tsp.dim() as u64)?;
    let form = DquboForm::transform(&q, &trivial, PenaltyWeights::PAPER, AuxEncoding::Binary)?;

    // Seed the annealer with the heuristic tour, lifted to the
    // extended space.
    let seed_x = tsp.encode(&nn_tour);
    let initial = form.lift(&seed_x);

    let mut best_tour = nn_tour.clone();
    let mut best_len = nn_len;
    for run in 0..5u64 {
        let mut state = PenaltyState::new(&form, initial.clone());
        let iterations = 400 * form.dim();
        let annealer = Annealer::new(
            GeometricSchedule::for_energy_scale(200.0, iterations),
            iterations,
        )
        .without_trace();
        let mut rng = StdRng::seed_from_u64(run);
        let trace = annealer.run(&mut state, &mut rng);
        let best: Assignment = trace.best_assignment().truncated(tsp.dim());
        if let Some(tour) = tsp.decode(&best) {
            let len = tsp.tour_length(&tour)?;
            if len < best_len {
                best_len = len;
                best_tour = tour;
            }
        }
    }

    println!("annealed tour:    {best_tour:?}, length {best_len:.1}");
    println!(
        "improvement over nearest neighbor: {:.1}%",
        100.0 * (nn_len - best_len) / nn_len
    );
    Ok(())
}
