//! Traveling Salesman through the generic engine layer — the Table 1
//! \[31\] problem family (equality-constrained, encoded as penalties).
//! `Tsp` implements `CopProblem`, so the same `HyCimEngine` /
//! `DquboEngine` pair that solves QKP anneals tours and decodes them
//! back into city permutations.
//!
//! Run with: `cargo run --release --example tsp_tour`

use hycim::cop::tsp::Tsp;
use hycim::cop::CopProblem;
use hycim::core::{BatchRunner, Engine, HyCimConfig, HyCimEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tsp = Tsp::random_euclidean(7, 100.0, 11)?;
    println!(
        "tsp: {} cities in a 100x100 square ({} QUBO variables)",
        tsp.num_cities(),
        CopProblem::dim(&tsp)
    );

    let nn_tour = tsp.nearest_neighbor();
    let nn_len = tsp.tour_length(&nn_tour)?;
    println!("nearest neighbor: {nn_tour:?}, length {nn_len:.1}");

    // TSP's constraints are equalities, already inside the QUBO as
    // penalties; the engine wraps it in a trivial inequality (the
    // paper's point: equality problems are the easy special case).
    let engine = HyCimEngine::new(&tsp, &HyCimConfig::default().with_sweeps(400), 11)?;

    // Anneal from 5 random permutations; keep the best valid tour.
    let solutions = BatchRunner::new().run(&engine, 5, 3);
    let mut best_tour = nn_tour.clone();
    let mut best_len = nn_len;
    for solution in &solutions {
        if let Some(tour) = &solution.decoded {
            let len = tsp.tour_length(tour)?;
            if len < best_len {
                best_len = len;
                best_tour = tour.clone();
            }
        }
    }
    let valid = solutions.iter().filter(|s| s.feasible).count();
    println!("valid tours from {} runs: {valid}", solutions.len());
    println!("annealed tour:    {best_tour:?}, length {best_len:.1}");
    println!(
        "improvement over nearest neighbor: {:.1}%",
        100.0 * (nn_len - best_len) / nn_len
    );

    // One-off solve on the baseline engine for contrast.
    let baseline =
        hycim::core::DquboEngine::new(&tsp, &hycim::core::DquboConfig::default().with_sweeps(100))?;
    let b = baseline.solve(3);
    println!(
        "D-QUBO baseline ({} extended variables): {}",
        baseline.form().dim(),
        if b.feasible {
            format!("valid tour of length {:.1}", b.objective)
        } else {
            "no valid tour (trapped — the paper's Fig. 10 effect)".to_string()
        }
    );
    Ok(())
}
