//! Quickstart: solve one quadratic knapsack instance end to end with
//! the HyCiM pipeline and compare against the D-QUBO baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use hycim::cop::generator::QkpGenerator;
use hycim::cop::solvers;
use hycim::core::{DquboConfig, DquboSolver, Engine, HyCimConfig, HyCimSolver};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A benchmark-style 100-item QKP instance (profits ≤ 100 with 25%
    // density, weights ≤ 50, capacity in the paper's range).
    let instance = QkpGenerator::new(100, 0.25).generate(7);
    println!("instance: {instance}");

    // Reference value from greedy + local search restarts.
    let (_, best_known) = solvers::best_known(&instance, 15, 7);
    println!("best-known value: {best_known}");

    // --- HyCiM: inequality-QUBO + filter + crossbar + SA -------------
    let hycim = HyCimSolver::new(&instance, &HyCimConfig::default(), 1)?;
    let solution = hycim.solve(42);
    println!(
        "HyCiM:  value {} ({:.1}% of best known), feasible: {}, \
         {} proposals filtered as infeasible",
        solution.value(),
        100.0 * solution.normalized_value(best_known),
        solution.feasible,
        solution.trace.rejected_infeasible(),
    );

    // --- D-QUBO baseline: penalty encoding, no filter ----------------
    let dqubo = DquboSolver::new(&instance, &DquboConfig::default().with_sweeps(100))?;
    let baseline = dqubo.solve(42);
    println!(
        "D-QUBO: value {} ({:.1}% of best known), feasible: {}, \
         search space 2^{} instead of 2^100",
        baseline.value(),
        100.0 * baseline.normalized_value(best_known),
        baseline.feasible,
        dqubo.form().dim(),
    );

    Ok(())
}
