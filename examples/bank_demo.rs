//! The filter-bank pipeline end-to-end: a multi-dimensional knapsack
//! solved on the `BankEngine` (one FeFET inequality filter per
//! resource dimension) next to the `SoftwareEngine` running the
//! aggregate single-constraint relaxation.
//!
//! The bank gates every dimension in hardware, so each of its
//! solutions is feasible in *all* dimensions; the relaxation only
//! enforces the summed budget and can land dimension-infeasible —
//! exactly the gap the `fig_bank` report quantifies.
//!
//! Run with: `cargo run --release --example bank_demo`

use hycim::cop::mkp::MkpGenerator;
use hycim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 16-item, 3-dimension MKP (weight / volume / power budgets).
    let mkp = MkpGenerator::new(16, 3).with_tightness(0.4).generate(7);
    let reference = mkp.reference_value();
    println!(
        "MKP: {} items, {} resource dimensions, capacities {:?}",
        mkp.num_items(),
        mkp.num_dimensions(),
        mkp.capacities()
    );
    println!("reference (exhaustive) value: {reference}");

    let multi = mkp.to_multi_inequality_qubo()?;
    println!("bank encoding: {multi}");

    let config = HyCimConfig::default().with_sweeps(300);
    let bank = BankEngine::new(&mkp, &config, 1)?;
    let software = SoftwareEngine::new(&mkp, &config)?;

    println!(
        "\n{:<10} {:>8} {:>10} {:>16}",
        "backend", "value", "feasible", "per-dim loads"
    );
    for seed in 0..5u64 {
        let b = bank.solve(seed);
        let s = software.solve(seed);
        for (tag, sol) in [("bank", &b), ("software", &s)] {
            let loads: Vec<u64> = (0..mkp.num_dimensions())
                .map(|d| mkp.load(&sol.assignment, d))
                .collect();
            println!(
                "{tag:<10} {:>8} {:>10} {:>16}",
                sol.value(),
                sol.feasible,
                format!("{loads:?}")
            );
        }

        // The bank's admission criterion is the full constraint set:
        // every solution it returns is feasible in every dimension.
        assert!(
            multi.is_feasible(&b.assignment),
            "bank solution violates a dimension at seed {seed}"
        );
        assert!(b.feasible, "bank solutions are domain-feasible");
        // And never better than the exhaustive reference.
        assert!(
            b.value() <= reference,
            "bank value {} exceeds the exact optimum {reference}",
            b.value()
        );
    }

    // Determinism: the same seed reproduces bit-identically.
    assert_eq!(bank.solve(3).assignment, bank.solve(3).assignment);
    println!("\nall bank solutions feasible in every dimension ✓");
    Ok(())
}
