//! Bin packing with a bank of inequality filters — the paper's other
//! motivating COP with inequality constraints (Sec 1), showing that
//! the inequality-QUBO idea generalizes beyond a single constraint:
//! one filter per bin, QUBO objective for the assignment validity.
//!
//! Run with: `cargo run --release --example bin_packing`

use hycim::cim::filter::{FilterConfig, InequalityFilter};
use hycim::cop::binpack::BinPacking;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 8 items into 3 bins of capacity 20.
    let bp = BinPacking::new(vec![9, 8, 7, 7, 6, 6, 5, 4], 20, 3)?;
    println!(
        "bin packing: {} items (total size {}), {} bins of capacity {} (lower bound {} bins)",
        bp.num_items(),
        bp.sizes().iter().sum::<u64>(),
        bp.num_bins(),
        bp.capacity(),
        bp.bin_lower_bound()
    );

    // Heuristic packing as the SA seed.
    let seed = bp.first_fit_decreasing().expect("instance is packable");
    println!("first-fit-decreasing packing found: {seed}");

    // One inequality filter per bin — the multi-constraint
    // generalization of the paper's single-filter architecture.
    let mut rng = StdRng::seed_from_u64(3);
    let config = FilterConfig::default();
    let filters: Vec<InequalityFilter> = bp
        .bin_constraints()
        .iter()
        .map(|c| InequalityFilter::build(c.weights(), c.capacity(), &config, &mut rng))
        .collect::<Result<_, _>>()?;

    // The assignment-validity QUBO (min = every item in exactly one bin).
    let objective = bp.assignment_objective(10.0);

    // A tiny annealing loop over the filter bank: a move is admitted
    // only if *every* bin's filter accepts the proposed configuration.
    let mut x = seed.clone();
    let mut energy = objective.energy(&x);
    let mut best = (x.clone(), energy);
    let iterations = 4000;
    for iter in 0..iterations {
        let temperature = 4.0 * (1.0 - iter as f64 / iterations as f64) + 0.01;
        let i = rng.random_range(0..bp.dim());
        let mut candidate = x.clone();
        candidate.flip(i);
        let admitted = filters
            .iter()
            .all(|f| f.classify(&candidate, &mut rng).is_feasible());
        if !admitted {
            continue;
        }
        let delta = objective.flip_delta(&x, i);
        if delta <= 0.0 || rng.random::<f64>() < (-delta / temperature).exp() {
            x = candidate;
            energy += delta;
            if energy < best.1 {
                best = (x.clone(), energy);
            }
        }
    }

    let (packing, _) = best;
    println!("annealed packing:  {packing}");
    println!("valid: {}", bp.is_valid_packing(&packing));
    for k in 0..bp.num_bins() {
        let items: Vec<usize> = (0..bp.num_items())
            .filter(|&i| packing.get(bp.var(i, k)))
            .collect();
        println!(
            "  bin {k}: items {items:?}, load {}/{}",
            bp.bin_load(&packing, k),
            bp.capacity()
        );
    }
    Ok(())
}
