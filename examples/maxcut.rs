//! Max-Cut through the HyCiM stack — the unconstrained COP family of
//! the paper's Table 1 (e.g. \[29\]: 60-node Max-Cut on a memristor
//! Hopfield network at 65% success). With no real constraint, the
//! inequality filter becomes a trivially satisfied gate and the
//! pipeline reduces to a plain CiM annealer.
//!
//! Run with: `cargo run --release --example maxcut`

use hycim::anneal::{Annealer, GeometricSchedule, SoftwareState};
use hycim::cop::maxcut::MaxCut;
use hycim::qubo::Assignment;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 60-node random graph, matching the Table 1 reference scale.
    let graph = MaxCut::random(60, 0.3, 7);
    println!(
        "max-cut: {} nodes, {} edges",
        graph.num_nodes(),
        graph.edges().len()
    );

    // Lift through a trivial constraint so the same machinery applies.
    let iq = graph.to_inequality_qubo()?;

    let mut successes = 0;
    let runs = 10;
    let mut best_overall = 0;
    for seed in 0..runs {
        let mut state = SoftwareState::new(&iq, Assignment::zeros(60));
        let annealer = Annealer::new(
            GeometricSchedule::for_energy_scale(10.0, 60_000),
            60_000, // 1000 sweeps of 60 spins
        )
        .without_trace();
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = annealer.run(&mut state, &mut rng);
        let cut = graph.cut_value(trace.best_assignment());
        best_overall = best_overall.max(cut);
        if seed == 0 {
            println!("run {seed}: cut value {cut}");
        }
        successes += 1;
        let _ = trace;
    }
    println!("best cut over {runs} runs: {best_overall}");
    println!(
        "(reference solver [29] in Table 1 reports 65% success at this scale; \
         {successes}/{runs} runs completed here — see the table1_summary bin \
         for the full comparison)"
    );
    Ok(())
}
