//! Max-Cut through the full HyCiM hardware stack — the unconstrained
//! COP family of the paper's Table 1 (e.g. \[29\]: 60-node Max-Cut on
//! a memristor Hopfield network at 65% success). With no real
//! constraint, the inequality filter becomes a trivially satisfied
//! gate and the pipeline reduces to a plain CiM annealer — which is
//! exactly what `HyCimEngine<MaxCut>` does, no Max-Cut-specific solver
//! code required.
//!
//! Run with: `cargo run --release --example maxcut`

use hycim::cop::maxcut::MaxCut;
use hycim::cop::CopProblem;
use hycim::core::{BatchRunner, HyCimConfig, HyCimEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 60-node random graph, matching the Table 1 reference scale.
    let graph = MaxCut::random(60, 0.3, 7);
    println!(
        "max-cut: {} nodes, {} edges",
        graph.num_nodes(),
        graph.edges().len()
    );

    // The generic engine runs the unconstrained problem on the same
    // filter + crossbar + SA hardware pipeline as QKP.
    let engine = HyCimEngine::new(&graph, &HyCimConfig::default(), 7)?;

    // 10 Monte-Carlo starts fanned out by the deterministic runner.
    let runs = 10;
    let solutions = BatchRunner::new().run(&engine, runs, 1);
    let best = solutions
        .iter()
        .min_by(|a, b| a.objective.total_cmp(&b.objective))
        .expect("at least one run");
    let best_cut = graph.cut_value(&best.assignment);
    println!(
        "run 0: cut value {}",
        graph.cut_value(&solutions[0].assignment)
    );
    println!("best cut over {runs} runs: {best_cut}");
    println!(
        "filtered proposals in the best run: {} (trivial constraint — the \
         filter almost never fires)",
        best.trace.rejected_infeasible()
    );
    println!(
        "(reference solver [29] in Table 1 reports 65% success at this scale; \
         problem kind '{}' ran through the same engine as QKP — see the \
         table1_summary bin for the full comparison)",
        graph.kind()
    );
    Ok(())
}
