//! Observability demo: scrape a loopback worker **mid-run** over the
//! `stats` wire verb, then read the full story — frame counters,
//! shard counters, job-service latency, and the coordinator's own
//! dispatch registry — once the run completes.
//!
//! Everything printed from `render_stable()` is deterministic for a
//! fixed workload; wall-clock lives only in the `-- timing --`
//! section and the Prometheus exposition.
//!
//! Run with: `cargo run --release --example obs_demo`

use std::sync::Arc;
use std::time::Duration;

use hycim::cop::maxcut::MaxCut;
use hycim::cop::AnyProblem;
use hycim::net::{
    shard_replica_column, Coordinator, JobSpec, WorkerClient, WorkerConfig, WorkerServer,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One loopback worker, exactly as the distributed tests run it.
    let worker = WorkerServer::bind("127.0.0.1:0", WorkerConfig::new())?.spawn();
    let addr = worker.addr().to_string();
    println!("worker up on {addr}");

    // A replica column chunky enough that the run is observable while
    // still in flight.
    let problem = MaxCut::random(16, 0.5, 7);
    let any = AnyProblem::from(problem);
    let spec = JobSpec {
        family: any.family_tag().to_string(),
        problem: any.to_wire(),
        engine: "hycim".to_string(),
        sweeps: 300,
        hardware_seed: 1,
        record_trace: true,
        seeds: Vec::new(),
    };
    let (total, jobs) = shard_replica_column(&spec, 24, 99, 0, 4);

    // Drive the run on a background thread; scrape from this one.
    let coordinator = Arc::new(
        Coordinator::new(vec![addr.clone()])
            .with_connect_timeout(Duration::from_secs(5))
            .with_read_timeout(Duration::from_secs(5)),
    );
    let runner = {
        let coordinator = Arc::clone(&coordinator);
        std::thread::spawn(move || coordinator.run(total, &jobs))
    };

    // --- the mid-run scrape ------------------------------------------
    let mut scraper = WorkerClient::connect(addr.as_str())?;
    scraper.set_timeout(Some(Duration::from_secs(5)))?;
    let mid = scraper.stats()?;
    println!(
        "mid-run scrape: frames_in={} queue_depth={} shards_solved={}",
        mid.counter("net.frames_in").unwrap_or(0),
        mid.gauge("service.queue_depth").unwrap_or(0),
        mid.counter("net.shards_solved").unwrap_or(0),
    );
    assert!(
        mid.counter("net.frames_in").unwrap_or(0) > 0,
        "the worker served frames while the run was in flight"
    );

    let merged = runner.join().expect("runner thread")?;
    println!("run merged {} replica solutions", merged.len());

    // --- the settled story -------------------------------------------
    let done = scraper.stats()?;
    println!("\nworker registry (stable section):");
    print!("{}", done.render_stable());
    assert_eq!(done.counter("net.shards_solved"), Some(4));
    assert!(done.counter("net.frames_out").unwrap_or(0) > 0);

    println!("\ncoordinator registry:");
    print!("{}", coordinator.obs().snapshot().render());
    for event in coordinator.obs().tracer().events() {
        println!("  event: {event}");
    }

    println!("\nPrometheus exposition (first lines):");
    for line in done.render_prometheus().lines().take(8) {
        println!("  {line}");
    }

    worker.stop();
    println!("\nworker stopped; demo complete");
    Ok(())
}
