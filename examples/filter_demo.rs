//! Circuit-level walkthrough of the FeFET inequality filter on the
//! paper's worked example (Fig. 4(c) + Fig. 5(f)):
//! `4x₁ + 7x₂ + 2x₃ ≤ 9` over all 2³ input configurations.
//!
//! Prints the per-phase matchline waveform of every configuration and
//! the comparator verdicts, reproducing the transient picture of
//! Fig. 5(f) (six feasible MLs above the replica, two below).
//!
//! Run with: `cargo run --release --example filter_demo`

use hycim::cim::filter::{FilterConfig, InequalityFilter};
use hycim::cim::Fidelity;
use hycim::qubo::Assignment;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let weights = [4u64, 7, 2];
    let capacity = 9;
    let config = FilterConfig::default().with_fidelity(Fidelity::DeviceAccurate);
    let mut rng = StdRng::seed_from_u64(11);
    let filter = InequalityFilter::build(&weights, capacity, &config, &mut rng)?;

    println!("inequality: 4x1 + 7x2 + 2x3 <= 9   (paper Fig. 5(f))");
    println!(
        "unit drop:  {:.3} mV per weight unit\n",
        filter.working_array().matchline_config().unit_drop() * 1e3
    );

    // Replica waveform first (encodes the capacity).
    let replica_trace = filter.replica_array().waveform(
        &Assignment::ones_vec(filter.replica_array().num_columns()),
        &mut rng,
    );
    println!(
        "replica ML (C=9): {} V",
        replica_trace
            .iter()
            .map(|v| format!("{v:.4}"))
            .collect::<Vec<_>>()
            .join(" → ")
    );
    println!();
    println!("x1x2x3  load  per-phase ML (V)                              verdict");

    for bits in 0u32..8 {
        let x = Assignment::from_bits((0..3).map(|i| bits >> i & 1 == 1));
        let load: u64 = weights
            .iter()
            .zip(x.iter())
            .filter(|(_, b)| *b)
            .map(|(w, _)| w)
            .sum();
        let trace = filter.working_array().waveform(&x, &mut rng);
        let decision = filter.classify(&x, &mut rng);
        println!(
            "{}   {:>3}   {}   {}",
            x.to_bit_string(),
            load,
            trace
                .iter()
                .map(|v| format!("{v:.4}"))
                .collect::<Vec<_>>()
                .join(" → "),
            if decision.is_feasible() {
                format!("feasible   ({load} <= {capacity})")
            } else {
                format!("INFEASIBLE ({load} > {capacity})")
            }
        );
    }

    Ok(())
}
