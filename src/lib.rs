//! # HyCiM — hybrid computing-in-memory QUBO solver
//!
//! A full reproduction of *HyCiM: A Hybrid Computing-in-Memory QUBO
//! Solver for General Combinatorial Optimization Problems with
//! Inequality Constraints* (Qian et al., DAC 2024) as a Rust
//! workspace. This crate is the facade: it re-exports the public API
//! of every subsystem.
//!
//! ## Layout
//!
//! | Module | Source crate | Contents |
//! |---|---|---|
//! | [`qubo`] | `hycim-qubo` | QUBO/Ising algebra, inequality-QUBO form, D-QUBO penalty transformation, quantization |
//! | [`cop`] | `hycim-cop` | The `CopProblem` trait + 8 problem types (QKP, knapsack, max-cut, TSP, coloring, bin packing, multi-dimensional knapsack, spin glass), CNAM/MKP generators & parsers, reference solvers |
//! | [`fefet`] | `hycim-fefet` | Multi-level FeFET device models, Preisach-style programming, 1FeFET1R cells |
//! | [`cim`] | `hycim-cim` | Inequality filter, CiM crossbar, ADC, matchline, area & energy models |
//! | [`anneal`] | `hycim-anneal` | Simulated-annealing engine, schedules, traces |
//! | [`core`] | `hycim-core` | Generic engines (`HyCimEngine`, `BankEngine`, `DquboEngine`, `SoftwareEngine`), the parallel `BatchRunner`, success-rate harness |
//! | [`service`] | `hycim-service` | Job-service front-end: bounded-queue worker pool serving solve jobs to concurrent callers (submit → poll → fetch) |
//! | [`net`] | `hycim-net` | Framed-JSON wire protocol over TCP: worker servers bridging jobs onto the service pool, the shard-planning coordinator with worker health tracking / seeded retry backoff / local-fallback degradation, a deterministic fault-injection proxy, bit-identical distributed solves |
//! | [`obs`] | `hycim-obs` | Observability: dependency-free metrics registry (counters, gauges, mergeable histograms), bounded event tracer, Prometheus-style exposition, deterministic snapshot form |
//!
//! The crate-level narrative — who calls whom, and why the layers cut
//! where they do — lives in
//! [`docs/ARCHITECTURE.md`](https://github.com/hycim/hycim/blob/main/docs/ARCHITECTURE.md).
//!
//! ## Quickstart
//!
//! ```
//! use hycim::core::{Engine, HyCimConfig, HyCimSolver};
//! use hycim::cop::generator::QkpGenerator;
//!
//! # fn main() -> Result<(), hycim::core::HycimError> {
//! // A 100-item quadratic knapsack instance in the benchmark style.
//! let instance = QkpGenerator::new(100, 0.25).generate(7);
//! let solver = HyCimSolver::new(
//!     &instance,
//!     &HyCimConfig::default().with_sweeps(100),
//!     1, // hardware seed ("chip instance")
//! )?;
//! let solution = solver.solve(42);
//! assert!(solution.feasible);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hycim_anneal as anneal;
pub use hycim_cim as cim;
pub use hycim_cop as cop;
pub use hycim_core as core;
pub use hycim_fefet as fefet;
pub use hycim_net as net;
pub use hycim_obs as obs;
pub use hycim_qubo as qubo;
pub use hycim_service as service;

/// Convenient single-import surface for the most used types.
///
/// ```
/// use hycim::prelude::*;
///
/// let x = Assignment::from_bits([true, false]);
/// assert_eq!(x.ones(), 1);
/// ```
pub mod prelude {
    pub use hycim_anneal::{AnnealTrace, Annealer, GeometricSchedule, Schedule};
    pub use hycim_cim::filter::{BankDecision, FilterBank, FilterConfig, InequalityFilter};
    pub use hycim_cim::Fidelity;
    pub use hycim_cop::generator::QkpGenerator;
    pub use hycim_cop::mkp::{MkpGenerator, MultiKnapsack};
    pub use hycim_cop::{CopProblem, QkpInstance};
    pub use hycim_core::{
        BankEngine, BatchRunner, DquboConfig, DquboEngine, DquboSolver, Engine, HyCimConfig,
        HyCimEngine, HyCimSolver, HycimError, SoftwareEngine, SoftwareSolver, Solution,
    };
    pub use hycim_net::{
        BackoffConfig, ChaosProxy, Coordinator, FaultPlan, JobSpec, WireSolution, WorkerClient,
        WorkerServer,
    };
    pub use hycim_obs::{Counter, EventTracer, Gauge, Histogram, ObsRegistry, Snapshot};
    pub use hycim_qubo::{
        Assignment, DeltaEngine, InequalityQubo, IsingModel, LinearConstraint, LocalFieldState,
        MultiInequalityQubo, QuboMatrix,
    };
    pub use hycim_service::{
        DisposeOutcome, JobId, JobResult, JobService, JobStatus, ServiceConfig,
    };
}
