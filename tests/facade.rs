//! Workspace smoke test: the facade's re-exports must keep resolving
//! to the sub-crate types, so `hycim::...` paths cannot silently drift
//! from the crates they forward to.

use hycim::prelude::*;

/// Every facade module path re-exports the matching sub-crate: a type
/// reached through `hycim::<module>` must be the *same type* as the
/// one in the underlying `hycim_*` crate.
#[test]
fn facade_modules_alias_subcrates() {
    // Same-type checks (not just name collisions): an identity
    // function pins each pair of paths to one type.
    fn same<T>(_: fn(T) -> T) {}
    same::<hycim::qubo::Assignment>(std::convert::identity::<hycim_qubo::Assignment>);
    same::<hycim::qubo::QuboMatrix>(std::convert::identity::<hycim_qubo::QuboMatrix>);
    same::<hycim::cop::QkpInstance>(std::convert::identity::<hycim_cop::QkpInstance>);
    same::<hycim::fefet::FefetCell>(std::convert::identity::<hycim_fefet::FefetCell>);
    same::<hycim::cim::Fidelity>(std::convert::identity::<hycim_cim::Fidelity>);
    same::<hycim::anneal::AnnealTrace>(std::convert::identity::<hycim_anneal::AnnealTrace>);
    same::<hycim::core::Solution<hycim::cop::QkpInstance>>(
        std::convert::identity::<hycim_core::Solution<hycim_cop::QkpInstance>>,
    );
    same::<hycim::net::WireSolution>(std::convert::identity::<hycim_net::WireSolution>);
    same::<hycim::service::DisposeOutcome>(std::convert::identity::<hycim_service::DisposeOutcome>);
    same::<hycim::obs::Snapshot>(std::convert::identity::<hycim_obs::Snapshot>);
    same::<hycim::obs::Event>(std::convert::identity::<hycim_obs::Event>);
}

/// The prelude surface named in the facade docs resolves and is
/// usable end-to-end: build a tiny instance, solve it, check the
/// solution through prelude types only.
#[test]
fn prelude_surface_is_usable() {
    let instance = QkpGenerator::new(12, 0.5).generate(3);
    let solver = HyCimSolver::new(&instance, &HyCimConfig::default().with_sweeps(30), 1)
        .expect("small instance maps onto the paper-sized hardware");
    let solution: Solution<QkpInstance> = solver.solve(7);
    assert!(solution.feasible);
    assert_eq!(solution.assignment.len(), 12);

    let x = Assignment::from_bits([true, false]);
    assert_eq!(x.ones(), 1);
}

/// Deep module paths advertised in the facade's module table stay
/// reachable (`hycim::<module>::<submodule>::Type`).
#[test]
fn nested_module_paths_resolve() {
    let _ = hycim::cop::generator::QkpGenerator::new(5, 0.5);
    let _ = hycim::qubo::dqubo::PenaltyWeights::PAPER;
    let _: hycim::cim::filter::FilterConfig = FilterConfig::default();
    let _: hycim::core::HycimError;
}

/// The wire surface is reachable through the facade: spin up a
/// loopback worker, submit a solve over real TCP through prelude
/// types only, and the fetched result matches a direct local solve.
#[test]
fn net_surface_round_trips_a_job() {
    use hycim::cop::maxcut::MaxCut;
    use hycim::cop::AnyProblem;
    use hycim::core::{EngineKind, EngineSettings};
    use hycim::net::WorkerConfig;

    let problem = MaxCut::random(8, 0.5, 4);
    let any = AnyProblem::from(problem.clone());
    let handle = WorkerServer::bind("127.0.0.1:0", WorkerConfig::new())
        .expect("bind loopback")
        .spawn();
    let mut client = WorkerClient::connect(handle.addr()).expect("connect");
    let spec = JobSpec {
        family: any.family_tag().to_string(),
        problem: any.to_wire(),
        engine: EngineKind::Software.tag().to_string(),
        sweeps: 30,
        hardware_seed: 1,
        record_trace: true,
        seeds: vec![9],
    };
    let job = client.submit(&spec).expect("submit");
    let fetched = client.wait_fetch(job).expect("fetch");

    let engine = EngineKind::Software
        .build(&problem, &EngineSettings::new(30, 1))
        .expect("builds");
    let local = WireSolution::from_solution(&engine.solve(9));
    assert_eq!(fetched, vec![local]);
    handle.stop();
}

/// The observability surface is reachable through the facade and the
/// prelude: record through prelude types only, then check the
/// deterministic snapshot form and the wire `stats` verb against a
/// loopback worker.
#[test]
fn obs_surface_records_and_scrapes() {
    let registry = ObsRegistry::new();
    registry.counter("facade.test").add(3);
    registry.gauge("facade.level").set(2);
    registry.histogram("facade.sizes").record(8.0);
    let snapshot: Snapshot = registry.snapshot();
    assert_eq!(snapshot.counter("facade.test"), Some(3));
    assert!(snapshot.render_stable().contains("facade.test 3"));
    assert!(snapshot.render_prometheus().contains("hycim_facade_test 3"));

    // The wire scrape goes through the same facade surface.
    let handle = WorkerServer::bind("127.0.0.1:0", hycim::net::WorkerConfig::new())
        .expect("bind loopback")
        .spawn();
    let mut client = WorkerClient::connect(handle.addr()).expect("connect");
    let scraped = client.stats().expect("stats verb");
    assert!(scraped.counter("net.frames_in").unwrap_or(0) >= 1);
    handle.stop();
}

/// The filter-bank pipeline surface is reachable through the prelude:
/// encode a multi-constraint problem, build its bank, classify a
/// configuration, and solve it on the `BankEngine`.
#[test]
fn bank_pipeline_surface_is_usable() {
    use rand::{rngs::StdRng, SeedableRng};

    let mkp = MkpGenerator::new(8, 2).generate(1);
    let multi: MultiInequalityQubo = mkp.to_multi_inequality_qubo().expect("encodable");
    assert_eq!(multi.num_constraints(), 2);

    let mut rng = StdRng::seed_from_u64(2);
    let bank = FilterBank::build(multi.constraints(), &FilterConfig::default(), &mut rng)
        .expect("generated weights fit the filter columns");
    let decision: BankDecision = bank.classify(&Assignment::zeros(8), &mut rng);
    assert!(decision.is_feasible());
    assert_eq!(decision.first_violation(), None);

    let engine = BankEngine::new(&mkp, &HyCimConfig::default().with_sweeps(30), 1)
        .expect("generated instances map onto the bank");
    let solution: Solution<MultiKnapsack> = engine.solve(5);
    assert!(multi.is_feasible(&solution.assignment));
}
