//! Hardware-model validation at the paper's full array scale: the
//! fast (SA hot-loop) and device-accurate paths must be statistically
//! equivalent, and noisy hardware must track the exact arithmetic
//! within its documented noise budget.

use hycim::cim::filter::{FilterConfig, InequalityFilter};
use hycim::cim::linearity::measure_linearity;
use hycim::cim::Fidelity;
use hycim::cop::generator::QkpGenerator;
use hycim::fefet::VariationModel;
use hycim::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// At the 16×100 scale of Sec 4.1, both fidelities classify the same
/// Monte-Carlo configurations identically away from the boundary.
#[test]
fn fidelities_agree_at_paper_scale() {
    let inst = QkpGenerator::new(100, 0.5).generate(1);
    let mut rng = StdRng::seed_from_u64(2);
    let dev = InequalityFilter::build(
        inst.weights(),
        inst.capacity(),
        &FilterConfig::default().with_fidelity(Fidelity::DeviceAccurate),
        &mut rng,
    )
    .expect("paper-scale filter");
    let fast = InequalityFilter::build(
        inst.weights(),
        inst.capacity(),
        &FilterConfig::default().with_fidelity(Fidelity::Fast),
        &mut rng,
    )
    .expect("paper-scale filter");
    let constraint = inst.constraint();
    let mut checked = 0;
    while checked < 30 {
        let x = Assignment::random_with_density(100, 0.35, &mut rng);
        let load = constraint.load(&x);
        if load.abs_diff(inst.capacity()) <= 3 {
            continue; // honest uncertainty band
        }
        let expected = constraint.is_satisfied(&x);
        assert_eq!(dev.classify(&x, &mut rng).is_feasible(), expected);
        assert_eq!(fast.classify(&x, &mut rng).is_feasible(), expected);
        checked += 1;
    }
}

/// The ML voltage of the device-accurate path stays within a few
/// noise units of the analytic prediction `VDD − f·ΔV·load` across the
/// full load range.
#[test]
fn device_ml_tracks_analytic_prediction() {
    let weights: Vec<u64> = (0..100).map(|i| i % 50 + 1).collect();
    let config = FilterConfig::default().with_fidelity(Fidelity::DeviceAccurate);
    let mut rng = StdRng::seed_from_u64(3);
    let filter = InequalityFilter::build(&weights, 1000, &config, &mut rng).expect("mappable");
    let unit = filter.working_array().matchline_config().unit_drop();
    let vdd = filter.working_array().matchline_config().vdd;
    // The series-blend conducts ~98% of the clamp current.
    let eff = 1.0e-4 / (1.0e-4 + 2.0e-6);
    for ones in [0usize, 10, 40, 80] {
        let x = Assignment::from_bits((0..100).map(|i| i < ones));
        let load: u64 = weights[..ones].iter().sum();
        let ml = filter.working_array().evaluate(&x, &mut rng);
        let predicted = vdd - eff * unit * load as f64;
        let tolerance = unit * (3.0 + 0.1 * (load as f64).sqrt());
        assert!(
            (ml - predicted).abs() < tolerance,
            "load {load}: ML {ml:.5} vs predicted {predicted:.5}"
        );
    }
}

/// Chip-scale linearity (Fig. 7(d) protocol) holds for arbitrary seeds.
#[test]
fn linearity_is_seed_robust() {
    for seed in [1u64, 7, 99] {
        let sweep = measure_linearity(32, 32, 32, 5, &VariationModel::paper(), seed);
        assert!(
            sweep.r_squared() > 0.999,
            "seed {seed}: R² {}",
            sweep.r_squared()
        );
        let slope = sweep.slope() * 1e6;
        assert!(
            (1.8..2.1).contains(&slope),
            "seed {seed}: slope {slope} µA/cell"
        );
    }
}

/// Noisy hardware solving must stay within a modest gap of noise-free
/// software solving on the same instances and seeds.
#[test]
fn hardware_noise_costs_little_quality() {
    let mut hw_total = 0u64;
    let mut sw_total = 0u64;
    for seed in 0..4 {
        let inst = QkpGenerator::new(60, 0.5).generate(seed);
        let config = HyCimConfig::default().with_sweeps(300);
        let hw = HyCimSolver::new(&inst, &config, seed).expect("maps");
        let sw = SoftwareSolver::new(&inst, &config).expect("transforms");
        hw_total += hw.solve(seed).value();
        sw_total += sw.solve(seed).value();
    }
    assert!(
        hw_total as f64 >= 0.95 * sw_total as f64,
        "hardware total {hw_total} below 95% of software total {sw_total}"
    );
}

/// Variability sweep: success survives 2× the calibrated device noise,
/// degrades gracefully rather than collapsing.
#[test]
fn variability_degrades_gracefully() {
    let inst = QkpGenerator::new(50, 0.5).generate(5);
    let mut values = Vec::new();
    for scale in [0.0, 1.0, 2.0] {
        let config = HyCimConfig::default().with_sweeps(200).with_filter(
            FilterConfig::default().with_variation(VariationModel::paper().scaled(scale)),
        );
        let solver = HyCimSolver::new(&inst, &config, 5).expect("maps");
        values.push(solver.solve(5).value());
    }
    // No collapse: the noisiest run keeps ≥ 90% of the ideal run.
    assert!(
        values[2] as f64 >= 0.9 * values[0] as f64,
        "2x variability collapsed quality: {values:?}"
    );
}
