//! End-to-end integration tests spanning every crate: problem
//! generation → transformation → hardware mapping → annealing →
//! decoded solutions.

use hycim::cop::generator::QkpGenerator;
use hycim::cop::{parser, solvers};
use hycim::core::{DquboConfig, DquboSolver, HyCimConfig, HyCimSolver, SoftwareSolver};
use hycim::prelude::*;
use hycim::qubo::dqubo::{AuxEncoding, PenaltyWeights};

/// The paper's Fig. 7(e) worked example as an instance.
fn fig7e() -> QkpInstance {
    let mut inst = QkpInstance::new(vec![10, 6, 8], vec![4, 7, 2], 9)
        .unwrap()
        .with_name("fig7e");
    inst.set_pair_profit(0, 1, 3);
    inst.set_pair_profit(0, 2, 7);
    inst.set_pair_profit(1, 2, 2);
    inst
}

#[test]
fn full_pipeline_on_fig7e() {
    let inst = fig7e();
    let solver =
        HyCimSolver::new(&inst, &HyCimConfig::default().with_sweeps(100), 1).expect("mappable");
    let solution = solver.solve(3);
    assert!(solution.feasible);
    assert_eq!(solution.value(), 25);
}

#[test]
fn hardware_and_software_agree_on_small_instances() {
    // Hardware non-idealities must not change *which* solutions are
    // reachable on exhaustively checkable sizes.
    for seed in 0..5 {
        let inst = QkpGenerator::new(15, 0.5).generate(seed);
        let (_, opt) = solvers::exhaustive(&inst).expect("small instance");
        let config = HyCimConfig::default().with_sweeps(200);
        let hw = HyCimSolver::new(&inst, &config, seed).expect("mappable");
        let sw = SoftwareSolver::new(&inst, &config).expect("transformable");
        let hv = hw.solve(seed).value();
        let sv = sw.solve(seed).value();
        assert!(
            hv as f64 >= 0.9 * opt as f64,
            "hardware too weak at seed {seed}: {hv} vs optimum {opt}"
        );
        assert!(
            sv as f64 >= 0.9 * opt as f64,
            "software too weak at seed {seed}: {sv} vs optimum {opt}"
        );
    }
}

#[test]
fn hycim_beats_dqubo_on_benchmark_instances() {
    // The Fig. 10 headline at reduced scale: HyCiM's success rate must
    // clearly dominate the D-QUBO baseline on benchmark-style
    // instances.
    let mut hycim_successes = 0;
    let mut dqubo_successes = 0;
    let runs = 6;
    for seed in 0..runs {
        let inst = QkpGenerator::new(50, 0.5).generate(seed);
        let (_, best) = solvers::best_known(&inst, 10, seed);

        let hycim =
            HyCimSolver::new(&inst, &HyCimConfig::default().with_sweeps(300), seed).unwrap();
        if hycim.solve(seed).is_success(best) {
            hycim_successes += 1;
        }

        let dqubo = DquboSolver::new(&inst, &DquboConfig::default().with_sweeps(60)).unwrap();
        if dqubo.solve(seed).is_success(best) {
            dqubo_successes += 1;
        }
    }
    assert!(
        hycim_successes >= runs - 1,
        "HyCiM only {hycim_successes}/{runs}"
    );
    assert!(
        hycim_successes > dqubo_successes,
        "no separation: HyCiM {hycim_successes}, D-QUBO {dqubo_successes}"
    );
}

#[test]
fn parsed_instances_round_trip_through_the_solver() {
    // Generator → CNAM text → parser → solver.
    let inst = QkpGenerator::new(30, 0.75).generate(9);
    let text = parser::write_qkp(&inst);
    let parsed = parser::parse_qkp(&text).expect("own output parses");
    assert_eq!(parsed, inst);
    let solver =
        HyCimSolver::new(&parsed, &HyCimConfig::default().with_sweeps(100), 2).expect("mappable");
    let solution = solver.solve(4);
    assert!(solution.feasible);
    assert!(solution.value() > 0);
}

#[test]
fn dqubo_dimensions_match_paper_ranges() {
    // Fig. 9(a,b) invariants over the standard benchmark set shape.
    let inst = QkpGenerator::new(100, 0.5).generate(11);
    let iq = inst.to_inequality_qubo().unwrap();
    assert_eq!(iq.dim(), 100);
    assert!(iq.objective().max_abs_element() <= 100.0);

    let form = inst
        .to_dqubo(PenaltyWeights::PAPER, AuxEncoding::OneHot)
        .unwrap();
    let dim = form.dim();
    assert!((200..=2636).contains(&dim), "D-QUBO dim {dim}");
    let qmax = form.matrix().max_abs_element();
    assert!(
        (1.0e4..=3.0e7).contains(&qmax),
        "D-QUBO (Q)MAX {qmax:.3e} outside the paper's 4·10⁴..2.6·10⁷ band"
    );
}

#[test]
fn filter_and_constraint_agree_across_the_benchmark_set() {
    // The inequality filter must agree with exact integer arithmetic
    // on Monte-Carlo configurations away from the noise boundary.
    use hycim::cim::filter::{FilterConfig, InequalityFilter};
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(5);
    for seed in 0..3 {
        let inst = QkpGenerator::new(100, 0.25).generate(seed);
        let constraint = inst.constraint();
        let filter = InequalityFilter::build(
            inst.weights(),
            inst.capacity(),
            &FilterConfig::default(),
            &mut rng,
        )
        .expect("mappable");
        let mut checked = 0;
        while checked < 20 {
            let x = Assignment::random_with_density(100, 0.4, &mut rng);
            let load = constraint.load(&x);
            // Skip the ±2-unit noise band around the boundary; the
            // hardware is honestly uncertain there.
            if load.abs_diff(inst.capacity()) <= 2 {
                continue;
            }
            assert_eq!(
                filter.classify(&x, &mut rng).is_feasible(),
                constraint.is_satisfied(&x),
                "filter disagreed at load {load} vs C {}",
                inst.capacity()
            );
            checked += 1;
        }
    }
}

#[test]
fn solver_error_paths_are_reported() {
    // Weight above the filter column limit.
    let inst = QkpInstance::new(vec![1, 1], vec![90, 3], 50).unwrap();
    let err = HyCimSolver::new(&inst, &HyCimConfig::default(), 1).unwrap_err();
    assert!(err.to_string().contains("cim layer"));
}
