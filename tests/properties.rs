//! Cross-crate property-based tests: invariants that must hold from
//! the problem layer down through the hardware models.

use hycim::cim::filter::{ComparatorConfig, FilterConfig, InequalityFilter};
use hycim::cim::Fidelity;
use hycim::cop::QkpInstance;
use hycim::fefet::VariationModel;
use hycim::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_instance() -> impl Strategy<Value = QkpInstance> {
    (2usize..12, 1u64..6).prop_flat_map(|(n, _)| {
        (
            proptest::collection::vec(0u64..=100, n),
            proptest::collection::vec(1u64..=50, n),
            1u64..=200,
            proptest::collection::vec(0u64..=100, n * (n - 1) / 2),
        )
            .prop_map(move |(profits, weights, cap_raw, pairs)| {
                let max_w = *weights.iter().max().expect("n >= 2");
                // Keep the capacity encodable by the replica array
                // (64 units per column) while letting at least one
                // item fit.
                let capacity = cap_raw.max(max_w).min(64 * n as u64);
                let mut inst =
                    QkpInstance::new(profits, weights, capacity).expect("valid construction");
                let n = inst.num_items();
                let mut it = pairs.into_iter();
                for i in 0..n {
                    for j in (i + 1)..n {
                        inst.set_pair_profit(i, j, it.next().expect("sized"));
                    }
                }
                inst
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The inequality-QUBO energy of any feasible configuration equals
    /// the negated QKP value; infeasible configurations are gated to 0.
    #[test]
    fn energy_value_duality(inst in arb_instance(), seed in any::<u64>()) {
        let iq = inst.to_inequality_qubo().expect("valid");
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Assignment::random(inst.num_items(), &mut rng);
        if inst.is_feasible(&x) {
            prop_assert_eq!(iq.energy(&x), -(inst.value(&x) as f64));
        } else {
            prop_assert_eq!(iq.energy(&x), 0.0);
        }
    }

    /// An ideal (noise-free) filter agrees with exact integer
    /// arithmetic on every configuration, including the boundary.
    #[test]
    fn ideal_filter_is_exact(inst in arb_instance(), seed in any::<u64>()) {
        let config = FilterConfig::default()
            .with_variation(VariationModel::none())
            .with_comparator(ComparatorConfig::ideal())
            .with_fidelity(Fidelity::Fast);
        let mut rng = StdRng::seed_from_u64(seed);
        let filter = InequalityFilter::build(
            inst.weights(),
            inst.capacity(),
            &config,
            &mut rng,
        ).expect("weights within range");
        let x = Assignment::random(inst.num_items(), &mut rng);
        prop_assert_eq!(
            filter.classify(&x, &mut rng).is_feasible(),
            inst.is_feasible(&x)
        );
    }

    /// HyCiM solutions are always feasible and never exceed the
    /// exhaustive optimum.
    #[test]
    fn hycim_solutions_are_sound(inst in arb_instance(), seed in any::<u64>()) {
        let (_, opt) = hycim::cop::solvers::exhaustive(&inst).expect("small");
        let solver = HyCimSolver::new(
            &inst,
            &HyCimConfig::default().with_sweeps(30),
            seed,
        ).expect("mappable");
        let solution = solver.solve(seed);
        prop_assert!(solution.feasible);
        prop_assert!(inst.is_feasible(&solution.assignment));
        prop_assert!(solution.value() <= opt, "value {} above optimum {}", solution.value(), opt);
        prop_assert_eq!(solution.value(), inst.value(&solution.assignment));
    }

    /// D-QUBO decoding always returns an item vector of the right
    /// size, and reported values match re-evaluation.
    #[test]
    fn dqubo_solutions_decode_consistently(inst in arb_instance(), seed in any::<u64>()) {
        let solver = DquboSolver::new(
            &inst,
            &DquboConfig::default().with_sweeps(20),
        ).expect("transformable");
        let solution = solver.solve(seed);
        prop_assert_eq!(solution.assignment.len(), inst.num_items());
        if solution.feasible {
            prop_assert_eq!(solution.value(), inst.value(&solution.assignment));
        } else {
            prop_assert_eq!(solution.value(), 0);
        }
    }
}
