//! Traveling Salesman — the Table 1 \[31\] problem family (100-node
//! TSP on an RRAM in-memory annealing unit, 31% success). TSP's
//! permutation structure maps to QUBO with *equality* constraints
//! (one city per step, one step per city), here encoded as penalties;
//! the tour length is the objective.

use hycim_qubo::{Assignment, QuboMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::CopError;

/// A symmetric TSP instance on a distance matrix.
///
/// Variables: `x_{c,t}` = "city c visited at step t", index
/// `c·n + t`; tours are cyclic.
///
/// # Example
///
/// ```
/// use hycim_cop::tsp::Tsp;
///
/// # fn main() -> Result<(), hycim_cop::CopError> {
/// let tsp = Tsp::random_euclidean(6, 100.0, 1)?;
/// let tour: Vec<usize> = (0..6).collect();
/// assert!(tsp.tour_length(&tour)? > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tsp {
    n: usize,
    /// Row-major symmetric distance matrix.
    dist: Vec<f64>,
}

impl Tsp {
    /// Creates an instance from a full symmetric distance matrix
    /// (row-major, `n × n`).
    ///
    /// # Errors
    ///
    /// * [`CopError::EmptyInstance`] for fewer than 3 cities.
    /// * [`CopError::SizeMismatch`] if the matrix is not `n × n`.
    pub fn new(n: usize, dist: Vec<f64>) -> Result<Self, CopError> {
        if n < 3 {
            return Err(CopError::EmptyInstance);
        }
        if dist.len() != n * n {
            return Err(CopError::SizeMismatch {
                profits: dist.len(),
                weights: n * n,
            });
        }
        Ok(Self { n, dist })
    }

    /// Random points in a `side × side` square with Euclidean
    /// distances, seeded.
    ///
    /// # Errors
    ///
    /// Returns [`CopError::EmptyInstance`] for fewer than 3 cities.
    pub fn random_euclidean(n: usize, side: f64, seed: u64) -> Result<Self, CopError> {
        if n < 3 {
            return Err(CopError::EmptyInstance);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.random::<f64>() * side, rng.random::<f64>() * side))
            .collect();
        let mut dist = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let dx = pts[i].0 - pts[j].0;
                let dy = pts[i].1 - pts[j].1;
                dist[i * n + j] = (dx * dx + dy * dy).sqrt();
            }
        }
        Ok(Self { n, dist })
    }

    /// Number of cities.
    pub fn num_cities(&self) -> usize {
        self.n
    }

    /// Distance between two cities.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn distance(&self, a: usize, b: usize) -> f64 {
        assert!(a < self.n && b < self.n, "city index out of range");
        self.dist[a * self.n + b]
    }

    /// Number of QUBO variables: `n²`.
    pub fn dim(&self) -> usize {
        self.n * self.n
    }

    /// Largest pairwise distance (sets the equality-penalty scale of
    /// the QUBO encoding).
    pub fn max_distance(&self) -> f64 {
        self.dist.iter().fold(0.0f64, |a, &d| a.max(d))
    }

    /// Index of variable `x_{city,step}`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn var(&self, city: usize, step: usize) -> usize {
        assert!(city < self.n && step < self.n, "index out of range");
        city * self.n + step
    }

    /// Length of a cyclic tour given as a city permutation.
    ///
    /// # Errors
    ///
    /// Returns [`CopError::SizeMismatch`] if `tour` is not a
    /// permutation of all cities.
    pub fn tour_length(&self, tour: &[usize]) -> Result<f64, CopError> {
        if tour.len() != self.n {
            return Err(CopError::SizeMismatch {
                profits: tour.len(),
                weights: self.n,
            });
        }
        let mut seen = vec![false; self.n];
        for &c in tour {
            if c >= self.n || seen[c] {
                return Err(CopError::SizeMismatch {
                    profits: c,
                    weights: self.n,
                });
            }
            seen[c] = true;
        }
        Ok((0..self.n)
            .map(|t| self.distance(tour[t], tour[(t + 1) % self.n]))
            .sum())
    }

    /// QUBO encoding: distance objective + `penalty` × (one-city-per-
    /// step and one-step-per-city equality penalties).
    pub fn objective_matrix(&self, penalty: f64) -> QuboMatrix {
        let n = self.n;
        let mut q = QuboMatrix::zeros(self.dim());
        // Objective: Σ_t Σ_{a≠b} d(a,b) x_{a,t} x_{b,t+1}.
        for t in 0..n {
            let t_next = (t + 1) % n;
            for a in 0..n {
                for b in 0..n {
                    if a != b {
                        q.add(self.var(a, t), self.var(b, t_next), self.distance(a, b));
                    }
                }
            }
        }
        // Equality penalties: each city exactly once, each step exactly
        // one city. (1 − Σx)² expansions, constants dropped.
        for c in 0..n {
            for t in 0..n {
                let idx = self.var(c, t);
                q.add(idx, idx, -2.0 * penalty);
                for t2 in (t + 1)..n {
                    q.add(idx, self.var(c, t2), 2.0 * penalty);
                }
                for c2 in (c + 1)..n {
                    q.add(idx, self.var(c2, t), 2.0 * penalty);
                }
            }
        }
        q
    }

    /// Decodes an assignment to a tour if it encodes a valid
    /// permutation.
    pub fn decode(&self, x: &Assignment) -> Option<Vec<usize>> {
        let n = self.n;
        let mut tour = vec![usize::MAX; n];
        for (t, slot) in tour.iter_mut().enumerate() {
            let mut found = None;
            for c in 0..n {
                if x.get(self.var(c, t)) {
                    if found.is_some() {
                        return None;
                    }
                    found = Some(c);
                }
            }
            *slot = found?;
        }
        let mut seen = vec![false; n];
        for &c in &tour {
            if seen[c] {
                return None;
            }
            seen[c] = true;
        }
        Some(tour)
    }

    /// Encodes a tour into an assignment.
    ///
    /// # Panics
    ///
    /// Panics if `tour` is not a valid permutation.
    pub fn encode(&self, tour: &[usize]) -> Assignment {
        assert_eq!(tour.len(), self.n, "tour length mismatch");
        let mut x = Assignment::zeros(self.dim());
        for (t, &c) in tour.iter().enumerate() {
            x.set(self.var(c, t), true);
        }
        x
    }

    /// Nearest-neighbor heuristic tour from city 0.
    pub fn nearest_neighbor(&self) -> Vec<usize> {
        let mut tour = vec![0usize];
        let mut visited = vec![false; self.n];
        visited[0] = true;
        while tour.len() < self.n {
            let last = *tour.last().expect("nonempty");
            let next = (0..self.n)
                .filter(|&c| !visited[c])
                .min_by(|&a, &b| {
                    self.distance(last, a)
                        .partial_cmp(&self.distance(last, b))
                        .expect("finite distances")
                })
                .expect("unvisited city exists");
            visited[next] = true;
            tour.push(next);
        }
        tour
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(Tsp::new(2, vec![0.0; 4]).is_err());
        assert!(Tsp::new(3, vec![0.0; 8]).is_err());
        assert!(Tsp::random_euclidean(2, 1.0, 0).is_err());
    }

    #[test]
    fn tour_length_and_encoding_roundtrip() {
        let tsp = Tsp::random_euclidean(7, 10.0, 1).unwrap();
        let tour = tsp.nearest_neighbor();
        let len = tsp.tour_length(&tour).unwrap();
        assert!(len > 0.0);
        let x = tsp.encode(&tour);
        assert_eq!(tsp.decode(&x), Some(tour));
    }

    #[test]
    fn invalid_tours_rejected() {
        let tsp = Tsp::random_euclidean(5, 10.0, 2).unwrap();
        assert!(tsp.tour_length(&[0, 1, 2]).is_err());
        assert!(tsp.tour_length(&[0, 0, 1, 2, 3]).is_err());
        assert!(tsp.tour_length(&[0, 1, 2, 3, 9]).is_err());
    }

    #[test]
    fn qubo_energy_orders_tours_identically() {
        // With valid permutations, QUBO energy differences equal tour
        // length differences (penalty terms contribute equally).
        let tsp = Tsp::random_euclidean(6, 10.0, 3).unwrap();
        let q = tsp.objective_matrix(100.0);
        let t1 = tsp.nearest_neighbor();
        let t2: Vec<usize> = (0..6).collect();
        let e1 = q.energy(&tsp.encode(&t1));
        let e2 = q.energy(&tsp.encode(&t2));
        let l1 = tsp.tour_length(&t1).unwrap();
        let l2 = tsp.tour_length(&t2).unwrap();
        assert!(
            ((e1 - e2) - (l1 - l2)).abs() < 1e-9,
            "energy gap {} vs length gap {}",
            e1 - e2,
            l1 - l2
        );
    }

    #[test]
    fn penalty_guards_against_non_tours() {
        let tsp = Tsp::random_euclidean(4, 10.0, 4).unwrap();
        // Penalty above the max possible tour-length gain.
        let q = tsp.objective_matrix(1000.0);
        let valid = tsp.encode(&tsp.nearest_neighbor());
        let e_valid = q.energy(&valid);
        // Dropping one city's visit must cost more than any tour.
        let mut broken = valid.clone();
        let dropped = broken.support()[0];
        broken.set(dropped, false);
        assert!(q.energy(&broken) > e_valid);
    }

    #[test]
    fn decode_rejects_malformed() {
        let tsp = Tsp::random_euclidean(4, 10.0, 5).unwrap();
        assert!(tsp.decode(&Assignment::zeros(16)).is_none());
        assert!(tsp.decode(&Assignment::ones_vec(16)).is_none());
    }

    #[test]
    fn nearest_neighbor_beats_random_on_average() {
        let tsp = Tsp::random_euclidean(20, 100.0, 6).unwrap();
        let nn = tsp.tour_length(&tsp.nearest_neighbor()).unwrap();
        let identity: Vec<usize> = (0..20).collect();
        let id_len = tsp.tour_length(&identity).unwrap();
        assert!(nn <= id_len, "NN {nn} worse than identity {id_len}");
    }
}
