//! Sherrington–Kirkpatrick spin glasses — the Table 1 \[30\] problem
//! family (15-node spin glass annealed on an RRAM crossbar) and the
//! classic "no self-interaction" benchmark the paper contrasts
//! dynamical-system Ising machines against (Sec 2.1).

use hycim_qubo::IsingModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::CopError;

/// A Sherrington–Kirkpatrick instance: all-to-all couplings
/// `J_ij ∈ {−1, +1}` (or Gaussian), zero fields.
///
/// # Example
///
/// ```
/// use hycim_cop::spinglass::SpinGlass;
///
/// # fn main() -> Result<(), hycim_cop::CopError> {
/// let sg = SpinGlass::random_binary(15, 3)?;
/// let ising = sg.to_ising();
/// assert_eq!(ising.dim(), 15);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SpinGlass {
    n: usize,
    /// Couplings for i < j, row-major.
    couplings: Vec<f64>,
}

impl SpinGlass {
    /// Random ±1 couplings (the canonical SK ensemble), seeded.
    ///
    /// # Errors
    ///
    /// Returns [`CopError::EmptyInstance`] for fewer than 2 spins.
    pub fn random_binary(n: usize, seed: u64) -> Result<Self, CopError> {
        if n < 2 {
            return Err(CopError::EmptyInstance);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let couplings = (0..n * (n - 1) / 2)
            .map(|_| if rng.random_bool(0.5) { 1.0 } else { -1.0 })
            .collect();
        Ok(Self { n, couplings })
    }

    /// Random Gaussian couplings with variance `1/n` (the normalized
    /// SK model), seeded.
    ///
    /// # Errors
    ///
    /// Returns [`CopError::EmptyInstance`] for fewer than 2 spins.
    pub fn random_gaussian(n: usize, seed: u64) -> Result<Self, CopError> {
        if n < 2 {
            return Err(CopError::EmptyInstance);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let sigma = 1.0 / (n as f64).sqrt();
        let couplings = (0..n * (n - 1) / 2)
            .map(|_| {
                // Box–Muller.
                let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
                let u2: f64 = rng.random();
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos() * sigma
            })
            .collect();
        Ok(Self { n, couplings })
    }

    /// Builds an instance from an explicit coupling table (`J_ij` for
    /// `i < j`, row-major — the layout [`coupling`](Self::coupling)
    /// reads). This is the deserialization entry point: the wire layer
    /// ships instances as explicit couplings so a worker reconstructs
    /// exactly the instance the coordinator generated, without
    /// replaying any RNG.
    ///
    /// # Errors
    ///
    /// Returns [`CopError::EmptyInstance`] for fewer than 2 spins and
    /// [`CopError::CouplingCountMismatch`] unless exactly `n·(n−1)/2`
    /// couplings are supplied.
    pub fn from_couplings(n: usize, couplings: Vec<f64>) -> Result<Self, CopError> {
        if n < 2 {
            return Err(CopError::EmptyInstance);
        }
        let expected = n * (n - 1) / 2;
        if couplings.len() != expected {
            return Err(CopError::CouplingCountMismatch {
                expected,
                got: couplings.len(),
            });
        }
        Ok(Self { n, couplings })
    }

    /// The raw coupling table: `J_ij` for `i < j`, row-major. The
    /// inverse of [`from_couplings`](Self::from_couplings).
    pub fn couplings(&self) -> &[f64] {
        &self.couplings
    }

    /// Number of spins.
    pub fn num_spins(&self) -> usize {
        self.n
    }

    /// Coupling `J_ij` (order-insensitive, zero on the diagonal).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn coupling(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "spin index out of bounds");
        if i == j {
            return 0.0;
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        self.couplings[a * self.n - a * (a + 1) / 2 + (b - a - 1)]
    }

    /// Ising Hamiltonian `H = Σ_{i<j} J_ij σᵢσⱼ` (no fields — the
    /// "no self-interaction" structure dynamical-system machines need).
    pub fn to_ising(&self) -> IsingModel {
        let mut ising = IsingModel::zeros(self.n);
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                let jij = self.coupling(i, j);
                if jij != 0.0 {
                    ising.set_coupling(i, j, jij);
                }
            }
        }
        ising
    }

    /// Exhaustive ground-state energy for small systems.
    ///
    /// # Errors
    ///
    /// Returns [`CopError::TooLarge`] above 22 spins.
    pub fn ground_state(&self) -> Result<(Vec<i8>, f64), CopError> {
        const LIMIT: usize = 22;
        if self.n > LIMIT {
            return Err(CopError::TooLarge {
                items: self.n,
                limit: LIMIT,
            });
        }
        let ising = self.to_ising();
        let mut best_spins = vec![1i8; self.n];
        let mut best_e = ising.energy(&best_spins);
        // Spin-flip symmetry: fix spin 0 = +1.
        for bits in 0u64..(1 << (self.n - 1)) {
            let spins: Vec<i8> = std::iter::once(1i8)
                .chain((0..self.n - 1).map(|i| if bits >> i & 1 == 1 { -1 } else { 1 }))
                .collect();
            let e = ising.energy(&spins);
            if e < best_e {
                best_e = e;
                best_spins = spins;
            }
        }
        Ok((best_spins, best_e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hycim_qubo::Assignment;

    #[test]
    fn construction_and_symmetry() {
        let sg = SpinGlass::random_binary(10, 1).unwrap();
        assert_eq!(sg.num_spins(), 10);
        for i in 0..10 {
            for j in 0..10 {
                assert_eq!(sg.coupling(i, j), sg.coupling(j, i));
            }
        }
        assert_eq!(sg.coupling(3, 3), 0.0);
    }

    #[test]
    fn binary_couplings_are_pm_one() {
        let sg = SpinGlass::random_binary(12, 2).unwrap();
        for i in 0..12 {
            for j in (i + 1)..12 {
                assert!(sg.coupling(i, j).abs() == 1.0);
            }
        }
    }

    #[test]
    fn ground_state_respects_symmetry() {
        let sg = SpinGlass::random_binary(10, 3).unwrap();
        let ising = sg.to_ising();
        let (spins, e) = sg.ground_state().unwrap();
        assert_eq!(ising.energy(&spins), e);
        // The flipped configuration has the same energy (Z₂ symmetry).
        let flipped: Vec<i8> = spins.iter().map(|s| -s).collect();
        assert!((ising.energy(&flipped) - e).abs() < 1e-9);
    }

    #[test]
    fn sa_reaches_ground_state_through_qubo_form() {
        // Table 1 [30] scale: 15 spins.
        let sg = SpinGlass::random_binary(15, 4).unwrap();
        let (_, ground) = sg.ground_state().unwrap();
        let ising = sg.to_ising();
        let (q, offset) = ising.to_qubo().unwrap();
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let mut best = f64::INFINITY;
        for _restart in 0..4 {
            let mut x = Assignment::random(15, &mut rng);
            let mut e = q.energy(&x);
            for iter in 0..30_000 {
                let t = 2.0 * (1.0 - iter as f64 / 30_000.0) + 0.01;
                let i = rng.random_range(0..15);
                let d = q.flip_delta(&x, i);
                if d <= 0.0 || rng.random::<f64>() < (-d / t).exp() {
                    x.flip(i);
                    e += d;
                    best = best.min(e + offset);
                }
            }
        }
        assert!(
            (best - ground).abs() < 1e-9,
            "SA best {best} vs ground {ground}"
        );
    }

    #[test]
    fn gaussian_variance_scales() {
        let sg = SpinGlass::random_gaussian(100, 6).unwrap();
        let vals: Vec<f64> = (0..100)
            .flat_map(|i| ((i + 1)..100).map(move |j| (i, j)))
            .map(|(i, j)| sg.coupling(i, j))
            .collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
        // Variance ≈ 1/n = 0.01.
        assert!((var - 0.01).abs() < 0.003, "variance {var}");
    }

    #[test]
    fn too_small_rejected() {
        assert!(SpinGlass::random_binary(1, 0).is_err());
    }

    #[test]
    fn from_couplings_round_trips() {
        let sg = SpinGlass::random_gaussian(9, 11).unwrap();
        let rebuilt = SpinGlass::from_couplings(9, sg.couplings().to_vec()).unwrap();
        assert_eq!(rebuilt, sg);
        assert!(matches!(
            SpinGlass::from_couplings(4, vec![0.0; 5]),
            Err(CopError::CouplingCountMismatch {
                expected: 6,
                got: 5
            })
        ));
        assert!(SpinGlass::from_couplings(1, vec![]).is_err());
    }
}
