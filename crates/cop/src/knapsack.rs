//! The linear 0/1 knapsack special case (pair profits all zero) with
//! an exact dynamic-programming solver.
//!
//! Used in tests as ground truth, and as the simplest member of the
//! paper's "COPs with inequality constraints" family (Sec 1).

use hycim_qubo::Assignment;

use crate::{CopError, QkpInstance};

/// A linear 0/1 knapsack instance: profits, weights, capacity.
///
/// # Example
///
/// ```
/// use hycim_cop::knapsack::Knapsack;
///
/// # fn main() -> Result<(), hycim_cop::CopError> {
/// let ks = Knapsack::new(vec![60, 100, 120], vec![10, 20, 30], 50)?;
/// let (x, value) = ks.solve_exact();
/// assert_eq!(value, 220);
/// assert!(ks.is_feasible(&x));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Knapsack {
    profits: Vec<u64>,
    weights: Vec<u64>,
    capacity: u64,
}

impl Knapsack {
    /// Creates a knapsack instance.
    ///
    /// # Errors
    ///
    /// Same validation as [`QkpInstance::new`].
    pub fn new(profits: Vec<u64>, weights: Vec<u64>, capacity: u64) -> Result<Self, CopError> {
        // Reuse the QKP validation rules.
        QkpInstance::new(profits.clone(), weights.clone(), capacity)?;
        Ok(Self {
            profits,
            weights,
            capacity,
        })
    }

    /// Number of items.
    pub fn num_items(&self) -> usize {
        self.profits.len()
    }

    /// Capacity `C`.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Item profits.
    pub fn profits(&self) -> &[u64] {
        &self.profits
    }

    /// Item weights.
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }

    /// Profit of a selection.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.num_items()`.
    pub fn value(&self, x: &Assignment) -> u64 {
        assert_eq!(x.len(), self.num_items(), "assignment length mismatch");
        self.profits
            .iter()
            .zip(x.iter())
            .filter(|(_, b)| *b)
            .map(|(p, _)| *p)
            .sum()
    }

    /// Whether the selection fits the capacity.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.num_items()`.
    pub fn is_feasible(&self, x: &Assignment) -> bool {
        let load: u64 = self
            .weights
            .iter()
            .zip(x.iter())
            .filter(|(_, b)| *b)
            .map(|(w, _)| *w)
            .sum();
        load <= self.capacity
    }

    /// Exact optimum via O(n·C) dynamic programming with solution
    /// reconstruction.
    // Item index `i` couples `take`, `weights`, and `profits`; the
    // indexed form is the DP recurrence as written.
    #[allow(clippy::needless_range_loop)]
    pub fn solve_exact(&self) -> (Assignment, u64) {
        let n = self.num_items();
        let cap = self.capacity as usize;
        // best[c] = max profit with capacity c; keep per-item take
        // decisions for reconstruction.
        let mut best = vec![0u64; cap + 1];
        let mut take = vec![vec![false; cap + 1]; n];
        for i in 0..n {
            let w = self.weights[i] as usize;
            let p = self.profits[i];
            if w > cap {
                continue;
            }
            for c in (w..=cap).rev() {
                let candidate = best[c - w] + p;
                if candidate > best[c] {
                    best[c] = candidate;
                    take[i][c] = true;
                }
            }
        }
        // Reconstruct: walk items in reverse.
        let mut x = Assignment::zeros(n);
        let mut c = cap;
        for i in (0..n).rev() {
            if take[i][c] {
                x.set(i, true);
                c -= self.weights[i] as usize;
            }
        }
        (x, best[cap])
    }

    /// Lifts into a [`QkpInstance`] with zero pair profits (so the full
    /// HyCiM pipeline can solve linear knapsacks too).
    pub fn to_qkp(&self) -> QkpInstance {
        QkpInstance::new(self.profits.clone(), self.weights.clone(), self.capacity)
            .expect("knapsack invariants match QKP invariants")
            .with_name("linear-knapsack")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_example() {
        let ks = Knapsack::new(vec![60, 100, 120], vec![10, 20, 30], 50).unwrap();
        let (x, v) = ks.solve_exact();
        assert_eq!(v, 220);
        assert_eq!(x, Assignment::from_bits([false, true, true]));
        assert_eq!(ks.value(&x), 220);
    }

    #[test]
    fn dp_matches_exhaustive_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let n = rng.random_range(1..=12);
            let profits: Vec<u64> = (0..n).map(|_| rng.random_range(1..=30)).collect();
            let weights: Vec<u64> = (0..n).map(|_| rng.random_range(1..=15)).collect();
            let cap = rng.random_range(1..=40);
            let ks = Knapsack::new(profits, weights, cap).unwrap();
            let (_, dp) = ks.solve_exact();
            let mut best = 0;
            for bits in 0u64..(1 << n) {
                let x = Assignment::from_bits((0..n).map(|i| bits >> i & 1 == 1));
                if ks.is_feasible(&x) {
                    best = best.max(ks.value(&x));
                }
            }
            assert_eq!(dp, best);
        }
    }

    #[test]
    fn nothing_fits() {
        let ks = Knapsack::new(vec![5, 5], vec![10, 10], 5).unwrap();
        let (x, v) = ks.solve_exact();
        assert_eq!(v, 0);
        assert_eq!(x.ones(), 0);
    }

    #[test]
    fn qkp_lift_preserves_values() {
        let ks = Knapsack::new(vec![3, 4, 5], vec![2, 3, 4], 6).unwrap();
        let qkp = ks.to_qkp();
        let x = Assignment::from_bits([true, false, true]);
        assert_eq!(ks.value(&x), qkp.value(&x));
        assert_eq!(ks.is_feasible(&x), qkp.is_feasible(&x));
    }
}
