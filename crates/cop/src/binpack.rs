//! Bin packing — the paper's other motivating COP with inequality
//! constraints (Sec 1, Sec 2.1) — formulated for the HyCiM pipeline.
//!
//! The decision variant with `b` bins uses variables `x_{i,k}` ("item
//! `i` goes to bin `k`"). The objective penalizes items assigned to
//! more or fewer than one bin (an *equality* penalty, which QUBO
//! handles natively), while each bin's capacity is an *inequality*
//! `Σᵢ sᵢ·x_{i,k} ≤ C` — one filterable constraint per bin. This is
//! the natural multi-constraint generalization of the paper's single
//! inequality filter, handled by a bank of filters.

use hycim_qubo::{Assignment, LinearConstraint, QuboMatrix};

use crate::CopError;

/// A bin packing instance: item sizes, uniform bin capacity, and a
/// fixed number of available bins.
///
/// # Example
///
/// ```
/// use hycim_cop::binpack::BinPacking;
/// use hycim_qubo::Assignment;
///
/// # fn main() -> Result<(), hycim_cop::CopError> {
/// let bp = BinPacking::new(vec![4, 5, 3], 9, 2)?;
/// // item0+item2 in bin0 (7 ≤ 9), item1 in bin1 (5 ≤ 9).
/// let x = Assignment::parse_bit_string("101001").unwrap();
/// assert!(bp.is_valid_packing(&x));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinPacking {
    sizes: Vec<u64>,
    capacity: u64,
    bins: usize,
}

impl BinPacking {
    /// Creates a bin packing instance.
    ///
    /// # Errors
    ///
    /// * [`CopError::EmptyInstance`] for zero items or zero bins.
    /// * [`CopError::ZeroCapacity`] for zero capacity.
    /// * [`CopError::ZeroWeight`] for a zero-size item.
    pub fn new(sizes: Vec<u64>, capacity: u64, bins: usize) -> Result<Self, CopError> {
        if sizes.is_empty() || bins == 0 {
            return Err(CopError::EmptyInstance);
        }
        if capacity == 0 {
            return Err(CopError::ZeroCapacity);
        }
        if let Some(item) = sizes.iter().position(|&s| s == 0) {
            return Err(CopError::ZeroWeight { item });
        }
        Ok(Self {
            sizes,
            capacity,
            bins,
        })
    }

    /// Number of items.
    pub fn num_items(&self) -> usize {
        self.sizes.len()
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bins
    }

    /// Bin capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Item sizes.
    pub fn sizes(&self) -> &[u64] {
        &self.sizes
    }

    /// Number of QUBO variables: `items × bins`, with variable
    /// `i·bins + k` meaning "item `i` in bin `k`".
    pub fn dim(&self) -> usize {
        self.num_items() * self.bins
    }

    /// Index of variable `x_{i,k}`.
    ///
    /// # Panics
    ///
    /// Panics if `item` or `bin` is out of range.
    pub fn var(&self, item: usize, bin: usize) -> usize {
        assert!(item < self.num_items(), "item out of range");
        assert!(bin < self.bins, "bin out of range");
        item * self.bins + bin
    }

    /// The assignment-validity objective: a QUBO whose minimum (zero)
    /// is attained exactly when every item sits in exactly one bin.
    /// Expands `penalty · Σᵢ (1 − Σₖ x_{i,k})²`.
    pub fn assignment_objective(&self, penalty: f64) -> QuboMatrix {
        let mut q = QuboMatrix::zeros(self.dim());
        for i in 0..self.num_items() {
            for k in 0..self.bins {
                let v = self.var(i, k);
                // (1 − Σx)² = 1 − Σx + 2Σ_{k<l} x_k x_l  (over this item's bins)
                q.add(v, v, -penalty);
                for l in (k + 1)..self.bins {
                    q.add(v, self.var(i, l), 2.0 * penalty);
                }
            }
        }
        q
    }

    /// One capacity inequality per bin: `Σᵢ sᵢ·x_{i,k} ≤ C` over the
    /// full variable vector (weights are zero for other bins'
    /// variables — the filter bank evaluates each independently).
    pub fn bin_constraints(&self) -> Vec<LinearConstraint> {
        (0..self.bins)
            .map(|k| {
                let mut w = vec![0u64; self.dim()];
                for i in 0..self.num_items() {
                    w[self.var(i, k)] = self.sizes[i];
                }
                LinearConstraint::new(w, self.capacity)
                    .expect("instance invariants guarantee a valid constraint")
            })
            .collect()
    }

    /// Load of bin `k` under an assignment.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()` or `bin` is out of range.
    pub fn bin_load(&self, x: &Assignment, bin: usize) -> u64 {
        assert_eq!(x.len(), self.dim(), "assignment length mismatch");
        (0..self.num_items())
            .filter(|&i| x.get(self.var(i, bin)))
            .map(|i| self.sizes[i])
            .sum()
    }

    /// Whether `x` is a valid packing: every item in exactly one bin
    /// and every bin within capacity.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn is_valid_packing(&self, x: &Assignment) -> bool {
        assert_eq!(x.len(), self.dim(), "assignment length mismatch");
        for i in 0..self.num_items() {
            let count = (0..self.bins).filter(|&k| x.get(self.var(i, k))).count();
            if count != 1 {
                return false;
            }
        }
        (0..self.bins).all(|k| self.bin_load(x, k) <= self.capacity)
    }

    /// First-fit-decreasing heuristic; returns a packing if one is
    /// found within the available bins.
    pub fn first_fit_decreasing(&self) -> Option<Assignment> {
        let mut order: Vec<usize> = (0..self.num_items()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.sizes[i]));
        let mut loads = vec![0u64; self.bins];
        let mut x = Assignment::zeros(self.dim());
        for i in order {
            let bin = (0..self.bins).find(|&k| loads[k] + self.sizes[i] <= self.capacity)?;
            loads[bin] += self.sizes[i];
            x.set(self.var(i, bin), true);
        }
        Some(x)
    }

    /// Lower bound on the number of bins needed: `⌈Σsᵢ / C⌉`.
    pub fn bin_lower_bound(&self) -> usize {
        let total: u64 = self.sizes.iter().sum();
        (total.div_ceil(self.capacity)) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(matches!(
            BinPacking::new(vec![], 5, 2),
            Err(CopError::EmptyInstance)
        ));
        assert!(matches!(
            BinPacking::new(vec![1], 5, 0),
            Err(CopError::EmptyInstance)
        ));
        assert!(matches!(
            BinPacking::new(vec![1], 0, 1),
            Err(CopError::ZeroCapacity)
        ));
        assert!(matches!(
            BinPacking::new(vec![1, 0], 5, 1),
            Err(CopError::ZeroWeight { item: 1 })
        ));
    }

    #[test]
    fn valid_packing_detection() {
        let bp = BinPacking::new(vec![4, 5, 3], 9, 2).unwrap();
        let good = Assignment::parse_bit_string("101001").unwrap();
        assert!(bp.is_valid_packing(&good));
        // Item 0 in both bins.
        let double = Assignment::parse_bit_string("111001").unwrap();
        assert!(!bp.is_valid_packing(&double));
        // All three in bin 0: load 12 > 9.
        let overload = Assignment::parse_bit_string("101010").unwrap();
        assert!(!bp.is_valid_packing(&overload));
    }

    #[test]
    fn assignment_objective_minimized_by_valid_packing() {
        let bp = BinPacking::new(vec![4, 5, 3], 9, 2).unwrap();
        let q = bp.assignment_objective(10.0);
        let good = Assignment::parse_bit_string("101001").unwrap();
        // Penalty expansion drops the constant Σᵢ penalty = 3·10.
        assert_eq!(q.energy(&good), -30.0);
        let missing = Assignment::parse_bit_string("100001").unwrap();
        assert!(q.energy(&missing) > q.energy(&good));
    }

    #[test]
    fn bin_constraints_check_loads() {
        let bp = BinPacking::new(vec![4, 5, 3], 9, 2).unwrap();
        let cons = bp.bin_constraints();
        assert_eq!(cons.len(), 2);
        let overload = Assignment::parse_bit_string("101010").unwrap();
        assert!(!cons[0].is_satisfied(&overload));
        assert!(cons[1].is_satisfied(&overload));
        assert_eq!(cons[0].load(&overload), bp.bin_load(&overload, 0));
    }

    #[test]
    fn ffd_finds_known_packing() {
        let bp = BinPacking::new(vec![4, 5, 3, 6], 9, 2).unwrap();
        let x = bp.first_fit_decreasing().expect("packable");
        assert!(bp.is_valid_packing(&x));
    }

    #[test]
    fn ffd_fails_when_impossible() {
        let bp = BinPacking::new(vec![9, 9, 9], 9, 2).unwrap();
        assert!(bp.first_fit_decreasing().is_none());
        assert_eq!(bp.bin_lower_bound(), 3);
    }
}
