//! The problem-side contract of the solving service: any COP that can
//! encode itself into the paper's inequality-QUBO form (Sec 3.2) and
//! decode hardware configurations back into domain solutions.
//!
//! The paper frames HyCiM as a *general* framework: "COPs without
//! constraints or with equality constraints can be considered as
//! special cases" of the inequality filter. [`CopProblem`] makes that
//! framing executable — every problem type in this crate implements
//! it, so max-cut, TSP, coloring, bin packing, knapsack, QKP and spin
//! glasses all run end-to-end through the same engines in
//! `hycim-core` (both the filter+crossbar pipeline and the D-QUBO
//! penalty baseline).
//!
//! Conventions:
//!
//! * **Minimization.** [`objective`](CopProblem::objective) is a score
//!   where lower is better, comparable across runs of the same
//!   instance. Maximization problems (QKP, max-cut) report the negated
//!   value; pure feasibility problems (coloring, bin packing) report a
//!   violation count whose zero means "solved".
//! * **Structural decode.** [`decode`](CopProblem::decode) returns the
//!   domain solution when the bit vector has the problem's *shape*
//!   (e.g. a permutation for TSP); [`is_feasible`](CopProblem::is_feasible)
//!   may be stricter (e.g. a proper coloring, a packing within
//!   capacity).
//! * **Feasible starts.** [`initial`](CopProblem::initial) draws a
//!   configuration that satisfies the encoded inequality constraint,
//!   matching the paper's Monte-Carlo-sampled feasible initial states
//!   (Sec 4.3).
//!
//! # Example
//!
//! ```
//! use hycim_cop::maxcut::MaxCut;
//! use hycim_cop::CopProblem;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), hycim_cop::CopError> {
//! let g = MaxCut::random(8, 0.5, 1);
//! let iq = CopProblem::to_inequality_qubo(&g)?;
//! assert_eq!(iq.dim(), g.dim());
//! let mut rng = StdRng::seed_from_u64(2);
//! let x = g.initial(&mut rng);
//! let cut = g.decode(&x).expect("any partition decodes");
//! assert_eq!(g.objective(&x), -(g.cut_value(&cut) as f64));
//! # Ok(())
//! # }
//! ```

use std::fmt;

use hycim_qubo::dqubo::{AuxEncoding, DquboForm, PenaltyWeights};
use hycim_qubo::{Assignment, InequalityQubo, LinearConstraint, MultiInequalityQubo, QuboMatrix};
use rand::rngs::StdRng;
use rand::Rng;

use crate::binpack::BinPacking;
use crate::coloring::GraphColoring;
use crate::knapsack::Knapsack;
use crate::maxcut::MaxCut;
use crate::mkp::MultiKnapsack;
use crate::spinglass::SpinGlass;
use crate::tsp::Tsp;
use crate::{solvers, CopError, QkpInstance};

/// A combinatorial optimization problem that can run on the HyCiM
/// engines: encodes into the inequality-QUBO form, decodes hardware
/// configurations back into typed domain solutions, and scores them.
///
/// # Example
///
/// The encode → decode round trip on a tiny max-cut (the solve step
/// in between is the engine layer's job — see `Engine` in
/// `hycim-core`, whose `solve` produces exactly such bit vectors):
///
/// ```
/// use hycim_cop::maxcut::MaxCut;
/// use hycim_cop::CopProblem;
/// use hycim_qubo::Assignment;
///
/// let graph = MaxCut::random(6, 0.5, 1);
///
/// // A domain solution (a partition) encodes to a bit vector…
/// let partition = Assignment::from_bits([true, false, true, false, true, false]);
/// let x = graph.encode(&partition);
///
/// // …which decodes back to the same partition, scored by the
/// // negated cut value (minimization convention).
/// assert_eq!(graph.decode(&x), Some(partition.clone()));
/// assert_eq!(graph.objective(&x), -(graph.cut_value(&partition) as f64));
///
/// // The QUBO encoding agrees on dimension with the problem.
/// let iq = graph.to_inequality_qubo().expect("max-cut always encodes");
/// assert_eq!(iq.dim(), CopProblem::dim(&graph));
/// ```
pub trait CopProblem: Clone + Send + Sync + fmt::Debug {
    /// The typed domain solution this problem decodes into (a
    /// selection, a tour, a coloring, …).
    type Decoded: Clone + Send + Sync + fmt::Debug + PartialEq;

    /// Short stable kind tag (`"qkp"`, `"max-cut"`, …) for reports.
    fn kind(&self) -> &'static str;

    /// Human-readable instance name.
    fn name(&self) -> String;

    /// Number of binary variables of the QUBO encoding.
    fn dim(&self) -> usize;

    /// Encodes the problem into the paper's inequality-QUBO form
    /// `min (Σwᵢxᵢ ≤ C)·xᵀQx`. Unconstrained and equality-constrained
    /// problems use a trivially satisfied constraint (the paper's
    /// "special cases").
    ///
    /// # Errors
    ///
    /// Returns [`CopError`] when the instance cannot be encoded.
    fn to_inequality_qubo(&self) -> Result<InequalityQubo, CopError>;

    /// Encodes the problem into the multi-constraint form
    /// `min ∏ₖ(Σw⁽ᵏ⁾ᵢxᵢ ≤ C⁽ᵏ⁾)·xᵀQx` driven by a hardware filter
    /// *bank* (one filter per constraint). The default wraps the
    /// single-constraint encoding as a 1-element bank; problems with
    /// genuinely multiple inequalities (bin packing, the
    /// multi-dimensional knapsack) override it with their exact
    /// per-constraint form — on this path no aggregate relaxation is
    /// needed.
    ///
    /// # Errors
    ///
    /// Returns [`CopError`] when the instance cannot be encoded.
    fn to_multi_inequality_qubo(&self) -> Result<MultiInequalityQubo, CopError> {
        Ok(MultiInequalityQubo::from(self.to_inequality_qubo()?))
    }

    /// Encodes a domain solution into a configuration.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `decoded` does not fit the
    /// instance (wrong length, out-of-range labels).
    fn encode(&self, decoded: &Self::Decoded) -> Assignment;

    /// Decodes a configuration into a domain solution when it has the
    /// problem's structural shape; `None` otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    fn decode(&self, x: &Assignment) -> Option<Self::Decoded>;

    /// Minimization score of a configuration (lower is better;
    /// maximization problems negate). May be `f64::INFINITY` when `x`
    /// does not decode.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    fn objective(&self, x: &Assignment) -> f64;

    /// Full domain feasibility (may be stricter than the structural
    /// [`decode`](Self::decode) and than the encoded inequality).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    fn is_feasible(&self, x: &Assignment) -> bool {
        self.decode(x).is_some()
    }

    /// A random configuration satisfying the *encoded inequality
    /// constraints* (the filter's admission criterion — all of them,
    /// so the same start works for the single-filter pipeline and the
    /// filter-bank pipeline), used as the SA starting point.
    fn initial(&self, rng: &mut StdRng) -> Assignment;

    /// Reference objective from an exact or heuristic solver, when one
    /// is affordable for this instance (used by the success-rate
    /// criterion; `None` falls back to the best value seen in a
    /// batch).
    fn reference_objective(&self, _seed: u64) -> Option<f64> {
        None
    }

    /// Encodes the problem into the baseline D-QUBO penalty form over
    /// `n + n_aux` variables (paper Fig. 1(b)), derived from the same
    /// inequality-QUBO encoding.
    ///
    /// # Errors
    ///
    /// Returns [`CopError`] when either encoding fails.
    fn to_dqubo(
        &self,
        weights: PenaltyWeights,
        encoding: AuxEncoding,
    ) -> Result<DquboForm, CopError> {
        let iq = self.to_inequality_qubo()?;
        DquboForm::transform(iq.objective(), iq.constraint(), weights, encoding)
            .map_err(CopError::from)
    }
}

/// A trivially satisfied inequality (unit weights, capacity = n): the
/// encoding for unconstrained and equality-penalty problems.
fn trivial_constraint(dim: usize) -> Result<LinearConstraint, CopError> {
    LinearConstraint::new(vec![1; dim], dim as u64).map_err(CopError::from)
}

// ---------------------------------------------------------------------
// Penalty-weight derivations for the equality-penalty encodings
// ---------------------------------------------------------------------
//
// TSP and coloring enter the inequality-QUBO form through quadratic
// penalties (the paper's "equality constraints as special cases").
// The weights below are *instance-derived constants*; the ROADMAP's
// adaptive-penalty item will replace them with probed-delta
// calibration (like `calibrate_t0`), which is why each derivation is
// written out here as a named, documented function rather than a
// magic number at the use site.

/// Penalty weight of the TSP equality-constraint expansion, derived
/// from the instance's distance matrix.
///
/// Derivation: the TSP QUBO has one-city-per-step and
/// one-step-per-city one-hot expansions. Removing a visit from a
/// valid tour saves at most `2 · d_max` of tour length (the two
/// incident legs), while it violates one row *and* one column
/// constraint — a `2 × penalty` energy increase. Any
/// `penalty > d_max` therefore keeps valid tours optimal;
/// `2 · d_max` doubles that margin so crossbar quantization and
/// device noise cannot erode it.
pub fn tsp_penalty_weight(tsp: &Tsp) -> f64 {
    2.0 * tsp.max_distance()
}

/// Penalty weight of the graph-coloring QUBO.
///
/// Derivation: coloring is a pure feasibility problem — the QUBO has
/// *no* competing objective term, so any positive weight encodes the
/// one-color-per-vertex and no-monochromatic-edge constraints
/// exactly, and the weight only sets the energy gap between proper
/// and improper colorings. The fixed 4.0 keeps single-violation
/// deltas comfortably above crossbar readout noise while staying
/// small enough that quantizing the matrix to the crossbar's bit
/// width loses no structure. Unlike [`tsp_penalty_weight`] no
/// instance quantity enters the bound, but the helper takes the
/// instance so adaptive calibration can slot in without an API
/// change.
pub fn coloring_penalty_weight(_gc: &GraphColoring) -> f64 {
    4.0
}

/// Penalty weight of the exact-one-bin assignment expansion on the
/// filter-bank encoding of bin packing.
///
/// Derivation: on the bank path every bin capacity is enforced by its
/// own filter, so — like coloring — the QUBO is a pure feasibility
/// objective with no competing profit term; any positive weight
/// encodes "each item in exactly one bin" exactly, and the weight
/// only sets the energy gap per missing/duplicated assignment. The
/// fixed 4.0 keeps single-violation deltas above crossbar readout
/// noise while keeping the quantized matrix range small (the whole
/// point of the filter architecture). The helper takes the instance
/// so adaptive calibration can slot in without an API change.
pub fn bin_packing_assignment_penalty(_bp: &BinPacking) -> f64 {
    4.0
}

/// Seeded Fisher-Yates permutation of `0..n`.
fn random_permutation(n: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        p.swap(i, j);
    }
    p
}

// ---------------------------------------------------------------------
// Quadratic knapsack (the paper's running example)
// ---------------------------------------------------------------------

impl CopProblem for QkpInstance {
    type Decoded = Assignment;

    fn kind(&self) -> &'static str {
        "qkp"
    }

    fn name(&self) -> String {
        if QkpInstance::name(self).is_empty() {
            format!("qkp-n{}", self.num_items())
        } else {
            QkpInstance::name(self).to_string()
        }
    }

    fn dim(&self) -> usize {
        self.num_items()
    }

    fn to_inequality_qubo(&self) -> Result<InequalityQubo, CopError> {
        QkpInstance::to_inequality_qubo(self).map_err(CopError::from)
    }

    fn encode(&self, decoded: &Assignment) -> Assignment {
        assert_eq!(decoded.len(), self.num_items(), "selection length mismatch");
        decoded.clone()
    }

    fn decode(&self, x: &Assignment) -> Option<Assignment> {
        assert_eq!(x.len(), self.num_items(), "assignment length mismatch");
        Some(x.clone())
    }

    fn objective(&self, x: &Assignment) -> f64 {
        // The gated-energy convention of the paper's Eq. 6: infeasible
        // configurations score 0, worse than any profitable selection.
        if QkpInstance::is_feasible(self, x) {
            -(self.value(x) as f64)
        } else {
            0.0
        }
    }

    fn is_feasible(&self, x: &Assignment) -> bool {
        QkpInstance::is_feasible(self, x)
    }

    fn initial(&self, rng: &mut StdRng) -> Assignment {
        solvers::random_feasible(self, rng)
    }

    fn reference_objective(&self, seed: u64) -> Option<f64> {
        let (_, best) = solvers::best_known(self, 15, seed);
        Some(-(best as f64))
    }
}

// ---------------------------------------------------------------------
// Linear 0/1 knapsack (exact DP reference)
// ---------------------------------------------------------------------

impl CopProblem for Knapsack {
    type Decoded = Assignment;

    fn kind(&self) -> &'static str {
        "knapsack"
    }

    fn name(&self) -> String {
        format!("knapsack-n{}", self.num_items())
    }

    fn dim(&self) -> usize {
        self.num_items()
    }

    fn to_inequality_qubo(&self) -> Result<InequalityQubo, CopError> {
        QkpInstance::to_inequality_qubo(&self.to_qkp()).map_err(CopError::from)
    }

    fn encode(&self, decoded: &Assignment) -> Assignment {
        assert_eq!(decoded.len(), self.num_items(), "selection length mismatch");
        decoded.clone()
    }

    fn decode(&self, x: &Assignment) -> Option<Assignment> {
        assert_eq!(x.len(), self.num_items(), "assignment length mismatch");
        Some(x.clone())
    }

    fn objective(&self, x: &Assignment) -> f64 {
        if Knapsack::is_feasible(self, x) {
            -(self.value(x) as f64)
        } else {
            0.0
        }
    }

    fn is_feasible(&self, x: &Assignment) -> bool {
        Knapsack::is_feasible(self, x)
    }

    fn initial(&self, rng: &mut StdRng) -> Assignment {
        solvers::random_feasible(&self.to_qkp(), rng)
    }

    fn reference_objective(&self, _seed: u64) -> Option<f64> {
        // The O(n·C) DP is exact; skip it only for extreme capacities.
        if self.capacity() > 1_000_000 {
            return None;
        }
        let (_, opt) = self.solve_exact();
        Some(-(opt as f64))
    }
}

// ---------------------------------------------------------------------
// Max-Cut (unconstrained)
// ---------------------------------------------------------------------

impl CopProblem for MaxCut {
    type Decoded = Assignment;

    fn kind(&self) -> &'static str {
        "max-cut"
    }

    fn name(&self) -> String {
        format!("maxcut-n{}", self.num_nodes())
    }

    fn dim(&self) -> usize {
        self.num_nodes()
    }

    fn to_inequality_qubo(&self) -> Result<InequalityQubo, CopError> {
        MaxCut::to_inequality_qubo(self).map_err(CopError::from)
    }

    fn encode(&self, decoded: &Assignment) -> Assignment {
        assert_eq!(decoded.len(), self.num_nodes(), "partition length mismatch");
        decoded.clone()
    }

    fn decode(&self, x: &Assignment) -> Option<Assignment> {
        assert_eq!(x.len(), self.num_nodes(), "partition length mismatch");
        Some(x.clone())
    }

    fn objective(&self, x: &Assignment) -> f64 {
        -(self.cut_value(x) as f64)
    }

    fn initial(&self, rng: &mut StdRng) -> Assignment {
        Assignment::random(self.num_nodes(), rng)
    }

    fn reference_objective(&self, _seed: u64) -> Option<f64> {
        if self.num_nodes() > 20 {
            return None;
        }
        let (_, opt) = self.brute_force().ok()?;
        Some(-(opt as f64))
    }
}

// ---------------------------------------------------------------------
// Sherrington–Kirkpatrick spin glass (unconstrained, real couplings)
// ---------------------------------------------------------------------

impl CopProblem for SpinGlass {
    type Decoded = Vec<i8>;

    fn kind(&self) -> &'static str {
        "spin-glass"
    }

    fn name(&self) -> String {
        format!("spinglass-n{}", self.num_spins())
    }

    fn dim(&self) -> usize {
        self.num_spins()
    }

    fn to_inequality_qubo(&self) -> Result<InequalityQubo, CopError> {
        let (q, _offset) = self.to_ising().to_qubo().map_err(CopError::from)?;
        InequalityQubo::new(q, trivial_constraint(self.num_spins())?).map_err(CopError::from)
    }

    fn encode(&self, decoded: &Vec<i8>) -> Assignment {
        assert_eq!(
            decoded.len(),
            self.num_spins(),
            "spin vector length mismatch"
        );
        // σᵢ = 1 − 2xᵢ: spin −1 ↔ bit 1.
        Assignment::from_bits(decoded.iter().map(|&s| s < 0))
    }

    fn decode(&self, x: &Assignment) -> Option<Vec<i8>> {
        assert_eq!(x.len(), self.num_spins(), "assignment length mismatch");
        Some(x.iter().map(|b| if b { -1 } else { 1 }).collect())
    }

    fn objective(&self, x: &Assignment) -> f64 {
        let spins = self.decode(x).expect("any bit vector is a spin state");
        self.to_ising().energy(&spins)
    }

    fn initial(&self, rng: &mut StdRng) -> Assignment {
        Assignment::random(self.num_spins(), rng)
    }

    fn reference_objective(&self, _seed: u64) -> Option<f64> {
        if self.num_spins() > 16 {
            return None;
        }
        let (_, ground) = self.ground_state().ok()?;
        Some(ground)
    }
}

// ---------------------------------------------------------------------
// Traveling salesman (equality constraints as penalties)
// ---------------------------------------------------------------------

impl CopProblem for Tsp {
    type Decoded = Vec<usize>;

    fn kind(&self) -> &'static str {
        "tsp"
    }

    fn name(&self) -> String {
        format!("tsp-n{}", self.num_cities())
    }

    fn dim(&self) -> usize {
        Tsp::dim(self)
    }

    fn to_inequality_qubo(&self) -> Result<InequalityQubo, CopError> {
        let q = self.objective_matrix(tsp_penalty_weight(self));
        InequalityQubo::new(q, trivial_constraint(Tsp::dim(self))?).map_err(CopError::from)
    }

    fn encode(&self, decoded: &Vec<usize>) -> Assignment {
        Tsp::encode(self, decoded)
    }

    fn decode(&self, x: &Assignment) -> Option<Vec<usize>> {
        assert_eq!(x.len(), Tsp::dim(self), "assignment length mismatch");
        Tsp::decode(self, x)
    }

    fn objective(&self, x: &Assignment) -> f64 {
        match Tsp::decode(self, x) {
            Some(tour) => self.tour_length(&tour).expect("decoded tours are valid"),
            None => f64::INFINITY,
        }
    }

    fn initial(&self, rng: &mut StdRng) -> Assignment {
        Tsp::encode(self, &random_permutation(self.num_cities(), rng))
    }

    fn reference_objective(&self, _seed: u64) -> Option<f64> {
        self.tour_length(&self.nearest_neighbor()).ok()
    }
}

// ---------------------------------------------------------------------
// Graph coloring (equality constraints as penalties)
// ---------------------------------------------------------------------

impl CopProblem for GraphColoring {
    /// Color index per vertex.
    type Decoded = Vec<usize>;

    fn kind(&self) -> &'static str {
        "coloring"
    }

    fn name(&self) -> String {
        format!("coloring-n{}k{}", self.num_nodes(), self.num_colors())
    }

    fn dim(&self) -> usize {
        GraphColoring::dim(self)
    }

    fn to_inequality_qubo(&self) -> Result<InequalityQubo, CopError> {
        let q = self.objective_matrix(coloring_penalty_weight(self));
        InequalityQubo::new(q, trivial_constraint(GraphColoring::dim(self))?)
            .map_err(CopError::from)
    }

    fn encode(&self, decoded: &Vec<usize>) -> Assignment {
        assert_eq!(
            decoded.len(),
            self.num_nodes(),
            "color vector length mismatch"
        );
        let mut x = Assignment::zeros(GraphColoring::dim(self));
        for (v, &c) in decoded.iter().enumerate() {
            x.set(self.var(v, c), true);
        }
        x
    }

    fn decode(&self, x: &Assignment) -> Option<Vec<usize>> {
        assert_eq!(
            x.len(),
            GraphColoring::dim(self),
            "assignment length mismatch"
        );
        let mut colors = Vec::with_capacity(self.num_nodes());
        for v in 0..self.num_nodes() {
            let mut assigned = None;
            for c in 0..self.num_colors() {
                if x.get(self.var(v, c)) {
                    if assigned.is_some() {
                        return None;
                    }
                    assigned = Some(c);
                }
            }
            colors.push(assigned?);
        }
        Some(colors)
    }

    fn objective(&self, x: &Assignment) -> f64 {
        assert_eq!(
            x.len(),
            GraphColoring::dim(self),
            "assignment length mismatch"
        );
        let mut violations = 0usize;
        for v in 0..self.num_nodes() {
            let count = (0..self.num_colors())
                .filter(|&c| x.get(self.var(v, c)))
                .count();
            violations += count.abs_diff(1);
        }
        let conflicts = self
            .edges()
            .iter()
            .map(|&(u, v)| {
                (0..self.num_colors())
                    .filter(|&c| x.get(self.var(u, c)) && x.get(self.var(v, c)))
                    .count()
            })
            .sum::<usize>();
        (violations + conflicts) as f64
    }

    fn is_feasible(&self, x: &Assignment) -> bool {
        self.is_proper_coloring(x)
    }

    fn initial(&self, rng: &mut StdRng) -> Assignment {
        // One random color per vertex: structurally valid, possibly
        // improper — the annealer resolves conflicts.
        let colors: Vec<usize> = (0..self.num_nodes())
            .map(|_| rng.random_range(0..self.num_colors()))
            .collect();
        CopProblem::encode(self, &colors)
    }

    fn reference_objective(&self, _seed: u64) -> Option<f64> {
        self.greedy_coloring().map(|_| 0.0)
    }
}

// ---------------------------------------------------------------------
// Bin packing (inequality constraints, one per bin)
// ---------------------------------------------------------------------

impl CopProblem for BinPacking {
    /// Bin index per item.
    type Decoded = Vec<usize>;

    fn kind(&self) -> &'static str {
        "bin-packing"
    }

    fn name(&self) -> String {
        format!("binpack-n{}b{}", self.num_items(), self.num_bins())
    }

    fn dim(&self) -> usize {
        BinPacking::dim(self)
    }

    fn to_inequality_qubo(&self) -> Result<InequalityQubo, CopError> {
        // The single-filter pipeline encodes the *aggregate* capacity
        // Σᵢⱼ sᵢ·x_{i,k} ≤ bins·C (a necessary relaxation of the
        // per-bin bank in `bin_constraints`); per-bin balance is
        // steered by a quadratic load term in the objective. The exact
        // per-bin form is `to_multi_inequality_qubo`, driven by the
        // filter-bank pipeline (`BankEngine` in `hycim-core`).
        let q = self.packing_objective();
        let mut weights = vec![0u64; BinPacking::dim(self)];
        for i in 0..self.num_items() {
            for k in 0..self.num_bins() {
                weights[self.var(i, k)] = self.sizes()[i];
            }
        }
        let aggregate = self.capacity() * self.num_bins() as u64;
        let constraint = LinearConstraint::new(weights, aggregate).map_err(CopError::from)?;
        InequalityQubo::new(q, constraint).map_err(CopError::from)
    }

    fn to_multi_inequality_qubo(&self) -> Result<MultiInequalityQubo, CopError> {
        // The exact encoding: one capacity inequality per bin, gated
        // in hardware by one filter each. The load-balance relaxation
        // of the single-filter path is *dropped* — the bank enforces
        // every bin's capacity directly, so the objective only has to
        // place each item in exactly one bin.
        let q = self.assignment_objective(bin_packing_assignment_penalty(self));
        MultiInequalityQubo::new(q, self.bin_constraints()).map_err(CopError::from)
    }

    fn encode(&self, decoded: &Vec<usize>) -> Assignment {
        assert_eq!(
            decoded.len(),
            self.num_items(),
            "bin vector length mismatch"
        );
        let mut x = Assignment::zeros(BinPacking::dim(self));
        for (i, &k) in decoded.iter().enumerate() {
            x.set(self.var(i, k), true);
        }
        x
    }

    fn decode(&self, x: &Assignment) -> Option<Vec<usize>> {
        assert_eq!(x.len(), BinPacking::dim(self), "assignment length mismatch");
        let mut bins = Vec::with_capacity(self.num_items());
        for i in 0..self.num_items() {
            let mut assigned = None;
            for k in 0..self.num_bins() {
                if x.get(self.var(i, k)) {
                    if assigned.is_some() {
                        return None;
                    }
                    assigned = Some(k);
                }
            }
            bins.push(assigned?);
        }
        Some(bins)
    }

    fn objective(&self, x: &Assignment) -> f64 {
        assert_eq!(x.len(), BinPacking::dim(self), "assignment length mismatch");
        let mut violations = 0u64;
        for i in 0..self.num_items() {
            let count = (0..self.num_bins())
                .filter(|&k| x.get(self.var(i, k)))
                .count() as u64;
            violations += count.abs_diff(1);
        }
        let overflow: u64 = (0..self.num_bins())
            .map(|k| self.bin_load(x, k).saturating_sub(self.capacity()))
            .sum();
        (violations + overflow) as f64
    }

    fn is_feasible(&self, x: &Assignment) -> bool {
        self.is_valid_packing(x)
    }

    fn initial(&self, rng: &mut StdRng) -> Assignment {
        // First-fit over a shuffled item order, respecting per-bin
        // capacity (hence the aggregate filter constraint); items that
        // fit nowhere stay unassigned and cost assignment violations.
        let mut loads = vec![0u64; self.num_bins()];
        let mut x = Assignment::zeros(BinPacking::dim(self));
        for i in random_permutation(self.num_items(), rng) {
            let start = rng.random_range(0..self.num_bins());
            for step in 0..self.num_bins() {
                let k = (start + step) % self.num_bins();
                if loads[k] + self.sizes()[i] <= self.capacity() {
                    loads[k] += self.sizes()[i];
                    x.set(self.var(i, k), true);
                    break;
                }
            }
        }
        x
    }

    fn reference_objective(&self, _seed: u64) -> Option<f64> {
        self.first_fit_decreasing().map(|_| 0.0)
    }
}

// ---------------------------------------------------------------------
// Multi-dimensional knapsack (one inequality per resource dimension)
// ---------------------------------------------------------------------

impl CopProblem for MultiKnapsack {
    type Decoded = Assignment;

    fn kind(&self) -> &'static str {
        "mkp"
    }

    fn name(&self) -> String {
        format!("mkp-n{}m{}", self.num_items(), self.num_dimensions())
    }

    fn dim(&self) -> usize {
        self.num_items()
    }

    fn to_inequality_qubo(&self) -> Result<InequalityQubo, CopError> {
        // The single-filter pipeline can only hold one inequality, so
        // it runs the *aggregate relaxation* (summed weights against
        // summed capacities): every MKP-feasible selection passes, but
        // some dimension-wise violations slip through and surface as
        // infeasible solutions. The exact per-dimension form is
        // `to_multi_inequality_qubo` on the filter-bank pipeline.
        InequalityQubo::new(self.profit_objective(), self.aggregate_constraint())
            .map_err(CopError::from)
    }

    fn to_multi_inequality_qubo(&self) -> Result<MultiInequalityQubo, CopError> {
        MultiInequalityQubo::new(self.profit_objective(), self.dimension_constraints())
            .map_err(CopError::from)
    }

    fn encode(&self, decoded: &Assignment) -> Assignment {
        assert_eq!(decoded.len(), self.num_items(), "selection length mismatch");
        decoded.clone()
    }

    fn decode(&self, x: &Assignment) -> Option<Assignment> {
        assert_eq!(x.len(), self.num_items(), "assignment length mismatch");
        Some(x.clone())
    }

    fn objective(&self, x: &Assignment) -> f64 {
        // Gated like the other knapsacks (paper Eq. 6): infeasible in
        // *any* dimension scores 0, worse than any profitable
        // selection.
        if MultiKnapsack::is_feasible(self, x) {
            -(self.value(x) as f64)
        } else {
            0.0
        }
    }

    fn is_feasible(&self, x: &Assignment) -> bool {
        MultiKnapsack::is_feasible(self, x)
    }

    fn initial(&self, rng: &mut StdRng) -> Assignment {
        // Feasible in every dimension, hence also under the aggregate
        // relaxation — one start serves both pipelines.
        self.random_feasible(rng)
    }

    fn reference_objective(&self, _seed: u64) -> Option<f64> {
        Some(-(self.reference_value() as f64))
    }
}

// ---------------------------------------------------------------------
// Raw inequality-QUBO models (custom problems without a domain type)
// ---------------------------------------------------------------------

impl CopProblem for InequalityQubo {
    type Decoded = Assignment;

    fn kind(&self) -> &'static str {
        "inequality-qubo"
    }

    fn name(&self) -> String {
        format!("iqubo-n{}", InequalityQubo::dim(self))
    }

    fn dim(&self) -> usize {
        InequalityQubo::dim(self)
    }

    fn to_inequality_qubo(&self) -> Result<InequalityQubo, CopError> {
        Ok(self.clone())
    }

    fn encode(&self, decoded: &Assignment) -> Assignment {
        assert_eq!(
            decoded.len(),
            InequalityQubo::dim(self),
            "assignment length mismatch"
        );
        decoded.clone()
    }

    fn decode(&self, x: &Assignment) -> Option<Assignment> {
        assert_eq!(
            x.len(),
            InequalityQubo::dim(self),
            "assignment length mismatch"
        );
        Some(x.clone())
    }

    fn objective(&self, x: &Assignment) -> f64 {
        // The gated energy of the paper's Eq. 6.
        self.energy(x)
    }

    fn is_feasible(&self, x: &Assignment) -> bool {
        InequalityQubo::is_feasible(self, x)
    }

    fn initial(&self, rng: &mut StdRng) -> Assignment {
        // Shuffled greedy insertion against the constraint.
        let c = self.constraint();
        let mut x = Assignment::zeros(InequalityQubo::dim(self));
        let mut load = 0u64;
        for i in random_permutation(InequalityQubo::dim(self), rng) {
            let w = c.weights()[i];
            if load + w <= c.capacity() && rng.random_bool(0.7) {
                x.set(i, true);
                load += w;
            }
        }
        x
    }

    fn reference_objective(&self, _seed: u64) -> Option<f64> {
        if InequalityQubo::dim(self) > 20 {
            return None;
        }
        Some(self.brute_force_minimum().1)
    }
}

// ---------------------------------------------------------------------
// Helpers used by the implementations above
// ---------------------------------------------------------------------

impl MultiKnapsack {
    /// The MKP's QUBO objective: negated linear profits on the
    /// diagonal (no pair terms — the MKP is linear in the profits; the
    /// constraints carry all the structure).
    pub fn profit_objective(&self) -> QuboMatrix {
        let mut q = QuboMatrix::zeros(self.num_items());
        for (i, &p) in self.profits().iter().enumerate() {
            q.set(i, i, -(p as f64));
        }
        q
    }
}

impl BinPacking {
    /// QUBO objective of the single-filter encoding: the exact-one-bin
    /// assignment penalty plus a quadratic per-bin load term
    /// `Σₖ (Σᵢ sᵢ x_{i,k})²` that steers SA toward balanced (hence
    /// capacity-respecting) packings under the aggregate constraint.
    pub fn packing_objective(&self) -> QuboMatrix {
        // A dropped/duplicated item must never pay off: un-assigning
        // item i saves at most ~2·C·sᵢ of load penalty, so the
        // assignment penalty dominates at 4·C·s_max.
        let s_max = *self.sizes().iter().max().expect("non-empty instance");
        let assign_penalty = 4.0 * (self.capacity() * s_max) as f64;
        let mut q = self.assignment_objective(assign_penalty);
        for k in 0..self.num_bins() {
            for i in 0..self.num_items() {
                let si = self.sizes()[i] as f64;
                q.add(self.var(i, k), self.var(i, k), si * si);
                for j in (i + 1)..self.num_items() {
                    let sj = self.sizes()[j] as f64;
                    q.add(self.var(i, k), self.var(j, k), 2.0 * si * sj);
                }
            }
        }
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn qkp_round_trip_and_gated_objective() {
        let mut inst = QkpInstance::new(vec![10, 6, 8], vec![4, 7, 2], 9).unwrap();
        inst.set_pair_profit(0, 2, 7);
        let x = Assignment::from_bits([true, false, true]);
        let d = CopProblem::decode(&inst, &x).unwrap();
        assert_eq!(CopProblem::encode(&inst, &d), x);
        assert_eq!(CopProblem::objective(&inst, &x), -25.0);
        let over = Assignment::ones_vec(3);
        assert_eq!(CopProblem::objective(&inst, &over), 0.0);
        assert!(!CopProblem::is_feasible(&inst, &over));
    }

    #[test]
    fn initial_configurations_satisfy_the_encoded_constraint() {
        let mut r = rng(1);
        let qkp = crate::generator::QkpGenerator::new(20, 0.5).generate(1);
        let tsp = Tsp::random_euclidean(5, 10.0, 2).unwrap();
        let gc = GraphColoring::random(6, 0.4, 3, 3);
        let bp = BinPacking::new(vec![4, 5, 3, 6], 9, 2).unwrap();
        let mc = MaxCut::random(8, 0.5, 4);
        let sg = SpinGlass::random_binary(6, 5).unwrap();
        macro_rules! check {
            ($p:expr) => {
                let iq = CopProblem::to_inequality_qubo(&$p).unwrap();
                for _ in 0..10 {
                    let x = $p.initial(&mut r);
                    assert!(iq.is_feasible(&x), "{} start violates filter", $p.kind());
                }
            };
        }
        check!(qkp);
        check!(tsp);
        check!(gc);
        check!(bp);
        check!(mc);
        check!(sg);
    }

    #[test]
    fn penalty_weights_follow_their_derivations() {
        let tsp = Tsp::random_euclidean(6, 10.0, 3).unwrap();
        // The documented bound: strictly more than the largest leg, so
        // dropping a visit (saving ≤ 2·d_max) can never beat the
        // 2×penalty constraint violation it causes.
        assert!(tsp_penalty_weight(&tsp) > tsp.max_distance());
        assert_eq!(tsp_penalty_weight(&tsp), 2.0 * tsp.max_distance());
        // The encoding uses exactly the derived weight.
        let iq = CopProblem::to_inequality_qubo(&tsp).unwrap();
        let direct = tsp.objective_matrix(tsp_penalty_weight(&tsp));
        let x = tsp.initial(&mut rng(7));
        assert_eq!(iq.objective().energy(&x), direct.energy(&x));

        let gc = GraphColoring::random(6, 0.4, 3, 3);
        assert!(coloring_penalty_weight(&gc) > 0.0);
        let iq = CopProblem::to_inequality_qubo(&gc).unwrap();
        // One violation costs exactly the penalty weight: a proper
        // coloring vs the same coloring with one vertex left blank.
        let proper = gc.greedy_coloring().unwrap();
        let mut blank = proper.clone();
        for c in 0..gc.num_colors() {
            blank.set(gc.var(0, c), false);
        }
        assert_eq!(
            iq.objective().energy(&blank) - iq.objective().energy(&proper),
            coloring_penalty_weight(&gc)
        );
    }

    #[test]
    fn tsp_structural_decode() {
        let tsp = Tsp::random_euclidean(4, 10.0, 1).unwrap();
        let mut r = rng(2);
        let x = tsp.initial(&mut r);
        let tour = CopProblem::decode(&tsp, &x).expect("initial is a permutation");
        assert_eq!(CopProblem::encode(&tsp, &tour), x);
        assert_eq!(
            CopProblem::objective(&tsp, &x),
            tsp.tour_length(&tour).unwrap()
        );
        assert_eq!(
            CopProblem::objective(&tsp, &Assignment::zeros(16)),
            f64::INFINITY
        );
    }

    #[test]
    fn coloring_objective_counts_violations() {
        let g = GraphColoring::new(3, vec![(0, 1), (1, 2), (0, 2)], 3).unwrap();
        let proper = g.greedy_coloring().unwrap();
        assert_eq!(CopProblem::objective(&g, &proper), 0.0);
        assert!(CopProblem::is_feasible(&g, &proper));
        // All three vertices the same color: 3 conflicting edges.
        let mono = CopProblem::encode(&g, &vec![0, 0, 0]);
        assert_eq!(CopProblem::objective(&g, &mono), 3.0);
        assert!(!CopProblem::is_feasible(&g, &mono));
        // Empty assignment: 3 missing colors, no conflicts.
        assert_eq!(CopProblem::objective(&g, &Assignment::zeros(9)), 3.0);
    }

    #[test]
    fn binpack_objective_counts_overflow() {
        let bp = BinPacking::new(vec![4, 5, 3], 9, 2).unwrap();
        let good = CopProblem::encode(&bp, &vec![0, 1, 0]);
        assert_eq!(CopProblem::objective(&bp, &good), 0.0);
        assert!(CopProblem::is_feasible(&bp, &good));
        // Everything in bin 0: load 12, 3 units over.
        let overload = CopProblem::encode(&bp, &vec![0, 0, 0]);
        assert_eq!(CopProblem::objective(&bp, &overload), 3.0);
        assert!(!CopProblem::is_feasible(&bp, &overload));
        assert_eq!(bp.reference_objective(0), Some(0.0));
    }

    #[test]
    fn binpack_packing_objective_prefers_valid_packings() {
        let bp = BinPacking::new(vec![4, 5, 3, 6], 9, 2).unwrap();
        let q = bp.packing_objective();
        let valid = CopProblem::encode(&bp, &vec![0, 0, 1, 1]);
        assert!(bp.is_valid_packing(&valid));
        // Any single-item drop or duplication costs more energy.
        for i in 0..bp.dim() {
            let mut other = valid.clone();
            other.flip(i);
            assert!(
                q.energy(&other) > q.energy(&valid),
                "flip {i} did not raise energy"
            );
        }
    }

    #[test]
    fn spin_glass_energy_matches_ising() {
        let sg = SpinGlass::random_binary(8, 3).unwrap();
        let ising = sg.to_ising();
        let mut r = rng(4);
        let x = sg.initial(&mut r);
        let spins = CopProblem::decode(&sg, &x).unwrap();
        assert_eq!(CopProblem::objective(&sg, &x), ising.energy(&spins));
        assert_eq!(CopProblem::encode(&sg, &spins), x);
        // QUBO energy differs from the spin energy only by the dropped
        // constant of the σ → x substitution.
        let iq = CopProblem::to_inequality_qubo(&sg).unwrap();
        let (q2, offset) = ising.to_qubo().unwrap();
        assert_eq!(iq.objective().energy(&x) + offset, q2.energy(&x) + offset);
    }

    #[test]
    fn dqubo_default_encoding_round_trips() {
        let mut inst = QkpInstance::new(vec![10, 6, 8], vec![4, 7, 2], 9).unwrap();
        inst.set_pair_profit(0, 2, 7);
        let form = CopProblem::to_dqubo(&inst, PenaltyWeights::PAPER, AuxEncoding::OneHot).unwrap();
        assert_eq!(form.num_items(), 3);
        assert_eq!(form.num_aux(), 9);
    }

    #[test]
    fn raw_inequality_qubo_is_a_cop_problem() {
        let mut q = QuboMatrix::zeros(3);
        q.set(0, 0, -10.0);
        q.set(2, 2, -8.0);
        q.set(0, 2, -14.0);
        let iq = InequalityQubo::new(q, LinearConstraint::new(vec![4, 7, 2], 9).unwrap()).unwrap();
        assert_eq!(iq.reference_objective(0), Some(-32.0));
        let mut r = rng(5);
        let x = iq.initial(&mut r);
        assert!(CopProblem::is_feasible(&iq, &x));
        assert_eq!(CopProblem::objective(&iq, &x), iq.energy(&x));
    }

    #[test]
    fn multi_form_defaults_to_the_single_constraint() {
        let qkp = crate::generator::QkpGenerator::new(10, 0.5).generate(2);
        let iq = CopProblem::to_inequality_qubo(&qkp).unwrap();
        let mq = qkp.to_multi_inequality_qubo().unwrap();
        assert_eq!(mq.num_constraints(), 1);
        assert_eq!(mq.as_single(), Some(iq));
    }

    #[test]
    fn binpack_multi_form_is_exact_per_bin() {
        let bp = BinPacking::new(vec![4, 5, 3, 6], 9, 2).unwrap();
        let mq = bp.to_multi_inequality_qubo().unwrap();
        assert_eq!(mq.num_constraints(), 2);
        assert_eq!(mq.dim(), bp.dim());
        // Multi-form feasibility = per-bin capacity feasibility: the
        // overload that slips through the aggregate relaxation is
        // gated out here.
        let overload = CopProblem::encode(&bp, &vec![0, 0, 0, 1]); // bin 0: 12 > 9
        let iq = CopProblem::to_inequality_qubo(&bp).unwrap();
        assert!(iq.is_feasible(&overload), "aggregate admits the overload");
        assert!(!mq.is_feasible(&overload), "bank rejects it");
        assert_eq!(mq.first_violation(&overload), Some(0));
        // A valid packing passes every gate, and the objective
        // (assignment penalty only — no load-balance term) is at its
        // minimum there.
        let valid = CopProblem::encode(&bp, &vec![0, 0, 1, 1]);
        assert!(mq.is_feasible(&valid));
        let per_item = bin_packing_assignment_penalty(&bp);
        assert_eq!(
            mq.objective_energy(&valid),
            -per_item * bp.num_items() as f64
        );
        // Every initial start satisfies the whole bank.
        let mut r = rng(9);
        for _ in 0..10 {
            assert!(mq.is_feasible(&bp.initial(&mut r)));
        }
    }

    #[test]
    fn mkp_objective_is_gated_and_forms_agree() {
        let mkp = crate::mkp::MultiKnapsack::new(
            vec![10, 6, 8],
            vec![vec![4, 7, 2], vec![1, 2, 6]],
            vec![9, 7],
        )
        .unwrap();
        let mq = mkp.to_multi_inequality_qubo().unwrap();
        assert_eq!(mq.num_constraints(), 2);
        let ok = Assignment::from_bits([true, false, true]);
        assert_eq!(CopProblem::objective(&mkp, &ok), -18.0);
        assert_eq!(mq.energy(&ok), -18.0);
        // Dimension-0 violation (11 > 9): gated to 0 in the multi form
        // and the trait objective, but the aggregate relaxation
        // (14 ≤ 16) admits it.
        let bad = Assignment::from_bits([true, true, false]);
        assert_eq!(CopProblem::objective(&mkp, &bad), 0.0);
        assert_eq!(mq.energy(&bad), 0.0);
        assert!(!CopProblem::is_feasible(&mkp, &bad));
        let iq = CopProblem::to_inequality_qubo(&mkp).unwrap();
        assert!(iq.is_feasible(&bad));
        // Round trip + reference.
        let d = CopProblem::decode(&mkp, &ok).unwrap();
        assert_eq!(CopProblem::encode(&mkp, &d), ok);
        assert_eq!(mkp.reference_objective(0), Some(-18.0));
        // Initial starts satisfy every dimension.
        let mut r = rng(10);
        for _ in 0..10 {
            let x = mkp.initial(&mut r);
            assert!(mq.is_feasible(&x));
            assert!(iq.is_feasible(&x));
        }
    }

    #[test]
    fn reference_objectives_exist_where_promised() {
        let qkp = crate::generator::QkpGenerator::new(10, 0.5).generate(1);
        assert!(qkp.reference_objective(1).is_some());
        let ks = Knapsack::new(vec![3, 4], vec![2, 3], 5).unwrap();
        assert_eq!(ks.reference_objective(0), Some(-7.0));
        let mc = MaxCut::random(8, 0.5, 1);
        assert!(mc.reference_objective(0).is_some());
        let sg = SpinGlass::random_binary(8, 1).unwrap();
        assert!(sg.reference_objective(0).is_some());
        let big = SpinGlass::random_binary(30, 1).unwrap();
        assert!(big.reference_objective(0).is_none());
    }
}
