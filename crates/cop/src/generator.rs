//! Seeded QKP instance generator reproducing the CNAM benchmark
//! construction \[28\] the paper evaluates on (Sec 4: 40 instances,
//! 100 items each).
//!
//! The benchmark construction (Billionnet & Soutif): every profit
//! coefficient `pᵢⱼ` (including diagonals) is nonzero with probability
//! equal to the *density* Δ and drawn uniformly from `1..=100`;
//! weights are uniform in `1..=50`; the capacity is uniform between 50
//! and `Σwᵢ`. We default the capacity range to `100..=2536` (clamped
//! to `Σwᵢ`) so the derived D-QUBO dimensions span the paper's
//! reported `200..2636` (Fig. 9(b)).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::QkpInstance;

/// Configurable QKP generator.
///
/// # Example
///
/// ```
/// use hycim_cop::generator::QkpGenerator;
///
/// let inst = QkpGenerator::new(100, 0.25).generate(7);
/// assert_eq!(inst.num_items(), 100);
/// // Density lands near the requested 25%.
/// assert!((inst.density() - 0.25).abs() < 0.06);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QkpGenerator {
    n: usize,
    density: f64,
    max_profit: u64,
    max_weight: u64,
    capacity_range: (u64, u64),
}

impl QkpGenerator {
    /// Creates a generator for `n`-item instances with the given
    /// profit density.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `density` is outside `(0.0, 1.0]`.
    pub fn new(n: usize, density: f64) -> Self {
        assert!(n > 0, "need at least one item");
        assert!(
            density > 0.0 && density <= 1.0,
            "density must be in (0, 1], got {density}"
        );
        Self {
            n,
            density,
            max_profit: 100,
            max_weight: 50,
            capacity_range: (100, 2536),
        }
    }

    /// Overrides the maximum profit coefficient (default 100, giving
    /// the paper's `(Q_ij)MAX = 100`).
    pub fn with_max_profit(mut self, max_profit: u64) -> Self {
        assert!(max_profit > 0, "max profit must be positive");
        self.max_profit = max_profit;
        self
    }

    /// Overrides the maximum item weight (default 50; the paper's
    /// filter stores per-item weights up to 64).
    pub fn with_max_weight(mut self, max_weight: u64) -> Self {
        assert!(max_weight > 0, "max weight must be positive");
        self.max_weight = max_weight;
        self
    }

    /// Overrides the capacity sampling range (inclusive). The sampled
    /// capacity is additionally clamped to `Σwᵢ − 1` so the constraint
    /// is never trivial, and to at least `max(wᵢ)` so at least one item
    /// fits.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `lo == 0`.
    pub fn with_capacity_range(mut self, lo: u64, hi: u64) -> Self {
        assert!(lo > 0 && lo <= hi, "invalid capacity range {lo}..={hi}");
        self.capacity_range = (lo, hi);
        self
    }

    /// Number of items per generated instance.
    pub fn num_items(&self) -> usize {
        self.n
    }

    /// Requested profit density.
    pub fn density(&self) -> f64 {
        self.density
    }

    /// Generates one instance deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> QkpInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.n;
        let weights: Vec<u64> = (0..n)
            .map(|_| rng.random_range(1..=self.max_weight))
            .collect();
        let total: u64 = weights.iter().sum();
        let max_w = *weights.iter().max().expect("n > 0");

        let (lo, hi) = self.capacity_range;
        let hi = hi.min(total.saturating_sub(1)).max(1);
        let lo = lo.min(hi).max(1);
        let capacity = rng.random_range(lo..=hi).max(max_w);

        let item_profits: Vec<u64> = (0..n)
            .map(|_| {
                if rng.random_bool(self.density) {
                    rng.random_range(1..=self.max_profit)
                } else {
                    0
                }
            })
            .collect();

        let mut inst = QkpInstance::new(item_profits, weights, capacity)
            .expect("generator invariants yield a valid instance")
            .with_name(format!(
                "gen_{}_{}_{}",
                n,
                (self.density * 100.0).round() as u32,
                seed
            ));
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.random_bool(self.density) {
                    inst.set_pair_profit(i, j, rng.random_range(1..=self.max_profit));
                }
            }
        }
        inst
    }
}

/// The paper's evaluation workload: 40 QKP instances of 100 items —
/// 10 seeds at each density in {25, 50, 75, 100}% (Sec 4, \[28\]).
///
/// # Example
///
/// ```
/// use hycim_cop::generator::standard_benchmark_set;
///
/// let set = standard_benchmark_set();
/// assert_eq!(set.len(), 40);
/// assert!(set.iter().all(|i| i.num_items() == 100));
/// ```
pub fn standard_benchmark_set() -> Vec<QkpInstance> {
    benchmark_set(100, 10)
}

/// A scaled benchmark set: `per_density` seeds at each of the four
/// densities, `n` items each. Seeds are derived deterministically so
/// the set is reproducible across runs.
pub fn benchmark_set(n: usize, per_density: usize) -> Vec<QkpInstance> {
    let densities = [0.25, 0.5, 0.75, 1.0];
    let mut out = Vec::with_capacity(densities.len() * per_density);
    for (di, &d) in densities.iter().enumerate() {
        let generator = QkpGenerator::new(n, d);
        for s in 0..per_density {
            // Stable per-(density, index) seed.
            let seed = 1000 * (di as u64 + 1) + s as u64;
            out.push(generator.generate(seed));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let generator = QkpGenerator::new(30, 0.5);
        assert_eq!(generator.generate(1), generator.generate(1));
        assert_ne!(generator.generate(1), generator.generate(2));
    }

    #[test]
    fn weights_and_profits_in_range() {
        let inst = QkpGenerator::new(50, 1.0).generate(3);
        assert!(inst.weights().iter().all(|&w| (1..=50).contains(&w)));
        assert!(inst.item_profits().iter().all(|&p| p <= 100));
        assert_eq!(
            inst.max_profit_coefficient().max(1),
            inst.max_profit_coefficient()
        );
        assert!(inst.max_profit_coefficient() <= 100);
    }

    #[test]
    fn full_density_fills_every_coefficient() {
        let inst = QkpGenerator::new(20, 1.0).generate(5);
        assert!((inst.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_is_nontrivial() {
        for seed in 0..20 {
            let inst = QkpGenerator::new(100, 0.25).generate(seed);
            let total: u64 = inst.weights().iter().sum();
            assert!(inst.capacity() < total, "trivial capacity at seed {seed}");
            assert!(
                inst.capacity() >= *inst.weights().iter().max().unwrap(),
                "no item fits at seed {seed}"
            );
        }
    }

    #[test]
    fn standard_set_matches_paper_shape() {
        let set = standard_benchmark_set();
        assert_eq!(set.len(), 40);
        // D-QUBO dimension n + C must fall in the paper's reported
        // 200..=2636 band (Fig. 9(b)).
        for inst in &set {
            let dim = 100 + inst.capacity() as usize;
            assert!(
                (200..=2636).contains(&dim),
                "instance {} gives D-QUBO dim {dim}",
                inst.name()
            );
        }
    }

    #[test]
    fn densities_are_respected() {
        for (d, lo, hi) in [(0.25, 0.18, 0.32), (0.75, 0.68, 0.82)] {
            let inst = QkpGenerator::new(100, d).generate(11);
            assert!(
                inst.density() > lo && inst.density() < hi,
                "density {} for requested {d}",
                inst.density()
            );
        }
    }

    #[test]
    fn custom_ranges() {
        let inst = QkpGenerator::new(10, 0.5)
            .with_max_profit(7)
            .with_max_weight(3)
            .with_capacity_range(5, 9)
            .generate(2);
        assert!(inst.max_profit_coefficient() <= 7);
        assert!(inst.weights().iter().all(|&w| w <= 3));
        assert!(inst.capacity() <= 9);
    }

    #[test]
    #[should_panic(expected = "density")]
    fn invalid_density_panics() {
        let _ = QkpGenerator::new(5, 0.0);
    }
}
