//! Graph coloring — the equality-constrained COP of Table 1 reference
//! \[3\] (the authors' own FeFET CiM annealer solves 21-node graph
//! coloring). Equality constraints (`exactly one color per node`) are
//! native to QUBO penalties, so no inequality filter is needed; this
//! module demonstrates the stack on that problem family.

use hycim_qubo::{Assignment, QuboMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::CopError;

/// A graph-coloring instance: color `nodes` vertices with `colors`
/// colors such that no edge is monochromatic.
///
/// Variables: `x_{v,c}` = "vertex v gets color c", at index
/// `v·colors + c`.
///
/// # Example
///
/// ```
/// use hycim_cop::coloring::GraphColoring;
/// use hycim_qubo::Assignment;
///
/// # fn main() -> Result<(), hycim_cop::CopError> {
/// // A triangle is 3-colorable.
/// let g = GraphColoring::new(3, vec![(0, 1), (1, 2), (0, 2)], 3)?;
/// let x = Assignment::parse_bit_string("100010001").unwrap();
/// assert!(g.is_proper_coloring(&x));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphColoring {
    nodes: usize,
    edges: Vec<(usize, usize)>,
    colors: usize,
}

impl GraphColoring {
    /// Creates an instance.
    ///
    /// # Errors
    ///
    /// * [`CopError::EmptyInstance`] for zero nodes or zero colors.
    /// * [`CopError::SizeMismatch`] for an out-of-range or self-loop
    ///   edge.
    pub fn new(nodes: usize, edges: Vec<(usize, usize)>, colors: usize) -> Result<Self, CopError> {
        if nodes == 0 || colors == 0 {
            return Err(CopError::EmptyInstance);
        }
        let mut canon = std::collections::BTreeSet::new();
        for (u, v) in edges {
            if u >= nodes || v >= nodes || u == v {
                return Err(CopError::SizeMismatch {
                    profits: u.max(v),
                    weights: nodes,
                });
            }
            canon.insert((u.min(v), u.max(v)));
        }
        Ok(Self {
            nodes,
            edges: canon.into_iter().collect(),
            colors,
        })
    }

    /// Random graph with edge probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`, `colors == 0`, or `p` outside `(0, 1]`.
    pub fn random(nodes: usize, p: f64, colors: usize, seed: u64) -> Self {
        assert!(nodes > 0 && colors > 0, "need nodes and colors");
        assert!(p > 0.0 && p <= 1.0, "edge probability must be in (0, 1]");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for u in 0..nodes {
            for v in (u + 1)..nodes {
                if rng.random_bool(p) {
                    edges.push((u, v));
                }
            }
        }
        Self::new(nodes, edges, colors).expect("generated edges are valid")
    }

    /// Number of vertices.
    pub fn num_nodes(&self) -> usize {
        self.nodes
    }

    /// Number of available colors.
    pub fn num_colors(&self) -> usize {
        self.colors
    }

    /// Canonical edge list.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Number of QUBO variables: `nodes × colors`.
    pub fn dim(&self) -> usize {
        self.nodes * self.colors
    }

    /// Index of variable `x_{v,c}`.
    ///
    /// # Panics
    ///
    /// Panics if `v` or `c` is out of range.
    pub fn var(&self, v: usize, c: usize) -> usize {
        assert!(v < self.nodes && c < self.colors, "index out of range");
        v * self.colors + c
    }

    /// The D-QUBO-style penalty objective (this problem's constraints
    /// are equalities, which QUBO handles natively — paper Sec 2.1):
    /// `penalty · [Σᵥ (1 − Σ꜀ x_{v,c})² + Σ_{(u,v)∈E} Σ꜀ x_{u,c}x_{v,c}]`.
    /// Minimum 0 ⇔ proper coloring (up to the dropped constant).
    pub fn objective_matrix(&self, penalty: f64) -> QuboMatrix {
        let mut q = QuboMatrix::zeros(self.dim());
        // One-color-per-node equality penalties.
        for v in 0..self.nodes {
            for c in 0..self.colors {
                let idx = self.var(v, c);
                q.add(idx, idx, -penalty);
                for c2 in (c + 1)..self.colors {
                    q.add(idx, self.var(v, c2), 2.0 * penalty);
                }
            }
        }
        // Edge conflicts.
        for &(u, v) in &self.edges {
            for c in 0..self.colors {
                q.add(self.var(u, c), self.var(v, c), penalty);
            }
        }
        q
    }

    /// Energy of a proper coloring under [`objective_matrix`]: the
    /// dropped constant is `penalty · nodes`, so proper colorings sit
    /// at exactly `−penalty · nodes`.
    ///
    /// [`objective_matrix`]: Self::objective_matrix
    pub fn proper_energy(&self, penalty: f64) -> f64 {
        -penalty * self.nodes as f64
    }

    /// Whether `x` assigns exactly one color per node with no
    /// monochromatic edge.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn is_proper_coloring(&self, x: &Assignment) -> bool {
        assert_eq!(x.len(), self.dim(), "assignment length mismatch");
        for v in 0..self.nodes {
            let count = (0..self.colors).filter(|&c| x.get(self.var(v, c))).count();
            if count != 1 {
                return false;
            }
        }
        self.edges.iter().all(|&(u, v)| {
            (0..self.colors).all(|c| !(x.get(self.var(u, c)) && x.get(self.var(v, c))))
        })
    }

    /// Greedy coloring (largest-degree-first); returns an assignment
    /// if the graph is greedily colorable with the available palette.
    pub fn greedy_coloring(&self) -> Option<Assignment> {
        let mut degree = vec![0usize; self.nodes];
        for &(u, v) in &self.edges {
            degree[u] += 1;
            degree[v] += 1;
        }
        let mut order: Vec<usize> = (0..self.nodes).collect();
        order.sort_by_key(|&v| std::cmp::Reverse(degree[v]));
        let mut color_of = vec![usize::MAX; self.nodes];
        for v in order {
            let mut used = vec![false; self.colors];
            for &(a, b) in &self.edges {
                let other = if a == v {
                    b
                } else if b == v {
                    a
                } else {
                    continue;
                };
                if color_of[other] != usize::MAX {
                    used[color_of[other]] = true;
                }
            }
            color_of[v] = (0..self.colors).find(|&c| !used[c])?;
        }
        let mut x = Assignment::zeros(self.dim());
        for (v, &c) in color_of.iter().enumerate() {
            x.set(self.var(v, c), true);
        }
        Some(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_three_coloring() {
        let g = GraphColoring::new(3, vec![(0, 1), (1, 2), (0, 2)], 3).unwrap();
        let x = g.greedy_coloring().expect("3-colorable");
        assert!(g.is_proper_coloring(&x));
        let q = g.objective_matrix(5.0);
        assert_eq!(q.energy(&x), g.proper_energy(5.0));
    }

    #[test]
    fn triangle_not_two_colorable() {
        let g = GraphColoring::new(3, vec![(0, 1), (1, 2), (0, 2)], 2).unwrap();
        assert!(g.greedy_coloring().is_none());
        // Exhaustive check: no proper 2-coloring exists.
        for bits in 0u32..(1 << 6) {
            let x = Assignment::from_bits((0..6).map(|i| bits >> i & 1 == 1));
            assert!(!g.is_proper_coloring(&x));
        }
    }

    #[test]
    fn improper_colorings_cost_more() {
        let g = GraphColoring::new(3, vec![(0, 1), (1, 2), (0, 2)], 3).unwrap();
        let q = g.objective_matrix(5.0);
        let proper = g.greedy_coloring().unwrap();
        let floor = q.energy(&proper);
        for bits in 0u32..(1 << 9) {
            let x = Assignment::from_bits((0..9).map(|i| bits >> i & 1 == 1));
            assert!(q.energy(&x) >= floor - 1e-9, "{x} beats a proper coloring");
            if !g.is_proper_coloring(&x) {
                assert!(q.energy(&x) > floor - 1e-9);
            }
        }
    }

    #[test]
    fn paper_scale_21_nodes() {
        // Table 1 [3]: 21-node graph coloring on a FeFET annealer.
        // Greedy needs up to maxdeg+1 colors; 6 suffices at this density.
        let g = GraphColoring::random(21, 0.25, 6, 7);
        let x = g.greedy_coloring().expect("sparse graph 6-colorable");
        assert!(g.is_proper_coloring(&x));
        assert_eq!(g.dim(), 21 * 6);
    }

    #[test]
    fn validation() {
        assert!(GraphColoring::new(0, vec![], 3).is_err());
        assert!(GraphColoring::new(3, vec![], 0).is_err());
        assert!(GraphColoring::new(2, vec![(0, 0)], 2).is_err());
        assert!(GraphColoring::new(2, vec![(0, 5)], 2).is_err());
    }

    #[test]
    fn sa_finds_proper_coloring() {
        let g = GraphColoring::random(12, 0.35, 4, 3);
        let q = g.objective_matrix(4.0);
        let mut rng = StdRng::seed_from_u64(4);
        let mut x = Assignment::zeros(g.dim());
        let mut e = q.energy(&x);
        let mut best = (x.clone(), e);
        for iter in 0..30_000 {
            let t = 3.0 * (1.0 - iter as f64 / 30_000.0) + 0.01;
            let i = rng.random_range(0..g.dim());
            let d = q.flip_delta(&x, i);
            if d <= 0.0 || rng.random::<f64>() < (-d / t).exp() {
                x.flip(i);
                e += d;
                if e < best.1 {
                    best = (x.clone(), e);
                }
            }
        }
        assert!(
            g.is_proper_coloring(&best.0),
            "SA failed to find a proper coloring (E = {})",
            best.1
        );
    }
}
