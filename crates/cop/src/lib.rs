//! Combinatorial-optimization-problem layer for the HyCiM reproduction.
//!
//! The paper evaluates on the **Quadratic Knapsack Problem** (QKP,
//! Sec 3.2 Eq. 3–4) using 40 instances of 100 items from the CNAM QKP
//! benchmark set \[28\]. This crate provides:
//!
//! * [`QkpInstance`] — the problem type, with conversions into the
//!   paper's inequality-QUBO form and the baseline D-QUBO form.
//! * [`generator`] — a seeded generator reproducing the benchmark
//!   construction (density-controlled profits, weights in 1..=50).
//! * [`parser`] — reader/writer for the CNAM `jeu_*.txt` text format,
//!   so the original instances can be dropped in.
//! * [`knapsack`] — the linear 0/1 knapsack special case with an exact
//!   dynamic-programming solver.
//! * [`binpack`] — bin packing (the paper's other motivating COP with
//!   inequality constraints), formulated with one inequality per bin.
//! * [`mkp`] — the multi-dimensional knapsack (one inequality per
//!   resource dimension), the second multi-constraint workload of the
//!   filter-bank pipeline.
//! * [`maxcut`] — Max-Cut (the unconstrained COP family of the
//!   paper's Table 1), lifted through a trivial constraint.
//! * [`coloring`], [`tsp`], [`spinglass`] — the remaining Table 1
//!   problem classes (equality-constrained and unconstrained),
//!   rounding out the "general COPs" coverage.
//! * [`wire`] — [`AnyProblem`], the family-tagged canonical text
//!   serialization that ships fully materialized instances across the
//!   `hycim-net` job protocol.
//! * [`solvers`] — reference solvers: exhaustive (small n), greedy,
//!   and local search, used to establish best-known values for the
//!   success-rate criterion (paper Sec 4.3).
//!
//! # Example
//!
//! ```
//! use hycim_cop::generator::QkpGenerator;
//! use hycim_cop::solvers;
//!
//! let instance = QkpGenerator::new(20, 0.5).generate(42);
//! let greedy = solvers::greedy(&instance);
//! assert!(instance.is_feasible(&greedy));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binpack;
pub mod coloring;
mod error;
pub mod generator;
pub mod knapsack;
pub mod maxcut;
pub mod mkp;
pub mod parser;
mod problem;
mod qkp;
pub mod solvers;
pub mod spinglass;
pub mod tsp;
pub mod wire;

pub use error::CopError;
pub use problem::{
    bin_packing_assignment_penalty, coloring_penalty_weight, tsp_penalty_weight, CopProblem,
};
pub use qkp::QkpInstance;
pub use wire::AnyProblem;
