//! Reference QKP solvers used to establish the "optimal QKP value" of
//! the paper's success criterion (Sec 4.3: success = reaching ≥ 95% of
//! the optimum).
//!
//! Exact optima for 100-item QKP are out of reach, so — as is standard
//! for this benchmark family — [`best_known`] combines a greedy
//! construction with randomized local search restarts and returns the
//! best value found. Exhaustive search is provided for small instances
//! and used to validate the heuristics in tests.

use hycim_qubo::Assignment;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{CopError, QkpInstance};

/// Exhaustive optimum for small instances.
///
/// # Errors
///
/// Returns [`CopError::TooLarge`] for more than 25 items.
///
/// # Example
///
/// ```
/// use hycim_cop::{solvers, QkpInstance};
///
/// # fn main() -> Result<(), hycim_cop::CopError> {
/// let inst = QkpInstance::new(vec![10, 6, 8], vec![4, 7, 2], 9)?;
/// let (x, value) = solvers::exhaustive(&inst)?;
/// assert_eq!(value, 18);
/// assert!(inst.is_feasible(&x));
/// # Ok(())
/// # }
/// ```
pub fn exhaustive(inst: &QkpInstance) -> Result<(Assignment, u64), CopError> {
    let n = inst.num_items();
    const LIMIT: usize = 25;
    if n > LIMIT {
        return Err(CopError::TooLarge {
            items: n,
            limit: LIMIT,
        });
    }
    let mut best_x = Assignment::zeros(n);
    let mut best_v = 0u64;
    for bits in 0u64..(1 << n) {
        let x = Assignment::from_bits((0..n).map(|i| bits >> i & 1 == 1));
        if inst.is_feasible(&x) {
            let v = inst.value(&x);
            if v > best_v {
                best_v = v;
                best_x = x;
            }
        }
    }
    Ok((best_x, best_v))
}

/// Greedy construction: repeatedly inserts the fitting item with the
/// best marginal profit density (marginal profit including pair
/// profits with already-selected items, divided by weight).
pub fn greedy(inst: &QkpInstance) -> Assignment {
    let n = inst.num_items();
    let mut x = Assignment::zeros(n);
    let mut load = 0u64;
    let mut remaining: Vec<usize> = (0..n).collect();
    loop {
        let mut best: Option<(usize, f64)> = None;
        for (pos, &i) in remaining.iter().enumerate() {
            if load + inst.weights()[i] > inst.capacity() {
                continue;
            }
            let marginal = marginal_profit(inst, &x, i);
            let density = marginal as f64 / inst.weights()[i] as f64;
            if best.map(|(_, d)| density > d).unwrap_or(true) {
                best = Some((pos, density));
            }
        }
        match best {
            Some((pos, _)) => {
                let i = remaining.swap_remove(pos);
                x.set(i, true);
                load += inst.weights()[i];
            }
            None => break,
        }
    }
    x
}

/// Profit gained by adding item `i` to the current selection.
fn marginal_profit(inst: &QkpInstance, x: &Assignment, i: usize) -> u64 {
    let mut gain = inst.item_profits()[i];
    for j in 0..inst.num_items() {
        if j != i && x.get(j) {
            gain += inst.pair_profit(i, j);
        }
    }
    gain
}

/// First-improvement local search over single flips and 1-in/1-out
/// swaps, maintaining feasibility. Returns the improved selection.
///
/// # Panics
///
/// Panics if `start.len() != inst.num_items()` or `start` is
/// infeasible.
pub fn local_search(inst: &QkpInstance, start: &Assignment) -> Assignment {
    assert!(
        inst.is_feasible(start),
        "local search needs a feasible start"
    );
    let n = inst.num_items();
    let mut x = start.clone();
    let mut value = inst.value(&x);
    let mut improved = true;
    while improved {
        improved = false;
        // Single-bit flips.
        for i in 0..n {
            let mut cand = x.clone();
            cand.flip(i);
            if inst.is_feasible(&cand) {
                let v = inst.value(&cand);
                if v > value {
                    x = cand;
                    value = v;
                    improved = true;
                }
            }
        }
        // Swap one selected item out, one unselected in.
        let selected: Vec<usize> = x.support();
        let unselected: Vec<usize> = (0..n).filter(|&i| !x.get(i)).collect();
        'swaps: for &out in &selected {
            for &inn in &unselected {
                let mut cand = x.clone();
                cand.set(out, false);
                cand.set(inn, true);
                if inst.is_feasible(&cand) {
                    let v = inst.value(&cand);
                    if v > value {
                        x = cand;
                        value = v;
                        improved = true;
                        break 'swaps;
                    }
                }
            }
        }
    }
    x
}

/// Best-known value for an instance: greedy + local search, plus
/// `restarts` randomized-start local searches. Deterministic in
/// `seed`.
///
/// This stands in for the "true optimal value" of the paper's success
/// criterion (see DESIGN.md §2 for the substitution rationale).
pub fn best_known(inst: &QkpInstance, restarts: usize, seed: u64) -> (Assignment, u64) {
    let mut best_x = local_search(inst, &greedy(inst));
    let mut best_v = inst.value(&best_x);
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..restarts {
        let start = random_feasible(inst, &mut rng);
        let x = local_search(inst, &start);
        let v = inst.value(&x);
        if v > best_v {
            best_v = v;
            best_x = x;
        }
    }
    (best_x, best_v)
}

/// Draws a random feasible selection by shuffling items and inserting
/// while they fit.
pub fn random_feasible<R: Rng + ?Sized>(inst: &QkpInstance, rng: &mut R) -> Assignment {
    let n = inst.num_items();
    let mut order: Vec<usize> = (0..n).collect();
    // Fisher-Yates shuffle.
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
    let mut x = Assignment::zeros(n);
    let mut load = 0u64;
    for i in order {
        if load + inst.weights()[i] <= inst.capacity() && rng.random_bool(0.8) {
            x.set(i, true);
            load += inst.weights()[i];
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::QkpGenerator;

    fn fig7e() -> QkpInstance {
        let mut inst = QkpInstance::new(vec![10, 6, 8], vec![4, 7, 2], 9).unwrap();
        inst.set_pair_profit(0, 1, 3);
        inst.set_pair_profit(0, 2, 7);
        inst.set_pair_profit(1, 2, 2);
        inst
    }

    #[test]
    fn exhaustive_fig7e() {
        let (x, v) = exhaustive(&fig7e()).unwrap();
        assert_eq!(v, 25);
        assert_eq!(x, Assignment::from_bits([true, false, true]));
    }

    #[test]
    fn exhaustive_rejects_large() {
        let inst = QkpGenerator::new(30, 0.5).generate(1);
        assert!(matches!(
            exhaustive(&inst),
            Err(CopError::TooLarge { items: 30, .. })
        ));
    }

    #[test]
    fn greedy_is_feasible_and_reasonable() {
        for seed in 0..10 {
            let inst = QkpGenerator::new(15, 0.5).generate(seed);
            let g = greedy(&inst);
            assert!(inst.is_feasible(&g), "greedy infeasible at seed {seed}");
            let (_, opt) = exhaustive(&inst).unwrap();
            let gv = inst.value(&g);
            assert!(
                gv as f64 >= 0.5 * opt as f64,
                "greedy {gv} below half of optimum {opt} at seed {seed}"
            );
        }
    }

    #[test]
    fn local_search_never_worsens() {
        for seed in 0..10 {
            let inst = QkpGenerator::new(15, 0.75).generate(seed);
            let g = greedy(&inst);
            let improved = local_search(&inst, &g);
            assert!(inst.is_feasible(&improved));
            assert!(inst.value(&improved) >= inst.value(&g));
        }
    }

    #[test]
    fn best_known_matches_exhaustive_on_small_instances() {
        for seed in 0..8 {
            let inst = QkpGenerator::new(12, 0.5).generate(seed);
            let (_, opt) = exhaustive(&inst).unwrap();
            let (bx, bv) = best_known(&inst, 20, seed);
            assert!(inst.is_feasible(&bx));
            assert!(
                bv as f64 >= 0.95 * opt as f64,
                "best known {bv} below 95% of {opt} at seed {seed}"
            );
        }
    }

    #[test]
    fn random_feasible_respects_capacity() {
        let inst = QkpGenerator::new(40, 0.5).generate(3);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let x = random_feasible(&inst, &mut rng);
            assert!(inst.is_feasible(&x));
        }
    }
}
