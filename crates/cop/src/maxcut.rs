//! Max-Cut — the canonical *unconstrained* COP of the paper's Table 1
//! lineage (\[29\] solves 60-node Max-Cut at 65% success). Included to
//! show that the HyCiM stack degrades gracefully to constraint-free
//! problems: the inequality filter becomes a trivially satisfied gate
//! and the pipeline reduces to a plain CiM annealer.

use hycim_qubo::{Assignment, InequalityQubo, LinearConstraint, QuboError, QuboMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::CopError;

/// An undirected weighted graph for Max-Cut: maximize the total weight
/// of edges crossing a binary partition.
///
/// # Example
///
/// ```
/// use hycim_cop::maxcut::MaxCut;
/// use hycim_qubo::Assignment;
///
/// # fn main() -> Result<(), hycim_cop::CopError> {
/// // A triangle with unit weights: best cut value is 2.
/// let g = MaxCut::new(3, vec![(0, 1, 1), (1, 2, 1), (0, 2, 1)])?;
/// let x = Assignment::from_bits([true, false, false]);
/// assert_eq!(g.cut_value(&x), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaxCut {
    nodes: usize,
    /// Edges as (u, v, weight), u < v, deduplicated by accumulation.
    edges: Vec<(usize, usize, u64)>,
}

impl MaxCut {
    /// Creates a Max-Cut instance from an edge list. Parallel edges
    /// accumulate; self-loops are rejected.
    ///
    /// # Errors
    ///
    /// * [`CopError::EmptyInstance`] for zero nodes.
    /// * [`CopError::SizeMismatch`] if an endpoint exceeds the node
    ///   count (reported via the profits/weights fields).
    pub fn new(nodes: usize, edges: Vec<(usize, usize, u64)>) -> Result<Self, CopError> {
        if nodes == 0 {
            return Err(CopError::EmptyInstance);
        }
        let mut canon: std::collections::BTreeMap<(usize, usize), u64> =
            std::collections::BTreeMap::new();
        for (u, v, w) in edges {
            if u >= nodes || v >= nodes || u == v {
                return Err(CopError::SizeMismatch {
                    profits: u.max(v),
                    weights: nodes,
                });
            }
            let key = (u.min(v), u.max(v));
            *canon.entry(key).or_insert(0) += w;
        }
        Ok(Self {
            nodes,
            edges: canon.into_iter().map(|((u, v), w)| (u, v, w)).collect(),
        })
    }

    /// Generates a random graph with edge probability `p` and unit
    /// weights, deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0` or `p` is outside `(0, 1]`.
    pub fn random(nodes: usize, p: f64, seed: u64) -> Self {
        assert!(nodes > 0, "need at least one node");
        assert!(p > 0.0 && p <= 1.0, "edge probability must be in (0, 1]");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for u in 0..nodes {
            for v in (u + 1)..nodes {
                if rng.random_bool(p) {
                    edges.push((u, v, 1));
                }
            }
        }
        Self::new(nodes, edges).expect("generated edges are valid")
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes
    }

    /// Canonical edge list (u < v).
    pub fn edges(&self) -> &[(usize, usize, u64)] {
        &self.edges
    }

    /// Total weight of edges crossing the partition `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.num_nodes()`.
    pub fn cut_value(&self, x: &Assignment) -> u64 {
        assert_eq!(x.len(), self.nodes, "partition length mismatch");
        self.edges
            .iter()
            .filter(|&&(u, v, _)| x.get(u) != x.get(v))
            .map(|&(_, _, w)| w)
            .sum()
    }

    /// QUBO matrix whose minimum is the negated max cut:
    /// `cut(x) = Σ w(xᵤ + xᵥ − 2xᵤxᵥ)`, so
    /// `Q = Σ w(−xᵤ − xᵥ + 2xᵤxᵥ)`.
    pub fn objective_matrix(&self) -> QuboMatrix {
        let mut q = QuboMatrix::zeros(self.nodes);
        for &(u, v, w) in &self.edges {
            let w = w as f64;
            q.add(u, u, -w);
            q.add(v, v, -w);
            q.add(u, v, 2.0 * w);
        }
        q
    }

    /// Lifts into an [`InequalityQubo`] with a trivially satisfied
    /// constraint (all weights 1, capacity = n), so the full HyCiM
    /// pipeline can run unconstrained problems unchanged.
    ///
    /// # Errors
    ///
    /// Propagates [`QuboError`] (cannot occur for a valid graph).
    pub fn to_inequality_qubo(&self) -> Result<InequalityQubo, QuboError> {
        let constraint = LinearConstraint::new(vec![1; self.nodes], self.nodes as u64)?;
        InequalityQubo::new(self.objective_matrix(), constraint)
    }

    /// Exhaustive maximum cut for small graphs.
    ///
    /// # Errors
    ///
    /// Returns [`CopError::TooLarge`] above 25 nodes.
    pub fn brute_force(&self) -> Result<(Assignment, u64), CopError> {
        const LIMIT: usize = 25;
        if self.nodes > LIMIT {
            return Err(CopError::TooLarge {
                items: self.nodes,
                limit: LIMIT,
            });
        }
        let mut best = (Assignment::zeros(self.nodes), 0);
        for bits in 0u64..(1 << self.nodes) {
            let x = Assignment::from_bits((0..self.nodes).map(|i| bits >> i & 1 == 1));
            let v = self.cut_value(&x);
            if v > best.1 {
                best = (x, v);
            }
        }
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_cut() {
        let g = MaxCut::new(3, vec![(0, 1, 1), (1, 2, 1), (0, 2, 1)]).unwrap();
        let (x, v) = g.brute_force().unwrap();
        assert_eq!(v, 2);
        assert_eq!(g.cut_value(&x), 2);
    }

    #[test]
    fn qubo_energy_is_negated_cut() {
        let g = MaxCut::random(10, 0.5, 1);
        let q = g.objective_matrix();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..30 {
            let x = Assignment::random(10, &mut rng);
            assert_eq!(q.energy(&x), -(g.cut_value(&x) as f64));
        }
    }

    #[test]
    fn inequality_lift_never_gates() {
        let g = MaxCut::random(8, 0.6, 3);
        let iq = g.to_inequality_qubo().unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..20 {
            let x = Assignment::random(8, &mut rng);
            assert!(iq.is_feasible(&x), "trivial constraint gated {x}");
            assert_eq!(iq.energy(&x), -(g.cut_value(&x) as f64));
        }
    }

    #[test]
    fn parallel_edges_accumulate() {
        let g = MaxCut::new(2, vec![(0, 1, 1), (1, 0, 2)]).unwrap();
        assert_eq!(g.edges(), &[(0, 1, 3)]);
    }

    #[test]
    fn rejects_bad_edges() {
        assert!(MaxCut::new(0, vec![]).is_err());
        assert!(MaxCut::new(2, vec![(0, 5, 1)]).is_err());
        assert!(MaxCut::new(2, vec![(1, 1, 1)]).is_err());
    }

    #[test]
    fn random_graphs_are_seed_deterministic() {
        assert_eq!(MaxCut::random(12, 0.4, 9), MaxCut::random(12, 0.4, 9));
        assert_ne!(MaxCut::random(12, 0.4, 9), MaxCut::random(12, 0.4, 10));
    }

    #[test]
    fn sa_solves_maxcut_through_the_stack() {
        // Unconstrained problems run through the same annealer.
        use hycim_qubo::Assignment as A;
        let g = MaxCut::random(16, 0.5, 5);
        let (_, opt) = g.brute_force().unwrap();
        let iq = g.to_inequality_qubo().unwrap();
        // Simple software SA (anneal crate is a dev-dependency of cop's
        // dependents, so use a local Metropolis loop here).
        let q = iq.objective().clone();
        let mut rng = StdRng::seed_from_u64(6);
        let mut x = A::zeros(16);
        let mut e = 0.0;
        let mut best = 0.0f64;
        for iter in 0..20_000 {
            let t = 4.0 * (1.0 - iter as f64 / 20_000.0) + 0.01;
            let i = rng.random_range(0..16);
            let d = q.flip_delta(&x, i);
            if d <= 0.0 || rng.random::<f64>() < (-d / t).exp() {
                x.flip(i);
                e += d;
                best = best.min(e);
            }
        }
        assert!(
            -best >= 0.95 * opt as f64,
            "SA reached {} of optimum {opt}",
            -best
        );
    }
}
