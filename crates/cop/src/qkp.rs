use std::fmt;

use hycim_qubo::dqubo::{AuxEncoding, DquboForm, PenaltyWeights};
use hycim_qubo::{Assignment, InequalityQubo, LinearConstraint, QuboError, QuboMatrix};

use crate::CopError;

/// A Quadratic Knapsack Problem instance (paper Eq. 3–4):
///
/// ```text
/// max Σᵢⱼ pᵢⱼ xᵢxⱼ   s.t.  Σᵢ wᵢxᵢ ≤ C,  xᵢ ∈ {0,1}
/// ```
///
/// `pᵢᵢ` is the individual profit of item `i`; `pᵢⱼ` (i ≠ j) is the
/// *additional* profit earned when items `i` and `j` are both selected
/// (stored once; the paper's symmetric double-sum convention counts it
/// via `pᵢⱼ = pⱼᵢ`).
///
/// # Example
///
/// ```
/// use hycim_cop::QkpInstance;
/// use hycim_qubo::Assignment;
///
/// # fn main() -> Result<(), hycim_cop::CopError> {
/// let mut inst = QkpInstance::new(vec![10, 6, 8], vec![4, 7, 2], 9)?;
/// inst.set_pair_profit(0, 2, 14);
/// let x = Assignment::from_bits([true, false, true]);
/// assert_eq!(inst.value(&x), 32);
/// assert!(inst.is_feasible(&x));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QkpInstance {
    name: String,
    /// Individual profits pᵢᵢ.
    item_profits: Vec<u64>,
    /// Pair profits pᵢⱼ for i < j, row-major upper triangle (diagonal
    /// excluded).
    pair_profits: Vec<u64>,
    weights: Vec<u64>,
    capacity: u64,
}

impl QkpInstance {
    /// Creates an instance with the given individual profits, item
    /// weights and capacity; all pair profits start at zero.
    ///
    /// # Errors
    ///
    /// * [`CopError::EmptyInstance`] for zero items.
    /// * [`CopError::SizeMismatch`] if profit and weight counts differ.
    /// * [`CopError::ZeroCapacity`] if `capacity == 0`.
    /// * [`CopError::ZeroWeight`] if any item weight is zero.
    pub fn new(item_profits: Vec<u64>, weights: Vec<u64>, capacity: u64) -> Result<Self, CopError> {
        if item_profits.is_empty() && weights.is_empty() {
            return Err(CopError::EmptyInstance);
        }
        if item_profits.len() != weights.len() {
            return Err(CopError::SizeMismatch {
                profits: item_profits.len(),
                weights: weights.len(),
            });
        }
        if capacity == 0 {
            return Err(CopError::ZeroCapacity);
        }
        if let Some(item) = weights.iter().position(|&w| w == 0) {
            return Err(CopError::ZeroWeight { item });
        }
        let n = item_profits.len();
        Ok(Self {
            name: String::new(),
            item_profits,
            pair_profits: vec![0; n * n.saturating_sub(1) / 2],
            weights,
            capacity,
        })
    }

    /// Sets the instance name (e.g. the benchmark file stem).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Instance name (empty if unnamed).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of items `n`.
    pub fn num_items(&self) -> usize {
        self.item_profits.len()
    }

    /// Knapsack capacity `C`.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Item weights.
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }

    /// Individual profits `pᵢᵢ`.
    pub fn item_profits(&self) -> &[u64] {
        &self.item_profits
    }

    fn pair_index(&self, i: usize, j: usize) -> usize {
        let n = self.num_items();
        debug_assert!(i < j && j < n);
        i * n - i * (i + 1) / 2 + (j - i - 1)
    }

    /// Pair profit `pᵢⱼ` (order-insensitive; `i == j` returns the
    /// individual profit).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn pair_profit(&self, i: usize, j: usize) -> u64 {
        let n = self.num_items();
        assert!(i < n && j < n, "item index out of bounds");
        if i == j {
            return self.item_profits[i];
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        self.pair_profits[self.pair_index(a, b)]
    }

    /// Sets the pair profit `pᵢⱼ = pⱼᵢ`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds or `i == j` (use the
    /// constructor or [`set_item_profit`](Self::set_item_profit)).
    pub fn set_pair_profit(&mut self, i: usize, j: usize, profit: u64) {
        let n = self.num_items();
        assert!(i < n && j < n, "item index out of bounds");
        assert_ne!(i, j, "diagonal profits are item profits");
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        let idx = self.pair_index(a, b);
        self.pair_profits[idx] = profit;
    }

    /// Sets the individual profit `pᵢᵢ`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn set_item_profit(&mut self, i: usize, profit: u64) {
        self.item_profits[i] = profit;
    }

    /// Objective value `Σ pᵢᵢxᵢ + Σ_{i<j} pᵢⱼxᵢxⱼ` of a selection
    /// (pair profits counted once, matching the benchmark convention).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.num_items()`.
    pub fn value(&self, x: &Assignment) -> u64 {
        let n = self.num_items();
        assert_eq!(x.len(), n, "assignment length mismatch");
        let mut v = 0;
        for i in 0..n {
            if !x.get(i) {
                continue;
            }
            v += self.item_profits[i];
            for j in (i + 1)..n {
                if x.get(j) {
                    v += self.pair_profits[self.pair_index(i, j)];
                }
            }
        }
        v
    }

    /// Total weight of the selection.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.num_items()`.
    pub fn load(&self, x: &Assignment) -> u64 {
        self.weights
            .iter()
            .zip(x.iter())
            .filter(|(_, b)| *b)
            .map(|(w, _)| *w)
            .sum()
    }

    /// Whether the selection respects the capacity.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.num_items()`.
    pub fn is_feasible(&self, x: &Assignment) -> bool {
        self.load(x) <= self.capacity
    }

    /// Largest profit coefficient (the `(Q_ij)MAX` of the HyCiM
    /// formulation; paper Fig. 9(a) reports 100 for the benchmark set).
    pub fn max_profit_coefficient(&self) -> u64 {
        let diag = self.item_profits.iter().copied().max().unwrap_or(0);
        let pair = self.pair_profits.iter().copied().max().unwrap_or(0);
        diag.max(pair)
    }

    /// The capacity constraint as a [`LinearConstraint`].
    pub fn constraint(&self) -> LinearConstraint {
        LinearConstraint::new(self.weights.clone(), self.capacity)
            .expect("instance invariants guarantee a valid constraint")
    }

    /// Negated-profit objective matrix: minimizing `xᵀQx` maximizes the
    /// QKP value (paper Eq. 5 with `pᵢⱼ = −qᵢⱼ`).
    pub fn objective_matrix(&self) -> QuboMatrix {
        let n = self.num_items();
        let mut q = QuboMatrix::zeros(n);
        for i in 0..n {
            q.set(i, i, -(self.item_profits[i] as f64));
            for j in (i + 1)..n {
                let p = self.pair_profits[self.pair_index(i, j)];
                if p != 0 {
                    q.set(i, j, -(p as f64));
                }
            }
        }
        q
    }

    /// Converts to the paper's inequality-QUBO form
    /// `min (Σwᵢxᵢ ≤ C)·xᵀQx` (Sec 3.2).
    ///
    /// # Errors
    ///
    /// Propagates [`QuboError`] from the underlying constructors
    /// (cannot occur for a valid instance).
    pub fn to_inequality_qubo(&self) -> Result<InequalityQubo, QuboError> {
        InequalityQubo::new(self.objective_matrix(), self.constraint())
    }

    /// Converts to the baseline D-QUBO form with penalty auxiliaries
    /// (paper Fig. 1(b)).
    ///
    /// # Errors
    ///
    /// Propagates [`QuboError`] from the transformation (cannot occur
    /// for a valid instance).
    pub fn to_dqubo(
        &self,
        weights: PenaltyWeights,
        encoding: AuxEncoding,
    ) -> Result<DquboForm, QuboError> {
        DquboForm::transform(
            &self.objective_matrix(),
            &self.constraint(),
            weights,
            encoding,
        )
    }

    /// QKP value recovered from an inequality-QUBO energy
    /// (`value = −energy` for feasible configurations).
    pub fn value_from_energy(&self, energy: f64) -> u64 {
        (-energy).round().max(0.0) as u64
    }

    /// Density: fraction of nonzero profit coefficients among all
    /// `n(n+1)/2` possible (the benchmark set uses 25–100%).
    pub fn density(&self) -> f64 {
        let nz = self.item_profits.iter().filter(|&&p| p != 0).count()
            + self.pair_profits.iter().filter(|&&p| p != 0).count();
        let total = self.item_profits.len() + self.pair_profits.len();
        nz as f64 / total as f64
    }
}

impl fmt::Display for QkpInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "QkpInstance({}n={}, C={}, density={:.0}%)",
            if self.name.is_empty() {
                String::new()
            } else {
                format!("{}, ", self.name)
            },
            self.num_items(),
            self.capacity,
            self.density() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 7(e) worked example.
    pub(crate) fn fig7e_instance() -> QkpInstance {
        let mut inst = QkpInstance::new(vec![10, 6, 8], vec![4, 7, 2], 9)
            .unwrap()
            .with_name("fig7e");
        inst.set_pair_profit(0, 1, 3);
        inst.set_pair_profit(0, 2, 7);
        inst.set_pair_profit(1, 2, 2);
        inst
    }

    #[test]
    fn construction_validation() {
        assert!(matches!(
            QkpInstance::new(vec![], vec![], 5),
            Err(CopError::EmptyInstance)
        ));
        assert!(matches!(
            QkpInstance::new(vec![1], vec![1, 2], 5),
            Err(CopError::SizeMismatch { .. })
        ));
        assert!(matches!(
            QkpInstance::new(vec![1], vec![1], 0),
            Err(CopError::ZeroCapacity)
        ));
        assert!(matches!(
            QkpInstance::new(vec![1, 2], vec![3, 0], 5),
            Err(CopError::ZeroWeight { item: 1 })
        ));
    }

    #[test]
    fn value_and_feasibility() {
        let inst = fig7e_instance();
        let x = Assignment::from_bits([true, false, true]);
        assert_eq!(inst.value(&x), 10 + 8 + 7);
        assert_eq!(inst.load(&x), 6);
        assert!(inst.is_feasible(&x));
        let all = Assignment::ones_vec(3);
        assert_eq!(inst.load(&all), 13);
        assert!(!inst.is_feasible(&all));
    }

    #[test]
    fn pair_profit_symmetry() {
        let inst = fig7e_instance();
        assert_eq!(inst.pair_profit(0, 2), inst.pair_profit(2, 0));
        assert_eq!(inst.pair_profit(1, 1), 6);
    }

    #[test]
    fn objective_matrix_negates_profits() {
        let inst = fig7e_instance();
        let q = inst.objective_matrix();
        let x = Assignment::from_bits([true, false, true]);
        assert_eq!(q.energy(&x), -(inst.value(&x) as f64));
        assert_eq!(inst.value_from_energy(q.energy(&x)), inst.value(&x));
    }

    #[test]
    fn inequality_qubo_gates_infeasible() {
        let inst = fig7e_instance();
        let iq = inst.to_inequality_qubo().unwrap();
        let all = Assignment::ones_vec(3);
        assert_eq!(iq.energy(&all), 0.0);
        let (best_x, best_e) = iq.brute_force_minimum();
        assert_eq!(inst.value(&best_x), 25);
        assert_eq!(best_e, -25.0);
    }

    #[test]
    fn dqubo_dimensions() {
        let inst = fig7e_instance();
        let d = inst
            .to_dqubo(PenaltyWeights::PAPER, AuxEncoding::OneHot)
            .unwrap();
        assert_eq!(d.dim(), 3 + 9);
        let db = inst
            .to_dqubo(PenaltyWeights::PAPER, AuxEncoding::Binary)
            .unwrap();
        assert_eq!(db.dim(), 3 + 4);
    }

    #[test]
    fn max_profit_coefficient() {
        let inst = fig7e_instance();
        assert_eq!(inst.max_profit_coefficient(), 10);
    }

    #[test]
    fn density_of_full_instance() {
        let inst = fig7e_instance();
        assert!((inst.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_contains_name() {
        assert!(fig7e_instance().to_string().contains("fig7e"));
    }
}
