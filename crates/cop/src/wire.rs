//! Wire serialization for problem instances — the payload format of
//! the `hycim-net` job protocol.
//!
//! A coordinator ships *fully materialized* instances (never generator
//! specs), so a worker reconstructs exactly the instance the
//! coordinator holds without replaying any RNG: [`AnyProblem`] wraps
//! one instance of any of the eight problem families behind a stable
//! `family tag + canonical text` encoding with
//! `from_wire(tag, to_wire()) == original` as the contract (pinned by
//! round-trip proptests in `tests/properties.rs`).
//!
//! Design rules, chosen for bit-identical distributed merges:
//!
//! * **Canonical text only.** Each family has exactly one serialized
//!   form; [`AnyProblem::from_wire`] rejects non-canonical input
//!   (trailing garbage, reflowed whitespace) with a line-numbered
//!   [`CopError::ParseFailure`] rather than normalizing it.
//! * **Exact floats.** `f64` payloads (TSP distances, spin-glass
//!   couplings) travel as IEEE-754 bit patterns via
//!   [`hycim_qubo::wire::encode_f64`], so a reconstructed instance is
//!   `==` the original down to the sign of zero.
//! * **Existing formats are reused.** QKP rides the CNAM text format
//!   ([`parser::write_qkp`]) and MKP the OR-Library-style layout
//!   ([`parser::write_mkp`]); the other six families get minimal
//!   line-oriented layouts in the same spirit.

use hycim_qubo::wire::{decode_f64, encode_f64};

use crate::binpack::BinPacking;
use crate::coloring::GraphColoring;
use crate::knapsack::Knapsack;
use crate::maxcut::MaxCut;
use crate::mkp::MultiKnapsack;
use crate::parser;
use crate::spinglass::SpinGlass;
use crate::tsp::Tsp;
use crate::{CopError, CopProblem, QkpInstance};

/// One instance of any of the eight problem families, ready to cross
/// the wire.
///
/// # Example
///
/// ```
/// use hycim_cop::maxcut::MaxCut;
/// use hycim_cop::wire::AnyProblem;
///
/// let p = AnyProblem::from(MaxCut::random(8, 0.5, 1));
/// let back = AnyProblem::from_wire(p.family_tag(), &p.to_wire()).unwrap();
/// assert_eq!(back, p);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum AnyProblem {
    /// Quadratic knapsack (CNAM text payload).
    Qkp(QkpInstance),
    /// Linear 0/1 knapsack.
    Knapsack(Knapsack),
    /// Max-cut.
    MaxCut(MaxCut),
    /// Sherrington–Kirkpatrick spin glass (explicit couplings).
    SpinGlass(SpinGlass),
    /// Travelling salesperson (full distance matrix).
    Tsp(Tsp),
    /// Graph coloring.
    Coloring(GraphColoring),
    /// Bin packing.
    BinPack(BinPacking),
    /// Multi-dimensional knapsack (OR-Library-style payload).
    Mkp(MultiKnapsack),
}

/// The family tags [`AnyProblem::from_wire`] accepts, in declaration
/// order (also the tags `StudyRecipe` uses for its `family` field).
pub const FAMILY_TAGS: [&str; 8] = [
    "qkp",
    "knapsack",
    "maxcut",
    "spinglass",
    "tsp",
    "coloring",
    "binpack",
    "mkp",
];

impl AnyProblem {
    /// Stable family tag carried next to the payload on the wire.
    pub fn family_tag(&self) -> &'static str {
        match self {
            AnyProblem::Qkp(_) => "qkp",
            AnyProblem::Knapsack(_) => "knapsack",
            AnyProblem::MaxCut(_) => "maxcut",
            AnyProblem::SpinGlass(_) => "spinglass",
            AnyProblem::Tsp(_) => "tsp",
            AnyProblem::Coloring(_) => "coloring",
            AnyProblem::BinPack(_) => "binpack",
            AnyProblem::Mkp(_) => "mkp",
        }
    }

    /// Number of binary variables of the QUBO encoding.
    pub fn dim(&self) -> usize {
        match self {
            AnyProblem::Qkp(p) => CopProblem::dim(p),
            AnyProblem::Knapsack(p) => CopProblem::dim(p),
            AnyProblem::MaxCut(p) => CopProblem::dim(p),
            AnyProblem::SpinGlass(p) => CopProblem::dim(p),
            AnyProblem::Tsp(p) => CopProblem::dim(p),
            AnyProblem::Coloring(p) => CopProblem::dim(p),
            AnyProblem::BinPack(p) => CopProblem::dim(p),
            AnyProblem::Mkp(p) => CopProblem::dim(p),
        }
    }

    /// Reference objective from the family's exact or heuristic
    /// solver, when affordable (see
    /// [`CopProblem::reference_objective`]) — so consumers holding an
    /// instance type-erased for transport can still score against the
    /// same reference a typed run would use.
    pub fn reference_objective(&self, seed: u64) -> Option<f64> {
        match self {
            AnyProblem::Qkp(p) => p.reference_objective(seed),
            AnyProblem::Knapsack(p) => p.reference_objective(seed),
            AnyProblem::MaxCut(p) => p.reference_objective(seed),
            AnyProblem::SpinGlass(p) => p.reference_objective(seed),
            AnyProblem::Tsp(p) => p.reference_objective(seed),
            AnyProblem::Coloring(p) => p.reference_objective(seed),
            AnyProblem::BinPack(p) => p.reference_objective(seed),
            AnyProblem::Mkp(p) => p.reference_objective(seed),
        }
    }

    /// Human-readable instance name (family tag + dimensions for
    /// families without an intrinsic name).
    pub fn name(&self) -> String {
        match self {
            AnyProblem::Qkp(p) => CopProblem::name(p),
            AnyProblem::Knapsack(p) => CopProblem::name(p),
            AnyProblem::MaxCut(p) => CopProblem::name(p),
            AnyProblem::SpinGlass(p) => CopProblem::name(p),
            AnyProblem::Tsp(p) => CopProblem::name(p),
            AnyProblem::Coloring(p) => CopProblem::name(p),
            AnyProblem::BinPack(p) => CopProblem::name(p),
            AnyProblem::Mkp(p) => CopProblem::name(p),
        }
    }

    /// Canonical text payload for this instance.
    pub fn to_wire(&self) -> String {
        match self {
            AnyProblem::Qkp(p) => parser::write_qkp(p),
            AnyProblem::Mkp(p) => parser::write_mkp(p),
            AnyProblem::Knapsack(p) => {
                let mut out = format!("{} {}\n", p.num_items(), p.capacity());
                out.push_str(&join_u64(p.profits()));
                out.push('\n');
                out.push_str(&join_u64(p.weights()));
                out.push('\n');
                out
            }
            AnyProblem::MaxCut(p) => {
                let mut out = format!("{} {}\n", p.num_nodes(), p.edges().len());
                for &(u, v, w) in p.edges() {
                    out.push_str(&format!("{u} {v} {w}\n"));
                }
                out
            }
            AnyProblem::SpinGlass(p) => {
                let mut out = format!("{}\n", p.num_spins());
                out.push_str(&join_f64(p.couplings()));
                out.push('\n');
                out
            }
            AnyProblem::Tsp(p) => {
                let n = p.num_cities();
                let mut out = format!("{n}\n");
                for a in 0..n {
                    let row: Vec<String> = (0..n).map(|b| encode_f64(p.distance(a, b))).collect();
                    out.push_str(&row.join(" "));
                    out.push('\n');
                }
                out
            }
            AnyProblem::Coloring(p) => {
                let mut out = format!("{} {} {}\n", p.num_nodes(), p.num_colors(), p.edges().len());
                for &(u, v) in p.edges() {
                    out.push_str(&format!("{u} {v}\n"));
                }
                out
            }
            AnyProblem::BinPack(p) => {
                let mut out = format!("{} {} {}\n", p.num_items(), p.num_bins(), p.capacity());
                out.push_str(&join_u64(p.sizes()));
                out.push('\n');
                out
            }
        }
    }

    /// Reconstructs an instance from its family tag and canonical
    /// payload.
    ///
    /// # Errors
    ///
    /// Returns [`CopError::ParseFailure`] naming the offending 1-based
    /// payload line on an unknown tag, malformed or non-canonical
    /// text, or trailing garbage; instance-validation failures (e.g. a
    /// coupling-count mismatch) propagate unchanged.
    pub fn from_wire(tag: &str, text: &str) -> Result<Self, CopError> {
        let parsed = match tag {
            "qkp" => AnyProblem::Qkp(parser::parse_qkp(text)?),
            "mkp" => AnyProblem::Mkp(parser::parse_mkp(text)?),
            "knapsack" => {
                let mut cur = Cursor::new(text);
                let (n, capacity) = cur.pair("item count", "capacity")?;
                let profits = cur.u64_row(n as usize, "profit")?;
                let weights = cur.u64_row(n as usize, "weight")?;
                cur.finish()?;
                AnyProblem::Knapsack(Knapsack::new(profits, weights, capacity)?)
            }
            "maxcut" => {
                let mut cur = Cursor::new(text);
                let (nodes, m) = cur.pair("node count", "edge count")?;
                let edges = (0..m)
                    .map(|_| cur.edge_weighted())
                    .collect::<Result<Vec<_>, _>>()?;
                cur.finish()?;
                AnyProblem::MaxCut(MaxCut::new(nodes as usize, edges)?)
            }
            "spinglass" => {
                let mut cur = Cursor::new(text);
                let n = cur.single("spin count")? as usize;
                let couplings = cur.f64_row(n * n.saturating_sub(1) / 2, "coupling")?;
                cur.finish()?;
                AnyProblem::SpinGlass(SpinGlass::from_couplings(n, couplings)?)
            }
            "tsp" => {
                let mut cur = Cursor::new(text);
                let n = cur.single("city count")? as usize;
                let mut dist = Vec::with_capacity(n * n);
                for _ in 0..n {
                    dist.extend(cur.f64_row(n, "distance")?);
                }
                cur.finish()?;
                AnyProblem::Tsp(Tsp::new(n, dist)?)
            }
            "coloring" => {
                let mut cur = Cursor::new(text);
                let (nodes, colors, m) = cur.triple("node count", "color count", "edge count")?;
                let edges = (0..m)
                    .map(|_| cur.edge_unweighted())
                    .collect::<Result<Vec<_>, _>>()?;
                cur.finish()?;
                AnyProblem::Coloring(GraphColoring::new(nodes as usize, edges, colors as usize)?)
            }
            "binpack" => {
                let mut cur = Cursor::new(text);
                let (items, bins, capacity) = cur.triple("item count", "bin count", "capacity")?;
                let sizes = cur.u64_row(items as usize, "size")?;
                cur.finish()?;
                AnyProblem::BinPack(BinPacking::new(sizes, capacity, bins as usize)?)
            }
            other => {
                return Err(CopError::ParseFailure {
                    line: 0,
                    reason: format!("unknown problem family tag {other:?}"),
                })
            }
        };
        // The two delegated parsers (QKP, MKP) are whitespace-flexible
        // and don't track where they stopped; enforce canonical form —
        // and thereby reject trailing garbage — by re-serializing.
        if matches!(parsed, AnyProblem::Qkp(_) | AnyProblem::Mkp(_)) && parsed.to_wire() != text {
            return Err(CopError::ParseFailure {
                line: first_divergent_line(&parsed.to_wire(), text),
                reason: format!("non-canonical {tag} payload (reflowed or trailing text)"),
            });
        }
        Ok(parsed)
    }
}

/// 1-based line where two texts first differ (for non-canonical
/// payload diagnostics).
fn first_divergent_line(canonical: &str, actual: &str) -> usize {
    let mut a = canonical.lines();
    let mut b = actual.lines();
    let mut line = 0usize;
    loop {
        line += 1;
        match (a.next(), b.next()) {
            (Some(x), Some(y)) if x == y => continue,
            (None, None) => return line.saturating_sub(1).max(1),
            _ => return line,
        }
    }
}

fn join_u64(xs: &[u64]) -> String {
    xs.iter().map(u64::to_string).collect::<Vec<_>>().join(" ")
}

fn join_f64(xs: &[f64]) -> String {
    xs.iter()
        .map(|&v| encode_f64(v))
        .collect::<Vec<_>>()
        .join(" ")
}

impl From<QkpInstance> for AnyProblem {
    fn from(p: QkpInstance) -> Self {
        AnyProblem::Qkp(p)
    }
}
impl From<Knapsack> for AnyProblem {
    fn from(p: Knapsack) -> Self {
        AnyProblem::Knapsack(p)
    }
}
impl From<MaxCut> for AnyProblem {
    fn from(p: MaxCut) -> Self {
        AnyProblem::MaxCut(p)
    }
}
impl From<SpinGlass> for AnyProblem {
    fn from(p: SpinGlass) -> Self {
        AnyProblem::SpinGlass(p)
    }
}
impl From<Tsp> for AnyProblem {
    fn from(p: Tsp) -> Self {
        AnyProblem::Tsp(p)
    }
}
impl From<GraphColoring> for AnyProblem {
    fn from(p: GraphColoring) -> Self {
        AnyProblem::Coloring(p)
    }
}
impl From<BinPacking> for AnyProblem {
    fn from(p: BinPacking) -> Self {
        AnyProblem::BinPack(p)
    }
}
impl From<MultiKnapsack> for AnyProblem {
    fn from(p: MultiKnapsack) -> Self {
        AnyProblem::Mkp(p)
    }
}

/// Strict line-oriented reader over a canonical payload: every line
/// must hold exactly the expected tokens, and [`finish`](Self::finish)
/// rejects anything left over — trailing garbage is a line-numbered
/// error, never silently ignored.
struct Cursor<'a> {
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            lines: text.lines().enumerate(),
        }
    }

    fn fail(line: usize, reason: String) -> CopError {
        CopError::ParseFailure { line, reason }
    }

    /// Next line's 1-based number and tokens; empty lines are errors
    /// (canonical payloads have none).
    fn row(&mut self, what: &str) -> Result<(usize, Vec<&'a str>), CopError> {
        match self.lines.next() {
            Some((idx, line)) => {
                let toks: Vec<&str> = line.split_whitespace().collect();
                if toks.is_empty() {
                    return Err(Self::fail(idx + 1, format!("blank line, expected {what}")));
                }
                Ok((idx + 1, toks))
            }
            None => Err(Self::fail(
                0,
                format!("unexpected end of payload, expected {what}"),
            )),
        }
    }

    fn fixed_row(&mut self, count: usize, what: &str) -> Result<(usize, Vec<&'a str>), CopError> {
        let (line, toks) = self.row(what)?;
        if toks.len() != count {
            return Err(Self::fail(
                line,
                format!("expected {count} {what} tokens, found {}", toks.len()),
            ));
        }
        Ok((line, toks))
    }

    fn parse_u64(line: usize, tok: &str, what: &str) -> Result<u64, CopError> {
        tok.parse::<u64>()
            .map_err(|_| Self::fail(line, format!("invalid {what} value {tok:?}")))
    }

    fn single(&mut self, what: &str) -> Result<u64, CopError> {
        let (line, toks) = self.fixed_row(1, what)?;
        Self::parse_u64(line, toks[0], what)
    }

    fn pair(&mut self, a: &str, b: &str) -> Result<(u64, u64), CopError> {
        let (line, toks) = self.fixed_row(2, "header")?;
        Ok((
            Self::parse_u64(line, toks[0], a)?,
            Self::parse_u64(line, toks[1], b)?,
        ))
    }

    fn triple(&mut self, a: &str, b: &str, c: &str) -> Result<(u64, u64, u64), CopError> {
        let (line, toks) = self.fixed_row(3, "header")?;
        Ok((
            Self::parse_u64(line, toks[0], a)?,
            Self::parse_u64(line, toks[1], b)?,
            Self::parse_u64(line, toks[2], c)?,
        ))
    }

    fn u64_row(&mut self, count: usize, what: &str) -> Result<Vec<u64>, CopError> {
        let (line, toks) = self.fixed_row(count, what)?;
        toks.iter()
            .map(|tok| Self::parse_u64(line, tok, what))
            .collect()
    }

    fn f64_row(&mut self, count: usize, what: &str) -> Result<Vec<f64>, CopError> {
        let (line, toks) = self.fixed_row(count, what)?;
        toks.iter()
            .map(|tok| {
                decode_f64(tok)
                    .ok_or_else(|| Self::fail(line, format!("invalid {what} bit-pattern {tok:?}")))
            })
            .collect()
    }

    fn edge_weighted(&mut self) -> Result<(usize, usize, u64), CopError> {
        let (line, toks) = self.fixed_row(3, "edge")?;
        Ok((
            Self::parse_u64(line, toks[0], "edge endpoint")? as usize,
            Self::parse_u64(line, toks[1], "edge endpoint")? as usize,
            Self::parse_u64(line, toks[2], "edge weight")?,
        ))
    }

    fn edge_unweighted(&mut self) -> Result<(usize, usize), CopError> {
        let (line, toks) = self.fixed_row(2, "edge")?;
        Ok((
            Self::parse_u64(line, toks[0], "edge endpoint")? as usize,
            Self::parse_u64(line, toks[1], "edge endpoint")? as usize,
        ))
    }

    /// Rejects any content after the payload (line-numbered).
    fn finish(&mut self) -> Result<(), CopError> {
        if let Some((idx, line)) = self.lines.next() {
            if !line.trim().is_empty() {
                return Err(Self::fail(
                    idx + 1,
                    format!("trailing garbage after payload: {:?}", line.trim()),
                ));
            }
            // Only a final empty fragment from a trailing newline is
            // tolerated; anything beyond it is garbage too.
            if let Some((idx2, l2)) = self.lines.next() {
                return Err(Self::fail(
                    idx2 + 1,
                    format!("trailing garbage after payload: {:?}", l2.trim()),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::QkpGenerator;
    use crate::mkp::MkpGenerator;
    use crate::solvers;

    fn samples() -> Vec<AnyProblem> {
        let _ = solvers::greedy; // keep the import graph honest
        vec![
            AnyProblem::from(QkpGenerator::new(8, 0.5).generate(1)),
            AnyProblem::from(Knapsack::new(vec![10, 6, 8], vec![4, 7, 2], 9).unwrap()),
            AnyProblem::from(MaxCut::random(9, 0.4, 2)),
            AnyProblem::from(SpinGlass::random_gaussian(7, 3).unwrap()),
            AnyProblem::from(Tsp::random_euclidean(5, 10.0, 4).unwrap()),
            AnyProblem::from(GraphColoring::random(6, 0.5, 3, 5)),
            AnyProblem::from(BinPacking::new(vec![3, 5, 2, 4], 7, 3).unwrap()),
            AnyProblem::from(MkpGenerator::new(8, 2).generate(6)),
        ]
    }

    #[test]
    fn every_family_round_trips() {
        for p in samples() {
            let back = AnyProblem::from_wire(p.family_tag(), &p.to_wire())
                .unwrap_or_else(|e| panic!("{}: {e}", p.family_tag()));
            assert_eq!(back, p, "{} round trip", p.family_tag());
            assert!(p.dim() > 0);
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn family_tags_are_stable_and_complete() {
        let tags: Vec<&str> = samples().iter().map(|p| p.family_tag()).collect();
        assert_eq!(tags, FAMILY_TAGS);
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let err = AnyProblem::from_wire("sudoku", "1\n").unwrap_err();
        assert!(matches!(err, CopError::ParseFailure { line: 0, .. }));
    }

    #[test]
    fn trailing_garbage_reports_its_line() {
        for p in samples() {
            let doctored = format!("{}junk\n", p.to_wire());
            let expect_line = doctored.lines().count();
            match AnyProblem::from_wire(p.family_tag(), &doctored) {
                Err(CopError::ParseFailure { line, reason }) => {
                    assert_eq!(
                        line,
                        expect_line,
                        "{}: wrong line in {reason:?}",
                        p.family_tag()
                    );
                }
                other => panic!("{}: expected parse failure, got {other:?}", p.family_tag()),
            }
        }
    }

    #[test]
    fn truncated_payloads_are_rejected() {
        for p in samples() {
            let full = p.to_wire();
            let cut = &full[..full.len() / 2];
            assert!(
                AnyProblem::from_wire(p.family_tag(), cut).is_err(),
                "{}: truncated payload accepted",
                p.family_tag()
            );
        }
    }

    #[test]
    fn exact_floats_survive_the_wire() {
        let tsp = Tsp::random_euclidean(6, 1.0, 9).unwrap();
        let p = AnyProblem::from(tsp.clone());
        match AnyProblem::from_wire("tsp", &p.to_wire()).unwrap() {
            AnyProblem::Tsp(back) => {
                for a in 0..6 {
                    for b in 0..6 {
                        assert_eq!(back.distance(a, b).to_bits(), tsp.distance(a, b).to_bits());
                    }
                }
            }
            other => panic!("wrong variant {other:?}"),
        }
    }
}
