use std::error::Error;
use std::fmt;

use hycim_qubo::QuboError;

/// Errors produced by the COP layer (instance construction, parsing,
/// and solver preconditions).
///
/// # Example
///
/// ```
/// use hycim_cop::{CopError, QkpInstance};
///
/// let err = QkpInstance::new(vec![], vec![], 10).unwrap_err();
/// assert!(matches!(err, CopError::EmptyInstance));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CopError {
    /// Instance has zero items.
    EmptyInstance,
    /// Profit matrix and weight vector disagree on the item count.
    SizeMismatch {
        /// Number of items implied by the profit matrix.
        profits: usize,
        /// Number of items implied by the weight vector.
        weights: usize,
    },
    /// A multi-constraint instance's weight-row count and capacity
    /// count disagree (one capacity per constraint dimension).
    DimensionCountMismatch {
        /// Number of weight rows (constraint dimensions) supplied.
        weight_rows: usize,
        /// Number of capacities supplied.
        capacities: usize,
    },
    /// A spin-glass coupling table has the wrong length for its spin
    /// count (must be `n·(n−1)/2` entries, `i < j` row-major).
    CouplingCountMismatch {
        /// Number of couplings the spin count requires.
        expected: usize,
        /// Number of couplings supplied.
        got: usize,
    },
    /// Capacity is zero.
    ZeroCapacity,
    /// An item weight is zero (items must consume capacity).
    ZeroWeight {
        /// Index of the offending item.
        item: usize,
    },
    /// A text instance file could not be parsed.
    ParseFailure {
        /// 1-based line number where parsing failed.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// Solver precondition violated (e.g. exhaustive search on a large
    /// instance).
    TooLarge {
        /// Item count supplied.
        items: usize,
        /// Maximum the solver supports.
        limit: usize,
    },
    /// A QUBO-layer error surfaced while encoding a problem (e.g. in
    /// [`CopProblem::to_inequality_qubo`](crate::CopProblem::to_inequality_qubo)).
    Qubo(QuboError),
}

impl fmt::Display for CopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CopError::EmptyInstance => write!(f, "instance has zero items"),
            CopError::SizeMismatch { profits, weights } => write!(
                f,
                "size mismatch: profit matrix has {profits} items, weight vector {weights}"
            ),
            CopError::DimensionCountMismatch {
                weight_rows,
                capacities,
            } => write!(
                f,
                "dimension count mismatch: {weight_rows} weight rows, {capacities} capacities"
            ),
            CopError::CouplingCountMismatch { expected, got } => write!(
                f,
                "coupling count mismatch: spin count requires {expected} couplings, got {got}"
            ),
            CopError::ZeroCapacity => write!(f, "knapsack capacity is zero"),
            CopError::ZeroWeight { item } => write!(f, "item {item} has zero weight"),
            CopError::ParseFailure { line, reason } => {
                write!(f, "parse failure at line {line}: {reason}")
            }
            CopError::TooLarge { items, limit } => {
                write!(
                    f,
                    "instance with {items} items exceeds solver limit {limit}"
                )
            }
            CopError::Qubo(e) => write!(f, "qubo encoding: {e}"),
        }
    }
}

impl Error for CopError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CopError::Qubo(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QuboError> for CopError {
    fn from(e: QuboError) -> Self {
        CopError::Qubo(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            CopError::EmptyInstance.to_string(),
            "instance has zero items"
        );
        assert!(CopError::ParseFailure {
            line: 3,
            reason: "bad token".into()
        }
        .to_string()
        .contains("line 3"));
        assert_eq!(
            CopError::DimensionCountMismatch {
                weight_rows: 2,
                capacities: 3
            }
            .to_string(),
            "dimension count mismatch: 2 weight rows, 3 capacities"
        );
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<CopError>();
    }
}
