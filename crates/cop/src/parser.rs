//! Reader/writer for the CNAM QKP text format \[28\]
//! (`http://cedric.cnam.fr/~soutif/QKP/`), so the paper's original 40
//! benchmark instances can be used verbatim when available, plus a
//! minimal single-instance multi-dimensional knapsack format
//! ([`parse_mkp`]/[`write_mkp`]).
//!
//! QKP format (whitespace-flexible):
//!
//! ```text
//! <reference name>
//! <n>
//! <n linear profit coefficients>
//! <n-1 lines: upper-triangular quadratic coefficients (row i has n-1-i entries)>
//! <blank line>
//! <0>                (knapsack type marker)
//! <capacity>
//! <n item weights>
//! ```
//!
//! MKP format (one instance per file; simpler than the OR-Library
//! `mknap` files, which prefix a problem count and carry an
//! optimal-value field — convert those before loading):
//!
//! ```text
//! <n> <m>
//! <n profits>
//! <m lines: n weights of one dimension>
//! <m capacities>
//! ```

use crate::mkp::MultiKnapsack;
use crate::{CopError, QkpInstance};

/// Parses a QKP instance from CNAM text format.
///
/// # Errors
///
/// Returns [`CopError::ParseFailure`] with the offending line on any
/// structural or numeric error, and propagates instance-validation
/// errors from [`QkpInstance::new`].
///
/// # Example
///
/// ```
/// use hycim_cop::parser::{parse_qkp, write_qkp};
/// use hycim_cop::QkpInstance;
///
/// # fn main() -> Result<(), hycim_cop::CopError> {
/// let mut inst = QkpInstance::new(vec![10, 6, 8], vec![4, 7, 2], 9)?;
/// inst.set_pair_profit(0, 2, 7);
/// let text = write_qkp(&inst.clone().with_name("demo"));
/// let parsed = parse_qkp(&text)?;
/// assert_eq!(parsed, inst.with_name("demo"));
/// # Ok(())
/// # }
/// ```
pub fn parse_qkp(text: &str) -> Result<QkpInstance, CopError> {
    let mut lines = text.lines().enumerate();

    let mut next_nonempty = |what: &str| -> Result<(usize, &str), CopError> {
        for (idx, line) in lines.by_ref() {
            if !line.trim().is_empty() {
                return Ok((idx + 1, line.trim()));
            }
        }
        Err(CopError::ParseFailure {
            line: 0,
            reason: format!("unexpected end of file, expected {what}"),
        })
    };

    let parse_nums = |line: usize, s: &str, what: &str| -> Result<Vec<u64>, CopError> {
        s.split_whitespace()
            .map(|tok| {
                tok.parse::<u64>().map_err(|_| CopError::ParseFailure {
                    line,
                    reason: format!("invalid {what} value {tok:?}"),
                })
            })
            .collect()
    };

    let (_, name_line) = next_nonempty("reference name")?;
    let name = name_line.to_string();

    let (nline, n_str) = next_nonempty("item count")?;
    let n: usize = n_str.parse().map_err(|_| CopError::ParseFailure {
        line: nline,
        reason: format!("invalid item count {n_str:?}"),
    })?;
    if n == 0 {
        return Err(CopError::ParseFailure {
            line: nline,
            reason: "item count is zero".into(),
        });
    }

    let (lline, lprofits) = next_nonempty("linear profits")?;
    let item_profits = parse_nums(lline, lprofits, "linear profit")?;
    if item_profits.len() != n {
        return Err(CopError::ParseFailure {
            line: lline,
            reason: format!("expected {n} linear profits, found {}", item_profits.len()),
        });
    }

    // n-1 upper-triangular rows; row i has n-1-i entries.
    let mut rows: Vec<Vec<u64>> = Vec::with_capacity(n.saturating_sub(1));
    for i in 0..n.saturating_sub(1) {
        let (rline, row) = next_nonempty("quadratic profit row")?;
        let vals = parse_nums(rline, row, "quadratic profit")?;
        if vals.len() != n - 1 - i {
            return Err(CopError::ParseFailure {
                line: rline,
                reason: format!(
                    "quadratic row {i} expected {} entries, found {}",
                    n - 1 - i,
                    vals.len()
                ),
            });
        }
        rows.push(vals);
    }

    let (tline, type_str) = next_nonempty("knapsack type marker")?;
    if type_str != "0" {
        return Err(CopError::ParseFailure {
            line: tline,
            reason: format!("unsupported knapsack type {type_str:?} (expected 0)"),
        });
    }

    let (cline, cap_str) = next_nonempty("capacity")?;
    let capacity: u64 = cap_str.parse().map_err(|_| CopError::ParseFailure {
        line: cline,
        reason: format!("invalid capacity {cap_str:?}"),
    })?;

    let (wline, w_str) = next_nonempty("item weights")?;
    let weights = parse_nums(wline, w_str, "weight")?;
    if weights.len() != n {
        return Err(CopError::ParseFailure {
            line: wline,
            reason: format!("expected {n} weights, found {}", weights.len()),
        });
    }

    let mut inst = QkpInstance::new(item_profits, weights, capacity)?.with_name(name);
    for (i, row) in rows.iter().enumerate() {
        for (off, &p) in row.iter().enumerate() {
            if p != 0 {
                inst.set_pair_profit(i, i + 1 + off, p);
            }
        }
    }
    Ok(inst)
}

/// Serializes a QKP instance to CNAM text format.
pub fn write_qkp(inst: &QkpInstance) -> String {
    let n = inst.num_items();
    let mut out = String::new();
    out.push_str(if inst.name().is_empty() {
        "unnamed"
    } else {
        inst.name()
    });
    out.push('\n');
    out.push_str(&format!("{n}\n"));
    let linear: Vec<String> = inst.item_profits().iter().map(u64::to_string).collect();
    out.push_str(&linear.join(" "));
    out.push('\n');
    for i in 0..n.saturating_sub(1) {
        let row: Vec<String> = ((i + 1)..n)
            .map(|j| inst.pair_profit(i, j).to_string())
            .collect();
        out.push_str(&row.join(" "));
        out.push('\n');
    }
    out.push('\n');
    out.push_str("0\n");
    out.push_str(&format!("{}\n", inst.capacity()));
    let weights: Vec<String> = inst.weights().iter().map(u64::to_string).collect();
    out.push_str(&weights.join(" "));
    out.push('\n');
    out
}

/// Parses a multi-dimensional knapsack instance from the module-level
/// MKP text layout (`<n> <m>`, `n` profits, `m` weight rows of `n`
/// entries each, `m` capacities; whitespace-flexible — numbers may
/// wrap across lines). Genuine OR-Library `mknap` files bundle many
/// instances with extra header/optimal-value fields and must be split
/// into this shape first.
///
/// # Errors
///
/// Returns [`CopError::ParseFailure`] (with the 1-based source line
/// of the offending token, or 0 for a truncated file) on any
/// structural or numeric error, and propagates instance-validation
/// errors from [`MultiKnapsack::new`].
///
/// # Example
///
/// ```
/// use hycim_cop::parser::{parse_mkp, write_mkp};
/// use hycim_cop::mkp::MultiKnapsack;
///
/// # fn main() -> Result<(), hycim_cop::CopError> {
/// let inst = MultiKnapsack::new(
///     vec![10, 6, 8],
///     vec![vec![4, 7, 2], vec![1, 2, 6]],
///     vec![9, 7],
/// )?;
/// assert_eq!(parse_mkp(&write_mkp(&inst))?, inst);
/// # Ok(())
/// # }
/// ```
pub fn parse_mkp(text: &str) -> Result<MultiKnapsack, CopError> {
    // The layout is token-oriented: read numbers in order, keeping
    // only the source line of each token for error reporting.
    let mut tokens = text
        .lines()
        .enumerate()
        .flat_map(|(idx, l)| l.split_whitespace().map(move |tok| (idx + 1, tok)));
    let mut next = |what: &str| -> Result<u64, CopError> {
        let (line, tok) = tokens.next().ok_or_else(|| CopError::ParseFailure {
            line: 0,
            reason: format!("unexpected end of file, expected {what}"),
        })?;
        tok.parse::<u64>().map_err(|_| CopError::ParseFailure {
            line,
            reason: format!("invalid {what} value {tok:?}"),
        })
    };

    let n = next("item count")? as usize;
    let m = next("dimension count")? as usize;
    if n == 0 || m == 0 {
        return Err(CopError::ParseFailure {
            line: 1,
            reason: format!("degenerate shape {n}×{m}"),
        });
    }
    let profits: Vec<u64> = (0..n).map(|_| next("profit")).collect::<Result<_, _>>()?;
    let weights: Vec<Vec<u64>> = (0..m)
        .map(|_| (0..n).map(|_| next("weight")).collect())
        .collect::<Result<_, _>>()?;
    let capacities: Vec<u64> = (0..m).map(|_| next("capacity")).collect::<Result<_, _>>()?;
    MultiKnapsack::new(profits, weights, capacities)
}

/// Serializes a multi-dimensional knapsack instance to the OR-Library
/// `mknap` text layout.
pub fn write_mkp(inst: &MultiKnapsack) -> String {
    let join = |xs: &[u64]| xs.iter().map(u64::to_string).collect::<Vec<_>>().join(" ");
    let mut out = format!("{} {}\n", inst.num_items(), inst.num_dimensions());
    out.push_str(&join(inst.profits()));
    out.push('\n');
    for d in 0..inst.num_dimensions() {
        out.push_str(&join(inst.weights(d)));
        out.push('\n');
    }
    out.push_str(&join(inst.capacities()));
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::QkpGenerator;
    use crate::mkp::MkpGenerator;

    const SAMPLE: &str = "\
jeu_3_100_1
3
10 6 8
3 7
2

0
9
4 7 2
";

    #[test]
    fn parses_sample() {
        let inst = parse_qkp(SAMPLE).unwrap();
        assert_eq!(inst.name(), "jeu_3_100_1");
        assert_eq!(inst.num_items(), 3);
        assert_eq!(inst.capacity(), 9);
        assert_eq!(inst.item_profits(), &[10, 6, 8]);
        assert_eq!(inst.weights(), &[4, 7, 2]);
        assert_eq!(inst.pair_profit(0, 1), 3);
        assert_eq!(inst.pair_profit(0, 2), 7);
        assert_eq!(inst.pair_profit(1, 2), 2);
    }

    #[test]
    fn roundtrip_generated_instances() {
        for seed in 0..5 {
            let inst = QkpGenerator::new(25, 0.5).generate(seed);
            let text = write_qkp(&inst);
            let parsed = parse_qkp(&text).unwrap();
            assert_eq!(parsed, inst);
        }
    }

    #[test]
    fn rejects_wrong_linear_count() {
        let bad = SAMPLE.replace("10 6 8", "10 6");
        let err = parse_qkp(&bad).unwrap_err();
        assert!(matches!(err, CopError::ParseFailure { line: 3, .. }));
    }

    #[test]
    fn rejects_wrong_type_marker() {
        let bad = SAMPLE.replace("\n0\n9", "\n1\n9");
        assert!(matches!(
            parse_qkp(&bad),
            Err(CopError::ParseFailure { .. })
        ));
    }

    #[test]
    fn rejects_truncated_file() {
        let truncated = "name\n3\n1 2 3\n";
        assert!(matches!(
            parse_qkp(truncated),
            Err(CopError::ParseFailure { .. })
        ));
    }

    #[test]
    fn rejects_non_numeric() {
        let bad = SAMPLE.replace('9', "x");
        assert!(matches!(
            parse_qkp(&bad),
            Err(CopError::ParseFailure { .. })
        ));
    }

    const MKP_SAMPLE: &str = "\
3 2
10 6 8
4 7 2
1 2 6
9 7
";

    #[test]
    fn parses_mkp_sample() {
        let inst = parse_mkp(MKP_SAMPLE).unwrap();
        assert_eq!(inst.num_items(), 3);
        assert_eq!(inst.num_dimensions(), 2);
        assert_eq!(inst.profits(), &[10, 6, 8]);
        assert_eq!(inst.weights(0), &[4, 7, 2]);
        assert_eq!(inst.weights(1), &[1, 2, 6]);
        assert_eq!(inst.capacities(), &[9, 7]);
    }

    #[test]
    fn mkp_tokens_may_wrap_lines() {
        let wrapped = "3 2\n10 6\n8\n4 7 2 1 2 6\n9\n7\n";
        assert_eq!(parse_mkp(wrapped).unwrap(), parse_mkp(MKP_SAMPLE).unwrap());
    }

    #[test]
    fn roundtrip_generated_mkp_instances() {
        for seed in 0..5 {
            let inst = MkpGenerator::new(14, 3).generate(seed);
            assert_eq!(parse_mkp(&write_mkp(&inst)).unwrap(), inst);
        }
    }

    #[test]
    fn mkp_rejects_truncated_and_non_numeric() {
        assert!(matches!(
            parse_mkp("3 2\n10 6 8\n4 7 2\n"),
            Err(CopError::ParseFailure { line: 0, .. })
        ));
        assert!(matches!(
            parse_mkp(&MKP_SAMPLE.replace('7', "x")),
            Err(CopError::ParseFailure { .. })
        ));
        assert!(matches!(
            parse_mkp("0 2\n"),
            Err(CopError::ParseFailure { .. })
        ));
    }

    #[test]
    fn mkp_errors_report_the_source_line() {
        // Corrupt the capacity row (line 5 of the sample layout): the
        // error must name that line, not a token index.
        let bad = MKP_SAMPLE.replace("9 7", "9 x");
        match parse_mkp(&bad) {
            Err(CopError::ParseFailure { line, reason }) => {
                assert_eq!(line, 5, "wrong source line: {reason}");
                assert!(reason.contains("capacity"));
            }
            other => panic!("expected a parse failure, got {other:?}"),
        }
    }
}
