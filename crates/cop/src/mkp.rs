//! The multi-dimensional 0/1 knapsack problem (MKP): one selection,
//! several resource budgets.
//!
//! Every item consumes capacity in `m` independent dimensions
//! (weight, volume, power, …) and a selection is feasible only when
//! **all** `m` budgets hold — a direct multi-inequality COP. On the
//! single-filter HyCiM pipeline the MKP can only run through an
//! aggregate relaxation (summing the dimensions into one constraint);
//! the filter *bank* evaluates one inequality per dimension in a
//! single matchline read, making the MKP exact in hardware. This is
//! the workload class the paper's bin-packing motivation (Sec 1)
//! generalizes to.

use hycim_qubo::{Assignment, LinearConstraint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::CopError;

/// A multi-dimensional knapsack instance: linear profits, an
/// `m × n` weight matrix (one row per resource dimension), and one
/// capacity per dimension.
///
/// # Example
///
/// ```
/// use hycim_cop::mkp::MultiKnapsack;
/// use hycim_qubo::Assignment;
///
/// # fn main() -> Result<(), hycim_cop::CopError> {
/// // 3 items, 2 resource dimensions.
/// let mkp = MultiKnapsack::new(
///     vec![10, 6, 8],
///     vec![vec![4, 7, 2], vec![1, 2, 6]],
///     vec![9, 7],
/// )?;
/// let x = Assignment::from_bits([true, false, true]);
/// assert!(mkp.is_feasible(&x)); // loads (6, 7) within (9, 7)
/// assert_eq!(mkp.value(&x), 18);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiKnapsack {
    profits: Vec<u64>,
    /// Row-major: `weights[d][i]` is item `i`'s consumption in
    /// dimension `d`.
    weights: Vec<Vec<u64>>,
    capacities: Vec<u64>,
}

impl MultiKnapsack {
    /// Creates an MKP instance.
    ///
    /// # Errors
    ///
    /// * [`CopError::EmptyInstance`] for zero items or zero dimensions.
    /// * [`CopError::DimensionCountMismatch`] when the weight-row
    ///   count and the capacity count disagree.
    /// * [`CopError::SizeMismatch`] when a weight row disagrees with
    ///   the profit vector on the item count.
    /// * [`CopError::ZeroCapacity`] for a zero capacity in any
    ///   dimension.
    /// * [`CopError::ZeroWeight`] for an item consuming nothing in any
    ///   dimension (it would never be filtered; give it a 1-unit
    ///   footprint instead).
    pub fn new(
        profits: Vec<u64>,
        weights: Vec<Vec<u64>>,
        capacities: Vec<u64>,
    ) -> Result<Self, CopError> {
        if profits.is_empty() || weights.is_empty() {
            return Err(CopError::EmptyInstance);
        }
        if weights.len() != capacities.len() {
            return Err(CopError::DimensionCountMismatch {
                weight_rows: weights.len(),
                capacities: capacities.len(),
            });
        }
        for row in &weights {
            if row.len() != profits.len() {
                return Err(CopError::SizeMismatch {
                    profits: profits.len(),
                    weights: row.len(),
                });
            }
        }
        if capacities.contains(&0) {
            return Err(CopError::ZeroCapacity);
        }
        for i in 0..profits.len() {
            if weights.iter().all(|row| row[i] == 0) {
                return Err(CopError::ZeroWeight { item: i });
            }
        }
        Ok(Self {
            profits,
            weights,
            capacities,
        })
    }

    /// Number of items `n`.
    pub fn num_items(&self) -> usize {
        self.profits.len()
    }

    /// Number of resource dimensions `m`.
    pub fn num_dimensions(&self) -> usize {
        self.capacities.len()
    }

    /// Item profits.
    pub fn profits(&self) -> &[u64] {
        &self.profits
    }

    /// Weight row of one dimension.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is out of range.
    pub fn weights(&self, dim: usize) -> &[u64] {
        &self.weights[dim]
    }

    /// Per-dimension capacities.
    pub fn capacities(&self) -> &[u64] {
        &self.capacities
    }

    /// Profit of a selection.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.num_items()`.
    pub fn value(&self, x: &Assignment) -> u64 {
        assert_eq!(x.len(), self.num_items(), "selection length mismatch");
        self.profits
            .iter()
            .zip(x.iter())
            .filter(|(_, b)| *b)
            .map(|(p, _)| *p)
            .sum()
    }

    /// Load of one dimension under a selection.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is out of range or `x.len() != self.num_items()`.
    pub fn load(&self, x: &Assignment, dim: usize) -> u64 {
        assert_eq!(x.len(), self.num_items(), "selection length mismatch");
        self.weights[dim]
            .iter()
            .zip(x.iter())
            .filter(|(_, b)| *b)
            .map(|(w, _)| *w)
            .sum()
    }

    /// Whether every dimension's budget holds.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.num_items()`.
    pub fn is_feasible(&self, x: &Assignment) -> bool {
        (0..self.num_dimensions()).all(|d| self.load(x, d) <= self.capacities[d])
    }

    /// One [`LinearConstraint`] per resource dimension — the filter
    /// bank's programming, in dimension order.
    pub fn dimension_constraints(&self) -> Vec<LinearConstraint> {
        self.weights
            .iter()
            .zip(&self.capacities)
            .map(|(row, &cap)| {
                LinearConstraint::new(row.clone(), cap)
                    .expect("instance invariants guarantee a valid constraint")
            })
            .collect()
    }

    /// The aggregate single-constraint relaxation
    /// `Σᵢ (Σ_d w_{d,i}) xᵢ ≤ Σ_d C_d`: necessary but not sufficient,
    /// so the single-filter pipeline can run the MKP at the cost of
    /// admitting some dimension-wise violations (the gap the
    /// `fig_bank` report quantifies).
    pub fn aggregate_constraint(&self) -> LinearConstraint {
        let n = self.num_items();
        let weights: Vec<u64> = (0..n)
            .map(|i| self.weights.iter().map(|row| row[i]).sum())
            .collect();
        let capacity = self.capacities.iter().sum();
        LinearConstraint::new(weights, capacity)
            .expect("instance invariants guarantee a valid constraint")
    }

    /// Exhaustive optimum for small instances.
    ///
    /// # Errors
    ///
    /// Returns [`CopError::TooLarge`] for more than 25 items.
    pub fn solve_exact(&self) -> Result<(Assignment, u64), CopError> {
        let n = self.num_items();
        const LIMIT: usize = 25;
        if n > LIMIT {
            return Err(CopError::TooLarge {
                items: n,
                limit: LIMIT,
            });
        }
        let mut best_x = Assignment::zeros(n);
        let mut best_v = 0u64;
        for bits in 0u64..(1 << n) {
            let x = Assignment::from_bits((0..n).map(|i| bits >> i & 1 == 1));
            if self.is_feasible(&x) {
                let v = self.value(&x);
                if v > best_v {
                    best_v = v;
                    best_x = x;
                }
            }
        }
        Ok((best_x, best_v))
    }

    /// Greedy construction: repeatedly inserts the fitting item with
    /// the best profit per unit of (normalized) aggregate consumption.
    /// The standard MKP surrogate-density heuristic; always feasible.
    pub fn greedy(&self) -> Assignment {
        let n = self.num_items();
        let m = self.num_dimensions();
        let mut x = Assignment::zeros(n);
        let mut loads = vec![0u64; m];
        let mut remaining: Vec<usize> = (0..n).collect();
        loop {
            let mut best: Option<(usize, f64)> = None;
            for (pos, &i) in remaining.iter().enumerate() {
                if (0..m).any(|d| loads[d] + self.weights[d][i] > self.capacities[d]) {
                    continue;
                }
                // Normalize each dimension by its capacity so a tight
                // dimension dominates the density.
                let cost: f64 = (0..m)
                    .map(|d| self.weights[d][i] as f64 / self.capacities[d] as f64)
                    .sum();
                let density = self.profits[i] as f64 / cost.max(f64::MIN_POSITIVE);
                if best.map(|(_, d)| density > d).unwrap_or(true) {
                    best = Some((pos, density));
                }
            }
            match best {
                Some((pos, _)) => {
                    let i = remaining.swap_remove(pos);
                    x.set(i, true);
                    for (load, row) in loads.iter_mut().zip(&self.weights) {
                        *load += row[i];
                    }
                }
                None => break,
            }
        }
        x
    }

    /// Reference value: the exhaustive optimum up to 25 items, the
    /// greedy value beyond.
    pub fn reference_value(&self) -> u64 {
        match self.solve_exact() {
            Ok((_, opt)) => opt,
            Err(_) => self.value(&self.greedy()),
        }
    }

    /// Draws a random feasible selection by shuffled insertion
    /// against all dimension budgets.
    pub fn random_feasible<R: Rng + ?Sized>(&self, rng: &mut R) -> Assignment {
        let n = self.num_items();
        let m = self.num_dimensions();
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        let mut x = Assignment::zeros(n);
        let mut loads = vec![0u64; m];
        for i in order {
            let fits = (0..m).all(|d| loads[d] + self.weights[d][i] <= self.capacities[d]);
            if fits && rng.random_bool(0.7) {
                x.set(i, true);
                for (load, row) in loads.iter_mut().zip(&self.weights) {
                    *load += row[i];
                }
            }
        }
        x
    }
}

/// Seeded generator of MKP instances with filter-mappable magnitudes:
/// per-dimension weights within the filter's 64-unit column budget and
/// capacities drawn as a fraction of the dimension's total weight.
///
/// # Example
///
/// ```
/// use hycim_cop::mkp::MkpGenerator;
///
/// let inst = MkpGenerator::new(12, 3).generate(7);
/// assert_eq!(inst.num_items(), 12);
/// assert_eq!(inst.num_dimensions(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MkpGenerator {
    n: usize,
    dims: usize,
    max_profit: u64,
    max_weight: u64,
    tightness: f64,
}

impl MkpGenerator {
    /// Creates a generator for `n`-item, `dims`-dimension instances.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `dims == 0`.
    pub fn new(n: usize, dims: usize) -> Self {
        assert!(n > 0, "need at least one item");
        assert!(dims > 0, "need at least one dimension");
        Self {
            n,
            dims,
            max_profit: 100,
            max_weight: 20,
            tightness: 0.5,
        }
    }

    /// Overrides the maximum per-dimension item weight (default 20,
    /// comfortably below the filter's 64-unit column budget).
    ///
    /// # Panics
    ///
    /// Panics if `max_weight == 0`.
    pub fn with_max_weight(mut self, max_weight: u64) -> Self {
        assert!(max_weight > 0, "max weight must be positive");
        self.max_weight = max_weight;
        self
    }

    /// Overrides the maximum item profit (default 100).
    ///
    /// # Panics
    ///
    /// Panics if `max_profit == 0`.
    pub fn with_max_profit(mut self, max_profit: u64) -> Self {
        assert!(max_profit > 0, "max profit must be positive");
        self.max_profit = max_profit;
        self
    }

    /// Overrides the capacity tightness: each dimension's capacity is
    /// `tightness × Σᵢ w_{d,i}` (default 0.5, the classic
    /// Chu–Beasley setting).
    ///
    /// # Panics
    ///
    /// Panics if `tightness` is outside `(0.0, 1.0]`.
    pub fn with_tightness(mut self, tightness: f64) -> Self {
        assert!(
            tightness > 0.0 && tightness <= 1.0,
            "tightness must be in (0, 1], got {tightness}"
        );
        self.tightness = tightness;
        self
    }

    /// Generates one instance deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> MultiKnapsack {
        let mut rng = StdRng::seed_from_u64(seed);
        let profits: Vec<u64> = (0..self.n)
            .map(|_| rng.random_range(1..=self.max_profit))
            .collect();
        let weights: Vec<Vec<u64>> = (0..self.dims)
            .map(|_| {
                (0..self.n)
                    .map(|_| rng.random_range(1..=self.max_weight))
                    .collect()
            })
            .collect();
        let capacities: Vec<u64> = weights
            .iter()
            .map(|row| {
                let total: u64 = row.iter().sum();
                let max_w = *row.iter().max().expect("n > 0");
                // Tightness-scaled, but always fitting the heaviest
                // single item and never trivial.
                (((total as f64) * self.tightness) as u64)
                    .max(max_w)
                    .min(total.saturating_sub(1).max(max_w))
            })
            .collect();
        MultiKnapsack::new(profits, weights, capacities)
            .expect("generator invariants yield a valid instance")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> MultiKnapsack {
        MultiKnapsack::new(
            vec![10, 6, 8],
            vec![vec![4, 7, 2], vec![1, 2, 6]],
            vec![9, 7],
        )
        .unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(matches!(
            MultiKnapsack::new(vec![], vec![], vec![]),
            Err(CopError::EmptyInstance)
        ));
        assert!(matches!(
            MultiKnapsack::new(vec![1], vec![vec![1]], vec![1, 2]),
            Err(CopError::DimensionCountMismatch {
                weight_rows: 1,
                capacities: 2
            })
        ));
        assert!(matches!(
            MultiKnapsack::new(vec![1, 2], vec![vec![1]], vec![5]),
            Err(CopError::SizeMismatch { .. })
        ));
        assert!(matches!(
            MultiKnapsack::new(vec![1], vec![vec![1]], vec![0]),
            Err(CopError::ZeroCapacity)
        ));
        assert!(matches!(
            MultiKnapsack::new(vec![1, 2], vec![vec![1, 0], vec![1, 0]], vec![5, 5]),
            Err(CopError::ZeroWeight { item: 1 })
        ));
        // Zero in one dimension is fine if another dimension charges it.
        assert!(MultiKnapsack::new(vec![1, 2], vec![vec![1, 0], vec![0, 3]], vec![5, 5]).is_ok());
    }

    #[test]
    fn feasibility_needs_every_dimension() {
        let mkp = example();
        // Items 0 and 1: dim-0 load 11 > 9.
        assert!(!mkp.is_feasible(&Assignment::from_bits([true, true, false])));
        // Items 1 and 2: dim-0 load 9 ≤ 9 but dim-1 load 8 > 7.
        assert!(!mkp.is_feasible(&Assignment::from_bits([false, true, true])));
        // Items 0 and 2: loads (6, 7) — both within budget.
        let ok = Assignment::from_bits([true, false, true]);
        assert!(mkp.is_feasible(&ok));
        assert_eq!(mkp.load(&ok, 0), 6);
        assert_eq!(mkp.load(&ok, 1), 7);
    }

    #[test]
    fn dimension_constraints_match_domain_arithmetic() {
        let mkp = example();
        let cons = mkp.dimension_constraints();
        assert_eq!(cons.len(), 2);
        for bits in 0u64..8 {
            let x = Assignment::from_bits((0..3).map(|i| bits >> i & 1 == 1));
            assert_eq!(
                cons.iter().all(|c| c.is_satisfied(&x)),
                mkp.is_feasible(&x),
                "constraint mismatch at {x}"
            );
            for (d, c) in cons.iter().enumerate() {
                assert_eq!(c.load(&x), mkp.load(&x, d));
            }
        }
    }

    #[test]
    fn aggregate_constraint_is_a_relaxation() {
        let mkp = example();
        let agg = mkp.aggregate_constraint();
        assert_eq!(agg.capacity(), 16);
        assert_eq!(agg.weights(), &[5, 9, 8]);
        for bits in 0u64..8 {
            let x = Assignment::from_bits((0..3).map(|i| bits >> i & 1 == 1));
            if mkp.is_feasible(&x) {
                assert!(agg.is_satisfied(&x), "relaxation rejected a feasible {x}");
            }
        }
        // And it is a *strict* relaxation on this instance: items 1+2
        // pass the aggregate (17 > 16? no: 9+8=17 > 16 → rejected).
        // Items 0+1 load 14 ≤ 16 aggregate but violate dim 0.
        let x = Assignment::from_bits([true, true, false]);
        assert!(agg.is_satisfied(&x) && !mkp.is_feasible(&x));
    }

    #[test]
    fn exact_solver_finds_optimum() {
        let mkp = example();
        let (x, v) = mkp.solve_exact().unwrap();
        assert_eq!(v, 18);
        assert_eq!(x, Assignment::from_bits([true, false, true]));
        assert_eq!(mkp.reference_value(), 18);
    }

    #[test]
    fn greedy_is_feasible_and_bounded() {
        for seed in 0..10 {
            let mkp = MkpGenerator::new(12, 3).generate(seed);
            let g = mkp.greedy();
            assert!(mkp.is_feasible(&g), "greedy infeasible at seed {seed}");
            let (_, opt) = mkp.solve_exact().unwrap();
            assert!(mkp.value(&g) <= opt);
            assert!(
                mkp.value(&g) as f64 >= 0.5 * opt as f64,
                "greedy {} below half of optimum {opt} at seed {seed}",
                mkp.value(&g)
            );
        }
    }

    #[test]
    fn random_feasible_respects_every_budget() {
        let mkp = MkpGenerator::new(20, 4).generate(3);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            assert!(mkp.is_feasible(&mkp.random_feasible(&mut rng)));
        }
    }

    #[test]
    fn generator_is_deterministic_and_in_range() {
        let generator = MkpGenerator::new(15, 2)
            .with_max_weight(10)
            .with_max_profit(30)
            .with_tightness(0.4);
        assert_eq!(generator.generate(1), generator.generate(1));
        assert_ne!(generator.generate(1), generator.generate(2));
        let inst = generator.generate(5);
        assert!(inst.profits().iter().all(|&p| (1..=30).contains(&p)));
        for d in 0..2 {
            assert!(inst.weights(d).iter().all(|&w| (1..=10).contains(&w)));
            let total: u64 = inst.weights(d).iter().sum();
            assert!(inst.capacities()[d] < total, "trivial dimension {d}");
            assert!(inst.capacities()[d] >= *inst.weights(d).iter().max().unwrap());
        }
    }

    #[test]
    fn exact_solver_rejects_large() {
        let mkp = MkpGenerator::new(30, 2).generate(1);
        assert!(matches!(
            mkp.solve_exact(),
            Err(CopError::TooLarge { items: 30, .. })
        ));
        // Reference value falls back to greedy.
        assert_eq!(mkp.reference_value(), mkp.value(&mkp.greedy()));
    }
}
