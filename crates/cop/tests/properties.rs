//! Property-based tests of the COP layer, including the
//! encode/decode round-trip laws of the [`CopProblem`] trait.

use hycim_cop::binpack::BinPacking;
use hycim_cop::coloring::GraphColoring;
use hycim_cop::generator::QkpGenerator;
use hycim_cop::knapsack::Knapsack;
use hycim_cop::maxcut::MaxCut;
use hycim_cop::mkp::MkpGenerator;
use hycim_cop::{parser, solvers, CopProblem, QkpInstance};
use hycim_qubo::Assignment;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_small_instance() -> impl Strategy<Value = QkpInstance> {
    (2usize..12).prop_flat_map(|n| {
        (
            proptest::collection::vec(0u64..=100, n),
            proptest::collection::vec(1u64..=50, n),
            1u64..=300,
            proptest::collection::vec(0u64..=100, n * (n - 1) / 2),
        )
            .prop_map(move |(profits, weights, cap_raw, pairs)| {
                let max_w = *weights.iter().max().expect("n >= 2");
                let capacity = cap_raw.max(max_w);
                let mut inst = QkpInstance::new(profits, weights, capacity).expect("valid");
                let mut it = pairs.into_iter();
                for i in 0..n {
                    for j in (i + 1)..n {
                        inst.set_pair_profit(i, j, it.next().expect("sized"));
                    }
                }
                inst
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// CNAM text round-trip is lossless for arbitrary instances.
    #[test]
    fn parser_roundtrip(inst in arb_small_instance()) {
        let text = parser::write_qkp(&inst);
        let parsed = parser::parse_qkp(&text).expect("own output parses");
        // Names differ (unnamed → "unnamed"); compare content.
        prop_assert_eq!(parsed.item_profits(), inst.item_profits());
        prop_assert_eq!(parsed.weights(), inst.weights());
        prop_assert_eq!(parsed.capacity(), inst.capacity());
        for i in 0..inst.num_items() {
            for j in (i + 1)..inst.num_items() {
                prop_assert_eq!(parsed.pair_profit(i, j), inst.pair_profit(i, j));
            }
        }
    }

    /// Greedy always yields a feasible selection whose value the
    /// exhaustive optimum dominates.
    #[test]
    fn greedy_bounded_by_optimum(inst in arb_small_instance()) {
        let g = solvers::greedy(&inst);
        prop_assert!(inst.is_feasible(&g));
        let (_, opt) = solvers::exhaustive(&inst).expect("small");
        prop_assert!(inst.value(&g) <= opt);
    }

    /// Local search never worsens and never leaves the feasible set.
    #[test]
    fn local_search_improves(inst in arb_small_instance(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let start = solvers::random_feasible(&inst, &mut rng);
        let improved = solvers::local_search(&inst, &start);
        prop_assert!(inst.is_feasible(&improved));
        prop_assert!(inst.value(&improved) >= inst.value(&start));
    }

    /// The QKP value function is supermodular-consistent with its
    /// parts: value(x) ≥ Σ item profits of the selection.
    #[test]
    fn value_at_least_linear_part(inst in arb_small_instance(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Assignment::random(inst.num_items(), &mut rng);
        let linear: u64 = inst.item_profits().iter().zip(x.iter())
            .filter(|(_, b)| *b).map(|(p, _)| *p).sum();
        prop_assert!(inst.value(&x) >= linear);
    }

    /// Linear-knapsack DP equals exhaustive search.
    #[test]
    fn knapsack_dp_is_exact(
        profits in proptest::collection::vec(1u64..=40, 1..12),
        weights_raw in proptest::collection::vec(1u64..=20, 12),
        cap in 1u64..=60,
    ) {
        let n = profits.len();
        let weights = weights_raw[..n].to_vec();
        let ks = Knapsack::new(profits, weights, cap).expect("valid");
        let (dp_x, dp_v) = ks.solve_exact();
        prop_assert!(ks.is_feasible(&dp_x));
        prop_assert_eq!(ks.value(&dp_x), dp_v);
        let mut best = 0;
        for bits in 0u64..(1 << n) {
            let x = Assignment::from_bits((0..n).map(|i| bits >> i & 1 == 1));
            if ks.is_feasible(&x) {
                best = best.max(ks.value(&x));
            }
        }
        prop_assert_eq!(dp_v, best);
    }

    /// Generated instances always satisfy the documented invariants.
    #[test]
    fn generator_invariants(n in 2usize..60, d_pick in 0usize..4, seed in any::<u64>()) {
        let density = [0.25, 0.5, 0.75, 1.0][d_pick];
        let inst = QkpGenerator::new(n, density).generate(seed);
        prop_assert_eq!(inst.num_items(), n);
        prop_assert!(inst.weights().iter().all(|&w| (1..=50).contains(&w)));
        prop_assert!(inst.max_profit_coefficient() <= 100);
        prop_assert!(inst.capacity() >= *inst.weights().iter().max().expect("n > 0"));
        prop_assert!(inst.capacity() < inst.weights().iter().sum::<u64>());
    }
}

// ---------------------------------------------------------------------
// CopProblem round-trip laws: decode(encode(x)) preserves the domain
// solution, its feasibility, and its objective.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Max-Cut: any partition round-trips, is always feasible, and the
    /// trait objective is the negated cut value.
    #[test]
    fn maxcut_roundtrip_preserves_feasibility_and_objective(
        n in 2usize..12,
        graph_seed in any::<u64>(),
        x_seed in any::<u64>(),
    ) {
        let g = MaxCut::random(n, 0.5, graph_seed);
        let mut rng = StdRng::seed_from_u64(x_seed);
        let partition = Assignment::random(n, &mut rng);
        let encoded = CopProblem::encode(&g, &partition);
        let decoded = CopProblem::decode(&g, &encoded).expect("partitions always decode");
        prop_assert_eq!(&decoded, &partition);
        prop_assert!(CopProblem::is_feasible(&g, &encoded));
        prop_assert_eq!(
            CopProblem::objective(&g, &encoded),
            -(g.cut_value(&partition) as f64)
        );
    }

    /// Graph coloring: any color vector round-trips; feasibility of
    /// the encoding equals properness of the coloring; the objective
    /// counts exactly the monochromatic edges.
    #[test]
    fn coloring_roundtrip_preserves_feasibility_and_objective(
        nodes in 1usize..9,
        colors in 1usize..5,
        graph_seed in any::<u64>(),
        color_seed in any::<u64>(),
    ) {
        let g = GraphColoring::random(nodes, 0.5, colors, graph_seed);
        let mut rng = StdRng::seed_from_u64(color_seed);
        use rand::Rng;
        let assignment: Vec<usize> =
            (0..nodes).map(|_| rng.random_range(0..colors)).collect();
        let encoded = CopProblem::encode(&g, &assignment);
        let decoded =
            CopProblem::decode(&g, &encoded).expect("one color per node decodes");
        prop_assert_eq!(&decoded, &assignment);
        // Feasibility ⇔ properness.
        let conflicts = g
            .edges()
            .iter()
            .filter(|&&(u, v)| assignment[u] == assignment[v])
            .count();
        prop_assert_eq!(CopProblem::is_feasible(&g, &encoded), conflicts == 0);
        prop_assert_eq!(CopProblem::objective(&g, &encoded), conflicts as f64);
    }

    /// Knapsack: any selection round-trips; the trait objective is the
    /// gated negated value (0 when over capacity), matching the
    /// domain arithmetic.
    #[test]
    fn knapsack_roundtrip_preserves_feasibility_and_objective(
        profits in proptest::collection::vec(1u64..=40, 1..10),
        weights_raw in proptest::collection::vec(1u64..=20, 10),
        cap in 1u64..=60,
        x_seed in any::<u64>(),
    ) {
        let n = profits.len();
        let weights = weights_raw[..n].to_vec();
        let ks = Knapsack::new(profits, weights, cap).expect("valid");
        let mut rng = StdRng::seed_from_u64(x_seed);
        let selection = Assignment::random(n, &mut rng);
        let encoded = CopProblem::encode(&ks, &selection);
        let decoded = CopProblem::decode(&ks, &encoded).expect("selections decode");
        prop_assert_eq!(&decoded, &selection);
        prop_assert_eq!(
            CopProblem::is_feasible(&ks, &encoded),
            ks.is_feasible(&selection)
        );
        let expected = if ks.is_feasible(&selection) {
            -(ks.value(&selection) as f64)
        } else {
            0.0
        };
        prop_assert_eq!(CopProblem::objective(&ks, &encoded), expected);
    }

    /// Bin packing: any bin-index vector round-trips through
    /// encode/decode; feasibility of the encoding equals validity of
    /// the packing; and the multi-constraint (filter-bank) form gates
    /// exactly the per-bin capacity violations.
    #[test]
    fn binpack_roundtrip_preserves_feasibility_and_objective(
        sizes in proptest::collection::vec(1u64..=9, 1..8),
        bins in 1usize..4,
        cap in 1u64..=20,
        x_seed in any::<u64>(),
    ) {
        let max_size = *sizes.iter().max().expect("non-empty");
        let bp = BinPacking::new(sizes, cap.max(max_size), bins).expect("valid");
        let mut rng = StdRng::seed_from_u64(x_seed);
        use rand::Rng;
        let assignment: Vec<usize> =
            (0..bp.num_items()).map(|_| rng.random_range(0..bins)).collect();
        let encoded = CopProblem::encode(&bp, &assignment);
        let decoded =
            CopProblem::decode(&bp, &encoded).expect("one bin per item decodes");
        prop_assert_eq!(&decoded, &assignment);
        // Feasibility ⇔ valid packing (every bin within capacity; the
        // exact-one-bin shape holds by construction here).
        prop_assert_eq!(
            CopProblem::is_feasible(&bp, &encoded),
            bp.is_valid_packing(&encoded)
        );
        // The trait objective counts exactly the total overflow for
        // structurally valid assignments.
        let overflow: u64 = (0..bins)
            .map(|k| bp.bin_load(&encoded, k).saturating_sub(bp.capacity()))
            .sum();
        prop_assert_eq!(CopProblem::objective(&bp, &encoded), overflow as f64);
        // The multi-constraint form agrees with the domain on per-bin
        // capacity feasibility.
        let mq = bp.to_multi_inequality_qubo().expect("encodable");
        prop_assert_eq!(mq.is_feasible(&encoded), overflow == 0);
    }

    /// MKP: any selection round-trips; the trait objective is the
    /// gated negated profit; and the multi-constraint form agrees
    /// with the domain feasibility while the aggregate single form is
    /// a relaxation of it.
    #[test]
    fn mkp_roundtrip_and_encoding_laws(
        n in 1usize..10,
        dims in 1usize..4,
        inst_seed in any::<u64>(),
        x_seed in any::<u64>(),
    ) {
        let mkp = MkpGenerator::new(n, dims).generate(inst_seed);
        let mut rng = StdRng::seed_from_u64(x_seed);
        let selection = hycim_qubo::Assignment::random(n, &mut rng);
        let encoded = CopProblem::encode(&mkp, &selection);
        prop_assert_eq!(
            CopProblem::decode(&mkp, &encoded).expect("selections decode"),
            selection.clone()
        );
        let feasible = mkp.is_feasible(&selection);
        prop_assert_eq!(CopProblem::is_feasible(&mkp, &encoded), feasible);
        let expected = if feasible { -(mkp.value(&selection) as f64) } else { 0.0 };
        prop_assert_eq!(CopProblem::objective(&mkp, &encoded), expected);
        let mq = mkp.to_multi_inequality_qubo().expect("encodable");
        prop_assert_eq!(mq.is_feasible(&encoded), feasible);
        prop_assert_eq!(mq.energy(&encoded), expected);
        if feasible {
            let iq = CopProblem::to_inequality_qubo(&mkp).expect("encodable");
            prop_assert!(iq.is_feasible(&encoded), "relaxation must admit feasible");
        }
    }

    /// The inequality-QUBO encoding agrees with the trait objective on
    /// feasible configurations for maximization problems (the gated
    /// energy of paper Eq. 6).
    #[test]
    fn encoded_energy_matches_objective_on_feasible_points(
        inst in arb_small_instance(),
        x_seed in any::<u64>(),
    ) {
        let iq = CopProblem::to_inequality_qubo(&inst).expect("encodable");
        let mut rng = StdRng::seed_from_u64(x_seed);
        let x = Assignment::random(inst.num_items(), &mut rng);
        if CopProblem::is_feasible(&inst, &x) {
            prop_assert_eq!(iq.energy(&x), CopProblem::objective(&inst, &x));
        } else {
            prop_assert_eq!(iq.energy(&x), 0.0);
        }
    }
}

// ---------------------------------------------------------------------
// Local-field equivalence across every problem generator
// ---------------------------------------------------------------------

/// Runs the local-field law on the encoded objective of a problem: a
/// random probe/commit walk on [`hycim_qubo::LocalFieldState`] must
/// match the dense `flip_delta` probe and a full `energy()` recompute
/// within 1e-9 at every step.
fn assert_local_field_law(q: &hycim_qubo::QuboMatrix, seed: u64) {
    use hycim_qubo::LocalFieldState;
    use rand::Rng;
    let n = q.dim();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Assignment::random(n, &mut rng);
    let mut lf = LocalFieldState::new(q, &x);
    let mut energy = q.energy(&x);
    for step in 0..200 {
        let i = rng.random_range(0..n);
        let delta = lf.flip_delta(&x, i);
        assert!(
            (delta - q.flip_delta(&x, i)).abs() < 1e-9,
            "probe diverged at step {step}"
        );
        if rng.random_bool(0.6) {
            x.flip(i);
            lf.commit_flip(&x, i);
            energy += delta;
            assert!(
                (energy - q.energy(&x)).abs() < 1e-8,
                "energy diverged at step {step}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// QKP objectives (dense pair profits) obey the local-field law.
    #[test]
    fn local_field_law_qkp(inst in arb_small_instance(), seed in any::<u64>()) {
        let iq = CopProblem::to_inequality_qubo(&inst).expect("valid");
        assert_local_field_law(iq.objective(), seed);
    }

    /// Sparse max-cut graphs obey the local-field law.
    #[test]
    fn local_field_law_maxcut(n in 4usize..40, seed in any::<u64>()) {
        let g = MaxCut::random(n, 0.15, seed);
        assert_local_field_law(&g.objective_matrix(), seed);
    }

    /// Spin glasses (binary and Gaussian couplings) obey the law.
    #[test]
    fn local_field_law_spinglass(n in 4usize..24, seed in any::<u64>()) {
        let binary = hycim_cop::spinglass::SpinGlass::random_binary(n, seed).expect("n >= 2");
        let iq = CopProblem::to_inequality_qubo(&binary).expect("valid");
        assert_local_field_law(iq.objective(), seed);
        let gaussian = hycim_cop::spinglass::SpinGlass::random_gaussian(n, seed).expect("n >= 2");
        let iq = CopProblem::to_inequality_qubo(&gaussian).expect("valid");
        assert_local_field_law(iq.objective(), seed);
    }

    /// Graph-coloring penalty matrices obey the law.
    #[test]
    fn local_field_law_coloring(n in 3usize..10, seed in any::<u64>()) {
        let gc = GraphColoring::random(n, 0.4, 3, seed);
        let iq = CopProblem::to_inequality_qubo(&gc).expect("valid");
        assert_local_field_law(iq.objective(), seed);
    }

    /// TSP tour-encoding penalty matrices obey the law.
    #[test]
    fn local_field_law_tsp(n in 3usize..7, seed in any::<u64>()) {
        let tsp = hycim_cop::tsp::Tsp::random_euclidean(n, 100.0, seed).expect("n >= 3");
        let iq = CopProblem::to_inequality_qubo(&tsp).expect("valid");
        assert_local_field_law(iq.objective(), seed);
    }

    /// Multi-dimensional knapsack aggregate objectives obey the law.
    #[test]
    fn local_field_law_mkp(n in 4usize..16, dims in 2usize..4, seed in any::<u64>()) {
        let mkp = MkpGenerator::new(n, dims).generate(seed);
        let iq = CopProblem::to_inequality_qubo(&mkp).expect("valid");
        assert_local_field_law(iq.objective(), seed);
    }

    /// Bin-packing assignment-penalty objectives (the bank path) obey
    /// the law.
    #[test]
    fn local_field_law_binpack(items in 3usize..8, seed in any::<u64>()) {
        let sizes: Vec<u64> = (0..items).map(|i| 2 + (seed.wrapping_add(i as u64) % 5)).collect();
        let total: u64 = sizes.iter().sum();
        let bp = BinPacking::new(sizes, total, 2).expect("valid");
        let mq = bp.to_multi_inequality_qubo().expect("valid");
        assert_local_field_law(mq.objective(), seed);
    }
}
