//! The protocol messages: five request verbs (`submit`, `poll`,
//! `fetch`, `cancel`, `stats`), their responses, and the typed
//! payloads — a [`JobSpec`] describing one shard of solves, the
//! [`WireSolution`]s coming back, and a metrics
//! [`Snapshot`] for the `stats` scrape.
//!
//! Seeding contract: a spec carries its solve seeds **explicitly**
//! (the coordinator derives them with
//! [`replica_seed`](hycim_core::replica_seed) before dispatch), plus
//! the instance's hardware seed. A worker therefore has zero seed
//! derivation of its own — retrying a shard on a different worker
//! reruns byte-for-byte the same computation, which is what makes the
//! merged result independent of scheduling, retries, and worker
//! count.
//!
//! Exactness contract: every `f64` travels as the 16-hex-digit image
//! of its IEEE-754 bits ([`hycim_qubo::wire`]); problems travel in
//! their canonical [`AnyProblem`] text form. Nothing on the wire is
//! ever formatted as decimal floating point.

use std::collections::BTreeMap;
use std::fmt;

use hycim_cop::{AnyProblem, CopError};
use hycim_core::{EngineKind, EngineSettings, Solution};
use hycim_obs::{HistogramSnapshot, Snapshot};
use hycim_qubo::wire::{decode_f64, encode_f64};
use hycim_qubo::Assignment;
use hycim_service::{DisposeOutcome, JobStatus};

use crate::json::Value;

/// A message that decodes structurally but violates the protocol
/// (missing field, wrong type, unknown verb or tag).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// What was wrong.
    pub message: String,
}

impl ProtoError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.message)
    }
}

impl std::error::Error for ProtoError {}

fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, ProtoError> {
    v.get(key)
        .ok_or_else(|| ProtoError::new(format!("missing field \"{key}\"")))
}

fn u64_field(v: &Value, key: &str) -> Result<u64, ProtoError> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| ProtoError::new(format!("field \"{key}\" must be an unsigned integer")))
}

fn str_field<'a>(v: &'a Value, key: &str) -> Result<&'a str, ProtoError> {
    field(v, key)?
        .as_str()
        .ok_or_else(|| ProtoError::new(format!("field \"{key}\" must be a string")))
}

fn bool_field(v: &Value, key: &str) -> Result<bool, ProtoError> {
    field(v, key)?
        .as_bool()
        .ok_or_else(|| ProtoError::new(format!("field \"{key}\" must be a bool")))
}

fn f64_field(v: &Value, key: &str) -> Result<f64, ProtoError> {
    let text = str_field(v, key)?;
    decode_f64(text)
        .ok_or_else(|| ProtoError::new(format!("field \"{key}\" is not a hex-encoded f64")))
}

/// One shard of work: solve `problem` on `engine` once per entry of
/// `seeds`, in order.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Family tag of [`problem`](Self::problem) (see
    /// [`AnyProblem::family_tag`]).
    pub family: String,
    /// The instance in canonical [`AnyProblem`] wire text.
    pub problem: String,
    /// Engine backend tag (see [`EngineKind::tag`]).
    pub engine: String,
    /// Annealing sweep budget per solve.
    pub sweeps: u64,
    /// Hardware-noise seed for the engine construction.
    pub hardware_seed: u64,
    /// Whether the engine records an energy trace (required for
    /// `iters_to_best`; costs memory proportional to sweeps).
    pub record_trace: bool,
    /// The exact solve seed of each replica in this shard, in shard
    /// order — pre-derived by the coordinator, never recomputed by the
    /// worker.
    pub seeds: Vec<u64>,
}

impl JobSpec {
    /// Reconstructs the problem instance from the wire text.
    ///
    /// # Errors
    ///
    /// The [`CopError`] of the canonical-form parser.
    pub fn decode_problem(&self) -> Result<AnyProblem, CopError> {
        AnyProblem::from_wire(&self.family, &self.problem)
    }

    /// Resolves the engine tag.
    ///
    /// # Errors
    ///
    /// Names the unknown tag.
    pub fn engine_kind(&self) -> Result<EngineKind, ProtoError> {
        EngineKind::from_tag(&self.engine)
            .ok_or_else(|| ProtoError::new(format!("unknown engine tag \"{}\"", self.engine)))
    }

    /// The engine settings this spec pins.
    pub fn settings(&self) -> EngineSettings {
        let mut s = EngineSettings::new(self.sweeps as usize, self.hardware_seed);
        s.record_trace = self.record_trace;
        s
    }

    fn to_value(&self) -> Value {
        Value::object(vec![
            ("family", Value::Str(self.family.clone())),
            ("problem", Value::Str(self.problem.clone())),
            ("engine", Value::Str(self.engine.clone())),
            ("sweeps", Value::UInt(self.sweeps)),
            ("hardware_seed", Value::UInt(self.hardware_seed)),
            ("record_trace", Value::Bool(self.record_trace)),
            (
                "seeds",
                Value::Array(self.seeds.iter().map(|&s| Value::UInt(s)).collect()),
            ),
        ])
    }

    fn from_value(v: &Value) -> Result<Self, ProtoError> {
        let seeds = field(v, "seeds")?
            .as_array()
            .ok_or_else(|| ProtoError::new("field \"seeds\" must be an array"))?
            .iter()
            .map(|s| {
                s.as_u64()
                    .ok_or_else(|| ProtoError::new("seeds must be unsigned integers"))
            })
            .collect::<Result<Vec<u64>, _>>()?;
        Ok(JobSpec {
            family: str_field(v, "family")?.to_string(),
            problem: str_field(v, "problem")?.to_string(),
            engine: str_field(v, "engine")?.to_string(),
            sweeps: u64_field(v, "sweeps")?,
            hardware_seed: u64_field(v, "hardware_seed")?,
            record_trace: bool_field(v, "record_trace")?,
            seeds,
        })
    }
}

/// One solve result in transportable form. Equality is **bitwise** on
/// the float fields (NaN equals NaN with the same payload, `-0.0`
/// differs from `0.0`), matching the protocol's exactness contract.
#[derive(Debug, Clone)]
pub struct WireSolution {
    /// The best configuration, as a `0`/`1` bit string in the
    /// problem's own variable space.
    pub assignment: String,
    /// Domain objective (lower is better).
    pub objective: f64,
    /// Energy as reported by the (noisy) hardware model.
    pub reported_energy: f64,
    /// Domain feasibility of the assignment.
    pub feasible: bool,
    /// Annealing iterations until the best energy was first touched.
    pub iters_to_best: u64,
    /// Total annealing iterations recorded by the trace.
    pub iterations: u64,
}

impl PartialEq for WireSolution {
    fn eq(&self, other: &Self) -> bool {
        self.assignment == other.assignment
            && self.objective.to_bits() == other.objective.to_bits()
            && self.reported_energy.to_bits() == other.reported_energy.to_bits()
            && self.feasible == other.feasible
            && self.iters_to_best == other.iters_to_best
            && self.iterations == other.iterations
    }
}

impl Eq for WireSolution {}

impl WireSolution {
    /// Extracts the transportable fields of an engine solution.
    pub fn from_solution<P: hycim_cop::CopProblem>(s: &Solution<P>) -> Self {
        WireSolution {
            assignment: s.assignment.to_bit_string(),
            objective: s.objective,
            reported_energy: s.reported_energy,
            feasible: s.feasible,
            iters_to_best: s.trace.iters_to_best() as u64,
            iterations: s.trace.iterations() as u64,
        }
    }

    /// The stack's success criterion applied to the transported
    /// fields — delegates to
    /// [`objective_success`](hycim_core::objective_success), so wire
    /// and local scoring share one formula.
    pub fn objective_success(&self, reference: f64) -> bool {
        hycim_core::objective_success(self.objective, self.feasible, reference)
    }

    /// Parses the assignment bit string back into an [`Assignment`].
    ///
    /// # Errors
    ///
    /// Names the malformed string.
    pub fn decode_assignment(&self) -> Result<Assignment, ProtoError> {
        Assignment::parse_bit_string(&self.assignment)
            .ok_or_else(|| ProtoError::new(format!("malformed bit string \"{}\"", self.assignment)))
    }

    fn to_value(&self) -> Value {
        Value::object(vec![
            ("assignment", Value::Str(self.assignment.clone())),
            ("objective", Value::Str(encode_f64(self.objective))),
            (
                "reported_energy",
                Value::Str(encode_f64(self.reported_energy)),
            ),
            ("feasible", Value::Bool(self.feasible)),
            ("iters_to_best", Value::UInt(self.iters_to_best)),
            ("iterations", Value::UInt(self.iterations)),
        ])
    }

    fn from_value(v: &Value) -> Result<Self, ProtoError> {
        let assignment = str_field(v, "assignment")?;
        if !assignment.bytes().all(|b| b == b'0' || b == b'1') {
            return Err(ProtoError::new("assignment must be a 0/1 bit string"));
        }
        Ok(WireSolution {
            assignment: assignment.to_string(),
            objective: f64_field(v, "objective")?,
            reported_energy: f64_field(v, "reported_energy")?,
            feasible: bool_field(v, "feasible")?,
            iters_to_best: u64_field(v, "iters_to_best")?,
            iterations: u64_field(v, "iterations")?,
        })
    }
}

/// Encodes a metrics snapshot: three objects keyed by metric name —
/// counters and gauges as integers, histograms as bucket-count
/// arrays. Names are already sorted (`BTreeMap` iteration), so the
/// wire form is canonical.
fn snapshot_to_value(s: &Snapshot) -> Value {
    let uints = |map: &BTreeMap<String, u64>| {
        Value::Object(
            map.iter()
                .map(|(name, &v)| (name.clone(), Value::UInt(v)))
                .collect(),
        )
    };
    let histograms = Value::Object(
        s.histograms
            .iter()
            .map(|(name, h)| {
                (
                    name.clone(),
                    Value::Array(h.buckets.iter().map(|&c| Value::UInt(c)).collect()),
                )
            })
            .collect(),
    );
    Value::object(vec![
        ("counters", uints(&s.counters)),
        ("gauges", uints(&s.gauges)),
        ("histograms", histograms),
    ])
}

fn snapshot_from_value(v: &Value) -> Result<Snapshot, ProtoError> {
    let entries = |v: &Value, key: &str| -> Result<Vec<(String, Value)>, ProtoError> {
        match field(v, key)? {
            Value::Object(fields) => Ok(fields.clone()),
            _ => Err(ProtoError::new(format!(
                "field \"{key}\" must be an object"
            ))),
        }
    };
    let mut snapshot = Snapshot::default();
    for (name, value) in entries(v, "counters")? {
        let count = value
            .as_u64()
            .ok_or_else(|| ProtoError::new(format!("counter \"{name}\" must be an integer")))?;
        snapshot.counters.insert(name, count);
    }
    for (name, value) in entries(v, "gauges")? {
        let level = value
            .as_u64()
            .ok_or_else(|| ProtoError::new(format!("gauge \"{name}\" must be an integer")))?;
        snapshot.gauges.insert(name, level);
    }
    for (name, value) in entries(v, "histograms")? {
        let buckets = value
            .as_array()
            .ok_or_else(|| ProtoError::new(format!("histogram \"{name}\" must be an array")))?
            .iter()
            .map(|b| {
                b.as_u64().ok_or_else(|| {
                    ProtoError::new(format!("histogram \"{name}\" buckets must be integers"))
                })
            })
            .collect::<Result<Vec<u64>, _>>()?;
        snapshot
            .histograms
            .insert(name, HistogramSnapshot { buckets });
    }
    Ok(snapshot)
}

/// A request frame: one of the five verbs.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a shard of solves; answered by
    /// [`Response::Submitted`] or [`Response::Error`].
    Submit(JobSpec),
    /// Ask a job's lifecycle status.
    Poll {
        /// The job id from [`Response::Submitted`].
        job: u64,
    },
    /// Take a terminal job's solutions (consumes the entry).
    Fetch {
        /// The job id from [`Response::Submitted`].
        job: u64,
    },
    /// Cancel or dispose of a job at any lifecycle stage.
    Cancel {
        /// The job id from [`Response::Submitted`].
        job: u64,
    },
    /// Scrape the worker's metrics registry; answered by
    /// [`Response::Stats`]. Carries no arguments — the snapshot
    /// covers the whole worker (wire counters plus its job service).
    Stats,
}

impl Request {
    /// Encodes to a frame payload.
    pub fn to_value(&self) -> Value {
        match self {
            Request::Submit(spec) => Value::object(vec![
                ("verb", Value::Str("submit".into())),
                ("spec", spec.to_value()),
            ]),
            Request::Poll { job } => Value::object(vec![
                ("verb", Value::Str("poll".into())),
                ("job", Value::UInt(*job)),
            ]),
            Request::Fetch { job } => Value::object(vec![
                ("verb", Value::Str("fetch".into())),
                ("job", Value::UInt(*job)),
            ]),
            Request::Cancel { job } => Value::object(vec![
                ("verb", Value::Str("cancel".into())),
                ("job", Value::UInt(*job)),
            ]),
            Request::Stats => Value::object(vec![("verb", Value::Str("stats".into()))]),
        }
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    ///
    /// A [`ProtoError`] naming the violation (unknown verbs included).
    pub fn from_value(v: &Value) -> Result<Self, ProtoError> {
        match str_field(v, "verb")? {
            "submit" => Ok(Request::Submit(JobSpec::from_value(field(v, "spec")?)?)),
            "poll" => Ok(Request::Poll {
                job: u64_field(v, "job")?,
            }),
            "fetch" => Ok(Request::Fetch {
                job: u64_field(v, "job")?,
            }),
            "cancel" => Ok(Request::Cancel {
                job: u64_field(v, "job")?,
            }),
            "stats" => Ok(Request::Stats),
            other => Err(ProtoError::new(format!("unknown verb \"{other}\""))),
        }
    }
}

/// Machine-readable category of a [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request was malformed (bad spec, unparsable problem,
    /// unknown engine tag, unknown verb).
    BadRequest,
    /// The job id is not tracked (never submitted, already fetched or
    /// disposed).
    UnknownJob,
    /// A fetch arrived before the job turned terminal.
    NotFinished,
    /// The fetched job had been cancelled; its entry is now disposed.
    JobCancelled,
    /// The job's solve panicked on the worker; the message carries the
    /// panic text. Its entry is now disposed.
    JobFailed,
    /// The worker's queue is full; resubmit later or elsewhere.
    Backpressure,
    /// Anything else (the worker is shutting down, an internal
    /// invariant failed).
    Internal,
}

impl ErrorCode {
    /// All codes, for table-driven tests.
    pub const ALL: [ErrorCode; 7] = [
        ErrorCode::BadRequest,
        ErrorCode::UnknownJob,
        ErrorCode::NotFinished,
        ErrorCode::JobCancelled,
        ErrorCode::JobFailed,
        ErrorCode::Backpressure,
        ErrorCode::Internal,
    ];

    /// Stable wire tag.
    pub fn tag(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownJob => "unknown_job",
            ErrorCode::NotFinished => "not_finished",
            ErrorCode::JobCancelled => "job_cancelled",
            ErrorCode::JobFailed => "job_failed",
            ErrorCode::Backpressure => "backpressure",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parses a [`tag`](Self::tag).
    pub fn from_tag(tag: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|c| c.tag() == tag)
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// A response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The shard was accepted and queued.
    Submitted {
        /// Worker-local job id; scope is the worker connection's
        /// service, not global.
        job: u64,
    },
    /// The job's current lifecycle status.
    Status {
        /// The polled job.
        job: u64,
        /// Its status.
        status: JobStatus,
    },
    /// The job's solutions, in shard (seed) order.
    Solutions {
        /// The fetched job.
        job: u64,
        /// One solution per seed of the submitted spec.
        solutions: Vec<WireSolution>,
    },
    /// The outcome of a cancel.
    Cancelled {
        /// The cancelled job.
        job: u64,
        /// What the disposal found.
        outcome: DisposeOutcome,
    },
    /// The worker's metrics at scrape time. Every payload is an
    /// unsigned integer (histograms travel as raw bucket-count
    /// arrays), so the encoding is exact — no hex-float escape hatch
    /// needed, and scraped snapshots merge without drift.
    Stats {
        /// The scraped registry snapshot.
        stats: Snapshot,
    },
    /// The request failed; the verb had no effect beyond what
    /// `code` documents.
    Error {
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// Encodes to a frame payload.
    pub fn to_value(&self) -> Value {
        match self {
            Response::Submitted { job } => Value::object(vec![
                ("reply", Value::Str("submitted".into())),
                ("job", Value::UInt(*job)),
            ]),
            Response::Status { job, status } => Value::object(vec![
                ("reply", Value::Str("status".into())),
                ("job", Value::UInt(*job)),
                ("status", Value::Str(status.tag().into())),
            ]),
            Response::Solutions { job, solutions } => Value::object(vec![
                ("reply", Value::Str("solutions".into())),
                ("job", Value::UInt(*job)),
                (
                    "solutions",
                    Value::Array(solutions.iter().map(WireSolution::to_value).collect()),
                ),
            ]),
            Response::Cancelled { job, outcome } => Value::object(vec![
                ("reply", Value::Str("cancelled".into())),
                ("job", Value::UInt(*job)),
                ("outcome", Value::Str(outcome.tag().into())),
            ]),
            Response::Stats { stats } => Value::object(vec![
                ("reply", Value::Str("stats".into())),
                ("stats", snapshot_to_value(stats)),
            ]),
            Response::Error { code, message } => Value::object(vec![
                ("reply", Value::Str("error".into())),
                ("code", Value::Str(code.tag().into())),
                ("message", Value::Str(message.clone())),
            ]),
        }
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    ///
    /// A [`ProtoError`] naming the violation.
    pub fn from_value(v: &Value) -> Result<Self, ProtoError> {
        match str_field(v, "reply")? {
            "submitted" => Ok(Response::Submitted {
                job: u64_field(v, "job")?,
            }),
            "status" => {
                let tag = str_field(v, "status")?;
                Ok(Response::Status {
                    job: u64_field(v, "job")?,
                    status: JobStatus::from_tag(tag)
                        .ok_or_else(|| ProtoError::new(format!("unknown status tag \"{tag}\"")))?,
                })
            }
            "solutions" => {
                let solutions = field(v, "solutions")?
                    .as_array()
                    .ok_or_else(|| ProtoError::new("field \"solutions\" must be an array"))?
                    .iter()
                    .map(WireSolution::from_value)
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Response::Solutions {
                    job: u64_field(v, "job")?,
                    solutions,
                })
            }
            "cancelled" => {
                let tag = str_field(v, "outcome")?;
                Ok(Response::Cancelled {
                    job: u64_field(v, "job")?,
                    outcome: DisposeOutcome::from_tag(tag)
                        .ok_or_else(|| ProtoError::new(format!("unknown outcome tag \"{tag}\"")))?,
                })
            }
            "stats" => Ok(Response::Stats {
                stats: snapshot_from_value(field(v, "stats")?)?,
            }),
            "error" => {
                let tag = str_field(v, "code")?;
                Ok(Response::Error {
                    code: ErrorCode::from_tag(tag)
                        .ok_or_else(|| ProtoError::new(format!("unknown error code \"{tag}\"")))?,
                    message: str_field(v, "message")?.to_string(),
                })
            }
            other => Err(ProtoError::new(format!("unknown reply \"{other}\""))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> JobSpec {
        JobSpec {
            family: "maxcut".into(),
            problem: "3 2\n0 1 1\n1 2 2\n".into(),
            engine: "hycim".into(),
            sweeps: 50,
            hardware_seed: 9,
            record_trace: true,
            seeds: vec![1, 2, 3],
        }
    }

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Submit(sample_spec()),
            Request::Poll { job: 0 },
            Request::Fetch { job: u64::MAX },
            Request::Cancel { job: 7 },
            Request::Stats,
        ] {
            let v = Value::parse(&req.to_value().encode()).unwrap();
            assert_eq!(Request::from_value(&v).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let solution = WireSolution {
            assignment: "0110".into(),
            objective: -12.5,
            reported_energy: f64::NEG_INFINITY,
            feasible: true,
            iters_to_best: 17,
            iterations: 200,
        };
        for resp in [
            Response::Submitted { job: 3 },
            Response::Status {
                job: 3,
                status: JobStatus::Running,
            },
            Response::Solutions {
                job: 3,
                solutions: vec![solution],
            },
            Response::Cancelled {
                job: 3,
                outcome: DisposeOutcome::Deferred,
            },
            Response::Stats {
                stats: sample_snapshot(),
            },
            Response::Error {
                code: ErrorCode::Backpressure,
                message: "queue full".into(),
            },
        ] {
            let v = Value::parse(&resp.to_value().encode()).unwrap();
            assert_eq!(Response::from_value(&v).unwrap(), resp, "{resp:?}");
        }
    }

    fn sample_snapshot() -> Snapshot {
        let obs = hycim_obs::ObsRegistry::new();
        obs.counter("net.frames_in").add(12);
        obs.counter("service.jobs_done").add(3);
        obs.gauge("service.queue_depth").set(2);
        obs.histogram("batch.cell_iterations").record(640.0);
        obs.histogram("timing.service.submit_to_fetch_seconds")
            .record(0.003);
        obs.snapshot()
    }

    #[test]
    fn stats_round_trip_is_exact_including_empty_snapshots() {
        // Empty registry: three empty maps, still a valid frame.
        let empty = Response::Stats {
            stats: Snapshot::default(),
        };
        let v = Value::parse(&empty.to_value().encode()).unwrap();
        assert_eq!(Response::from_value(&v).unwrap(), empty);

        // A populated snapshot survives with every bucket intact.
        let stats = sample_snapshot();
        let v = Value::parse(
            &Response::Stats {
                stats: stats.clone(),
            }
            .to_value()
            .encode(),
        )
        .unwrap();
        match Response::from_value(&v).unwrap() {
            Response::Stats { stats: decoded } => {
                assert_eq!(decoded, stats);
                assert_eq!(decoded.counter("net.frames_in"), Some(12));
                assert_eq!(
                    decoded
                        .histogram("batch.cell_iterations")
                        .map(|h| h.count()),
                    Some(1)
                );
            }
            other => panic!("expected stats, got {other:?}"),
        }
    }

    #[test]
    fn malformed_stats_payloads_are_named() {
        let missing = Value::object(vec![("reply", Value::Str("stats".into()))]);
        assert!(Response::from_value(&missing)
            .unwrap_err()
            .message
            .contains("missing field \"stats\""));

        let bad_counter = Value::object(vec![
            ("reply", Value::Str("stats".into())),
            (
                "stats",
                Value::object(vec![
                    (
                        "counters",
                        Value::object(vec![("x", Value::Str("nope".into()))]),
                    ),
                    ("gauges", Value::object(vec![])),
                    ("histograms", Value::object(vec![])),
                ]),
            ),
        ]);
        assert!(Response::from_value(&bad_counter)
            .unwrap_err()
            .message
            .contains("counter \"x\""));
    }

    #[test]
    fn spec_helpers_resolve() {
        let spec = sample_spec();
        let problem = spec.decode_problem().unwrap();
        assert_eq!(problem.family_tag(), "maxcut");
        assert_eq!(spec.engine_kind().unwrap().tag(), "hycim");
        let settings = spec.settings();
        assert_eq!(settings.sweeps, 50);
        assert_eq!(settings.hardware_seed, 9);
        assert!(settings.record_trace);
    }

    #[test]
    fn violations_are_named() {
        let unknown_verb = Value::object(vec![("verb", Value::Str("steal".into()))]);
        assert!(Request::from_value(&unknown_verb)
            .unwrap_err()
            .message
            .contains("unknown verb \"steal\""));

        let missing = Value::object(vec![("verb", Value::Str("poll".into()))]);
        assert!(Request::from_value(&missing)
            .unwrap_err()
            .message
            .contains("missing field \"job\""));

        let bad_float = Value::object(vec![
            ("assignment", Value::Str("01".into())),
            ("objective", Value::Str("not-hex".into())),
        ]);
        assert!(WireSolution::from_value(&bad_float)
            .unwrap_err()
            .message
            .contains("hex-encoded"));

        let bad_bits = Value::object(vec![("assignment", Value::Str("012".into()))]);
        assert!(WireSolution::from_value(&bad_bits)
            .unwrap_err()
            .message
            .contains("bit string"));
    }

    #[test]
    fn error_codes_round_trip() {
        for code in ErrorCode::ALL {
            assert_eq!(ErrorCode::from_tag(code.tag()), Some(code));
            assert_eq!(code.to_string(), code.tag());
        }
        assert_eq!(ErrorCode::from_tag("nope"), None);
    }

    #[test]
    fn wire_solution_equality_is_bitwise() {
        let mut a = WireSolution {
            assignment: "1".into(),
            objective: 0.0,
            reported_energy: f64::NAN,
            feasible: false,
            iters_to_best: 0,
            iterations: 0,
        };
        let b = a.clone();
        assert_eq!(a, b, "NaN equals its own bits");
        a.objective = -0.0;
        assert_ne!(a, b, "-0.0 differs from 0.0 bitwise");
    }
}
