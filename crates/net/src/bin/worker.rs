//! `hycim-worker`: serve HyCiM solve shards over TCP.
//!
//! ```text
//! hycim-worker --listen 127.0.0.1:7171 [--threads N] [--queue N]
//! ```
//!
//! Speaks the `hycim1` framed-JSON protocol (see the `hycim-net`
//! crate docs); pair it with the `shard_demo` coordinator binary or
//! any `Coordinator`.

use hycim_net::{WorkerConfig, WorkerServer};

fn main() {
    let mut listen = "127.0.0.1:7171".to_string();
    let mut config = WorkerConfig::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = expect_value(&arg, args.next()),
            "--threads" => config.threads = parse_num(&arg, args.next()),
            "--queue" => config.queue_capacity = parse_num(&arg, args.next()),
            "--help" | "-h" => {
                println!("usage: hycim-worker [--listen ADDR:PORT] [--threads N] [--queue N]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                std::process::exit(2);
            }
        }
    }
    let server = match WorkerServer::bind(listen.as_str(), config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot bind {listen}: {e}");
            std::process::exit(1);
        }
    };
    match server.local_addr() {
        Ok(addr) => println!("hycim-worker listening on {addr}"),
        Err(_) => println!("hycim-worker listening on {listen}"),
    }
    if let Err(e) = server.serve() {
        eprintln!("accept loop failed: {e}");
        std::process::exit(1);
    }
}

fn expect_value(flag: &str, value: Option<String>) -> String {
    value.unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    })
}

fn parse_num(flag: &str, value: Option<String>) -> usize {
    let text = expect_value(flag, value);
    text.parse().unwrap_or_else(|_| {
        eprintln!("{flag} needs a positive integer, got {text:?}");
        std::process::exit(2);
    })
}
