//! The worker side: a TCP server answering protocol requests by
//! bridging them onto a [`JobService`] worker pool.
//!
//! Job ownership is per-connection: every job a connection submits is
//! tracked, and when the connection ends — cleanly or by a mid-job
//! drop — every job it still owns is disposed through
//! [`JobService::dispose`]. A coordinator crash therefore never
//! strands results on a worker; the job table drains back to empty.

use std::collections::HashSet;
use std::io::BufReader;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use hycim_obs::ObsRegistry;
use hycim_service::{DisposeOutcome, JobId, JobService, ServiceConfig, SubmitError};

use crate::frame::{FrameError, MessageReceiver, MessageSender, DEFAULT_MAX_FRAME};
use crate::proto::{ErrorCode, JobSpec, Request, Response, WireSolution};

/// Deliberate misbehavior for the fault-injection tests — compiled in
/// unconditionally (it is inert unless configured) so the test suite
/// exercises the exact production server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerFault {
    /// The `n`-th accepted submit (0-based, across all connections)
    /// panics on its worker thread instead of solving — the "worker
    /// died mid-shard" scenario. The pool survives; the job turns
    /// `Failed`.
    PanicOnSubmit(usize),
    /// The first `k` accepted submits panic, then the worker recovers
    /// — the flaky-then-healthy scenario the probation/readmission
    /// machinery exists for. `k == 0` is a healthy worker.
    PanicFirstSubmits(usize),
}

/// Sizing and behavior of a [`WorkerServer`].
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Solve threads in the underlying [`JobService`] pool.
    pub threads: usize,
    /// Bound on queued (not yet running) jobs.
    pub queue_capacity: usize,
    /// Per-frame byte bound for incoming requests.
    pub max_frame: usize,
    /// Optional injected fault (tests only; `None` in production).
    pub fault: Option<WorkerFault>,
}

impl WorkerConfig {
    /// Defaults: 2 solve threads, 1024-job queue, the frame layer's
    /// default byte bound, no fault.
    pub fn new() -> Self {
        Self {
            threads: 2,
            queue_capacity: 1024,
            max_frame: DEFAULT_MAX_FRAME,
            fault: None,
        }
    }
}

impl Default for WorkerConfig {
    fn default() -> Self {
        Self::new()
    }
}

struct WorkerShared {
    service: JobService,
    stop: AtomicBool,
    submits: AtomicUsize,
    fault: Option<WorkerFault>,
    max_frame: usize,
    /// One registry for the whole worker: the wire layer's `net.*`
    /// counters and the job service's `service.*` family land in the
    /// same place, so a single `stats` scrape sees the entire process.
    obs: Arc<ObsRegistry>,
    /// Live connection streams, for unblocking reads on stop.
    conns: Mutex<Vec<TcpStream>>,
}

/// A bound (not yet serving) protocol server.
pub struct WorkerServer {
    listener: TcpListener,
    shared: Arc<WorkerShared>,
}

impl WorkerServer {
    /// Binds the listening socket (use port 0 for an ephemeral port)
    /// and starts the solve pool.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(addr: impl ToSocketAddrs, config: WorkerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let obs = Arc::new(ObsRegistry::new());
        let service = JobService::start(
            ServiceConfig::new()
                .with_workers(config.threads)
                .with_queue_capacity(config.queue_capacity)
                .with_obs(Arc::clone(&obs)),
        );
        Ok(Self {
            listener,
            shared: Arc::new(WorkerShared {
                service,
                stop: AtomicBool::new(false),
                submits: AtomicUsize::new(0),
                fault: config.fault,
                max_frame: config.max_frame,
                obs,
                conns: Mutex::new(Vec::new()),
            }),
        })
    }

    /// The bound address (the resolved port when bound to port 0).
    ///
    /// # Errors
    ///
    /// Propagates the OS query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves connections on the calling thread until the process
    /// exits — the entry point of the `hycim-worker` binary.
    ///
    /// # Errors
    ///
    /// Propagates accept failures.
    pub fn serve(self) -> std::io::Result<()> {
        accept_loop(&self.listener, &self.shared)
    }

    /// Serves connections on a background thread and returns a handle
    /// for inspection and orderly shutdown — the entry point of the
    /// in-process tests.
    pub fn spawn(self) -> WorkerHandle {
        let addr = self.local_addr().expect("bound listener has an address");
        let shared = Arc::clone(&self.shared);
        let listener = self.listener;
        let accept = std::thread::Builder::new()
            .name(format!("hycim-net-accept-{}", addr.port()))
            .spawn(move || {
                let _ = accept_loop(&listener, &shared);
            })
            .expect("spawn accept thread");
        WorkerHandle {
            addr,
            shared: self.shared,
            accept: Some(accept),
        }
    }
}

/// Handle of a [spawned](WorkerServer::spawn) worker.
pub struct WorkerHandle {
    addr: SocketAddr,
    shared: Arc<WorkerShared>,
    accept: Option<JoinHandle<()>>,
}

impl WorkerHandle {
    /// The worker's listening address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Jobs the worker's service is currently tracking — drains to 0
    /// once every owning connection has fetched, cancelled, or
    /// disconnected (the leak assertion of the protocol tests).
    pub fn live_jobs(&self) -> usize {
        self.shared.service.live_jobs()
    }

    /// The worker's metrics registry — the same one the `stats` wire
    /// verb snapshots, exposed for in-process assertions.
    pub fn obs(&self) -> &Arc<ObsRegistry> {
        &self.shared.obs
    }

    /// Stops accepting, severs live connections, and joins the accept
    /// thread. Jobs already running finish on the pool (dropped via
    /// their connections' disposal) before the handle returns.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Poke the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        // Sever every live connection to unblock its reader thread.
        for stream in self.shared.conns.lock().expect("conn list lock").drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.shutdown();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<WorkerShared>) -> std::io::Result<()> {
    loop {
        let (stream, _) = listener.accept()?;
        if shared.stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().expect("conn list lock").push(clone);
        }
        let shared = Arc::clone(shared);
        let _ = std::thread::Builder::new()
            .name("hycim-net-conn".to_string())
            .spawn(move || handle_connection(stream, &shared));
    }
}

/// Serves one connection: a strict request → response loop. Malformed
/// frames that leave the stream synchronized (valid line, bad
/// content) get an error response; anything that desynchronizes or
/// ends the stream closes the connection. Either way, every job the
/// connection still owns is disposed on the way out.
fn handle_connection(stream: TcpStream, shared: &WorkerShared) {
    let mut owned: HashSet<u64> = HashSet::new();
    let frames_in = shared.obs.counter("net.frames_in");
    let frames_out = shared.obs.counter("net.frames_out");
    // The accept loop holds a clone of this socket (for stop-time
    // severing), so dropping our handles alone would not send FIN;
    // shut the socket down explicitly on the way out so peers waiting
    // on EOF observe the close.
    let teardown = stream.try_clone().ok();
    let reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(_) => return,
    };
    let mut receiver = MessageReceiver::with_max_frame(reader, shared.max_frame);
    let mut sender = MessageSender::new(stream);
    loop {
        match receiver.recv() {
            Ok(None) => break,
            Ok(Some(frame)) => {
                frames_in.inc();
                let response = match Request::from_value(&frame) {
                    Ok(request) => handle_request(request, shared, &mut owned),
                    Err(e) => Response::Error {
                        code: ErrorCode::BadRequest,
                        message: e.to_string(),
                    },
                };
                if sender.send(&response.to_value()).is_err() {
                    break;
                }
                frames_out.inc();
            }
            // A well-formed line with an invalid payload: the stream
            // is still synchronized, answer and keep serving.
            Err(FrameError::Json(e)) => {
                shared.obs.counter("net.frame_errors.json").inc();
                let response = Response::Error {
                    code: ErrorCode::BadRequest,
                    message: e.to_string(),
                };
                if sender.send(&response.to_value()).is_err() {
                    break;
                }
                frames_out.inc();
            }
            // Desynchronized or dead stream: answer best-effort where
            // a write may still land, then drop the connection.
            Err(e @ (FrameError::BadPrefix { .. } | FrameError::Oversized { .. })) => {
                count_frame_error(shared, &e);
                let response = Response::Error {
                    code: ErrorCode::BadRequest,
                    message: e.to_string(),
                };
                if sender.send(&response.to_value()).is_ok() {
                    frames_out.inc();
                }
                break;
            }
            Err(e @ (FrameError::Io(_) | FrameError::Truncated { .. })) => {
                count_frame_error(shared, &e);
                break;
            }
        }
    }
    for id in owned {
        shared.service.dispose(JobId::from_raw(id));
    }
    if let Some(socket) = teardown {
        let _ = socket.shutdown(Shutdown::Both);
    }
}

/// Ticks the per-variant frame-error counter — the registry keys
/// mirror the [`FrameError`] variant names, so a scrape distinguishes
/// a flaky transport (`io`, `truncated`) from a confused peer
/// (`bad_prefix`, `oversized`, `json`).
fn count_frame_error(shared: &WorkerShared, error: &FrameError) {
    let variant = match error {
        FrameError::Io(_) => "io",
        FrameError::Truncated { .. } => "truncated",
        FrameError::Oversized { .. } => "oversized",
        FrameError::BadPrefix { .. } => "bad_prefix",
        FrameError::Json(_) => "json",
    };
    shared
        .obs
        .counter(&format!("net.frame_errors.{variant}"))
        .inc();
}

fn handle_request(request: Request, shared: &WorkerShared, owned: &mut HashSet<u64>) -> Response {
    match request {
        Request::Submit(spec) => submit(spec, shared, owned),
        Request::Stats => Response::Stats {
            stats: shared.obs.snapshot(),
        },
        Request::Poll { job } => match shared.service.status(JobId::from_raw(job)) {
            Some(status) => Response::Status { job, status },
            None => Response::Error {
                code: ErrorCode::UnknownJob,
                message: format!("job {job} is not tracked"),
            },
        },
        Request::Fetch { job } => fetch(job, shared, owned),
        Request::Cancel { job } => {
            let outcome = shared.service.dispose(JobId::from_raw(job));
            if outcome != DisposeOutcome::Unknown {
                owned.remove(&job);
            }
            Response::Cancelled { job, outcome }
        }
    }
}

fn submit(spec: JobSpec, shared: &WorkerShared, owned: &mut HashSet<u64>) -> Response {
    // Validate everything the worker can check synchronously, so bad
    // specs fail the submit instead of a later fetch.
    let kind = match spec.engine_kind() {
        Ok(kind) => kind,
        Err(e) => {
            return Response::Error {
                code: ErrorCode::BadRequest,
                message: e.to_string(),
            }
        }
    };
    let problem = match spec.decode_problem() {
        Ok(problem) => problem,
        Err(e) => {
            return Response::Error {
                code: ErrorCode::BadRequest,
                message: format!("problem does not parse: {e}"),
            }
        }
    };
    let settings = spec.settings();
    let seeds = spec.seeds;
    let sequence = shared.submits.fetch_add(1, Ordering::SeqCst);
    let inject_panic = match shared.fault {
        Some(WorkerFault::PanicOnSubmit(n)) => sequence == n,
        Some(WorkerFault::PanicFirstSubmits(k)) => sequence < k,
        None => false,
    };
    let obs = Arc::clone(&shared.obs);
    let submitted = shared
        .service
        .submit_with(move || -> Result<Vec<WireSolution>, String> {
            if inject_panic {
                panic!("injected worker fault: submit {sequence} dies mid-shard");
            }
            let solutions = crate::local::solve_any(&problem, kind, &settings, &seeds)?;
            // Flushed once per shard, after the solve — the anneal loop
            // itself stays untouched (the determinism contract).
            obs.counter("net.shards_solved").inc();
            obs.counter("net.solved_replicas")
                .add(solutions.len() as u64);
            Ok(solutions)
        });
    match submitted {
        Ok(id) => {
            owned.insert(id.raw());
            Response::Submitted { job: id.raw() }
        }
        Err(e @ SubmitError::QueueFull { .. }) => Response::Error {
            code: ErrorCode::Backpressure,
            message: e.to_string(),
        },
        Err(e) => Response::Error {
            code: ErrorCode::Internal,
            message: e.to_string(),
        },
    }
}

fn fetch(job: u64, shared: &WorkerShared, owned: &mut HashSet<u64>) -> Response {
    use hycim_service::FetchError;
    match shared
        .service
        .fetch_value::<Result<Vec<WireSolution>, String>>(JobId::from_raw(job))
    {
        Ok(Ok(solutions)) => {
            owned.remove(&job);
            Response::Solutions { job, solutions }
        }
        Ok(Err(message)) => {
            // The spec validated but the engine refused the instance
            // (an encoding limit); the entry is consumed.
            owned.remove(&job);
            Response::Error {
                code: ErrorCode::JobFailed,
                message,
            }
        }
        Err(FetchError::NotFinished(status)) => Response::Error {
            code: ErrorCode::NotFinished,
            message: format!("job {job} is still {status}"),
        },
        Err(FetchError::Cancelled(_)) => {
            owned.remove(&job);
            Response::Error {
                code: ErrorCode::JobCancelled,
                message: format!("job {job} was cancelled"),
            }
        }
        Err(FetchError::Failed { message, .. }) => {
            owned.remove(&job);
            Response::Error {
                code: ErrorCode::JobFailed,
                message,
            }
        }
        Err(FetchError::Unknown(_)) => Response::Error {
            code: ErrorCode::UnknownJob,
            message: format!("job {job} is not tracked"),
        },
        Err(e) => Response::Error {
            code: ErrorCode::Internal,
            message: e.to_string(),
        },
    }
}
