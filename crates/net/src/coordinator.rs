//! The coordinator: splits a replica grid into shards, dispatches
//! them to workers, retries failures on surviving workers, and merges
//! the results bit-identically to a local run.
//!
//! Retry policy: a shard is re-dispatched (to the next surviving
//! worker) whenever its attempt fails for any reason — transport
//! death, a panicked solve, a refused spec — up to a per-shard
//! attempt bound. A worker whose connection errors, or whose job
//! fails, is dropped from the rotation (conservatively: a failing
//! pool member is suspect). Because every spec carries its exact
//! seeds, a retried shard recomputes byte-for-byte the same solutions,
//! so retries are invisible in the merged result. When a shard's
//! attempts are exhausted, the whole run fails with
//! [`NetError::ShardExhausted`] — never a hang, never a partial
//! merge.

use std::sync::Arc;
use std::time::Duration;

use hycim_core::{merge_shards, replica_seed, Shard, ShardPlan};
use hycim_obs::{Event, ObsRegistry, Snapshot};

use crate::client::{NetError, WorkerClient};
use crate::proto::{JobSpec, WireSolution};

/// One unit of dispatch: a shard of the flat grid and the spec that
/// computes exactly that shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardJob {
    /// The flat-grid range this job covers.
    pub shard: Shard,
    /// The work: one solve per seed, in shard order (so
    /// `spec.seeds.len() == shard.len()`).
    pub spec: JobSpec,
}

/// Builds the shard jobs for one problem's replica column: replica
/// `k` solves with `replica_seed(root_seed, problem_index, k)` — for
/// `problem_index == 0` exactly the
/// [`BatchRunner`](hycim_core::BatchRunner) derivation, which is what
/// the bit-identity guarantee is stated against. Returns the grid
/// total alongside the jobs.
pub fn shard_replica_column(
    base: &JobSpec,
    replicas: usize,
    root_seed: u64,
    problem_index: u64,
    shards: usize,
) -> (usize, Vec<ShardJob>) {
    let plan = ShardPlan::split(replicas, shards.max(1));
    let jobs = plan
        .shards()
        .iter()
        .map(|&shard| {
            let mut spec = base.clone();
            spec.seeds = shard
                .indices()
                .map(|k| replica_seed(root_seed, problem_index, k as u64))
                .collect();
            ShardJob { shard, spec }
        })
        .collect();
    (plan.total(), jobs)
}

/// Dispatches shard jobs across a set of workers.
#[derive(Debug, Clone)]
pub struct Coordinator {
    addrs: Vec<String>,
    max_attempts: usize,
    poll_interval: Duration,
    read_timeout: Option<Duration>,
    connect_timeout: Option<Duration>,
    obs: Arc<ObsRegistry>,
}

enum Slot {
    /// Waiting for (re-)dispatch.
    Todo { attempts: usize, last: String },
    /// Submitted; `attempts` includes this one.
    Pending {
        worker: usize,
        job: u64,
        attempts: usize,
    },
    /// Fetched.
    Done(Vec<WireSolution>),
}

impl Coordinator {
    /// A coordinator over the given worker addresses. The default
    /// attempt bound lets every shard try each worker once, plus one
    /// retry.
    pub fn new(addrs: Vec<String>) -> Self {
        let max_attempts = addrs.len() + 1;
        Self {
            addrs,
            max_attempts,
            poll_interval: Duration::from_millis(2),
            read_timeout: None,
            connect_timeout: None,
            obs: Arc::new(ObsRegistry::new()),
        }
    }

    /// Overrides the per-shard attempt bound.
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts == 0`.
    pub fn with_max_attempts(mut self, max_attempts: usize) -> Self {
        assert!(max_attempts > 0, "need at least one attempt");
        self.max_attempts = max_attempts;
        self
    }

    /// Bounds every per-request wait on a worker: a peer that accepts
    /// the connection but goes silent turns into [`NetError::Timeout`]
    /// — which retires it and requeues its shards — instead of
    /// hanging the whole run.
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = Some(timeout);
        self
    }

    /// Bounds the initial connect to each worker (unreachable
    /// addresses otherwise stall for the platform default, often
    /// minutes).
    pub fn with_connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = Some(timeout);
        self
    }

    /// Routes the coordinator's own counters and events into a caller
    /// registry (by default each coordinator owns a private one,
    /// readable via [`obs`](Self::obs)).
    pub fn with_obs(mut self, obs: Arc<ObsRegistry>) -> Self {
        self.obs = obs;
        self
    }

    /// The registry holding the coordinator-side view of a run:
    /// `coord.shard_attempts` / `coord.shard_retries` /
    /// `coord.shards_done` / `coord.workers_retired` /
    /// `coord.shards_requeued`, plus the dispatch/retire event trace.
    pub fn obs(&self) -> &Arc<ObsRegistry> {
        &self.obs
    }

    /// Scrapes every worker's metrics registry over the `stats` wire
    /// verb, honoring the configured timeouts. Returns one
    /// [`Snapshot`] per address, in address order.
    ///
    /// # Errors
    ///
    /// The first per-worker failure — scraping is a diagnostic path,
    /// so it reports rather than retries.
    pub fn scrape(&self) -> Result<Vec<(String, Snapshot)>, NetError> {
        self.addrs
            .iter()
            .map(|addr| {
                let mut client = self.connect(addr)?;
                Ok((addr.clone(), client.stats()?))
            })
            .collect()
    }

    fn connect(&self, addr: &str) -> Result<WorkerClient, NetError> {
        let mut client = match self.connect_timeout {
            Some(timeout) => WorkerClient::connect_timeout(addr, timeout)?,
            None => WorkerClient::connect(addr)?,
        };
        client.set_timeout(self.read_timeout)?;
        Ok(client)
    }

    /// Runs a set of shard jobs to completion and merges their
    /// results into flat-grid order.
    ///
    /// # Errors
    ///
    /// [`NetError::NoWorkers`] for an empty address list,
    /// [`NetError::ShardExhausted`] when a shard runs out of retries
    /// or surviving workers, [`NetError::Shard`] if the returned
    /// pieces cannot cover the grid exactly once (a worker returning
    /// the wrong count).
    pub fn run(&self, total: usize, jobs: &[ShardJob]) -> Result<Vec<WireSolution>, NetError> {
        if self.addrs.is_empty() {
            return Err(NetError::NoWorkers);
        }
        let mut clients: Vec<Option<WorkerClient>> = self
            .addrs
            .iter()
            .map(|addr| self.connect(addr).ok())
            .collect();
        let attempts_made = self.obs.counter("coord.shard_attempts");
        let retries = self.obs.counter("coord.shard_retries");
        let shards_done = self.obs.counter("coord.shards_done");
        let mut slots: Vec<Slot> = jobs
            .iter()
            .map(|_| Slot::Todo {
                attempts: 0,
                last: "never attempted".to_string(),
            })
            .collect();
        let mut cursor = 0usize;

        loop {
            let mut progressed = false;

            // Dispatch every waiting shard to the next surviving
            // worker.
            for i in 0..slots.len() {
                let Slot::Todo { attempts, last } = &slots[i] else {
                    continue;
                };
                let (attempts, last) = (*attempts, last.clone());
                let shard = jobs[i].shard;
                if attempts >= self.max_attempts {
                    return Err(NetError::ShardExhausted {
                        start: shard.start,
                        end: shard.end,
                        attempts,
                        last,
                    });
                }
                let Some(worker) = next_alive(&clients, &mut cursor) else {
                    return Err(NetError::ShardExhausted {
                        start: shard.start,
                        end: shard.end,
                        attempts,
                        last: format!("no surviving workers (last error: {last})"),
                    });
                };
                let submitted = clients[worker]
                    .as_mut()
                    .expect("next_alive returns live workers")
                    .submit(&jobs[i].spec);
                match submitted {
                    Ok(job) => {
                        attempts_made.inc();
                        if attempts > 0 {
                            retries.inc();
                            self.obs.tracer().record(Event::ShardRetried {
                                start: shard.start as u64,
                                end: shard.end as u64,
                            });
                        }
                        self.obs.tracer().record(Event::ShardDispatched {
                            start: shard.start as u64,
                            end: shard.end as u64,
                            worker: worker as u64,
                        });
                        slots[i] = Slot::Pending {
                            worker,
                            job,
                            attempts: attempts + 1,
                        };
                        progressed = true;
                    }
                    Err(e) => {
                        attempts_made.inc();
                        retire_worker(
                            &mut clients,
                            &mut slots,
                            jobs,
                            &self.obs,
                            worker,
                            &e.to_string(),
                        );
                        slots[i] = Slot::Todo {
                            attempts: attempts + 1,
                            last: e.to_string(),
                        };
                    }
                }
            }

            // Poll every in-flight shard; fetch the finished ones.
            for i in 0..slots.len() {
                let (worker, job, attempts) = match &slots[i] {
                    Slot::Pending {
                        worker,
                        job,
                        attempts,
                    } => (*worker, *job, *attempts),
                    _ => continue,
                };
                let Some(client) = clients[worker].as_mut() else {
                    // Its worker was retired this round; the retire
                    // already requeued it.
                    continue;
                };
                match client.poll(job) {
                    Ok(status) if !status.is_terminal() => {}
                    Ok(_) => match clients[worker].as_mut().expect("still live").fetch(job) {
                        Ok(solutions) => {
                            shards_done.inc();
                            slots[i] = Slot::Done(solutions);
                            progressed = true;
                        }
                        Err(e @ NetError::Remote { .. }) => {
                            // The job itself failed (panicked solve,
                            // refused spec): the worker is suspect —
                            // retire it and retry elsewhere.
                            retire_worker(
                                &mut clients,
                                &mut slots,
                                jobs,
                                &self.obs,
                                worker,
                                &e.to_string(),
                            );
                            slots[i] = Slot::Todo {
                                attempts,
                                last: e.to_string(),
                            };
                            progressed = true;
                        }
                        Err(e) => {
                            retire_worker(
                                &mut clients,
                                &mut slots,
                                jobs,
                                &self.obs,
                                worker,
                                &e.to_string(),
                            );
                            progressed = true;
                        }
                    },
                    Err(e) => {
                        retire_worker(
                            &mut clients,
                            &mut slots,
                            jobs,
                            &self.obs,
                            worker,
                            &e.to_string(),
                        );
                        progressed = true;
                    }
                }
            }

            if slots.iter().all(|s| matches!(s, Slot::Done(_))) {
                break;
            }
            if !progressed {
                std::thread::sleep(self.poll_interval);
            }
        }

        let parts: Vec<(Shard, Vec<WireSolution>)> = jobs
            .iter()
            .zip(slots)
            .map(|(job, slot)| match slot {
                Slot::Done(solutions) => (job.shard, solutions),
                _ => unreachable!("loop exits only when every slot is done"),
            })
            .collect();
        merge_shards(total, parts).map_err(NetError::Shard)
    }
}

/// Advances the round-robin cursor to the next live worker.
fn next_alive(clients: &[Option<WorkerClient>], cursor: &mut usize) -> Option<usize> {
    for _ in 0..clients.len() {
        let candidate = *cursor % clients.len();
        *cursor = candidate + 1;
        if clients[candidate].is_some() {
            return Some(candidate);
        }
    }
    None
}

/// Drops a worker from the rotation and requeues every shard that was
/// pending on it (attempt counts preserved — the retry itself
/// re-increments on dispatch). The retirement and each requeue land in
/// the coordinator's registry, so a scrape after a fault shows exactly
/// which worker died and how many shards it took down with it.
fn retire_worker(
    clients: &mut [Option<WorkerClient>],
    slots: &mut [Slot],
    jobs: &[ShardJob],
    obs: &ObsRegistry,
    worker: usize,
    reason: &str,
) {
    clients[worker] = None;
    obs.counter("coord.workers_retired").inc();
    obs.tracer().record(Event::WorkerRetired {
        worker: worker as u64,
    });
    let requeued = obs.counter("coord.shards_requeued");
    for (i, slot) in slots.iter_mut().enumerate() {
        if let Slot::Pending {
            worker: w,
            attempts,
            ..
        } = slot
        {
            if *w == worker {
                requeued.inc();
                obs.tracer().record(Event::ShardRequeued {
                    start: jobs[i].shard.start as u64,
                    end: jobs[i].shard.end as u64,
                });
                *slot = Slot::Todo {
                    attempts: *attempts,
                    last: format!("worker retired: {reason}"),
                };
            }
        }
    }
}
