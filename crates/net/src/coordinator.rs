//! The coordinator: splits a replica grid into shards, dispatches
//! them to workers, retries failures with seeded backoff, probes and
//! readmits recovered workers, and merges the results bit-identically
//! to a local run.
//!
//! # Resilience model
//!
//! Every worker is in one of three states:
//!
//! * **Live** — in the dispatch rotation. A failure (transport death,
//!   a panicked solve, a refused spec) counts against a per-worker
//!   consecutive-failure circuit breaker; tripping it moves the
//!   worker to probation and requeues its in-flight shards.
//! * **Probation** — out of the rotation, on a deterministic probe
//!   schedule measured in dispatch rounds (base penalty, doubling per
//!   failed probe). An elapsed penalty triggers a cheap health probe
//!   (the `stats` wire verb); success readmits the worker, failure
//!   doubles the penalty. The schedule is counted in loop rounds, not
//!   wall-clock, so a replayed run probes at the same points.
//! * **Dead** — the probe budget is spent; the worker is never
//!   contacted again in this run.
//!
//! Between retry attempts of one shard the coordinator sleeps an
//! exponentially growing, jittered backoff. The jitter is drawn from
//! a dedicated `replica_seed(seed, BACKOFF_ROLE, attempt)` stream —
//! never from the wall clock — so timing noise cannot leak into
//! anything derived from the run, and the sleep itself is injectable
//! (and skippable in tests) via [`Coordinator::with_sleep_fn`].
//!
//! When a shard exhausts its attempt bound, or the whole fleet is
//! dead or empty, the coordinator **degrades gracefully**: it runs
//! the remaining shards locally through
//! [`BatchRunner`](hycim_core::BatchRunner) over the spec's exact
//! pre-derived seeds, so the merged result is still byte-identical to
//! an all-local run. [`NetError::ShardExhausted`] — now carrying the
//! full per-attempt failure chain — is reserved for shards that *no
//! path* can finish (e.g. a spec every worker and the local host
//! refuse), or for coordinators that opted out via
//! [`with_local_fallback(false)`](Coordinator::with_local_fallback).
//! Because every spec carries its exact seeds, a retried, readmitted,
//! or locally solved shard recomputes byte-for-byte the same
//! solutions — retries are invisible in the merged result.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use hycim_core::{merge_shards, replica_seed, Shard, ShardPlan};
use hycim_obs::{Event, ObsRegistry, Snapshot};

use crate::client::{NetError, WorkerClient};
use crate::local;
use crate::proto::{JobSpec, WireSolution};

/// Role index of the backoff-jitter stream in
/// [`hycim_core::replica_seed`] — distinct from every
/// role the study recipes use (instance 0, solve 1, hardware 2), so
/// backoff draws can never collide with a solve stream.
pub const BACKOFF_ROLE: u64 = 0xB0FF;

/// Seeded exponential backoff between retry attempts of one shard.
///
/// Attempt `a` (1-based) waits `base · 2^(a-1)`, scaled by a jitter
/// factor in `[0.5, 1.5)` drawn from
/// `replica_seed(seed, BACKOFF_ROLE, a)`, and capped at `cap`. The
/// delay is a pure function of `(seed, attempt)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffConfig {
    /// First-retry delay.
    pub base: Duration,
    /// Upper bound on any single delay.
    pub cap: Duration,
    /// Root of the jitter stream.
    pub seed: u64,
}

impl BackoffConfig {
    /// Defaults: 2 ms base, 100 ms cap, jitter stream rooted at
    /// `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            base: Duration::from_millis(2),
            cap: Duration::from_millis(100),
            seed,
        }
    }

    /// Overrides the first-retry delay.
    pub fn with_base(mut self, base: Duration) -> Self {
        self.base = base;
        self
    }

    /// Overrides the per-delay cap.
    pub fn with_cap(mut self, cap: Duration) -> Self {
        self.cap = cap;
        self
    }

    /// The capped, jittered delay before retry attempt `attempt`
    /// (1-based; attempt 0 — the first dispatch — never waits).
    pub fn delay(&self, attempt: usize) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let doublings = (attempt - 1).min(16) as u32;
        let raw = self.base.as_secs_f64() * f64::from(2u32.pow(doublings));
        let draw = replica_seed(self.seed, BACKOFF_ROLE, attempt as u64);
        // 53 uniform bits -> [0, 1), mapped onto a [0.5, 1.5) factor.
        let jitter = 0.5 + (draw >> 11) as f64 / (1u64 << 53) as f64;
        Duration::from_secs_f64((raw * jitter).min(self.cap.as_secs_f64()))
    }
}

/// One unit of dispatch: a shard of the flat grid and the spec that
/// computes exactly that shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardJob {
    /// The flat-grid range this job covers.
    pub shard: Shard,
    /// The work: one solve per seed, in shard order (so
    /// `spec.seeds.len() == shard.len()`).
    pub spec: JobSpec,
}

/// Builds the shard jobs for one problem's replica column: replica
/// `k` solves with `replica_seed(root_seed, problem_index, k)` — for
/// `problem_index == 0` exactly the
/// [`BatchRunner`](hycim_core::BatchRunner) derivation, which is what
/// the bit-identity guarantee is stated against. Returns the grid
/// total alongside the jobs.
pub fn shard_replica_column(
    base: &JobSpec,
    replicas: usize,
    root_seed: u64,
    problem_index: u64,
    shards: usize,
) -> (usize, Vec<ShardJob>) {
    let plan = ShardPlan::split(replicas, shards.max(1));
    let jobs = plan
        .shards()
        .iter()
        .map(|&shard| {
            let mut spec = base.clone();
            spec.seeds = shard
                .indices()
                .map(|k| replica_seed(root_seed, problem_index, k as u64))
                .collect();
            ShardJob { shard, spec }
        })
        .collect();
    (plan.total(), jobs)
}

/// The injectable sleep used for backoff waits — tests swap in a
/// recorder so retry schedules are asserted, not slept through.
pub type SleepFn = Arc<dyn Fn(Duration) + Send + Sync>;

/// Dispatches shard jobs across a set of workers, with worker health
/// tracking, seeded retry backoff, and local-fallback graceful
/// degradation (see the module docs for the full model).
#[derive(Clone)]
pub struct Coordinator {
    addrs: Vec<String>,
    max_attempts: usize,
    poll_interval: Duration,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
    connect_timeout: Option<Duration>,
    failure_threshold: u32,
    probe_base_rounds: u64,
    probe_limit: u32,
    backoff: Option<BackoffConfig>,
    local_fallback: bool,
    sleep: SleepFn,
    obs: Arc<ObsRegistry>,
}

impl fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Coordinator")
            .field("addrs", &self.addrs)
            .field("max_attempts", &self.max_attempts)
            .field("read_timeout", &self.read_timeout)
            .field("write_timeout", &self.write_timeout)
            .field("connect_timeout", &self.connect_timeout)
            .field("failure_threshold", &self.failure_threshold)
            .field("probe_base_rounds", &self.probe_base_rounds)
            .field("probe_limit", &self.probe_limit)
            .field("backoff", &self.backoff)
            .field("local_fallback", &self.local_fallback)
            .finish_non_exhaustive()
    }
}

/// Coordinator-side view of one worker address.
enum Worker {
    /// In the dispatch rotation.
    Live {
        client: WorkerClient,
        /// Consecutive failures since the last success (the circuit
        /// breaker's count).
        failures: u32,
    },
    /// Out of the rotation, awaiting its next health probe.
    Probation {
        /// Round the probation (or last failed probe) started.
        since: u64,
        /// Failed probes so far; sets the doubling penalty.
        probes_failed: u32,
        /// Most recent failure, for diagnostics.
        last: String,
    },
    /// Probe budget exhausted; never contacted again this run.
    Dead {
        /// The failure that spent the last probe.
        last: String,
    },
}

enum Slot {
    /// Waiting for (re-)dispatch.
    Todo { attempts: usize, chain: Vec<String> },
    /// Submitted; `attempts` includes this one.
    Pending {
        worker: usize,
        job: u64,
        attempts: usize,
        chain: Vec<String>,
    },
    /// Fetched.
    Done(Vec<WireSolution>),
}

impl Coordinator {
    /// A coordinator over the given worker addresses. The default
    /// attempt bound lets every shard try each worker once, plus one
    /// retry; local fallback and seeded backoff are on by default.
    pub fn new(addrs: Vec<String>) -> Self {
        let max_attempts = addrs.len() + 1;
        Self {
            addrs,
            max_attempts,
            poll_interval: Duration::from_millis(2),
            read_timeout: None,
            write_timeout: None,
            connect_timeout: None,
            failure_threshold: 1,
            probe_base_rounds: 4,
            probe_limit: 3,
            backoff: Some(BackoffConfig::new(0)),
            local_fallback: true,
            sleep: Arc::new(std::thread::sleep),
            obs: Arc::new(ObsRegistry::new()),
        }
    }

    /// Overrides the per-shard attempt bound.
    ///
    /// # Errors
    ///
    /// [`NetError::Config`] if `max_attempts == 0` (a shard must get
    /// at least one attempt).
    pub fn with_max_attempts(mut self, max_attempts: usize) -> Result<Self, NetError> {
        if max_attempts == 0 {
            return Err(NetError::Config(
                "max_attempts must be at least 1 (every shard needs one dispatch attempt)".into(),
            ));
        }
        self.max_attempts = max_attempts;
        Ok(self)
    }

    /// Bounds every per-request wait on a worker: a peer that accepts
    /// the connection but goes silent turns into [`NetError::Timeout`]
    /// — which suspends it and requeues its shards — instead of
    /// hanging the whole run.
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = Some(timeout);
        self
    }

    /// Bounds every request write: a worker that stops draining its
    /// socket (a stalled reader) turns into [`NetError::Timeout`]
    /// once the buffers fill.
    pub fn with_write_timeout(mut self, timeout: Duration) -> Self {
        self.write_timeout = Some(timeout);
        self
    }

    /// Bounds the initial connect to each worker (unreachable
    /// addresses otherwise stall for the platform default, often
    /// minutes).
    pub fn with_connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = Some(timeout);
        self
    }

    /// Consecutive failures a live worker absorbs before the circuit
    /// breaker moves it to probation (clamped to at least 1; default
    /// 1 — the first failure suspends, the conservative policy).
    pub fn with_failure_threshold(mut self, failures: u32) -> Self {
        self.failure_threshold = failures.max(1);
        self
    }

    /// The probation schedule: the first probe waits `base_rounds`
    /// dispatch rounds (clamped to at least 1), each failed probe
    /// doubles the wait, and after `probe_limit` failed probes the
    /// worker is declared dead for the rest of the run. Defaults:
    /// 4 rounds, 3 probes.
    pub fn with_probe_schedule(mut self, base_rounds: u64, probe_limit: u32) -> Self {
        self.probe_base_rounds = base_rounds.max(1);
        self.probe_limit = probe_limit;
        self
    }

    /// Overrides the seeded retry backoff (see [`BackoffConfig`]).
    pub fn with_backoff(mut self, backoff: BackoffConfig) -> Self {
        self.backoff = Some(backoff);
        self
    }

    /// Disables the retry backoff entirely (retries redispatch
    /// immediately — the pre-resilience behavior).
    pub fn without_backoff(mut self) -> Self {
        self.backoff = None;
        self
    }

    /// Enables or disables graceful degradation. When enabled (the
    /// default), shards that exhaust their attempts — or a fleet that
    /// is entirely dead or empty — are solved on the coordinator host
    /// through [`BatchRunner`](hycim_core::BatchRunner), keeping the
    /// merged result byte-identical to an all-local run. When
    /// disabled, those conditions surface as
    /// [`NetError::ShardExhausted`] / [`NetError::NoWorkers`].
    pub fn with_local_fallback(mut self, enabled: bool) -> Self {
        self.local_fallback = enabled;
        self
    }

    /// Replaces the backoff sleep (tests inject a recorder so retry
    /// schedules are asserted without real waits). Only backoff waits
    /// route through this hook; the poll interval does not.
    pub fn with_sleep_fn(mut self, sleep: SleepFn) -> Self {
        self.sleep = sleep;
        self
    }

    /// Routes the coordinator's own counters and events into a caller
    /// registry (by default each coordinator owns a private one,
    /// readable via [`obs`](Self::obs)).
    pub fn with_obs(mut self, obs: Arc<ObsRegistry>) -> Self {
        self.obs = obs;
        self
    }

    /// The registry holding the coordinator-side view of a run:
    /// `coord.shard_attempts` / `coord.shard_retries` /
    /// `coord.shards_done` / `coord.shards_local` /
    /// `coord.workers_retired` / `coord.workers_readmitted` /
    /// `coord.workers_dead` / `coord.probes_sent` /
    /// `coord.shards_requeued` / `coord.backoff_waits`, plus the
    /// dispatch/retire/probe/readmit event trace.
    pub fn obs(&self) -> &Arc<ObsRegistry> {
        &self.obs
    }

    /// Scrapes every worker's metrics registry over the `stats` wire
    /// verb, honoring the configured timeouts. Returns one
    /// [`Snapshot`] per address, in address order.
    ///
    /// # Errors
    ///
    /// The first per-worker failure — scraping is a diagnostic path,
    /// so it reports rather than retries.
    pub fn scrape(&self) -> Result<Vec<(String, Snapshot)>, NetError> {
        self.addrs
            .iter()
            .map(|addr| {
                let mut client = self.connect(addr)?;
                Ok((addr.clone(), client.stats()?))
            })
            .collect()
    }

    fn connect(&self, addr: &str) -> Result<WorkerClient, NetError> {
        let mut client = match self.connect_timeout {
            Some(timeout) => WorkerClient::connect_timeout(addr, timeout)?,
            None => WorkerClient::connect(addr)?,
        };
        client.set_timeout(self.read_timeout)?;
        client.set_write_timeout(self.write_timeout)?;
        Ok(client)
    }

    /// The health probe: connect and exercise the `stats` verb. A
    /// worker that answers it has a live accept loop, a working frame
    /// path, and a responsive registry — cheap, and no job state is
    /// touched. The successful client is kept for dispatch.
    fn probe(&self, addr: &str) -> Result<WorkerClient, NetError> {
        let mut client = self.connect(addr)?;
        client.stats()?;
        Ok(client)
    }

    /// Solves one shard on the coordinator host, or folds the local
    /// failure into the shard's exhaustion error.
    fn finish_locally_or_fail(
        &self,
        job: &ShardJob,
        attempts: usize,
        mut chain: Vec<String>,
    ) -> Result<Vec<WireSolution>, NetError> {
        if self.local_fallback {
            match local::solve_spec(&job.spec) {
                Ok(solutions) => {
                    self.obs.counter("coord.shards_local").inc();
                    self.obs.tracer().record(Event::ShardLocalSolve {
                        start: job.shard.start as u64,
                        end: job.shard.end as u64,
                    });
                    return Ok(solutions);
                }
                Err(e) => chain.push(format!("local fallback failed: {e}")),
            }
        }
        Err(NetError::ShardExhausted {
            start: job.shard.start,
            end: job.shard.end,
            attempts,
            chain,
        })
    }

    /// Runs a set of shard jobs to completion and merges their
    /// results into flat-grid order. With local fallback enabled (the
    /// default) the run completes whenever the specs are solvable at
    /// all — worker faults degrade throughput, never the result.
    ///
    /// # Errors
    ///
    /// [`NetError::NoWorkers`] for an empty address list (fallback
    /// disabled), [`NetError::ShardExhausted`] when a shard runs out
    /// of retries, surviving workers, *and* (if enabled) the local
    /// fallback — carrying the full failure chain — and
    /// [`NetError::Shard`] if the returned pieces cannot cover the
    /// grid exactly once (a worker returning the wrong count).
    pub fn run(&self, total: usize, jobs: &[ShardJob]) -> Result<Vec<WireSolution>, NetError> {
        let mut slots: Vec<Slot> = jobs
            .iter()
            .map(|_| Slot::Todo {
                attempts: 0,
                chain: Vec::new(),
            })
            .collect();

        if self.addrs.is_empty() {
            if !self.local_fallback {
                return Err(NetError::NoWorkers);
            }
            // Degraded from the start: the whole grid runs here.
            for (i, job) in jobs.iter().enumerate() {
                slots[i] = Slot::Done(self.finish_locally_or_fail(job, 0, Vec::new())?);
            }
            return Self::merge(total, jobs, slots);
        }

        let attempts_made = self.obs.counter("coord.shard_attempts");
        let retries = self.obs.counter("coord.shard_retries");
        let shards_done = self.obs.counter("coord.shards_done");
        let probes_sent = self.obs.counter("coord.probes_sent");
        let readmitted = self.obs.counter("coord.workers_readmitted");
        let backoff_waits = self.obs.counter("coord.backoff_waits");

        let mut workers: Vec<Worker> = self
            .addrs
            .iter()
            .map(|addr| match self.connect(addr) {
                Ok(client) => Worker::Live {
                    client,
                    failures: 0,
                },
                Err(e) => Worker::Probation {
                    since: 0,
                    probes_failed: 0,
                    last: format!("initial connect failed: {e}"),
                },
            })
            .collect();
        let mut cursor = 0usize;
        let mut round = 0u64;

        loop {
            let mut progressed = false;

            // Probe pass: contact every probation worker whose
            // penalty has elapsed; readmit the ones that answer.
            for (w, state) in workers.iter_mut().enumerate() {
                let Worker::Probation {
                    since,
                    probes_failed,
                    ..
                } = &*state
                else {
                    continue;
                };
                let penalty = self.probe_base_rounds << (*probes_failed).min(16);
                if round < since.saturating_add(penalty) {
                    continue;
                }
                let probes_failed = *probes_failed;
                probes_sent.inc();
                self.obs
                    .tracer()
                    .record(Event::WorkerProbed { worker: w as u64 });
                match self.probe(&self.addrs[w]) {
                    Ok(client) => {
                        *state = Worker::Live {
                            client,
                            failures: 0,
                        };
                        readmitted.inc();
                        self.obs
                            .tracer()
                            .record(Event::WorkerReadmitted { worker: w as u64 });
                        progressed = true;
                    }
                    Err(e) => {
                        let probes_failed = probes_failed + 1;
                        *state = if probes_failed >= self.probe_limit {
                            self.obs.counter("coord.workers_dead").inc();
                            Worker::Dead {
                                last: e.to_string(),
                            }
                        } else {
                            Worker::Probation {
                                since: round,
                                probes_failed,
                                last: e.to_string(),
                            }
                        };
                    }
                }
            }

            // Dispatch every waiting shard to the next live worker —
            // or settle its fate when neither retries nor workers
            // remain.
            for i in 0..slots.len() {
                let Slot::Todo { attempts, chain } = &slots[i] else {
                    continue;
                };
                let (attempts, chain) = (*attempts, chain.clone());
                if attempts >= self.max_attempts {
                    slots[i] = Slot::Done(self.finish_locally_or_fail(&jobs[i], attempts, chain)?);
                    progressed = true;
                    continue;
                }
                let Some(worker) = next_live(&workers, &mut cursor) else {
                    if workers
                        .iter()
                        .any(|w| matches!(w, Worker::Probation { .. }))
                    {
                        // Someone may still be readmitted; wait for
                        // the probe schedule.
                        continue;
                    }
                    // The whole fleet is dead: degrade (or report,
                    // with every worker's last failure on the chain).
                    let mut chain = chain;
                    chain.push(fleet_obituary(&self.addrs, &workers));
                    slots[i] = Slot::Done(self.finish_locally_or_fail(&jobs[i], attempts, chain)?);
                    progressed = true;
                    continue;
                };
                if attempts > 0 {
                    if let Some(backoff) = &self.backoff {
                        backoff_waits.inc();
                        (self.sleep)(backoff.delay(attempts));
                    }
                }
                let shard = jobs[i].shard;
                let Worker::Live { client, .. } = &mut workers[worker] else {
                    unreachable!("next_live returns live workers");
                };
                match client.submit(&jobs[i].spec) {
                    Ok(job) => {
                        attempts_made.inc();
                        if attempts > 0 {
                            retries.inc();
                            self.obs.tracer().record(Event::ShardRetried {
                                start: shard.start as u64,
                                end: shard.end as u64,
                            });
                        }
                        self.obs.tracer().record(Event::ShardDispatched {
                            start: shard.start as u64,
                            end: shard.end as u64,
                            worker: worker as u64,
                        });
                        slots[i] = Slot::Pending {
                            worker,
                            job,
                            attempts: attempts + 1,
                            chain,
                        };
                        progressed = true;
                    }
                    Err(e) => {
                        attempts_made.inc();
                        let failure = e.to_string();
                        self.note_failure(&mut workers, &mut slots, jobs, worker, &failure, round);
                        let mut chain = chain;
                        chain.push(format!("attempt {}: {failure}", attempts + 1));
                        slots[i] = Slot::Todo {
                            attempts: attempts + 1,
                            chain,
                        };
                    }
                }
            }

            // Poll every in-flight shard; fetch the finished ones.
            for i in 0..slots.len() {
                let (worker, job, attempts) = match &slots[i] {
                    Slot::Pending {
                        worker,
                        job,
                        attempts,
                        ..
                    } => (*worker, *job, *attempts),
                    _ => continue,
                };
                let Worker::Live { client, .. } = &mut workers[worker] else {
                    // Its worker was suspended this round; the
                    // suspension already requeued it.
                    continue;
                };
                match client.poll(job) {
                    Ok(status) if !status.is_terminal() => {}
                    Ok(_) => {
                        let Worker::Live { client, .. } = &mut workers[worker] else {
                            unreachable!("checked live above");
                        };
                        match client.fetch(job) {
                            Ok(solutions) => {
                                if let Worker::Live { failures, .. } = &mut workers[worker] {
                                    // A delivered shard closes the
                                    // breaker's consecutive count.
                                    *failures = 0;
                                }
                                shards_done.inc();
                                slots[i] = Slot::Done(solutions);
                                progressed = true;
                            }
                            Err(e) => {
                                // Job-level failures (panicked solve,
                                // refused spec) and transport deaths
                                // alike: the worker is suspect, the
                                // shard retries elsewhere.
                                let failure = e.to_string();
                                self.note_failure(
                                    &mut workers,
                                    &mut slots,
                                    jobs,
                                    worker,
                                    &failure,
                                    round,
                                );
                                if let Slot::Pending { chain, .. } = &mut slots[i] {
                                    let mut chain = std::mem::take(chain);
                                    chain.push(format!("attempt {attempts}: {failure}"));
                                    slots[i] = Slot::Todo { attempts, chain };
                                }
                                progressed = true;
                            }
                        }
                    }
                    Err(e) => {
                        let failure = e.to_string();
                        self.note_failure(&mut workers, &mut slots, jobs, worker, &failure, round);
                        progressed = true;
                    }
                }
            }

            if slots.iter().all(|s| matches!(s, Slot::Done(_))) {
                break;
            }
            round += 1;
            if !progressed {
                std::thread::sleep(self.poll_interval);
            }
        }

        Self::merge(total, jobs, slots)
    }

    fn merge(
        total: usize,
        jobs: &[ShardJob],
        slots: Vec<Slot>,
    ) -> Result<Vec<WireSolution>, NetError> {
        let parts: Vec<(Shard, Vec<WireSolution>)> = jobs
            .iter()
            .zip(slots)
            .map(|(job, slot)| match slot {
                Slot::Done(solutions) => (job.shard, solutions),
                _ => unreachable!("merge runs only when every slot is done"),
            })
            .collect();
        merge_shards(total, parts).map_err(NetError::Shard)
    }

    /// Counts a failure against a worker's circuit breaker. Tripping
    /// it suspends the worker into probation and requeues every shard
    /// pending on it (attempt counts preserved — the retry itself
    /// re-increments on dispatch). A failure under the threshold
    /// keeps the worker live but replaces its connection, since most
    /// failures sever the transport.
    fn note_failure(
        &self,
        workers: &mut [Worker],
        slots: &mut [Slot],
        jobs: &[ShardJob],
        worker: usize,
        reason: &str,
        round: u64,
    ) {
        let failures = match &mut workers[worker] {
            Worker::Live { failures, .. } => {
                *failures += 1;
                *failures
            }
            // Already suspended (several pendings can fail in one
            // round, and the first suspension requeues them all).
            _ => return,
        };
        if failures < self.failure_threshold {
            // Under the breaker threshold: stay in rotation on a
            // fresh connection (the failed one is suspect).
            match self.connect(&self.addrs[worker]) {
                Ok(client) => {
                    workers[worker] = Worker::Live { client, failures };
                    return;
                }
                Err(_) => {
                    // Reconnect refused: fall through to suspension.
                }
            }
        }
        self.obs.counter("coord.workers_retired").inc();
        self.obs.tracer().record(Event::WorkerRetired {
            worker: worker as u64,
        });
        workers[worker] = Worker::Probation {
            since: round,
            probes_failed: 0,
            last: reason.to_string(),
        };
        let requeued = self.obs.counter("coord.shards_requeued");
        for (i, slot) in slots.iter_mut().enumerate() {
            if let Slot::Pending {
                worker: w,
                attempts,
                chain,
                ..
            } = slot
            {
                if *w == worker {
                    requeued.inc();
                    self.obs.tracer().record(Event::ShardRequeued {
                        start: jobs[i].shard.start as u64,
                        end: jobs[i].shard.end as u64,
                    });
                    let mut chain = std::mem::take(chain);
                    chain.push(format!(
                        "attempt {attempts}: worker {worker} suspended: {reason}"
                    ));
                    *slot = Slot::Todo {
                        attempts: *attempts,
                        chain,
                    };
                }
            }
        }
    }
}

/// Advances the round-robin cursor to the next live worker.
fn next_live(workers: &[Worker], cursor: &mut usize) -> Option<usize> {
    for _ in 0..workers.len() {
        let candidate = *cursor % workers.len();
        *cursor = candidate + 1;
        if matches!(workers[candidate], Worker::Live { .. }) {
            return Some(candidate);
        }
    }
    None
}

/// One line summarizing why no worker is usable — the chain entry a
/// shard gets when the whole fleet is gone.
fn fleet_obituary(addrs: &[String], workers: &[Worker]) -> String {
    let summary: Vec<String> = workers
        .iter()
        .zip(addrs)
        .map(|(w, addr)| match w {
            Worker::Dead { last } => format!("{addr}: {last}"),
            Worker::Probation { last, .. } => format!("{addr}: {last}"),
            Worker::Live { .. } => format!("{addr}: live"),
        })
        .collect();
    format!("no usable workers ({})", summary.join("; "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_capped_and_jittered() {
        let backoff = BackoffConfig::new(9)
            .with_base(Duration::from_millis(4))
            .with_cap(Duration::from_millis(50));
        assert_eq!(backoff.delay(0), Duration::ZERO);
        for attempt in 1..32 {
            let d = backoff.delay(attempt);
            assert_eq!(d, backoff.delay(attempt), "pure in (seed, attempt)");
            assert!(d <= Duration::from_millis(50), "capped: {d:?}");
            if attempt == 1 {
                // base * [0.5, 1.5)
                assert!(d >= Duration::from_millis(2), "{d:?}");
                assert!(d < Duration::from_millis(6), "{d:?}");
            }
        }
        // Growth before the cap bites: attempt 3 waits longer than
        // the fastest possible attempt 1.
        assert!(backoff.delay(3) > backoff.delay(1) || backoff.delay(3) >= backoff.cap / 2);
        // Different seeds draw different jitter somewhere early.
        let other = BackoffConfig::new(10)
            .with_base(Duration::from_millis(4))
            .with_cap(Duration::from_millis(50));
        assert!((1..8).any(|a| other.delay(a) != backoff.delay(a)));
    }

    #[test]
    fn zero_max_attempts_is_a_typed_config_error() {
        let err = Coordinator::new(vec!["127.0.0.1:1".into()])
            .with_max_attempts(0)
            .unwrap_err();
        match err {
            NetError::Config(message) => assert!(message.contains("max_attempts"), "{message}"),
            other => panic!("expected NetError::Config, got {other}"),
        }
        assert!(Coordinator::new(Vec::new()).with_max_attempts(3).is_ok());
    }
}
