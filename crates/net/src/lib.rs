//! Wire protocol for distributed HyCiM solves: submit shards of a
//! replica grid to TCP workers, merge the results **bit-identically**
//! to a local run.
//!
//! The stack, bottom to top:
//!
//! * [`json`] — a hand-rolled JSON dialect (unsigned integers only;
//!   floats travel as IEEE-754 bit images in hex, problems in their
//!   canonical text form), so nothing on the wire can perturb a
//!   result.
//! * [`frame`] — one message per line, prefix-tagged with the
//!   protocol version, byte-bounded per frame. Plain
//!   `std::net::TcpStream`, no async runtime.
//! * [`proto`] — the five verbs (`submit`, `poll`, `fetch`,
//!   `cancel`, `stats`), the [`JobSpec`] shard description, and the
//!   [`WireSolution`] results.
//! * [`worker`] — a [`WorkerServer`] bridging the verbs onto a
//!   [`JobService`](hycim_service::JobService) pool, with
//!   per-connection job disposal (a dropped coordinator never strands
//!   jobs) and one [`ObsRegistry`](hycim_obs::ObsRegistry) per worker
//!   (frame and shard counters, scrapeable over the `stats` verb).
//! * [`client`] / [`coordinator`] — the [`WorkerClient`] connection
//!   (with read/write/connect deadlines that turn a hung or stalled
//!   peer into a typed [`NetError::Timeout`]) and the [`Coordinator`]
//!   that plans shards ([`ShardPlan`](hycim_core::ShardPlan)),
//!   dispatches them with pre-derived
//!   [`replica_seed`](hycim_core::replica_seed)s, retries failures
//!   with seeded backoff, tracks worker health (probation, probing,
//!   readmission), degrades to solving shards locally when the fleet
//!   is gone, records its dispatch/retire/readmit story in its own
//!   registry, and merges with
//!   [`merge_shards`](hycim_core::merge_shards).
//! * [`chaos`] — a deterministic fault-injection TCP proxy
//!   ([`ChaosProxy`]) driven by a seeded [`FaultPlan`]: refused
//!   connections, mid-frame drops, truncations, stalls, delays —
//!   scripted, reproducible network misbehavior for the resilience
//!   tests.
//!
//! Determinism contract: every spec carries its exact solve seeds and
//! the instance's hardware seed; workers derive nothing. A sharded
//! run over any number of workers — including retries after faults,
//! readmitted workers, and shards finished by the coordinator's local
//! fallback — merges to the byte-for-byte result of
//! [`BatchRunner`](hycim_core::BatchRunner) on one thread. Backoff
//! jitter comes from its own seeded stream, never the wall clock.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod chaos;
pub mod client;
pub mod coordinator;
pub mod frame;
pub mod json;
pub(crate) mod local;
pub mod proto;
pub mod worker;

pub use chaos::{ChaosProxy, ConnFault, FaultPlan};
pub use client::{NetError, WorkerClient};
pub use coordinator::{shard_replica_column, BackoffConfig, Coordinator, ShardJob, SleepFn};
pub use frame::{FrameError, MessageReceiver, MessageSender, FRAME_PREFIX};
pub use proto::{ErrorCode, JobSpec, ProtoError, Request, Response, WireSolution};
pub use worker::{WorkerConfig, WorkerFault, WorkerHandle, WorkerServer};
