//! Line-delimited message framing over any `Read`/`Write` pair.
//!
//! One frame is one line: the protocol prefix [`FRAME_PREFIX`], a
//! single-line JSON document (the [`json`](crate::json) writer never
//! emits raw newlines), and `\n`. The prefix carries the protocol
//! version, so a peer speaking anything else — an older worker, a
//! stray HTTP client — fails with [`FrameError::BadPrefix`] on the
//! first frame instead of producing garbage downstream.
//!
//! The receiver enforces a byte bound per frame: a peer that streams
//! an endless line cannot balloon memory, it hits
//! [`FrameError::Oversized`]. EOF in the middle of a line (a
//! connection cut mid-frame) is [`FrameError::Truncated`], distinct
//! from the clean end-of-stream `Ok(None)`.

use std::fmt;
use std::io::{BufRead, Write};

use crate::json::{JsonError, Value};

/// Protocol tag every frame starts with; bump the digit on any
/// incompatible change.
pub const FRAME_PREFIX: &str = "hycim1 ";

/// Default per-frame byte bound (generous: the largest legitimate
/// frame is a submitted problem instance, tens of kilobytes).
pub const DEFAULT_MAX_FRAME: usize = 8 * 1024 * 1024;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed.
    Io(std::io::Error),
    /// The stream ended inside a frame (no terminating newline).
    Truncated {
        /// Bytes read before the stream ended.
        got: usize,
    },
    /// A frame exceeded the receiver's byte bound. The stream is
    /// unrecoverable after this — the rest of the oversized line was
    /// not consumed.
    Oversized {
        /// The configured bound.
        limit: usize,
    },
    /// The line did not start with [`FRAME_PREFIX`] — the peer speaks
    /// a different protocol (or protocol version).
    BadPrefix {
        /// The first bytes of the offending line (truncated for
        /// display).
        got: String,
    },
    /// The payload was not a valid protocol-dialect JSON document.
    Json(JsonError),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport error: {e}"),
            FrameError::Truncated { got } => {
                write!(f, "stream ended inside a frame ({got} bytes read)")
            }
            FrameError::Oversized { limit } => {
                write!(f, "frame exceeds the {limit}-byte bound")
            }
            FrameError::BadPrefix { got } => {
                write!(
                    f,
                    "frame does not start with {FRAME_PREFIX:?} (got {got:?})"
                )
            }
            FrameError::Json(e) => write!(f, "frame payload: {e}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            FrameError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<JsonError> for FrameError {
    fn from(e: JsonError) -> Self {
        FrameError::Json(e)
    }
}

/// Writes frames to a transport. Every [`send`](Self::send) flushes,
/// so a frame is on the wire when the call returns.
pub struct MessageSender<W: Write> {
    inner: W,
}

impl<W: Write> MessageSender<W> {
    /// Wraps a transport.
    pub fn new(inner: W) -> Self {
        Self { inner }
    }

    /// Sends one message as one frame.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn send(&mut self, message: &Value) -> std::io::Result<()> {
        let mut line = String::with_capacity(FRAME_PREFIX.len() + 64);
        line.push_str(FRAME_PREFIX);
        line.push_str(&message.encode());
        line.push('\n');
        self.inner.write_all(line.as_bytes())?;
        self.inner.flush()
    }
}

/// Reads frames from a transport, enforcing the per-frame byte bound.
pub struct MessageReceiver<R: BufRead> {
    inner: R,
    max_frame: usize,
}

impl<R: BufRead> MessageReceiver<R> {
    /// Wraps a transport with the [`DEFAULT_MAX_FRAME`] bound.
    pub fn new(inner: R) -> Self {
        Self::with_max_frame(inner, DEFAULT_MAX_FRAME)
    }

    /// Wraps a transport with an explicit per-frame byte bound.
    pub fn with_max_frame(inner: R, max_frame: usize) -> Self {
        Self { inner, max_frame }
    }

    /// The wrapped transport (e.g. to set socket options on it).
    pub fn inner_ref(&self) -> &R {
        &self.inner
    }

    /// Reads the next frame. `Ok(None)` is a clean end-of-stream (the
    /// peer closed between frames).
    ///
    /// # Errors
    ///
    /// Any [`FrameError`]; after [`FrameError::Oversized`] the stream
    /// is desynchronized and must be dropped.
    pub fn recv(&mut self) -> Result<Option<Value>, FrameError> {
        let Some(line) = read_bounded_line(&mut self.inner, self.max_frame)? else {
            return Ok(None);
        };
        let line = std::str::from_utf8(&line).map_err(|_| FrameError::BadPrefix {
            got: String::from_utf8_lossy(&line[..line.len().min(32)]).into_owned(),
        })?;
        // Tolerate a trailing \r so a telnet-style peer still parses.
        let line = line.strip_suffix('\r').unwrap_or(line);
        let Some(payload) = line.strip_prefix(FRAME_PREFIX) else {
            return Err(FrameError::BadPrefix {
                got: line.chars().take(32).collect(),
            });
        };
        Ok(Some(Value::parse(payload)?))
    }
}

/// Reads up to and excluding the next `\n`, refusing to buffer more
/// than `max` bytes. `Ok(None)` only at a clean stream end.
fn read_bounded_line<R: BufRead>(
    reader: &mut R,
    max: usize,
) -> Result<Option<Vec<u8>>, FrameError> {
    let mut line = Vec::new();
    loop {
        let chunk = reader.fill_buf().map_err(FrameError::Io)?;
        if chunk.is_empty() {
            return if line.is_empty() {
                Ok(None)
            } else {
                Err(FrameError::Truncated { got: line.len() })
            };
        }
        if let Some(newline) = chunk.iter().position(|&b| b == b'\n') {
            if line.len() + newline > max {
                return Err(FrameError::Oversized { limit: max });
            }
            line.extend_from_slice(&chunk[..newline]);
            reader.consume(newline + 1);
            return Ok(Some(line));
        }
        let taken = chunk.len();
        line.extend_from_slice(chunk);
        reader.consume(taken);
        if line.len() > max {
            return Err(FrameError::Oversized { limit: max });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send_all(messages: &[Value]) -> Vec<u8> {
        let mut wire = Vec::new();
        let mut sender = MessageSender::new(&mut wire);
        for m in messages {
            sender.send(m).unwrap();
        }
        wire
    }

    #[test]
    fn frames_round_trip_in_order() {
        let messages = vec![
            Value::object(vec![("verb", Value::Str("poll".into()))]),
            Value::UInt(42),
            Value::Str("multi\nline\npayload".into()),
        ];
        let wire = send_all(&messages);
        let mut receiver = MessageReceiver::new(wire.as_slice());
        for expected in &messages {
            assert_eq!(receiver.recv().unwrap().as_ref(), Some(expected));
        }
        assert!(receiver.recv().unwrap().is_none(), "clean EOF");
        assert!(receiver.recv().unwrap().is_none(), "EOF is sticky");
    }

    #[test]
    fn truncated_frame_is_not_a_clean_eof() {
        let mut wire = send_all(&[Value::UInt(1)]);
        wire.truncate(wire.len() - 1); // drop the newline
        let mut receiver = MessageReceiver::new(wire.as_slice());
        assert!(matches!(
            receiver.recv(),
            Err(FrameError::Truncated { got }) if got > 0
        ));
    }

    #[test]
    fn oversized_frame_is_bounded() {
        let wire = send_all(&[Value::Str("x".repeat(100))]);
        let mut receiver = MessageReceiver::with_max_frame(wire.as_slice(), 50);
        assert!(matches!(
            receiver.recv(),
            Err(FrameError::Oversized { limit: 50 })
        ));
        // A frame that fits exactly still parses.
        let wire = send_all(&[Value::UInt(7)]);
        let len = wire.len() - 1; // payload bytes excluding newline
        let mut receiver = MessageReceiver::with_max_frame(wire.as_slice(), len);
        assert_eq!(receiver.recv().unwrap(), Some(Value::UInt(7)));
    }

    #[test]
    fn wrong_prefix_is_rejected() {
        let mut receiver = MessageReceiver::new(&b"GET / HTTP/1.1\n"[..]);
        match receiver.recv() {
            Err(FrameError::BadPrefix { got }) => assert!(got.starts_with("GET")),
            other => panic!("expected BadPrefix, got {other:?}"),
        }
        let mut receiver = MessageReceiver::new(&b"hycim2 {}\n"[..]);
        assert!(matches!(receiver.recv(), Err(FrameError::BadPrefix { .. })));
    }

    #[test]
    fn bad_json_payload_carries_the_json_offset() {
        let mut receiver = MessageReceiver::new(&b"hycim1 {\"a\": -1}\n"[..]);
        match receiver.recv() {
            Err(FrameError::Json(e)) => assert!(e.message.contains("negative")),
            other => panic!("expected Json, got {other:?}"),
        }
    }

    #[test]
    fn crlf_lines_parse() {
        let mut receiver = MessageReceiver::new(&b"hycim1 5\r\n"[..]);
        assert_eq!(receiver.recv().unwrap(), Some(Value::UInt(5)));
    }

    #[test]
    fn errors_render_readably() {
        assert!(FrameError::Oversized { limit: 9 }.to_string().contains("9"));
        assert!(FrameError::Truncated { got: 3 }.to_string().contains("3"));
        assert!(FrameError::BadPrefix { got: "x".into() }
            .to_string()
            .contains("hycim1"));
    }
}
