//! The coordinator side of one connection: a blocking request →
//! response client over TCP, plus the typed [`NetError`] every
//! client- and coordinator-level failure funnels into.

use std::fmt;
use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use hycim_core::ShardError;
use hycim_obs::Snapshot;
use hycim_service::{DisposeOutcome, JobStatus};

use crate::frame::{FrameError, MessageReceiver, MessageSender};
use crate::proto::{ErrorCode, JobSpec, ProtoError, Request, Response, WireSolution};

/// Any failure of the networked path, every variant typed — the
/// coordinator never surfaces a hang or a corrupted merge, it
/// surfaces one of these.
#[derive(Debug)]
pub enum NetError {
    /// The transport failed (connect, read, write, or the peer closed
    /// mid-conversation).
    Io(std::io::Error),
    /// A configured deadline elapsed: the peer accepted the
    /// connection (or the connect itself stalled) but did not answer
    /// within [`WorkerClient::set_timeout`] /
    /// [`WorkerClient::connect_timeout`]. Distinct from [`Io`](Self::Io)
    /// so retry loops can treat a hung peer as retriable-elsewhere.
    Timeout,
    /// A frame could not be read.
    Frame(FrameError),
    /// A frame decoded but violated the protocol.
    Proto(ProtoError),
    /// The peer answered with a different reply than the verb allows.
    UnexpectedReply {
        /// What the sent verb allows.
        expected: &'static str,
        /// What arrived instead.
        got: String,
    },
    /// The worker answered with a typed protocol error.
    Remote {
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail from the worker.
        message: String,
    },
    /// Shard results could not be merged (a coordinator-side bug or a
    /// worker returning the wrong count).
    Shard(ShardError),
    /// A shard ran out of workers to retry on (and, when local
    /// fallback is enabled, the coordinator host could not solve it
    /// either).
    ShardExhausted {
        /// Flat-grid start of the failed shard.
        start: usize,
        /// Flat-grid end of the failed shard.
        end: usize,
        /// Dispatch attempts made.
        attempts: usize,
        /// Every per-attempt failure message, oldest first — the full
        /// diagnostic chain, so operators can see which worker or
        /// fault killed each attempt. The final entry is the failure
        /// that exhausted the shard.
        chain: Vec<String>,
    },
    /// The coordinator was given no worker addresses.
    NoWorkers,
    /// A coordinator or client knob was configured with an invalid
    /// value (e.g. a zero attempt bound).
    Config(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport: {e}"),
            NetError::Timeout => write!(f, "peer deadline elapsed"),
            NetError::Frame(e) => write!(f, "framing: {e}"),
            NetError::Proto(e) => write!(f, "{e}"),
            NetError::UnexpectedReply { expected, got } => {
                write!(f, "expected a {expected} reply, got {got}")
            }
            NetError::Remote { code, message } => write!(f, "worker error [{code}]: {message}"),
            NetError::Shard(e) => write!(f, "merge: {e}"),
            NetError::ShardExhausted {
                start,
                end,
                attempts,
                chain,
            } => {
                write!(f, "shard [{start}, {end}) failed after {attempts} attempts")?;
                if chain.is_empty() {
                    write!(f, " (never attempted)")
                } else {
                    write!(f, "; failure chain:")?;
                    for (i, failure) in chain.iter().enumerate() {
                        write!(f, " [{}] {failure}", i + 1)?;
                    }
                    Ok(())
                }
            }
            NetError::NoWorkers => write!(f, "no worker addresses given"),
            NetError::Config(message) => write!(f, "invalid configuration: {message}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Frame(e) => Some(e),
            NetError::Proto(e) => Some(e),
            NetError::Shard(e) => Some(e),
            _ => None,
        }
    }
}

/// The error kinds a blocking socket read reports when its configured
/// read timeout elapses (`WouldBlock` on Unix, `TimedOut` on Windows).
fn is_timeout(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        if is_timeout(e.kind()) {
            NetError::Timeout
        } else {
            NetError::Io(e)
        }
    }
}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(io) if is_timeout(io.kind()) => NetError::Timeout,
            other => NetError::Frame(other),
        }
    }
}

impl From<ProtoError> for NetError {
    fn from(e: ProtoError) -> Self {
        NetError::Proto(e)
    }
}

/// A connection to one worker. Requests are strictly sequential (one
/// in flight); jobs themselves run asynchronously on the worker, so a
/// client submits many jobs and polls them through the same
/// connection.
pub struct WorkerClient {
    sender: MessageSender<TcpStream>,
    receiver: MessageReceiver<BufReader<TcpStream>>,
}

impl WorkerClient {
    /// Connects to a worker.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream)
    }

    /// Connects to a worker with a bound on the connect itself: an
    /// unreachable or black-holing address turns into
    /// [`NetError::Timeout`] after `timeout` instead of the
    /// platform's (often minutes-long) default.
    ///
    /// # Errors
    ///
    /// Transport failures; [`NetError::Timeout`] when the deadline
    /// elapses on every resolved address.
    pub fn connect_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> Result<Self, NetError> {
        let mut last: Option<NetError> = None;
        for resolved in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&resolved, timeout) {
                Ok(stream) => return Self::from_stream(stream),
                Err(e) => last = Some(e.into()),
            }
        }
        Err(last.unwrap_or(NetError::Io(std::io::Error::other(
            "address resolved to nothing",
        ))))
    }

    fn from_stream(stream: TcpStream) -> Result<Self, NetError> {
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            sender: MessageSender::new(stream),
            receiver: MessageReceiver::new(reader),
        })
    }

    /// Sets a read timeout so a silent peer turns into a typed
    /// [`NetError::Timeout`] instead of a hang.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), NetError> {
        self.receiver_stream().set_read_timeout(timeout)?;
        Ok(())
    }

    /// Sets a write deadline: a peer that accepts the connection but
    /// stops draining its receive buffer (a stalled reader) turns a
    /// large request into [`NetError::Timeout`] once the socket
    /// buffers fill, instead of blocking the coordinator forever.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn set_write_timeout(&mut self, timeout: Option<Duration>) -> Result<(), NetError> {
        self.receiver_stream().set_write_timeout(timeout)?;
        Ok(())
    }

    fn receiver_stream(&self) -> &TcpStream {
        // The receiver wraps a clone of the sender's stream. Clones
        // share the underlying socket, so options set here govern the
        // sending half too.
        self.receiver_ref().get_ref()
    }

    fn receiver_ref(&self) -> &BufReader<TcpStream> {
        self.receiver.inner_ref()
    }

    fn call(&mut self, request: &Request, expected: &'static str) -> Result<Response, NetError> {
        self.sender.send(&request.to_value())?;
        let frame = self
            .receiver
            .recv()?
            .ok_or_else(|| NetError::Io(std::io::Error::other("worker closed the connection")))?;
        let response = Response::from_value(&frame)?;
        match response {
            Response::Error { code, message } => Err(NetError::Remote { code, message }),
            other => {
                let got = reply_name(&other);
                if got == expected {
                    Ok(other)
                } else {
                    Err(NetError::UnexpectedReply {
                        expected,
                        got: got.to_string(),
                    })
                }
            }
        }
    }

    /// Submits a shard spec; returns the worker-local job id.
    ///
    /// # Errors
    ///
    /// Any [`NetError`]; a full worker queue is
    /// [`NetError::Remote`] with [`ErrorCode::Backpressure`].
    pub fn submit(&mut self, spec: &JobSpec) -> Result<u64, NetError> {
        match self.call(&Request::Submit(spec.clone()), "submitted")? {
            Response::Submitted { job } => Ok(job),
            _ => unreachable!("call() checked the reply kind"),
        }
    }

    /// Polls a job's lifecycle status.
    ///
    /// # Errors
    ///
    /// Any [`NetError`].
    pub fn poll(&mut self, job: u64) -> Result<JobStatus, NetError> {
        match self.call(&Request::Poll { job }, "status")? {
            Response::Status { status, .. } => Ok(status),
            _ => unreachable!("call() checked the reply kind"),
        }
    }

    /// Fetches a terminal job's solutions (consumes the job on the
    /// worker).
    ///
    /// # Errors
    ///
    /// Any [`NetError`]; a panicked solve is [`NetError::Remote`] with
    /// [`ErrorCode::JobFailed`].
    pub fn fetch(&mut self, job: u64) -> Result<Vec<WireSolution>, NetError> {
        match self.call(&Request::Fetch { job }, "solutions")? {
            Response::Solutions { solutions, .. } => Ok(solutions),
            _ => unreachable!("call() checked the reply kind"),
        }
    }

    /// Cancels / disposes a job at whatever stage it is in.
    ///
    /// # Errors
    ///
    /// Any [`NetError`].
    pub fn cancel(&mut self, job: u64) -> Result<DisposeOutcome, NetError> {
        match self.call(&Request::Cancel { job }, "cancelled")? {
            Response::Cancelled { outcome, .. } => Ok(outcome),
            _ => unreachable!("call() checked the reply kind"),
        }
    }

    /// Scrapes the worker's metrics registry: wire counters
    /// (`net.*`), its job service (`service.*`), and whatever the
    /// engines published — one [`Snapshot`] for the whole worker.
    ///
    /// # Errors
    ///
    /// Any [`NetError`].
    pub fn stats(&mut self) -> Result<Snapshot, NetError> {
        match self.call(&Request::Stats, "stats")? {
            Response::Stats { stats } => Ok(stats),
            _ => unreachable!("call() checked the reply kind"),
        }
    }

    /// Polls until the job turns terminal, then fetches — the
    /// blocking convenience for single-worker callers.
    ///
    /// # Errors
    ///
    /// Any [`NetError`].
    pub fn wait_fetch(&mut self, job: u64) -> Result<Vec<WireSolution>, NetError> {
        loop {
            let status = self.poll(job)?;
            if status.is_terminal() {
                return self.fetch(job);
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

fn reply_name(response: &Response) -> &'static str {
    match response {
        Response::Submitted { .. } => "submitted",
        Response::Status { .. } => "status",
        Response::Solutions { .. } => "solutions",
        Response::Cancelled { .. } => "cancelled",
        Response::Stats { .. } => "stats",
        Response::Error { .. } => "error",
    }
}
