//! Deterministic fault injection at the transport: a TCP forwarder
//! that sits between a coordinator and a worker and misbehaves on
//! schedule.
//!
//! Every accepted connection gets a connection index (0, 1, 2, … in
//! accept order) and looks its fault up in a [`FaultPlan`]: either an
//! explicitly scripted entry, or a seeded draw (splitmix64 over the
//! connection index), so a chaos scenario is a *reproducible script*
//! — the same plan injects the same faults in the same places on
//! every run. Faults cover the transport failure modes the resilience
//! layer must absorb: refused connections, mid-run drops, mid-frame
//! byte truncation, partial (chunked) writes, stalls past the read
//! deadline, and delayed responses.
//!
//! The proxy is frame-aware only in the loosest sense: responses are
//! newline-terminated lines (the [`frame`](crate::frame) grammar), so
//! counting newlines on the worker→client direction is enough to cut
//! a stream "after the n-th response" or "5 bytes into a frame"
//! without parsing anything.
//!
//! This module is compiled unconditionally (it is inert unless
//! spawned) so the fault suite, the bench chaos tests, and the
//! `chaos_demo` example all exercise the exact production client and
//! coordinator code paths through it.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// SplitMix64 finalizer (the same mixer `replica_seed` builds on) —
/// the plan's per-connection draw.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What one proxied connection does to its traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnFault {
    /// Forward everything faithfully.
    Clean,
    /// Close the accepted socket immediately, without ever dialing
    /// the worker — the client sees a refused conversation.
    Refuse,
    /// Forward `responses` complete response frames, then sever both
    /// directions abruptly — the "worker died mid-run" drop.
    CloseAfterResponses {
        /// Complete worker→client frames forwarded before the cut.
        responses: usize,
    },
    /// Forward `responses` complete response frames, then exactly
    /// `bytes` bytes of the next frame, then close — a mid-frame
    /// truncation the client must surface as a framing error, never
    /// as a short result.
    TruncateResponse {
        /// Complete frames forwarded before the truncated one.
        responses: usize,
        /// Bytes of the truncated frame that still get through.
        bytes: usize,
    },
    /// Forward `responses` complete response frames, then go silent
    /// while holding the connection open — the stall a read deadline
    /// exists for. Requests keep flowing to the worker; answers stop.
    Stall {
        /// Complete frames forwarded before the silence.
        responses: usize,
    },
    /// Forward faithfully, but sleep `millis` before relaying each
    /// response frame — a slow but correct worker.
    Delay {
        /// Per-response delay in milliseconds.
        millis: u64,
    },
    /// Forward faithfully, but write each response in `chunk`-byte
    /// partial writes with a flush between each — exercises reassembly
    /// on the client side.
    Chunked {
        /// Bytes per partial write (minimum 1).
        chunk: usize,
    },
}

impl ConnFault {
    /// True when the fault perturbs traffic at all (everything except
    /// [`Clean`](Self::Clean)).
    pub fn is_fault(&self) -> bool {
        *self != ConnFault::Clean
    }
}

/// A deterministic schedule of per-connection faults.
///
/// Lookup order for connection `i`: an explicit
/// [`script`](Self::script) entry wins; otherwise, if a random mode
/// is configured, a splitmix64 draw over `seed ^ i` decides whether
/// (and which) menu fault fires; otherwise the connection is clean.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    rate_percent: u64,
    menu: Vec<ConnFault>,
    script: Vec<(usize, ConnFault)>,
}

impl FaultPlan {
    /// A plan that injects nothing (the baseline every scenario
    /// starts from).
    pub fn clean(seed: u64) -> Self {
        Self {
            seed,
            rate_percent: 0,
            menu: Vec::new(),
            script: Vec::new(),
        }
    }

    /// Scripts an exact fault for one connection index (overrides any
    /// random draw).
    pub fn script(mut self, connection: usize, fault: ConnFault) -> Self {
        self.script.push((connection, fault));
        self
    }

    /// Enables seeded random injection: each unscripted connection
    /// faults with probability `rate_percent`/100, picking uniformly
    /// from `menu` — both decisions taken from the splitmix64 stream
    /// over the connection index, so the schedule depends only on
    /// (seed, index).
    pub fn with_random(mut self, rate_percent: u64, menu: Vec<ConnFault>) -> Self {
        self.rate_percent = rate_percent.min(100);
        self.menu = menu;
        self
    }

    /// The fault connection `connection` gets under this plan.
    pub fn fault_for(&self, connection: usize) -> ConnFault {
        if let Some((_, fault)) = self.script.iter().rev().find(|(idx, _)| *idx == connection) {
            return *fault;
        }
        if self.rate_percent == 0 || self.menu.is_empty() {
            return ConnFault::Clean;
        }
        let draw = splitmix64(self.seed ^ splitmix64(connection as u64));
        if draw % 100 < self.rate_percent {
            self.menu[(draw >> 32) as usize % self.menu.len()]
        } else {
            ConnFault::Clean
        }
    }

    /// The seed the random mode draws from.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

struct ProxyShared {
    upstream: String,
    plan: FaultPlan,
    stop: AtomicBool,
    accepted: AtomicUsize,
    injected: AtomicUsize,
    /// Live socket pairs, severed on stop so pump threads unblock.
    conns: Mutex<Vec<TcpStream>>,
}

/// A running fault-injection proxy: connect clients to
/// [`addr`](Self::addr) and it forwards to the upstream worker,
/// misbehaving per its [`FaultPlan`].
pub struct ChaosProxy {
    addr: SocketAddr,
    shared: Arc<ProxyShared>,
    accept: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds an ephemeral loopback port and starts forwarding to
    /// `upstream` (a worker's address) under `plan`.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn(upstream: impl Into<String>, plan: FaultPlan) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ProxyShared {
            upstream: upstream.into(),
            plan,
            stop: AtomicBool::new(false),
            accepted: AtomicUsize::new(0),
            injected: AtomicUsize::new(0),
            conns: Mutex::new(Vec::new()),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("hycim-chaos-{}", addr.port()))
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn chaos accept thread")
        };
        Ok(Self {
            addr,
            shared,
            accept: Some(accept),
        })
    }

    /// The proxy's listening address — hand this to the coordinator
    /// in place of the worker's.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections accepted so far (the next connection gets this
    /// index).
    pub fn connections(&self) -> usize {
        self.shared.accepted.load(Ordering::SeqCst)
    }

    /// Connections whose plan entry was an actual fault.
    pub fn faults_injected(&self) -> usize {
        self.shared.injected.load(Ordering::SeqCst)
    }

    /// Stops accepting, severs every proxied connection, and joins
    /// the accept thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Poke the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        for stream in self.shared.conns.lock().expect("chaos conn lock").drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.shutdown();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ProxyShared>) {
    loop {
        let Ok((client, _)) = listener.accept() else {
            return;
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let index = shared.accepted.fetch_add(1, Ordering::SeqCst);
        let fault = shared.plan.fault_for(index);
        if fault.is_fault() {
            shared.injected.fetch_add(1, Ordering::SeqCst);
        }
        if fault == ConnFault::Refuse {
            let _ = client.shutdown(Shutdown::Both);
            continue;
        }
        let Ok(worker) = TcpStream::connect(shared.upstream.as_str()) else {
            let _ = client.shutdown(Shutdown::Both);
            continue;
        };
        track(shared, &client);
        track(shared, &worker);
        // Upstream pump: client → worker, always faithful (faults act
        // on the response direction, where the coordinator's fate is
        // decided).
        if let (Ok(mut from), Ok(mut to)) = (client.try_clone(), worker.try_clone()) {
            let _ = std::thread::Builder::new()
                .name("hycim-chaos-up".to_string())
                .spawn(move || {
                    pump_faithful(&mut from, &mut to);
                });
        }
        // Downstream pump: worker → client, through the fault.
        let shared_down = Arc::clone(shared);
        let _ = std::thread::Builder::new()
            .name("hycim-chaos-down".to_string())
            .spawn(move || {
                pump_faulted(worker, client, fault, &shared_down);
            });
    }
}

fn track(shared: &ProxyShared, stream: &TcpStream) {
    if let Ok(clone) = stream.try_clone() {
        shared.conns.lock().expect("chaos conn lock").push(clone);
    }
}

/// Byte-for-byte relay until either side dies.
fn pump_faithful(from: &mut TcpStream, to: &mut TcpStream) {
    let mut buf = [0u8; 4096];
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
        }
    }
    let _ = to.shutdown(Shutdown::Write);
}

/// Relays worker → client under a fault, counting newline-terminated
/// response frames to know where to cut, stall, or delay.
fn pump_faulted(mut worker: TcpStream, client: TcpStream, fault: ConnFault, shared: &ProxyShared) {
    let mut writer = match client.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut responses_done = 0usize;
    let mut bytes_into_frame = 0usize;
    let mut buf = [0u8; 4096];
    'pump: loop {
        let n = match worker.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let mut start = 0usize;
        while start < n {
            // The next piece runs to the end of the current frame or
            // of the buffer, whichever is first.
            let rel_newline = buf[start..n].iter().position(|&b| b == b'\n');
            let end = rel_newline.map_or(n, |p| start + p + 1);
            let piece = &buf[start..end];
            match fault {
                ConnFault::CloseAfterResponses { responses } if responses_done >= responses => {
                    break 'pump;
                }
                ConnFault::Stall { responses } if responses_done >= responses => {
                    // Hold both sockets open, forward nothing more;
                    // the client's read deadline is the only way out.
                    while !shared.stop.load(Ordering::SeqCst) {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    return;
                }
                ConnFault::TruncateResponse { responses, bytes } if responses_done >= responses => {
                    let keep = bytes.saturating_sub(bytes_into_frame).min(piece.len());
                    let _ = writer.write_all(&piece[..keep]);
                    break 'pump;
                }
                ConnFault::Delay { millis } => {
                    if bytes_into_frame == 0 {
                        std::thread::sleep(Duration::from_millis(millis));
                    }
                    if writer.write_all(piece).is_err() {
                        break 'pump;
                    }
                }
                ConnFault::Chunked { chunk } => {
                    for part in piece.chunks(chunk.max(1)) {
                        if writer.write_all(part).is_err() || writer.flush().is_err() {
                            break 'pump;
                        }
                        std::thread::sleep(Duration::from_micros(200));
                    }
                }
                _ => {
                    if writer.write_all(piece).is_err() {
                        break 'pump;
                    }
                }
            }
            if rel_newline.is_some() {
                responses_done += 1;
                bytes_into_frame = 0;
            } else {
                bytes_into_frame += piece.len();
            }
            start = end;
        }
    }
    // Sever both directions so client and worker observe the cut.
    let _ = writer.shutdown(Shutdown::Both);
    let _ = worker.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic_in_seed_and_index() {
        let menu = vec![
            ConnFault::Refuse,
            ConnFault::Stall { responses: 0 },
            ConnFault::Delay { millis: 1 },
        ];
        let a = FaultPlan::clean(42).with_random(50, menu.clone());
        let b = FaultPlan::clean(42).with_random(50, menu.clone());
        let c = FaultPlan::clean(43).with_random(50, menu);
        let draws_a: Vec<ConnFault> = (0..64).map(|i| a.fault_for(i)).collect();
        let draws_b: Vec<ConnFault> = (0..64).map(|i| b.fault_for(i)).collect();
        let draws_c: Vec<ConnFault> = (0..64).map(|i| c.fault_for(i)).collect();
        assert_eq!(draws_a, draws_b, "same seed, same schedule");
        assert_ne!(draws_a, draws_c, "different seed, different schedule");
        // Roughly half the connections fault at a 50% rate.
        let faults = draws_a.iter().filter(|f| f.is_fault()).count();
        assert!((10..=54).contains(&faults), "{faults} faults of 64");
    }

    #[test]
    fn script_overrides_the_random_draw() {
        let plan = FaultPlan::clean(7)
            .with_random(100, vec![ConnFault::Refuse])
            .script(3, ConnFault::Clean)
            .script(5, ConnFault::Stall { responses: 2 });
        assert_eq!(plan.fault_for(0), ConnFault::Refuse);
        assert_eq!(plan.fault_for(3), ConnFault::Clean);
        assert_eq!(plan.fault_for(5), ConnFault::Stall { responses: 2 });
        // The latest script entry for an index wins.
        let plan = plan.script(5, ConnFault::Clean);
        assert_eq!(plan.fault_for(5), ConnFault::Clean);
    }

    #[test]
    fn clean_plan_injects_nothing() {
        let plan = FaultPlan::clean(0);
        assert!((0..256).all(|i| plan.fault_for(i) == ConnFault::Clean));
        assert!(!ConnFault::Clean.is_fault());
        assert!(ConnFault::Refuse.is_fault());
    }
}
