//! Local execution of a shard spec: the one solve path both sides of
//! the wire share.
//!
//! A [`JobSpec`](crate::proto::JobSpec) carries everything a solve
//! needs — the problem in canonical wire text, the engine tag, the
//! settings, and every pre-derived replica seed — so "run this shard"
//! is a pure function of the spec. Workers call it on their pool
//! threads; the [`Coordinator`](crate::coordinator::Coordinator)
//! calls the same function for graceful degradation when the fleet is
//! exhausted. Because both paths reduce to
//! [`BatchRunner::run_seeds`] over the same seeds, a shard solved
//! locally is byte-for-byte the shard a worker would have returned.

use hycim_core::{BatchRunner, EngineKind, EngineSettings};

use hycim_cop::{AnyProblem, CopProblem};

use crate::proto::{JobSpec, WireSolution};

/// Solves every seed of a decoded spec, dispatched over the family
/// enum (the engine is built on the calling thread, so trait objects
/// never cross threads).
///
/// # Errors
///
/// A message when the engine refuses the instance (an encoding
/// limit).
pub(crate) fn solve_any(
    problem: &AnyProblem,
    kind: EngineKind,
    settings: &EngineSettings,
    seeds: &[u64],
) -> Result<Vec<WireSolution>, String> {
    match problem {
        AnyProblem::Qkp(p) => solve_typed(p, kind, settings, seeds),
        AnyProblem::Knapsack(p) => solve_typed(p, kind, settings, seeds),
        AnyProblem::MaxCut(p) => solve_typed(p, kind, settings, seeds),
        AnyProblem::SpinGlass(p) => solve_typed(p, kind, settings, seeds),
        AnyProblem::Tsp(p) => solve_typed(p, kind, settings, seeds),
        AnyProblem::Coloring(p) => solve_typed(p, kind, settings, seeds),
        AnyProblem::BinPack(p) => solve_typed(p, kind, settings, seeds),
        AnyProblem::Mkp(p) => solve_typed(p, kind, settings, seeds),
    }
}

fn solve_typed<P: CopProblem + 'static>(
    problem: &P,
    kind: EngineKind,
    settings: &EngineSettings,
    seeds: &[u64],
) -> Result<Vec<WireSolution>, String> {
    let engine = kind.build(problem, settings).map_err(|e| e.to_string())?;
    Ok(BatchRunner::serial()
        .run_seeds(&engine, seeds)
        .iter()
        .map(WireSolution::from_solution)
        .collect())
}

/// Runs a whole spec on the local host: decode, build, solve every
/// seed — the coordinator's graceful-degradation path.
///
/// # Errors
///
/// A message naming what refused the spec: an unknown engine tag, a
/// problem that does not parse, or an engine that rejects the
/// instance. These are exactly the failures a worker would have
/// reported, so a spec no worker could run does not silently
/// "succeed" locally either.
pub(crate) fn solve_spec(spec: &JobSpec) -> Result<Vec<WireSolution>, String> {
    let kind = spec.engine_kind().map_err(|e| e.to_string())?;
    let problem = spec
        .decode_problem()
        .map_err(|e| format!("problem does not parse: {e}"))?;
    solve_any(&problem, kind, &spec.settings(), &spec.seeds)
}
