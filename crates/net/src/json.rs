//! A minimal hand-rolled JSON value, writer, and reader — the
//! protocol's only serialization substrate (the build environment is
//! offline, so no serde).
//!
//! The dialect is deliberately narrow: the only number form is an
//! unsigned decimal integer ([`Value::UInt`]), because every numeric
//! protocol field is a `u64` (seeds, job ids, counts). Floats never
//! appear as JSON numbers — they travel as 16-digit hex strings of
//! their IEEE-754 bits (see [`hycim_qubo::wire`]), which is what makes
//! the protocol *exact*: no decimal round-trip can perturb a merged
//! result. The reader rejects anything outside the dialect (signs,
//! fractions, exponents, duplicate object keys) with a byte-offset
//! error instead of guessing.

use std::fmt;

/// A parsed JSON document (or a document under construction).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned decimal integer — the dialect's only number form.
    UInt(u64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order (order is preserved so encoding
    /// is deterministic).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from key/value pairs.
    pub fn object(fields: Vec<(&str, Value)>) -> Value {
        Value::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks a key up in an object (`None` for missing keys and
    /// non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer payload, when this is a [`Value::UInt`].
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The string payload, when this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The bool payload, when this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, when this is a [`Value::Array`].
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to compact single-line JSON. The output never
    /// contains a raw newline (newlines in strings are escaped), which
    /// is what lets the frame layer delimit messages by line.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::UInt(n) => out.push_str(&n.to_string()),
            Value::Str(s) => write_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document, rejecting trailing input.
    ///
    /// # Errors
    ///
    /// A [`JsonError`] carrying the byte offset of the first violation.
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing input after document"));
        }
        Ok(value)
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and the byte offset it happened
/// at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the document of the first violation.
    pub offset: usize,
    /// What was expected or violated.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", expected as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'0'..=b'9') => self.uint(),
            Some(b'-') => Err(self.err("negative numbers are outside the protocol dialect")),
            Some(other) => Err(self.err(format!("unexpected byte '{}'", other as char))),
            None => Err(self.err("unexpected end of document")),
        }
    }

    fn uint(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            return Err(self.err("fractions/exponents are outside the protocol dialect"));
        }
        let digits = &self.bytes[start..self.pos];
        if digits.len() > 1 && digits[0] == b'0' {
            self.pos = start;
            return Err(self.err("leading zeros are not allowed"));
        }
        std::str::from_utf8(digits)
            .expect("digits are ascii")
            .parse::<u64>()
            .map(Value::UInt)
            .map_err(|_| JsonError {
                offset: start,
                message: "integer exceeds u64".to_string(),
            })
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("malformed \\u escape"))?;
                            self.pos += 4;
                            // Surrogates never appear (the writer only
                            // escapes control characters); reject them.
                            let c = char::from_u32(code).ok_or(JsonError {
                                offset: start,
                                message: "escape is not a scalar value".to_string(),
                            })?;
                            out.push(c);
                        }
                        other => {
                            return Err(JsonError {
                                offset: start,
                                message: format!("unknown escape '\\{}'", other as char),
                            })
                        }
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("raw control character in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.eat(b'{')?;
        let mut fields: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key_offset = self.pos;
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(JsonError {
                    offset: key_offset,
                    message: format!("duplicate key \"{key}\""),
                });
            }
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::UInt(0),
            Value::UInt(u64::MAX),
            Value::Str(String::new()),
            Value::Str("plain".into()),
            Value::Str("quotes \" and \\ and \n\t\r lines".into()),
            Value::Str("unicode: héllo ∑".into()),
            Value::Str("\u{1}\u{1f}".into()),
        ] {
            assert_eq!(Value::parse(&v.encode()).unwrap(), v, "{v:?}");
        }
    }

    #[test]
    fn containers_round_trip_preserving_order() {
        let v = Value::object(vec![
            ("b", Value::UInt(1)),
            ("a", Value::Array(vec![Value::Null, Value::Bool(true)])),
            (
                "nested",
                Value::object(vec![("deep", Value::Str("x".into()))]),
            ),
        ]);
        let text = v.encode();
        assert_eq!(Value::parse(&text).unwrap(), v);
        // Deterministic encoding: keys stay in insertion order.
        assert!(text.find("\"b\"").unwrap() < text.find("\"a\"").unwrap());
        assert!(!text.contains('\n'), "encoded form is single-line");
    }

    #[test]
    fn accessors() {
        let v = Value::object(vec![
            ("n", Value::UInt(7)),
            ("s", Value::Str("hi".into())),
            ("b", Value::Bool(false)),
            ("a", Value::Array(vec![Value::UInt(1)])),
        ]);
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(7));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("hi"));
        assert_eq!(v.get("b").and_then(Value::as_bool), Some(false));
        assert_eq!(
            v.get("a").and_then(Value::as_array).map(<[_]>::len),
            Some(1)
        );
        assert!(v.get("missing").is_none());
        assert!(Value::Null.get("n").is_none());
    }

    #[test]
    fn dialect_violations_are_rejected_with_offsets() {
        for (doc, needle) in [
            ("-1", "negative"),
            ("1.5", "fraction"),
            ("1e3", "fraction"),
            ("01", "leading zero"),
            ("18446744073709551616", "exceeds u64"),
            ("{\"a\":1,\"a\":2}", "duplicate key"),
            ("\"unterminated", "unterminated"),
            ("[1,]", "unexpected byte"),
            ("{\"a\" 1}", "expected ':'"),
            ("true false", "trailing input"),
            ("\"bad \\x escape\"", "unknown escape"),
            ("nul", "expected 'null'"),
            ("", "unexpected end"),
        ] {
            let err = Value::parse(doc).unwrap_err();
            assert!(
                err.message.contains(needle),
                "{doc:?}: {err} (wanted {needle:?})"
            );
        }
    }

    #[test]
    fn offsets_point_at_the_violation() {
        let err = Value::parse("{\"key\": -3}").unwrap_err();
        assert_eq!(err.offset, 8);
        assert!(err.to_string().contains("byte 8"));
    }
}
