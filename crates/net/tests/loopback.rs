//! Loopback integration: a coordinator and N worker servers in one
//! process, talking real TCP over 127.0.0.1.
//!
//! The acceptance pins of the distributed path live here:
//!
//! * a 3-worker sharded run merges **bit-identically** to a
//!   single-thread local [`BatchRunner`] run;
//! * shard-boundary choice (1, 2, 3, 5 shards) does not change the
//!   merged result;
//! * the submit/poll/fetch/cancel verbs behave over the wire,
//!   including cancelling concurrently with fetching — no stuck
//!   `Running` entries, job tables drain to zero;
//! * the `stats` verb round-trips a worker's metrics registry, and a
//!   coordinator scrape sees nonzero frame and shard counters on
//!   every worker it drove.

use std::sync::Arc;
use std::time::{Duration, Instant};

use hycim_cop::maxcut::MaxCut;
use hycim_cop::AnyProblem;
use hycim_core::{BatchRunner, EngineKind, EngineSettings};
use hycim_net::{
    shard_replica_column, Coordinator, ErrorCode, JobSpec, NetError, WireSolution, WorkerClient,
    WorkerConfig, WorkerServer,
};

fn spawn_workers(n: usize) -> (Vec<hycim_net::WorkerHandle>, Vec<String>) {
    let handles: Vec<_> = (0..n)
        .map(|_| {
            WorkerServer::bind("127.0.0.1:0", WorkerConfig::new())
                .expect("bind loopback")
                .spawn()
        })
        .collect();
    let addrs = handles.iter().map(|h| h.addr().to_string()).collect();
    (handles, addrs)
}

fn gate_problem() -> MaxCut {
    MaxCut::random(12, 0.5, 42)
}

fn base_spec(problem: &MaxCut, engine: EngineKind, sweeps: u64, hardware_seed: u64) -> JobSpec {
    let any = AnyProblem::from(problem.clone());
    JobSpec {
        family: any.family_tag().to_string(),
        problem: any.to_wire(),
        engine: engine.tag().to_string(),
        sweeps,
        hardware_seed,
        record_trace: true,
        seeds: Vec::new(),
    }
}

/// The local single-thread reference for one engine column.
fn local_reference(
    problem: &MaxCut,
    engine: EngineKind,
    sweeps: u64,
    hardware_seed: u64,
    replicas: usize,
    root_seed: u64,
) -> Vec<WireSolution> {
    let engine = engine
        .build(
            problem,
            &EngineSettings::new(sweeps as usize, hardware_seed),
        )
        .expect("max-cut builds on every backend");
    BatchRunner::serial()
        .run(&engine, replicas, root_seed)
        .iter()
        .map(WireSolution::from_solution)
        .collect()
}

/// Waits (bounded) for a worker's job table to drain.
fn assert_drains(handle: &hycim_net::WorkerHandle) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.live_jobs() > 0 {
        assert!(Instant::now() < deadline, "worker leaked jobs");
        std::thread::yield_now();
    }
}

#[test]
fn three_worker_shard_run_is_bit_identical_to_local_batch() {
    let problem = gate_problem();
    let (handles, addrs) = spawn_workers(3);
    let spec = base_spec(&problem, EngineKind::HyCim, 60, 7);
    let (total, jobs) = shard_replica_column(&spec, 9, 99, 0, 3);
    assert_eq!(total, 9);
    assert_eq!(jobs.len(), 3);

    let merged = Coordinator::new(addrs).run(total, &jobs).expect("run");
    let reference = local_reference(&problem, EngineKind::HyCim, 60, 7, 9, 99);

    assert_eq!(merged.len(), reference.len());
    for (k, (ours, local)) in merged.iter().zip(&reference).enumerate() {
        assert_eq!(ours, local, "replica {k} differs from the local run");
    }
    for handle in &handles {
        assert_drains(handle);
    }
    for handle in handles {
        handle.stop();
    }
}

#[test]
fn shard_boundaries_do_not_change_the_merged_result() {
    let problem = gate_problem();
    let (handles, addrs) = spawn_workers(2);
    let spec = base_spec(&problem, EngineKind::Software, 40, 3);

    let mut runs = Vec::new();
    for shards in [1usize, 2, 3, 5] {
        let (total, jobs) = shard_replica_column(&spec, 7, 11, 0, shards);
        let merged = Coordinator::new(addrs.clone())
            .run(total, &jobs)
            .unwrap_or_else(|e| panic!("{shards} shards: {e}"));
        runs.push((shards, merged));
    }
    let (_, first) = &runs[0];
    for (shards, merged) in &runs[1..] {
        assert_eq!(merged, first, "{shards}-shard run diverged");
    }
    // And all equal the local reference.
    let reference = local_reference(&problem, EngineKind::Software, 40, 3, 7, 11);
    assert_eq!(first, &reference);
    for handle in handles {
        handle.stop();
    }
}

#[test]
fn every_backend_matches_its_local_run_over_the_wire() {
    let problem = gate_problem();
    let (handles, addrs) = spawn_workers(2);
    for engine in [
        EngineKind::Software,
        EngineKind::HyCim,
        EngineKind::Bank,
        EngineKind::Dqubo,
        EngineKind::Packed,
    ] {
        let spec = base_spec(&problem, engine, 30, 5);
        let (total, jobs) = shard_replica_column(&spec, 4, 17, 0, 2);
        let merged = Coordinator::new(addrs.clone())
            .run(total, &jobs)
            .unwrap_or_else(|e| panic!("{}: {e}", engine.tag()));
        let reference = local_reference(&problem, engine, 30, 5, 4, 17);
        assert_eq!(merged, reference, "{} diverged", engine.tag());
    }
    for handle in handles {
        handle.stop();
    }
}

#[test]
fn verbs_round_trip_over_the_wire() {
    let problem = gate_problem();
    let (handles, addrs) = spawn_workers(1);
    let mut client = WorkerClient::connect(addrs[0].as_str()).expect("connect");

    let mut spec = base_spec(&problem, EngineKind::Software, 30, 1);
    spec.seeds = vec![4, 5];
    let job = client.submit(&spec).expect("submit");

    // Poll until terminal, fetch, and compare against direct solves.
    let solutions = client.wait_fetch(job).expect("fetch");
    assert_eq!(solutions.len(), 2);
    let engine = EngineKind::Software
        .build(&problem, &EngineSettings::new(30, 1))
        .expect("builds");
    for (seed, ours) in spec.seeds.iter().zip(&solutions) {
        assert_eq!(ours, &WireSolution::from_solution(&engine.solve(*seed)));
    }

    // The fetch consumed the job: both poll and fetch now say unknown.
    for err in [
        client.poll(job).unwrap_err(),
        client.fetch(job).unwrap_err(),
    ] {
        match err {
            NetError::Remote { code, .. } => assert_eq!(code, ErrorCode::UnknownJob),
            other => panic!("expected a typed remote error, got {other}"),
        }
    }

    // Cancel on an unknown id reports Unknown, not an error.
    assert_eq!(
        client.cancel(job).expect("cancel"),
        hycim_service::DisposeOutcome::Unknown
    );
    assert_drains(&handles[0]);
    for handle in handles {
        handle.stop();
    }
}

#[test]
fn stats_verb_round_trips_a_live_workers_registry() {
    let problem = gate_problem();
    let (handles, addrs) = spawn_workers(1);
    let mut client = WorkerClient::connect(addrs[0].as_str()).expect("connect");

    let mut spec = base_spec(&problem, EngineKind::Software, 30, 1);
    spec.seeds = vec![8, 9, 10];
    let job = client.submit(&spec).expect("submit");
    let solutions = client.wait_fetch(job).expect("fetch");
    assert_eq!(solutions.len(), 3);

    let stats = client.stats().expect("stats");
    // The wire layer counted our conversation (submit + polls + fetch,
    // and the stats request itself).
    assert!(
        stats.counter("net.frames_in").unwrap_or(0) >= 3,
        "{stats:?}"
    );
    assert!(
        stats.counter("net.frames_out").unwrap_or(0) >= 2,
        "{stats:?}"
    );
    // The solve path counted the shard and its replicas.
    assert_eq!(stats.counter("net.shards_solved"), Some(1));
    assert_eq!(stats.counter("net.solved_replicas"), Some(3));
    // The job service shares the same registry.
    assert_eq!(stats.counter("service.submitted"), Some(1));
    assert_eq!(stats.counter("service.jobs_done"), Some(1));
    // The scrape is a faithful image of the in-process registry for
    // everything that was settled when the stats frame was answered
    // (frame counters keep ticking with the scrape itself, so the
    // comparison pins the solve-side families).
    let local = handles[0].obs().snapshot();
    for name in [
        "net.shards_solved",
        "net.solved_replicas",
        "service.submitted",
        "service.jobs_done",
    ] {
        assert_eq!(stats.counter(name), local.counter(name), "{name}");
    }

    assert_drains(&handles[0]);
    for handle in handles {
        handle.stop();
    }
}

#[test]
fn coordinator_scrape_sees_nonzero_counters_on_every_worker() {
    let problem = gate_problem();
    let (handles, addrs) = spawn_workers(2);
    let spec = base_spec(&problem, EngineKind::Software, 40, 3);
    let (total, jobs) = shard_replica_column(&spec, 8, 21, 0, 4);

    let coordinator = Coordinator::new(addrs);
    let merged = coordinator.run(total, &jobs).expect("run");
    assert_eq!(merged.len(), 8);

    // The coordinator's own registry tells the dispatch story.
    let coord = coordinator.obs().snapshot();
    assert_eq!(coord.counter("coord.shard_attempts"), Some(4));
    assert_eq!(coord.counter("coord.shards_done"), Some(4));
    assert_eq!(coord.counter("coord.workers_retired"), None);

    // Every worker served frames and solved shards, and says so.
    let scraped = coordinator.scrape().expect("scrape");
    assert_eq!(scraped.len(), 2);
    let mut shards_seen = 0;
    for (addr, stats) in &scraped {
        assert!(
            stats.counter("net.frames_in").unwrap_or(0) > 0,
            "{addr} served no frames: {stats:?}"
        );
        assert!(
            stats.counter("net.frames_out").unwrap_or(0) > 0,
            "{addr} answered no frames: {stats:?}"
        );
        shards_seen += stats.counter("net.shards_solved").unwrap_or(0);
    }
    assert_eq!(shards_seen, 4, "every shard solved exactly once");

    for handle in &handles {
        assert_drains(handle);
    }
    for handle in handles {
        handle.stop();
    }
}

#[test]
fn concurrent_cancel_and_fetch_over_the_wire_leave_no_stuck_jobs() {
    // The wire-level regression test for the dispose/fetch race: one
    // connection hammers fetch while another cancels the same job.
    // Whatever interleaving happens, the job table drains and every
    // response is typed.
    let problem = gate_problem();
    let (handles, addrs) = spawn_workers(1);
    let addr = Arc::new(addrs[0].clone());

    for round in 0..12u64 {
        let mut submitter = WorkerClient::connect(addr.as_str()).expect("connect");
        let mut spec = base_spec(&problem, EngineKind::Software, 80, round);
        spec.seeds = (0..4).map(|k| round * 10 + k).collect();
        let job = submitter.submit(&spec).expect("submit");

        let canceller = {
            let addr = Arc::clone(&addr);
            std::thread::spawn(move || {
                let mut client = WorkerClient::connect(addr.as_str()).expect("connect");
                client.cancel(job).expect("cancel is always answered")
            })
        };
        let fetcher = std::thread::spawn(move || loop {
            match submitter.fetch(job) {
                Ok(solutions) => return Ok(solutions),
                Err(NetError::Remote {
                    code: ErrorCode::NotFinished,
                    ..
                }) => std::thread::yield_now(),
                Err(NetError::Remote { code, message }) => return Err((code, message)),
                Err(other) => panic!("untyped failure: {other}"),
            }
        });

        let outcome = canceller.join().expect("canceller thread");
        let fetched = fetcher.join().expect("fetcher thread");
        // Consistency: typed outcomes only, whoever won the race.
        match fetched {
            Ok(solutions) => assert_eq!(solutions.len(), 4),
            Err((code, message)) => assert!(
                matches!(code, ErrorCode::JobCancelled | ErrorCode::UnknownJob),
                "round {round}: unexpected {code}: {message} (cancel said {outcome:?})"
            ),
        }
        assert_drains(&handles[0]);
    }
    for handle in handles {
        handle.stop();
    }
}
