//! Fault injection against the live wire: every misbehavior ends in a
//! typed error or a successful retry — never a hang, never a
//! corrupted merge, never a leaked job.
//!
//! Covered faults: truncated frames, oversized frames, wrong-protocol
//! peers, unknown verbs, malformed JSON, bad specs, mid-job
//! connection drops, a worker panicking mid-shard (reassigned to the
//! surviving worker, bit-identically), hung peers (accepted the
//! connection, never answer — a typed [`NetError::Timeout`], and a
//! retirement visible in the coordinator's registry), workers killed
//! mid-run, and runs with no reachable workers at all.

use std::io::{BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use hycim_cop::maxcut::MaxCut;
use hycim_cop::AnyProblem;
use hycim_core::{BatchRunner, EngineKind, EngineSettings};
use hycim_net::{
    shard_replica_column, Coordinator, ErrorCode, FrameError, JobSpec, MessageReceiver,
    MessageSender, NetError, Request, Response, WireSolution, WorkerClient, WorkerConfig,
    WorkerFault, WorkerHandle, WorkerServer,
};

fn spawn_worker(config: WorkerConfig) -> WorkerHandle {
    WorkerServer::bind("127.0.0.1:0", config)
        .expect("bind loopback")
        .spawn()
}

fn problem() -> MaxCut {
    MaxCut::random(10, 0.5, 9)
}

fn spec_for(p: &MaxCut, seeds: Vec<u64>) -> JobSpec {
    let any = AnyProblem::from(p.clone());
    JobSpec {
        family: any.family_tag().to_string(),
        problem: any.to_wire(),
        engine: "software".to_string(),
        sweeps: 40,
        hardware_seed: 2,
        record_trace: true,
        seeds,
    }
}

/// Waits (bounded) for a worker's job table to drain.
fn assert_drains(handle: &WorkerHandle) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.live_jobs() > 0 {
        assert!(Instant::now() < deadline, "worker leaked jobs");
        std::thread::yield_now();
    }
}

/// A raw protocol connection: hand-written bytes out, one persistent
/// framed receiver in (so no read-ahead is lost between responses).
struct RawConn {
    stream: TcpStream,
    receiver: MessageReceiver<BufReader<TcpStream>>,
}

impl RawConn {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        let receiver = MessageReceiver::new(BufReader::new(
            stream.try_clone().expect("clone for reading"),
        ));
        Self { stream, receiver }
    }

    fn write(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).expect("write");
    }

    fn send(&mut self, request: &Request) {
        MessageSender::new(&self.stream)
            .send(&request.to_value())
            .expect("send");
    }

    fn recv(&mut self) -> Result<Option<Response>, FrameError> {
        Ok(self
            .receiver
            .recv()?
            .map(|frame| Response::from_value(&frame).expect("worker speaks the protocol")))
    }

    fn expect_error(&mut self) -> (ErrorCode, String) {
        match self.recv().expect("frame").expect("a response") {
            Response::Error { code, message } => (code, message),
            other => panic!("expected an error response, got {other:?}"),
        }
    }
}

#[test]
fn unknown_verb_gets_a_typed_error_and_the_stream_survives() {
    let handle = spawn_worker(WorkerConfig::new());
    let mut conn = RawConn::connect(handle.addr());
    conn.write(b"hycim1 {\"verb\":\"steal\"}\n");
    let (code, message) = conn.expect_error();
    assert_eq!(code, ErrorCode::BadRequest);
    assert!(message.contains("unknown verb"), "{message}");

    // The stream is still synchronized: a real verb works after it.
    conn.send(&Request::Poll { job: 0 });
    let (code, _) = conn.expect_error();
    assert_eq!(code, ErrorCode::UnknownJob);
    handle.stop();
}

#[test]
fn malformed_json_gets_a_typed_error_and_the_stream_survives() {
    let handle = spawn_worker(WorkerConfig::new());
    let mut conn = RawConn::connect(handle.addr());
    conn.write(b"hycim1 {oops\n");
    let (code, _) = conn.expect_error();
    assert_eq!(code, ErrorCode::BadRequest);

    // Still synchronized.
    conn.send(&Request::Poll { job: 1 });
    let (code, _) = conn.expect_error();
    assert_eq!(code, ErrorCode::UnknownJob);
    handle.stop();
}

#[test]
fn truncated_frame_closes_the_connection_without_leaking() {
    let handle = spawn_worker(WorkerConfig::new());
    let conn = RawConn::connect(handle.addr());
    // Half a frame, then the write side dies mid-line.
    (&conn.stream)
        .write_all(b"hycim1 {\"verb\":\"po")
        .expect("write");
    conn.stream
        .shutdown(Shutdown::Write)
        .expect("shutdown write");
    // The worker answers nothing and closes.
    let mut rest = Vec::new();
    (&conn.stream)
        .read_to_end(&mut rest)
        .expect("read to close");
    assert!(rest.is_empty(), "no response to a truncated frame");
    assert_drains(&handle);
    handle.stop();
}

#[test]
fn oversized_frame_is_refused_with_a_typed_error_then_closed() {
    let mut config = WorkerConfig::new();
    config.max_frame = 256;
    let handle = spawn_worker(config);
    let mut conn = RawConn::connect(handle.addr());
    conn.write(format!("hycim1 \"{}\"\n", "x".repeat(4096)).as_bytes());
    let (code, message) = conn.expect_error();
    assert_eq!(code, ErrorCode::BadRequest);
    assert!(message.contains("256-byte bound"), "{message}");
    // The desynchronized stream is closed afterwards.
    assert!(matches!(conn.recv(), Ok(None)), "stream closed");
    handle.stop();
}

#[test]
fn wrong_protocol_peer_is_answered_once_and_dropped() {
    let handle = spawn_worker(WorkerConfig::new());
    let mut conn = RawConn::connect(handle.addr());
    conn.write(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n");
    let (code, message) = conn.expect_error();
    assert_eq!(code, ErrorCode::BadRequest);
    assert!(message.contains("hycim1"), "{message}");
    assert!(matches!(conn.recv(), Ok(None)), "stream closed");
    handle.stop();
}

#[test]
fn bad_specs_fail_the_submit_with_typed_errors() {
    let handle = spawn_worker(WorkerConfig::new());
    let mut client = WorkerClient::connect(handle.addr()).expect("connect");
    let good = spec_for(&problem(), vec![1]);

    let mut unknown_engine = good.clone();
    unknown_engine.engine = "quantum".into();
    match client.submit(&unknown_engine).unwrap_err() {
        NetError::Remote { code, message } => {
            assert_eq!(code, ErrorCode::BadRequest);
            assert!(message.contains("quantum"), "{message}");
        }
        other => panic!("expected a typed remote error, got {other}"),
    }

    let mut unknown_family = good.clone();
    unknown_family.family = "sudoku".into();
    match client.submit(&unknown_family).unwrap_err() {
        NetError::Remote { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("expected a typed remote error, got {other}"),
    }

    let mut corrupt_payload = good.clone();
    corrupt_payload.problem.push_str("trailing garbage\n");
    match client.submit(&corrupt_payload).unwrap_err() {
        NetError::Remote { code, message } => {
            assert_eq!(code, ErrorCode::BadRequest);
            assert!(message.contains("line"), "line-numbered: {message}");
        }
        other => panic!("expected a typed remote error, got {other}"),
    }

    // The connection survived all three rejections.
    let job = client.submit(&good).expect("good spec still submits");
    assert!(!client.wait_fetch(job).expect("fetches").is_empty());
    assert_drains(&handle);
    handle.stop();
}

#[test]
fn mid_job_connection_drop_disposes_the_jobs() {
    let handle = spawn_worker(WorkerConfig::new());
    {
        let mut client = WorkerClient::connect(handle.addr()).expect("connect");
        // Enough work that jobs are still queued or unfetched on drop.
        for seed in 0..6u64 {
            let seeds = (0..50u64).map(|k| seed * 100 + k).collect();
            client.submit(&spec_for(&problem(), seeds)).expect("submit");
        }
        assert!(handle.live_jobs() > 0, "jobs are live before the drop");
        // Client dropped here: the coordinator vanished mid-job.
    }
    // The worker disposes everything the dead connection owned.
    assert_drains(&handle);
    handle.stop();
}

#[test]
fn panicked_worker_is_retried_on_the_survivor_bit_identically() {
    let p = problem();
    // Worker A panics on its first submit; worker B is healthy.
    let mut faulty = WorkerConfig::new();
    faulty.fault = Some(WorkerFault::PanicOnSubmit(0));
    let a = spawn_worker(faulty);
    let b = spawn_worker(WorkerConfig::new());
    let addrs = vec![a.addr().to_string(), b.addr().to_string()];

    let spec = spec_for(&p, Vec::new());
    let (total, jobs) = shard_replica_column(&spec, 6, 33, 0, 2);
    let merged = Coordinator::new(addrs)
        .run(total, &jobs)
        .expect("retry on the survivor succeeds");

    // Bit-identical to the local run despite the mid-shard panic.
    let engine = EngineKind::Software
        .build(&p, &EngineSettings::new(40, 2))
        .expect("builds");
    let reference: Vec<WireSolution> = BatchRunner::serial()
        .run(&engine, 6, 33)
        .iter()
        .map(WireSolution::from_solution)
        .collect();
    assert_eq!(merged, reference);

    assert_drains(&a);
    assert_drains(&b);
    a.stop();
    b.stop();
}

#[test]
fn exhausted_retries_surface_a_typed_shard_error() {
    // A spec no worker can run: the engine tag is unknown everywhere.
    let handle = spawn_worker(WorkerConfig::new());
    let mut spec = spec_for(&problem(), Vec::new());
    spec.engine = "quantum".into();
    let (total, jobs) = shard_replica_column(&spec, 4, 1, 0, 2);
    let err = Coordinator::new(vec![handle.addr().to_string()])
        .with_max_attempts(2)
        .expect("nonzero bound")
        .run(total, &jobs)
        .unwrap_err();
    match err {
        NetError::ShardExhausted {
            attempts, chain, ..
        } => {
            assert!(attempts <= 2);
            let joined = chain.join(" | ");
            assert!(
                joined.contains("quantum"),
                "chain names the fault: {joined}"
            );
            // The spec is unsolvable, so graceful degradation tried —
            // and failed with the same reason — before giving up.
            assert!(
                joined.contains("local fallback failed"),
                "the fallback attempt is on the chain: {joined}"
            );
        }
        other => panic!("expected ShardExhausted, got {other}"),
    }
    assert_drains(&handle);
    handle.stop();
}

/// A peer that accepts connections and then never says anything — the
/// pathological hang the timeout knobs exist for.
fn hung_listener() -> (SocketAddr, std::net::TcpListener) {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    (addr, listener)
}

#[test]
fn hung_peer_turns_into_a_typed_timeout_not_a_hang() {
    let (addr, listener) = hung_listener();
    let accepter = std::thread::spawn(move || {
        // Accept and hold the socket open, answering nothing.
        listener.accept().map(|(stream, _)| stream)
    });

    let mut client =
        WorkerClient::connect_timeout(addr, Duration::from_secs(5)).expect("connect succeeds");
    client
        .set_timeout(Some(Duration::from_millis(50)))
        .expect("set timeout");
    let started = Instant::now();
    match client.poll(0) {
        Err(NetError::Timeout) => {}
        other => panic!("expected NetError::Timeout, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "the deadline bounded the wait"
    );
    drop(client);
    let _ = accepter.join();
}

#[test]
fn stalled_reader_turns_a_large_write_into_a_typed_timeout() {
    // The peer accepts and then never reads: once the socket buffers
    // fill, a large submit must hit the write deadline as a typed
    // NetError::Timeout instead of blocking the coordinator forever.
    let (addr, listener) = hung_listener();
    let accepter = std::thread::spawn(move || listener.accept().map(|(stream, _)| stream));
    let mut client =
        WorkerClient::connect_timeout(addr, Duration::from_secs(5)).expect("connect succeeds");
    client
        .set_write_timeout(Some(Duration::from_millis(50)))
        .expect("set write timeout");
    // Tens of megabytes of seeds: far past any loopback socket buffer
    // (send + receive together absorb a few MB before blocking).
    let spec = spec_for(&problem(), (0..4_000_000u64).collect());
    let started = Instant::now();
    match client.submit(&spec) {
        Err(NetError::Timeout) => {}
        other => panic!("expected NetError::Timeout, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "the deadline bounded the wait"
    );
    drop(client);
    let _ = accepter.join();
}

#[test]
fn hung_worker_is_retired_and_the_survivor_finishes_bit_identically() {
    let p = problem();
    let (hung_addr, listener) = hung_listener();
    let accepter = std::thread::spawn(move || {
        // Keep accepting so every retry also sees a silent peer.
        let mut held = Vec::new();
        while let Ok((stream, _)) = listener.accept() {
            held.push(stream);
            if held.len() >= 8 {
                break;
            }
        }
        held
    });
    let survivor = spawn_worker(WorkerConfig::new());
    let addrs = vec![hung_addr.to_string(), survivor.addr().to_string()];

    let spec = spec_for(&p, Vec::new());
    let (total, jobs) = shard_replica_column(&spec, 6, 33, 0, 2);
    let coordinator = Coordinator::new(addrs)
        .with_connect_timeout(Duration::from_secs(5))
        .with_read_timeout(Duration::from_millis(100));
    let merged = coordinator
        .run(total, &jobs)
        .expect("the survivor absorbs the hung worker's shards");

    let engine = EngineKind::Software
        .build(&p, &EngineSettings::new(40, 2))
        .expect("builds");
    let reference: Vec<WireSolution> = BatchRunner::serial()
        .run(&engine, 6, 33)
        .iter()
        .map(WireSolution::from_solution)
        .collect();
    assert_eq!(merged, reference, "the hang never touched the results");

    // The retirement is on the record.
    let coord = coordinator.obs().snapshot();
    assert!(
        coord.counter("coord.workers_retired").unwrap_or(0) >= 1,
        "{coord:?}"
    );
    assert!(
        coord.counter("coord.shard_retries").unwrap_or(0) >= 1,
        "{coord:?}"
    );
    assert_eq!(coord.counter("coord.shards_done"), Some(2));

    assert_drains(&survivor);
    survivor.stop();
    drop(accepter); // Left blocked on accept; the process exit reaps it.
}

#[test]
fn killed_workers_requeued_shards_are_visible_in_the_coordinator_registry() {
    // The deterministic worker-died-mid-shard fault: the doomed
    // worker's first solve thread dies, so by the time the coordinator
    // sees the failure its other shard is still pending there — the
    // retirement must requeue it, and both must be on the record.
    let p = problem();
    let mut faulty = WorkerConfig::new();
    faulty.fault = Some(WorkerFault::PanicOnSubmit(0));
    let doomed = spawn_worker(faulty);
    let survivor = spawn_worker(WorkerConfig::new());
    let addrs = vec![doomed.addr().to_string(), survivor.addr().to_string()];

    let spec = spec_for(&p, Vec::new());
    let (total, jobs) = shard_replica_column(&spec, 40, 77, 0, 4);
    let coordinator = Coordinator::new(addrs)
        .with_max_attempts(6)
        .expect("nonzero bound");
    let merged = coordinator
        .run(total, &jobs)
        .expect("the survivor finishes the run");

    // Bit-identical despite the mid-run death.
    let engine = EngineKind::Software
        .build(&p, &EngineSettings::new(40, 2))
        .expect("builds");
    let reference: Vec<WireSolution> = BatchRunner::serial()
        .run(&engine, 40, 77)
        .iter()
        .map(WireSolution::from_solution)
        .collect();
    assert_eq!(merged, reference);

    // The registry tells the story: the worker was retired and the
    // shards it held were requeued (then finished elsewhere).
    let coord = coordinator.obs().snapshot();
    assert!(
        coord.counter("coord.workers_retired").unwrap_or(0) >= 1,
        "no retirement recorded: {coord:?}"
    );
    assert!(
        coord.counter("coord.shards_requeued").unwrap_or(0) >= 1,
        "no requeue recorded: {coord:?}"
    );
    assert_eq!(coord.counter("coord.shards_done"), Some(4));
    let events = coordinator.obs().tracer().events();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, hycim_obs::Event::WorkerRetired { .. })),
        "no WorkerRetired event: {events:?}"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, hycim_obs::Event::ShardRequeued { .. })),
        "no ShardRequeued event: {events:?}"
    );

    assert_drains(&doomed);
    assert_drains(&survivor);
    doomed.stop();
    survivor.stop();
}

#[test]
fn unreachable_workers_surface_a_typed_error_not_a_hang() {
    let p = problem();
    let spec = spec_for(&p, Vec::new());
    let (total, jobs) = shard_replica_column(&spec, 3, 1, 0, 1);

    // Strict mode (no fallback): nobody to talk to at all.
    let err = Coordinator::new(Vec::new())
        .with_local_fallback(false)
        .run(total, &jobs)
        .unwrap_err();
    assert!(matches!(err, NetError::NoWorkers), "{err}");

    // Strict mode, a dead address: the probe budget exhausts, and the
    // shard fails carrying the fleet's obituary on its chain.
    let err = Coordinator::new(vec!["127.0.0.1:1".to_string()])
        .with_local_fallback(false)
        .with_max_attempts(1)
        .expect("nonzero bound")
        .run(total, &jobs)
        .unwrap_err();
    match &err {
        NetError::ShardExhausted { chain, .. } => assert!(
            chain.iter().any(|c| c.contains("no usable workers")),
            "{chain:?}"
        ),
        other => panic!("expected ShardExhausted, got {other}"),
    }

    // Default mode degrades gracefully instead: both runs complete on
    // the coordinator host, byte-identical to the local reference.
    let engine = EngineKind::Software
        .build(&p, &EngineSettings::new(40, 2))
        .expect("builds");
    let reference: Vec<WireSolution> = BatchRunner::serial()
        .run(&engine, 3, 1)
        .iter()
        .map(WireSolution::from_solution)
        .collect();
    let empty_fleet = Coordinator::new(Vec::new());
    let local = empty_fleet.run(total, &jobs).expect("solves locally");
    assert_eq!(local, reference);
    assert_eq!(
        empty_fleet.obs().snapshot().counter("coord.shards_local"),
        Some(1)
    );
    let dead_fleet = Coordinator::new(vec!["127.0.0.1:1".to_string()]);
    let degraded = dead_fleet.run(total, &jobs).expect("degrades to local");
    assert_eq!(degraded, reference);
}
