//! Protocol laws, property-tested: `decode(encode(m)) == m` for every
//! verb, every reply, and every problem family — over the full frame
//! stack (JSON encode → line frame → bounded read → JSON parse) — and
//! line-numbered decode errors on trailing garbage.

use hycim_cop::binpack::BinPacking;
use hycim_cop::coloring::GraphColoring;
use hycim_cop::generator::QkpGenerator;
use hycim_cop::knapsack::Knapsack;
use hycim_cop::maxcut::MaxCut;
use hycim_cop::mkp::MkpGenerator;
use hycim_cop::spinglass::SpinGlass;
use hycim_cop::tsp::Tsp;
use hycim_cop::{AnyProblem, CopError};
use hycim_net::json::Value;
use hycim_net::{JobSpec, MessageReceiver, MessageSender, Request, Response, WireSolution};
use hycim_service::{DisposeOutcome, JobStatus};
use proptest::prelude::*;

/// One deterministic instance of every family, derived from `seed`.
fn every_family(seed: u64) -> Vec<AnyProblem> {
    let knapsack = Knapsack::new(vec![3, 5, 7], vec![2, 4, 6], 7).expect("valid knapsack");
    let binpack = BinPacking::new(vec![3, 4, 5, 6], 10, 2).expect("valid bin packing");
    vec![
        AnyProblem::from(QkpGenerator::new(6, 0.5).generate(seed)),
        AnyProblem::from(knapsack),
        AnyProblem::from(MaxCut::random(7, 0.5, seed)),
        AnyProblem::from(SpinGlass::random_binary(5, seed).expect("n >= 2")),
        AnyProblem::from(Tsp::random_euclidean(4, 10.0, seed).expect("n >= 3")),
        AnyProblem::from(GraphColoring::random(5, 0.4, 3, seed)),
        AnyProblem::from(binpack),
        AnyProblem::from(MkpGenerator::new(5, 2).generate(seed)),
    ]
}

/// Pushes a message through the real frame stack and back.
fn round_trip(value: &Value) -> Value {
    let mut wire = Vec::new();
    MessageSender::new(&mut wire).send(value).expect("send");
    MessageReceiver::new(wire.as_slice())
        .recv()
        .expect("recv")
        .expect("one frame")
}

fn arb_solution() -> impl Strategy<Value = WireSolution> {
    (
        proptest::collection::vec(any::<bool>(), 1..24),
        any::<u64>(),
        any::<u64>(),
        any::<bool>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(
            |(bits, obj_bits, energy_bits, feasible, iters_to_best, iterations)| WireSolution {
                assignment: bits.iter().map(|&b| if b { '1' } else { '0' }).collect(),
                // From raw bits, so infinities and NaN payloads are
                // generated and must survive.
                objective: f64::from_bits(obj_bits),
                reported_energy: f64::from_bits(energy_bits),
                feasible,
                iters_to_best,
                iterations,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Submit round-trips for every problem family, with the instance
    /// reconstructing to its exact canonical form.
    #[test]
    fn submit_round_trips_every_family(
        seed in any::<u64>(),
        sweeps in 1u64..10_000,
        hardware_seed in any::<u64>(),
        record_trace in any::<bool>(),
        seeds in proptest::collection::vec(any::<u64>(), 1..12),
    ) {
        for problem in every_family(seed) {
            let spec = JobSpec {
                family: problem.family_tag().to_string(),
                problem: problem.to_wire(),
                engine: "hycim".to_string(),
                sweeps,
                hardware_seed,
                record_trace,
                seeds: seeds.clone(),
            };
            let request = Request::Submit(spec.clone());
            let decoded = Request::from_value(&round_trip(&request.to_value()))
                .expect("valid frame decodes");
            prop_assert_eq!(&decoded, &request);
            // The carried instance reconstructs and re-encodes to the
            // same canonical text (the bit-exactness contract).
            let rebuilt = spec.decode_problem().expect("canonical text parses");
            prop_assert_eq!(rebuilt.to_wire(), spec.problem);
        }
    }

    /// The id-carrying verbs round-trip for any id.
    #[test]
    fn id_verbs_round_trip(job in any::<u64>()) {
        for request in [
            Request::Poll { job },
            Request::Fetch { job },
            Request::Cancel { job },
        ] {
            let decoded = Request::from_value(&round_trip(&request.to_value()))
                .expect("valid frame decodes");
            prop_assert_eq!(decoded, request);
        }
    }

    /// Every reply kind round-trips, including solutions with
    /// arbitrary IEEE-754 bit patterns (NaN payloads, infinities,
    /// negative zero).
    #[test]
    fn responses_round_trip(
        job in any::<u64>(),
        solutions in proptest::collection::vec(arb_solution(), 0..5),
        message_bytes in proptest::collection::vec(32u8..127, 0..40),
    ) {
        let message: String = message_bytes.iter().map(|&b| b as char).collect();
        let mut responses = vec![
            Response::Submitted { job },
            Response::Solutions { job, solutions },
        ];
        for status in [
            JobStatus::Queued,
            JobStatus::Running,
            JobStatus::Done,
            JobStatus::Failed,
            JobStatus::Cancelled,
        ] {
            responses.push(Response::Status { job, status });
        }
        for outcome in [
            DisposeOutcome::Unknown,
            DisposeOutcome::Cancelled,
            DisposeOutcome::Deferred,
            DisposeOutcome::Discarded,
        ] {
            responses.push(Response::Cancelled { job, outcome });
        }
        for code in hycim_net::ErrorCode::ALL {
            responses.push(Response::Error { code, message: message.clone() });
        }
        for response in responses {
            let decoded = Response::from_value(&round_trip(&response.to_value()))
                .expect("valid frame decodes");
            prop_assert_eq!(decoded, response);
        }
    }

    /// Trailing garbage after a canonical problem payload fails with
    /// the exact line number of the garbage, for every family.
    #[test]
    fn trailing_garbage_is_rejected_with_its_line(seed in any::<u64>()) {
        for problem in every_family(seed) {
            let clean = problem.to_wire();
            let garbage_line = clean.lines().count() + 1;
            let spec = JobSpec {
                family: problem.family_tag().to_string(),
                problem: format!("{clean}trailing garbage\n"),
                engine: "hycim".to_string(),
                sweeps: 10,
                hardware_seed: 0,
                record_trace: true,
                seeds: vec![1],
            };
            match spec.decode_problem() {
                Err(CopError::ParseFailure { line, .. }) => {
                    prop_assert_eq!(
                        line, garbage_line,
                        "{}: garbage line is named", problem.family_tag()
                    );
                }
                other => prop_assert!(
                    false,
                    "{}: expected ParseFailure, got {:?}",
                    problem.family_tag(),
                    other
                ),
            }
        }
    }

    /// A frame with trailing bytes after the JSON document is
    /// rejected at the frame layer (the offset names the garbage).
    #[test]
    fn trailing_frame_garbage_is_rejected(job in any::<u64>()) {
        let mut wire = Vec::new();
        MessageSender::new(&mut wire)
            .send(&Request::Poll { job }.to_value())
            .expect("send");
        // Splice garbage between the document and the newline.
        let split = wire.len() - 1;
        wire.splice(split..split, b" {}".iter().copied());
        match MessageReceiver::new(wire.as_slice()).recv() {
            Err(hycim_net::FrameError::Json(e)) => {
                prop_assert!(e.message.contains("trailing input"), "{}", e);
            }
            other => prop_assert!(false, "expected a Json frame error, got {other:?}"),
        }
    }
}
