//! Scripted chaos scenarios: a coordinator talking to workers through
//! the deterministic fault-injection proxy must absorb every
//! transport misbehavior — refused conversations, mid-run drops,
//! mid-frame truncation, stalls, delays, partial writes — and still
//! merge the byte-for-byte result of a local single-thread run.
//!
//! Each scenario is a [`FaultPlan`] script, so a failure here replays
//! exactly: same connection indices, same faults, same recovery path.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use hycim_cop::maxcut::MaxCut;
use hycim_cop::AnyProblem;
use hycim_core::{BatchRunner, EngineKind, EngineSettings};
use hycim_net::{
    shard_replica_column, BackoffConfig, ChaosProxy, ConnFault, Coordinator, FaultPlan, JobSpec,
    WireSolution, WorkerConfig, WorkerFault, WorkerHandle, WorkerServer,
};
use hycim_obs::Event;

fn spawn_worker(config: WorkerConfig) -> WorkerHandle {
    WorkerServer::bind("127.0.0.1:0", config)
        .expect("bind loopback")
        .spawn()
}

fn problem() -> MaxCut {
    MaxCut::random(10, 0.5, 9)
}

fn spec_for(p: &MaxCut, seeds: Vec<u64>) -> JobSpec {
    let any = AnyProblem::from(p.clone());
    JobSpec {
        family: any.family_tag().to_string(),
        problem: any.to_wire(),
        engine: "software".to_string(),
        sweeps: 40,
        hardware_seed: 2,
        record_trace: true,
        seeds,
    }
}

/// The local single-thread ground truth every scenario must match.
fn reference(p: &MaxCut, replicas: usize, root_seed: u64) -> Vec<WireSolution> {
    let engine = EngineKind::Software
        .build(p, &EngineSettings::new(40, 2))
        .expect("builds");
    BatchRunner::serial()
        .run(&engine, replicas, root_seed)
        .iter()
        .map(WireSolution::from_solution)
        .collect()
}

/// Runs one proxied scenario to completion: a single worker behind a
/// chaos proxy under `plan`, 6 replicas in 2 shards, and asserts the
/// merged result is bit-identical to the local reference. Returns the
/// coordinator for counter and event assertions.
fn run_scenario(plan: FaultPlan) -> Coordinator {
    let p = problem();
    let worker = spawn_worker(WorkerConfig::new());
    let proxy = ChaosProxy::spawn(worker.addr().to_string(), plan).expect("spawn proxy");

    let spec = spec_for(&p, Vec::new());
    let (total, jobs) = shard_replica_column(&spec, 6, 33, 0, 2);
    let coordinator = Coordinator::new(vec![proxy.addr().to_string()])
        .with_max_attempts(8)
        .expect("nonzero bound")
        .with_read_timeout(Duration::from_millis(200))
        .with_connect_timeout(Duration::from_secs(5));
    let merged = coordinator
        .run(total, &jobs)
        .expect("the scenario recovers");
    assert_eq!(merged, reference(&p, 6, 33), "faults perturbed the bits");

    proxy.stop();
    worker.stop();
    coordinator
}

#[test]
fn refused_conversation_is_survived_through_probation_and_readmission() {
    // Connection 0 (the coordinator's initial connect) is accepted
    // and immediately severed; every later connection is clean.
    let coordinator = run_scenario(FaultPlan::clean(1).script(0, ConnFault::Refuse));
    let stats = coordinator.obs().snapshot();
    assert!(
        stats.counter("coord.workers_retired").unwrap_or(0) >= 1,
        "{stats:?}"
    );
    assert!(
        stats.counter("coord.probes_sent").unwrap_or(0) >= 1,
        "{stats:?}"
    );
    assert!(
        stats.counter("coord.workers_readmitted").unwrap_or(0) >= 1,
        "{stats:?}"
    );
    let events = coordinator.obs().tracer().events();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, Event::WorkerReadmitted { .. })),
        "no WorkerReadmitted event: {events:?}"
    );
}

#[test]
fn mid_run_drop_is_retried_bit_identically() {
    // The first conversation dies after two forwarded responses — a
    // worker lost mid-run, with a shard already accepted.
    let coordinator = run_scenario(
        FaultPlan::clean(2).script(0, ConnFault::CloseAfterResponses { responses: 2 }),
    );
    let stats = coordinator.obs().snapshot();
    assert!(
        stats.counter("coord.shard_retries").unwrap_or(0) >= 1,
        "{stats:?}"
    );
    assert!(
        stats.counter("coord.workers_readmitted").unwrap_or(0) >= 1,
        "{stats:?}"
    );
}

#[test]
fn mid_frame_truncation_is_a_recovered_framing_error_never_a_short_result() {
    // One full response through, then 5 bytes of the next frame.
    let coordinator = run_scenario(FaultPlan::clean(3).script(
        0,
        ConnFault::TruncateResponse {
            responses: 1,
            bytes: 5,
        },
    ));
    let stats = coordinator.obs().snapshot();
    assert!(
        stats.counter("coord.workers_retired").unwrap_or(0) >= 1,
        "{stats:?}"
    );
}

#[test]
fn stalled_worker_hits_the_read_deadline_and_the_run_recovers() {
    // One response through, then silence with the socket held open:
    // only the coordinator's read deadline can unblock the run.
    let coordinator =
        run_scenario(FaultPlan::clean(4).script(0, ConnFault::Stall { responses: 1 }));
    let stats = coordinator.obs().snapshot();
    assert!(
        stats.counter("coord.workers_retired").unwrap_or(0) >= 1,
        "{stats:?}"
    );
    assert!(
        stats.counter("coord.workers_readmitted").unwrap_or(0) >= 1,
        "{stats:?}"
    );
}

#[test]
fn slow_and_chunked_transports_do_not_perturb_results_or_trip_the_breaker() {
    // Delays and partial writes are degraded service, not faults: the
    // run must finish without a single retirement.
    let coordinator = run_scenario(
        FaultPlan::clean(5)
            .script(0, ConnFault::Delay { millis: 5 })
            .script(1, ConnFault::Chunked { chunk: 3 }),
    );
    let stats = coordinator.obs().snapshot();
    assert_eq!(stats.counter("coord.workers_retired").unwrap_or(0), 0);
    assert_eq!(stats.counter("coord.shard_retries").unwrap_or(0), 0);
}

#[test]
fn seeded_random_plans_inject_the_same_faults_every_run() {
    // The menu is recoverable misbehavior; two runs under the same
    // seed must see the identical injection schedule (and both merge
    // to the reference — run_scenario asserts that).
    let menu = vec![
        ConnFault::CloseAfterResponses { responses: 1 },
        ConnFault::Delay { millis: 2 },
        ConnFault::Chunked { chunk: 7 },
    ];
    let plan = FaultPlan::clean(0xC0FFEE).with_random(40, menu);
    let first = plan.clone();
    run_scenario(first);
    run_scenario(plan);
}

#[test]
fn flaky_worker_failing_k_times_is_readmitted_and_bit_identical() {
    // A lone worker whose first k solves panic, then recovers: the
    // probation/readmission machinery must bring it back (there is no
    // survivor to hide behind) and the merge must not care.
    for k in [0usize, 1, 3] {
        let p = problem();
        let mut config = WorkerConfig::new();
        config.fault = Some(WorkerFault::PanicFirstSubmits(k));
        let worker = spawn_worker(config);

        let spec = spec_for(&p, Vec::new());
        let (total, jobs) = shard_replica_column(&spec, 8, 55, 0, 4);
        let coordinator = Coordinator::new(vec![worker.addr().to_string()])
            .with_max_attempts(10)
            .expect("nonzero bound");
        let merged = coordinator
            .run(total, &jobs)
            .expect("the recovered worker finishes the run");
        assert_eq!(merged, reference(&p, 8, 55), "k={k} perturbed the bits");

        let stats = coordinator.obs().snapshot();
        if k == 0 {
            assert_eq!(
                stats.counter("coord.workers_retired").unwrap_or(0),
                0,
                "a healthy worker must not trip the breaker: {stats:?}"
            );
        } else {
            assert!(
                stats.counter("coord.workers_readmitted").unwrap_or(0) >= 1,
                "k={k}: no readmission: {stats:?}"
            );
            let events = coordinator.obs().tracer().events();
            assert!(
                events
                    .iter()
                    .any(|e| matches!(e, Event::WorkerReadmitted { .. })),
                "k={k}: no WorkerReadmitted event"
            );
        }

        worker.stop();
    }
}

#[test]
fn every_worker_dead_mid_run_degrades_to_a_bit_identical_local_solve() {
    // The first conversation gets real work done, then dies; every
    // later connection (retries, probes) dies before answering. The
    // probe budget exhausts, the worker is declared dead, and the
    // coordinator finishes the whole grid locally — same bytes.
    let p = problem();
    let worker = spawn_worker(WorkerConfig::new());
    let plan = FaultPlan::clean(6)
        .with_random(100, vec![ConnFault::CloseAfterResponses { responses: 0 }])
        .script(0, ConnFault::CloseAfterResponses { responses: 2 });
    let proxy = ChaosProxy::spawn(worker.addr().to_string(), plan).expect("spawn proxy");

    let spec = spec_for(&p, Vec::new());
    let (total, jobs) = shard_replica_column(&spec, 6, 33, 0, 2);
    let coordinator = Coordinator::new(vec![proxy.addr().to_string()])
        .with_read_timeout(Duration::from_millis(200))
        .with_connect_timeout(Duration::from_secs(5));
    let merged = coordinator
        .run(total, &jobs)
        .expect("graceful degradation completes the run");
    assert_eq!(merged, reference(&p, 6, 33), "the fallback changed bits");

    let stats = coordinator.obs().snapshot();
    assert_eq!(
        stats.counter("coord.workers_dead").unwrap_or(0),
        1,
        "{stats:?}"
    );
    assert_eq!(
        stats.counter("coord.shards_local").unwrap_or(0),
        2,
        "both shards ended local: {stats:?}"
    );
    let events = coordinator.obs().tracer().events();
    assert_eq!(
        events
            .iter()
            .filter(|e| matches!(e, Event::ShardLocalSolve { .. }))
            .count(),
        2,
        "{events:?}"
    );

    proxy.stop();
    worker.stop();
}

#[test]
fn backoff_waits_are_seeded_and_replayable() {
    // A sleep recorder instead of real sleeps: the delays the
    // coordinator asks for must be exactly the BackoffConfig's pure
    // function of (seed, attempt) — wall-clock never gets a vote.
    let p = problem();
    let mut config = WorkerConfig::new();
    config.fault = Some(WorkerFault::PanicFirstSubmits(2));
    let worker = spawn_worker(config);

    let backoff = BackoffConfig::new(99)
        .with_base(Duration::from_millis(3))
        .with_cap(Duration::from_millis(40));
    let recorded: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&recorded);

    let spec = spec_for(&p, Vec::new());
    let (total, jobs) = shard_replica_column(&spec, 4, 21, 0, 1);
    let coordinator = Coordinator::new(vec![worker.addr().to_string()])
        .with_max_attempts(8)
        .expect("nonzero bound")
        .with_backoff(backoff)
        .with_sleep_fn(Arc::new(move |d| {
            sink.lock().expect("recorder lock").push(d);
        }));
    let merged = coordinator.run(total, &jobs).expect("recovers");
    assert_eq!(merged, reference(&p, 4, 21));

    let recorded = recorded.lock().expect("recorder lock").clone();
    assert_eq!(
        recorded,
        vec![backoff.delay(1), backoff.delay(2)],
        "one seeded wait per retry, in attempt order"
    );

    worker.stop();
}
