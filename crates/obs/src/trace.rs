//! A bounded ring-buffer tracer for typed lifecycle events.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default ring capacity: enough to hold a full coordinator run on
/// the bench presets without ever mattering for memory.
pub const DEFAULT_TRACE_CAPACITY: usize = 1024;

/// A typed span emitted by an instrumented tier. Events carry the
/// identifiers a debugger wants (job ids, shard ranges, worker
/// indices) but no wall-clock — ordering within the ring is the
/// record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A job entered the service queue.
    JobSubmitted {
        /// Service-assigned job id.
        job: u64,
    },
    /// A worker thread picked the job up.
    JobStarted {
        /// Service-assigned job id.
        job: u64,
    },
    /// The job completed successfully.
    JobDone {
        /// Service-assigned job id.
        job: u64,
    },
    /// The job's solve panicked or errored.
    JobFailed {
        /// Service-assigned job id.
        job: u64,
    },
    /// The job was cancelled before completion.
    JobCancelled {
        /// Service-assigned job id.
        job: u64,
    },
    /// The coordinator sent a shard to a worker.
    ShardDispatched {
        /// First replica index of the shard (inclusive).
        start: u64,
        /// One past the last replica index.
        end: u64,
        /// Coordinator-local worker index.
        worker: u64,
    },
    /// A shard attempt failed and will be retried.
    ShardRetried {
        /// First replica index of the shard (inclusive).
        start: u64,
        /// One past the last replica index.
        end: u64,
    },
    /// A pending shard was returned to the queue because its worker
    /// was retired.
    ShardRequeued {
        /// First replica index of the shard (inclusive).
        start: u64,
        /// One past the last replica index.
        end: u64,
    },
    /// A worker connection was dropped from the rotation (into
    /// probation — a later probe may readmit it).
    WorkerRetired {
        /// Coordinator-local worker index.
        worker: u64,
    },
    /// The coordinator sent a health probe (the `stats` verb) to a
    /// worker on probation.
    WorkerProbed {
        /// Coordinator-local worker index.
        worker: u64,
    },
    /// A probed worker answered and rejoined the dispatch rotation.
    WorkerReadmitted {
        /// Coordinator-local worker index.
        worker: u64,
    },
    /// A shard was solved on the coordinator host because the worker
    /// fleet was exhausted or empty (graceful degradation).
    ShardLocalSolve {
        /// First replica index of the shard (inclusive).
        start: u64,
        /// One past the last replica index.
        end: u64,
    },
    /// An annealing solve finished a phase.
    AnnealPhase {
        /// Engine or phase label (static on every call site, so
        /// tracing allocates nothing per solve beyond the event).
        label: &'static str,
        /// Iterations spent in the phase.
        iterations: u64,
    },
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::JobSubmitted { job } => write!(f, "job {job} submitted"),
            Event::JobStarted { job } => write!(f, "job {job} started"),
            Event::JobDone { job } => write!(f, "job {job} done"),
            Event::JobFailed { job } => write!(f, "job {job} failed"),
            Event::JobCancelled { job } => write!(f, "job {job} cancelled"),
            Event::ShardDispatched { start, end, worker } => {
                write!(f, "shard [{start}, {end}) -> worker {worker}")
            }
            Event::ShardRetried { start, end } => write!(f, "shard [{start}, {end}) retried"),
            Event::ShardRequeued { start, end } => write!(f, "shard [{start}, {end}) requeued"),
            Event::WorkerRetired { worker } => write!(f, "worker {worker} retired"),
            Event::WorkerProbed { worker } => write!(f, "worker {worker} probed"),
            Event::WorkerReadmitted { worker } => write!(f, "worker {worker} readmitted"),
            Event::ShardLocalSolve { start, end } => {
                write!(f, "shard [{start}, {end}) solved locally")
            }
            Event::AnnealPhase { label, iterations } => {
                write!(f, "anneal phase {label} ({iterations} iterations)")
            }
        }
    }
}

/// A bounded ring of [`Event`]s. When full, the oldest event is
/// dropped and a drop counter ticks, so the tracer never grows and
/// never blocks progress for more than a short mutex hold.
#[derive(Debug)]
pub struct EventTracer {
    ring: Mutex<VecDeque<Event>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl Default for EventTracer {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl EventTracer {
    /// A tracer holding at most `capacity` events (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            ring: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
        }
    }

    /// Appends an event, evicting the oldest if the ring is full.
    pub fn record(&self, event: Event) {
        let mut ring = self.ring.lock().expect("event ring poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }

    /// A copy of the buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.ring
            .lock()
            .expect("event ring poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Removes and returns the buffered events, oldest first.
    pub fn drain(&self) -> Vec<Event> {
        self.ring
            .lock()
            .expect("event ring poisoned")
            .drain(..)
            .collect()
    }

    /// Events buffered right now.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("event ring poisoned").len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted to make room since construction.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let tracer = EventTracer::default();
        tracer.record(Event::JobSubmitted { job: 1 });
        tracer.record(Event::JobStarted { job: 1 });
        tracer.record(Event::JobDone { job: 1 });
        assert_eq!(
            tracer.events(),
            vec![
                Event::JobSubmitted { job: 1 },
                Event::JobStarted { job: 1 },
                Event::JobDone { job: 1 },
            ]
        );
        assert_eq!(tracer.dropped(), 0);
    }

    #[test]
    fn full_ring_drops_oldest() {
        let tracer = EventTracer::with_capacity(2);
        tracer.record(Event::JobSubmitted { job: 1 });
        tracer.record(Event::JobSubmitted { job: 2 });
        tracer.record(Event::JobSubmitted { job: 3 });
        assert_eq!(
            tracer.events(),
            vec![
                Event::JobSubmitted { job: 2 },
                Event::JobSubmitted { job: 3 },
            ]
        );
        assert_eq!(tracer.dropped(), 1);
    }

    #[test]
    fn drain_empties_the_ring() {
        let tracer = EventTracer::default();
        tracer.record(Event::WorkerRetired { worker: 0 });
        assert_eq!(tracer.drain().len(), 1);
        assert!(tracer.is_empty());
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(
            Event::ShardDispatched {
                start: 0,
                end: 16,
                worker: 2
            }
            .to_string(),
            "shard [0, 16) -> worker 2"
        );
    }
}
