//! The named-metric registry, its deterministic snapshot form, and
//! the process-global install slot.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, RwLock};

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};
use crate::trace::EventTracer;

/// One registered metric. Handles are `Arc`s so call sites can cache
/// them and update without touching the registry lock again.
#[derive(Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A registry of named counters, gauges, and histograms plus a
/// bounded event tracer. Names are dot-separated paths; the `timing.`
/// prefix marks wall-clock metrics that the stable rendering
/// excludes (see the crate docs for the full contract).
///
/// Metric handles are get-or-create: the first call for a name
/// registers it, later calls return the same atomic. Asking for an
/// existing name with a different metric kind panics — that is a
/// programming error, not a runtime condition.
#[derive(Debug, Default)]
pub struct ObsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
    tracer: EventTracer,
}

impl ObsRegistry {
    /// An empty registry with the default trace capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get-or-create the counter `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut metrics = self.metrics.lock().expect("obs registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric {name:?} already registered as {other:?}, wanted a counter"),
        }
    }

    /// Get-or-create the gauge `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut metrics = self.metrics.lock().expect("obs registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name:?} already registered as {other:?}, wanted a gauge"),
        }
    }

    /// Get-or-create the histogram `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut metrics = self.metrics.lock().expect("obs registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("metric {name:?} already registered as {other:?}, wanted a histogram"),
        }
    }

    /// The registry's event tracer.
    pub fn tracer(&self) -> &EventTracer {
        &self.tracer
    }

    /// A point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.lock().expect("obs registry poisoned");
        let mut snapshot = Snapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    snapshot.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snapshot.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snapshot.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snapshot
    }

    /// Shorthand for `self.snapshot().render_stable()`.
    pub fn render_stable(&self) -> String {
        self.snapshot().render_stable()
    }
}

/// True when the metric name sits in the wall-clock section.
fn is_timing(name: &str) -> bool {
    name.starts_with("timing.")
}

/// A point-in-time copy of a registry's metrics, keyed by name in
/// sorted order. All payloads are integers (histograms are bucket
/// count vectors), so equality is exact and [`merge`](Self::merge)
/// is associative and commutative — snapshots from many workers fold
/// into one without floating-point drift.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram bucket counts by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// The counter's total, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The gauge's level, if registered.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// The histogram's buckets, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Folds `other` in: counters and histograms add, gauges take the
    /// maximum (the only order-independent combination for a level).
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, value) in &other.gauges {
            let slot = self.gauges.entry(name.clone()).or_insert(0);
            *slot = (*slot).max(*value);
        }
        for (name, hist) in &other.histograms {
            self.histograms
                .entry(name.clone())
                .or_insert_with(HistogramSnapshot::empty)
                .merge(hist);
        }
    }

    /// The canonical deterministic form: every non-`timing.` metric,
    /// one per line, sorted by name. Counters and gauges print their
    /// integer value; histograms print their total count and raw
    /// nonzero buckets (`slot:count`). Because nothing here involves
    /// wall-clock or floating-point accumulation, this string is
    /// byte-identical across runs of the same deterministic work.
    pub fn render_stable(&self) -> String {
        let mut out = String::new();
        self.render_section(&mut out, false);
        out
    }

    /// Human-oriented rendering: the stable section followed by a
    /// `-- timing --` section with wall-clock histograms summarized
    /// as count plus p50/p90/p99 bracket edges.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_section(&mut out, false);
        let has_timing = self.counters.keys().any(|n| is_timing(n))
            || self.gauges.keys().any(|n| is_timing(n))
            || self.histograms.keys().any(|n| is_timing(n));
        if has_timing {
            out.push_str("-- timing --\n");
            self.render_section(&mut out, true);
        }
        out
    }

    fn render_section(&self, out: &mut String, timing: bool) {
        for (name, value) in &self.counters {
            if is_timing(name) == timing {
                let _ = writeln!(out, "{name} {value}");
            }
        }
        for (name, value) in &self.gauges {
            if is_timing(name) == timing {
                let _ = writeln!(out, "{name} {value}");
            }
        }
        for (name, hist) in &self.histograms {
            if is_timing(name) != timing {
                continue;
            }
            if timing {
                let _ = writeln!(
                    out,
                    "{name} count={} p50<={:.6} p90<={:.6} p99<={:.6}",
                    hist.count(),
                    hist.p50(),
                    hist.p90(),
                    hist.p99(),
                );
            } else {
                let _ = write!(out, "{name} count={}", hist.count());
                for (slot, &count) in hist.buckets.iter().enumerate() {
                    if count > 0 {
                        let _ = write!(out, " {slot}:{count}");
                    }
                }
                out.push('\n');
            }
        }
    }

    /// Prometheus-style text exposition: `hycim_`-prefixed names with
    /// dots mangled to underscores, counters as `counter`, gauges as
    /// `gauge`, histograms as cumulative `le` buckets plus `_count`.
    /// There is deliberately no `_sum` series — the histogram keeps
    /// no floating-point accumulator (see the crate docs). `timing.`
    /// metrics are included; scrapers are expected to cope with
    /// wall-clock.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let mangled = mangle(name);
            let _ = writeln!(out, "# TYPE {mangled} counter");
            let _ = writeln!(out, "{mangled} {value}");
        }
        for (name, value) in &self.gauges {
            let mangled = mangle(name);
            let _ = writeln!(out, "# TYPE {mangled} gauge");
            let _ = writeln!(out, "{mangled} {value}");
        }
        for (name, hist) in &self.histograms {
            let mangled = mangle(name);
            let _ = writeln!(out, "# TYPE {mangled} histogram");
            let mut cumulative = 0u64;
            for (slot, &count) in hist.buckets.iter().enumerate() {
                cumulative += count;
                if count == 0 && slot < hist.buckets.len() - 1 {
                    continue;
                }
                let le = if slot < HISTOGRAM_BUCKETS {
                    format!("{:e}", HistogramSnapshot::edge(slot))
                } else {
                    "+Inf".to_string()
                };
                let _ = writeln!(out, "{mangled}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{mangled}_count {}", hist.count());
        }
        out
    }
}

/// `service.jobs_done` → `hycim_service_jobs_done`.
fn mangle(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("hycim_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// The process-global registry slot read by the engine tier.
static GLOBAL: RwLock<Option<Arc<ObsRegistry>>> = RwLock::new(None);

/// Installs `obs` as the process-global registry and returns the
/// previous occupant, if any. The engine tier ([`installed`] callers)
/// starts publishing into it immediately.
pub fn install(obs: Arc<ObsRegistry>) -> Option<Arc<ObsRegistry>> {
    let mut slot = GLOBAL.write().expect("obs global slot poisoned");
    slot.replace(obs)
}

/// The currently installed global registry, if any. One `RwLock`
/// read; callers on a solve path check this once per solve, never
/// per iteration.
pub fn installed() -> Option<Arc<ObsRegistry>> {
    GLOBAL.read().expect("obs global slot poisoned").clone()
}

/// Clears the global slot, returning what was installed.
pub fn uninstall() -> Option<Arc<ObsRegistry>> {
    let mut slot = GLOBAL.write().expect("obs global slot poisoned");
    slot.take()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_per_name() {
        let obs = ObsRegistry::new();
        let a = obs.counter("x.events");
        let b = obs.counter("x.events");
        a.add(2);
        b.inc();
        assert_eq!(obs.snapshot().counter("x.events"), Some(3));
    }

    #[test]
    #[should_panic(expected = "wanted a gauge")]
    fn kind_mismatch_panics() {
        let obs = ObsRegistry::new();
        obs.counter("x");
        obs.gauge("x");
    }

    #[test]
    fn stable_rendering_sorts_and_excludes_timing() {
        let obs = ObsRegistry::new();
        obs.counter("b.second").add(2);
        obs.counter("a.first").inc();
        obs.gauge("q.depth").set(7);
        obs.histogram("sizes").record(3.0);
        obs.histogram("timing.wall").record(0.1);
        let stable = obs.render_stable();
        assert!(!stable.contains("timing."));
        let a = stable.find("a.first 1").expect("a.first rendered");
        let b = stable.find("b.second 2").expect("b.second rendered");
        assert!(a < b, "names are sorted");
        assert!(stable.contains("q.depth 7"));
        assert!(stable.contains("sizes count=1"));
        let full = obs.snapshot().render();
        assert!(full.contains("-- timing --"));
        assert!(full.contains("timing.wall count=1"));
    }

    #[test]
    fn merge_adds_counters_and_maxes_gauges() {
        let x = ObsRegistry::new();
        x.counter("n").add(2);
        x.gauge("depth").set(5);
        x.histogram("h").record(1.0);
        let y = ObsRegistry::new();
        y.counter("n").add(3);
        y.gauge("depth").set(2);
        y.histogram("h").record(2.0);
        let mut merged = x.snapshot();
        merged.merge(&y.snapshot());
        assert_eq!(merged.counter("n"), Some(5));
        assert_eq!(merged.gauge("depth"), Some(5));
        assert_eq!(merged.histogram("h").map(|h| h.count()), Some(2));
    }

    #[test]
    fn prometheus_form_mangles_names_and_cumulates() {
        let obs = ObsRegistry::new();
        obs.counter("service.jobs_done").add(4);
        obs.histogram("sizes").record(1.0);
        obs.histogram("sizes").record(1.0);
        let text = obs.snapshot().render_prometheus();
        assert!(text.contains("# TYPE hycim_service_jobs_done counter"));
        assert!(text.contains("hycim_service_jobs_done 4"));
        assert!(text.contains("hycim_sizes_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("hycim_sizes_count 2"));
        assert!(!text.contains("_sum"), "no f64 sum series by design");
    }

    #[test]
    fn global_slot_installs_and_clears() {
        // Single test exercising the global slot end-to-end to avoid
        // cross-test interference on the shared static.
        let obs = Arc::new(ObsRegistry::new());
        let prev = install(Arc::clone(&obs));
        if let Some(installed) = installed() {
            installed.counter("global.touch").inc();
        }
        assert_eq!(obs.snapshot().counter("global.touch"), Some(1));
        match prev {
            Some(prev) => {
                install(prev);
            }
            None => {
                uninstall();
            }
        }
    }
}
