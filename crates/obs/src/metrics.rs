//! The three metric primitives: monotone counters, settable gauges,
//! and fixed-boundary histograms with integer-pure snapshots.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of bounded histogram buckets (power-of-two upper edges).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Total histogram slots: the bounded buckets plus one overflow slot.
pub const HISTOGRAM_SLOTS: usize = HISTOGRAM_BUCKETS + 1;

/// Exponent of the first bucket's upper edge: bucket `i` covers
/// `(2^(i-1-SCALE), 2^(i-SCALE)]`, so the bounded range spans
/// `2^-30` (~1 ns when recording seconds) through `2^33` (~8.6e9 —
/// comfortably past any per-cell iteration count).
const SCALE: i32 = 30;

/// Upper edge of bounded bucket `i` (`i < HISTOGRAM_BUCKETS`).
fn bucket_edge(i: usize) -> f64 {
    2f64.powi(i as i32 - SCALE)
}

/// The slot a value lands in. Non-finite and non-positive values
/// clamp into bucket 0; values past the last edge go to the overflow
/// slot.
fn slot_for(value: f64) -> usize {
    if value.is_nan() || value <= 0.0 {
        return 0;
    }
    for i in 0..HISTOGRAM_BUCKETS {
        if value <= bucket_edge(i) {
            return i;
        }
    }
    HISTOGRAM_BUCKETS
}

/// A monotone event counter. `get` is exact once the writing threads
/// have been joined (or otherwise synchronized); concurrent reads see
/// some valid intermediate total.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A settable level (queue depth, live jobs). Not monotone; decrement
/// saturates at zero rather than wrapping.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the level.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one, saturating at zero.
    pub fn dec(&self) {
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-boundary histogram: power-of-two bucket edges, one atomic
/// count per bucket, **no sum/mean accumulator**. Keeping the state
/// integer-pure is deliberate: bucket increments commute exactly, so
/// a snapshot is independent of thread interleaving and snapshot
/// merges are associative and commutative bit-for-bit (an `f64` sum
/// would be neither).
#[derive(Debug)]
pub struct Histogram {
    slots: [AtomicU64; HISTOGRAM_SLOTS],
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            slots: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one observation.
    pub fn record(&self, value: f64) {
        self.slots[slot_for(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.slots.iter().map(|s| s.load(Ordering::Relaxed)).sum()
    }

    /// An integer-pure copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .slots
                .iter()
                .map(|s| s.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A histogram's bucket counts at one instant. Everything derivable
/// from it (count, quantile brackets) is a pure function of the
/// integer vector, so equality is exact and [`merge`](Self::merge) is
/// associative and commutative.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// One count per slot, `HISTOGRAM_SLOTS` long (the last slot is
    /// the overflow bucket).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// An empty snapshot with the canonical slot count.
    pub fn empty() -> Self {
        Self {
            buckets: vec![0; HISTOGRAM_SLOTS],
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Folds another snapshot in, slot by slot. The two sides must
    /// use the same bucket scheme (they always do within one protocol
    /// version).
    ///
    /// # Panics
    ///
    /// Panics if the slot counts differ.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "histogram snapshots from different bucket schemes"
        );
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }

    /// The `(lower, upper]` edges of the bucket holding the
    /// `q`-quantile (nearest-rank). The true quantile of the recorded
    /// sample set always lies within the returned bracket; the
    /// overflow bucket's upper edge is `+inf`. Returns `(0, 0)` for
    /// an empty histogram.
    pub fn quantile_bounds(&self, q: f64) -> (f64, f64) {
        let n = self.count();
        if n == 0 {
            return (0.0, 0.0);
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                let lower = if i == 0 { 0.0 } else { bucket_edge(i - 1) };
                let upper = if i < HISTOGRAM_BUCKETS {
                    bucket_edge(i)
                } else {
                    f64::INFINITY
                };
                return (lower, upper);
            }
        }
        unreachable!("cumulative reaches the total count");
    }

    /// Upper edge of the bucket bracketing the `q`-quantile.
    pub fn quantile(&self, q: f64) -> f64 {
        self.quantile_bounds(q).1
    }

    /// Median bracket's upper edge.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th-percentile bracket's upper edge.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th-percentile bracket's upper edge.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Upper edge of bounded bucket `i` — exposed so exposition
    /// writers can label buckets without re-deriving the scheme.
    pub fn edge(i: usize) -> f64 {
        bucket_edge(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_sets_and_saturates() {
        let g = Gauge::new();
        g.set(3);
        g.inc();
        assert_eq!(g.get(), 4);
        g.set(0);
        g.dec();
        assert_eq!(g.get(), 0, "dec saturates at zero");
    }

    #[test]
    fn histogram_brackets_simple_samples() {
        let h = Histogram::new();
        for v in [0.5, 0.5, 0.5, 2.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        let s = h.snapshot();
        let (lo, hi) = s.quantile_bounds(0.5);
        assert!(lo <= 0.5 && 0.5 <= hi, "median 0.5 outside ({lo}, {hi}]");
        let (lo, hi) = s.quantile_bounds(1.0);
        assert!(lo <= 2.0 && 2.0 <= hi, "max 2.0 outside ({lo}, {hi}]");
    }

    #[test]
    fn degenerate_values_land_in_the_edge_buckets() {
        let h = Histogram::new();
        h.record(-1.0);
        h.record(f64::NAN);
        h.record(0.0);
        h.record(f64::INFINITY);
        h.record(1e300);
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 3, "non-positive and NaN clamp to bucket 0");
        assert_eq!(s.buckets[HISTOGRAM_BUCKETS], 2, "huge values overflow");
        assert_eq!(s.count(), 5);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let s = HistogramSnapshot::empty();
        assert_eq!(s.quantile_bounds(0.5), (0.0, 0.0));
        assert_eq!(s.p99(), 0.0);
    }

    #[test]
    fn merge_adds_slotwise() {
        let a = Histogram::new();
        a.record(1.0);
        let b = Histogram::new();
        b.record(1.0);
        b.record(1e12);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 3);
        assert_eq!(m.buckets[slot_for(1.0)], 2);
        assert_eq!(m.buckets[HISTOGRAM_BUCKETS], 1);
    }

    #[test]
    #[should_panic(expected = "different bucket schemes")]
    fn mismatched_merge_panics() {
        let mut a = HistogramSnapshot::empty();
        a.merge(&HistogramSnapshot {
            buckets: vec![0; 3],
        });
    }
}
