//! Observability substrate for the HyCiM stack: an atomic metrics
//! registry plus a bounded ring-buffer event tracer, with zero
//! dependencies (std only) so every tier — the engine hot path, the
//! job service, the wire workers, the bench harness — can afford to
//! link it.
//!
//! Three metric kinds, all lock-free to update once the handle is
//! held:
//!
//! * [`Counter`] — a monotone `AtomicU64` (events, iterations,
//!   rejections).
//! * [`Gauge`] — a settable `AtomicU64` (queue depth, live jobs).
//! * [`Histogram`] — fixed power-of-two bucket boundaries, one
//!   `AtomicU64` per bucket, **no floating-point accumulator**: a
//!   snapshot is a pure integer vector, so merging snapshots from
//!   different threads or workers is exactly associative and
//!   commutative, and the canonical rendering is bit-stable across
//!   runs. Quantiles (p50/p90/p99) are reported as the bucket edge
//!   bracketing the true quantile.
//!
//! The [`ObsRegistry`] names metrics with dot-separated paths
//! (`service.submitted`, `coord.workers_retired`). One naming rule
//! carries the determinism contract: **metrics whose name starts with
//! `timing.` hold wall-clock observations** and are rendered in a
//! separate trailing section; [`Snapshot::render_stable`] excludes
//! them, so everything it prints is a pure function of the work done
//! — byte-identical across runs, thread counts, and machines.
//!
//! Instrumentation rule for the solver tiers: recording **consumes no
//! RNG draws and never branches inside an annealing loop** — engines
//! flush whole-solve counts from their traces, which is what keeps
//! every bit-identity guarantee intact with metrics enabled (pinned
//! by `hycim-core`'s determinism law test).
//!
//! A process-global registry slot ([`install`] / [`installed`] /
//! [`uninstall`]) lets the engine tier publish counters without
//! threading a handle through every constructor; the cost when
//! nothing is installed is one `RwLock` read per *solve*, not per
//! iteration.
//!
//! # Example
//!
//! ```
//! use hycim_obs::ObsRegistry;
//!
//! let obs = ObsRegistry::new();
//! obs.counter("demo.events").add(3);
//! obs.histogram("demo.sizes").record(17.0);
//! obs.histogram("timing.demo.seconds").record(0.25);
//!
//! let snapshot = obs.snapshot();
//! assert_eq!(snapshot.counter("demo.events"), Some(3));
//! // The stable form never mentions wall-clock metrics.
//! assert!(!snapshot.render_stable().contains("timing."));
//! assert!(snapshot.render().contains("timing.demo.seconds"));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod metrics;
mod registry;
mod trace;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS, HISTOGRAM_SLOTS,
};
pub use registry::{install, installed, uninstall, ObsRegistry, Snapshot};
pub use trace::{Event, EventTracer, DEFAULT_TRACE_CAPACITY};
