//! Property laws for the metrics substrate.
//!
//! Three families, matching the contracts the wire tier and the
//! deterministic snapshot form rely on:
//!
//! * histogram snapshot merge is associative and commutative (so
//!   folding per-worker stats in any order yields one answer),
//! * quantile brackets contain the true nearest-rank quantile of the
//!   recorded sample set,
//! * counter snapshots are monotone under any sequence of `add`s.

use hycim_obs::{Histogram, HistogramSnapshot, ObsRegistry, HISTOGRAM_SLOTS};
use proptest::prelude::*;

/// Samples spanning the full bucket range: subnormal-ish tiny values,
/// mid-range, past the overflow edge, and the degenerate clamps.
fn sample_strategy() -> impl Strategy<Value = f64> {
    (0u8..6, 0.0f64..1.0).prop_map(|(kind, x)| match kind {
        0 => x * 1e-12,       // deep in bucket 0 territory
        1 => x,               // around 2^0
        2 => x * 1e6,         // mid-range buckets
        3 => 1e10 + x * 1e12, // overflow bucket
        4 => -x,              // negative: clamps to bucket 0
        _ => x * 8.0,         // near small power-of-two edges
    })
}

fn snapshot_of(samples: &[f64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h.snapshot()
}

/// The true nearest-rank quantile of a sample set (the statistic the
/// bucket bracket must contain).
fn nearest_rank(samples: &[f64], q: f64) -> f64 {
    // Degenerate inputs clamp on record, so mirror that here.
    let mut clamped: Vec<f64> = samples
        .iter()
        .map(|&v| if v > 0.0 { v } else { 0.0 })
        .collect();
    clamped.sort_by(|a, b| a.partial_cmp(b).expect("clamped samples are finite"));
    let n = clamped.len() as f64;
    let rank = ((q * n).ceil() as usize).clamp(1, clamped.len());
    clamped[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_commutative(
        a in proptest::collection::vec(sample_strategy(), 0..40),
        b in proptest::collection::vec(sample_strategy(), 0..40),
    ) {
        let (sa, sb) = (snapshot_of(&a), snapshot_of(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.count(), (a.len() + b.len()) as u64);
    }

    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(sample_strategy(), 0..30),
        b in proptest::collection::vec(sample_strategy(), 0..30),
        c in proptest::collection::vec(sample_strategy(), 0..30),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        // (a + b) + c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        // a + (b + c)
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_equals_recording_the_concatenation(
        a in proptest::collection::vec(sample_strategy(), 0..40),
        b in proptest::collection::vec(sample_strategy(), 0..40),
    ) {
        let mut merged = snapshot_of(&a);
        merged.merge(&snapshot_of(&b));
        let concatenated: Vec<f64> = a.iter().chain(&b).copied().collect();
        prop_assert_eq!(merged, snapshot_of(&concatenated));
    }

    #[test]
    fn quantile_brackets_contain_the_true_quantile(
        samples in proptest::collection::vec(sample_strategy(), 1..80),
        q in 0.0f64..=1.0,
    ) {
        let snapshot = snapshot_of(&samples);
        let truth = nearest_rank(&samples, q);
        let (lower, upper) = snapshot.quantile_bounds(q);
        prop_assert!(
            lower <= truth && truth <= upper,
            "q={q}: true quantile {truth} outside bracket ({lower}, {upper}]"
        );
        prop_assert!(snapshot.buckets.len() == HISTOGRAM_SLOTS);
    }

    #[test]
    fn counter_snapshots_are_monotone(
        increments in proptest::collection::vec(0u64..1_000_000, 1..50),
    ) {
        let obs = ObsRegistry::new();
        let counter = obs.counter("law.monotone");
        let mut previous = 0u64;
        for n in increments {
            counter.add(n);
            let seen = obs.snapshot().counter("law.monotone").expect("registered");
            prop_assert!(seen >= previous, "counter went backwards: {previous} -> {seen}");
            prop_assert_eq!(seen, previous + n);
            previous = seen;
        }
    }

    #[test]
    fn stable_rendering_is_a_pure_function_of_the_samples(
        samples in proptest::collection::vec(sample_strategy(), 0..40),
        events in 0u64..1000,
    ) {
        let render = |work: &[f64]| {
            let obs = ObsRegistry::new();
            obs.counter("law.events").add(events);
            let h = obs.histogram("law.sizes");
            for &v in work {
                h.record(v);
            }
            // Wall-clock-flavored metrics must not disturb the form.
            obs.histogram("timing.law.seconds").record(v_noise(work));
            obs.snapshot().render_stable()
        };
        prop_assert_eq!(render(&samples), render(&samples));
    }
}

/// A run-varying wall-clock stand-in (anything derived from the data
/// works — the point is that `render_stable` never sees it).
fn v_noise(work: &[f64]) -> f64 {
    work.iter().copied().sum::<f64>().abs() + 1e-6
}
