//! Property-based tests of the device-model invariants.

use hycim_fefet::preisach::PolarizationState;
use hycim_fefet::{FefetCell, FefetDevice, MultiLevelSpec, VariationModel, WritePulse};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Drain current is monotone non-decreasing in gate voltage for
    /// any programmed level (ideal device).
    #[test]
    fn current_monotone_in_vg(level in 0u8..=4, a in 0.0f64..3.0, b in 0.0f64..3.0) {
        let spec = MultiLevelSpec::paper_filter();
        let mut dev = FefetDevice::ideal(&spec);
        dev.program(level);
        let mut rng = StdRng::seed_from_u64(1);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let i_lo = dev.drain_current(lo, &mut rng);
        let i_hi = dev.drain_current(hi, &mut rng);
        prop_assert!(i_hi >= i_lo * 0.999, "current fell with Vg: {i_lo:.3e} -> {i_hi:.3e}");
    }

    /// At any read voltage, a higher programmed level never conducts
    /// less than a lower one (ideal device).
    #[test]
    fn current_monotone_in_level(vg in 0.0f64..2.5) {
        let spec = MultiLevelSpec::paper_filter();
        let mut rng = StdRng::seed_from_u64(2);
        let mut last = 0.0;
        for level in 0..=4u8 {
            let mut dev = FefetDevice::ideal(&spec);
            dev.program(level);
            let i = dev.drain_current(vg, &mut rng);
            prop_assert!(i >= last * 0.999, "level {level} conducts less at {vg} V");
            last = i;
        }
    }

    /// Preisach polarization stays in [-1, 1] under arbitrary pulse
    /// trains, and a saturating erase always restores level 0.
    #[test]
    fn polarization_bounded_and_erasable(
        pulses in proptest::collection::vec((0.5f64..4.5, 1.0f64..2000.0, any::<bool>()), 0..12)
    ) {
        let spec = MultiLevelSpec::paper_filter();
        let mut p = PolarizationState::new(&spec);
        for (amp, width, is_program) in pulses {
            let pulse = if is_program {
                WritePulse::program(amp, width)
            } else {
                WritePulse::erase(-amp, width)
            };
            p.apply_pulse(&pulse);
            prop_assert!((-1.0..=1.0).contains(&p.polarization()));
        }
        p.apply_pulse(&WritePulse::erase(-4.5, 10_000.0));
        prop_assert_eq!(p.nearest_level(), 0);
    }

    /// The 1FeFET1R clamp bounds every cell current by V/R regardless
    /// of device state or variability.
    #[test]
    fn clamp_is_a_hard_upper_bound(level in 0u8..=1, seed in any::<u64>(), vg in 0.0f64..2.5) {
        let spec = MultiLevelSpec::paper_binary();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cell = FefetCell::sample(&spec, &VariationModel::paper(), &mut rng);
        cell.program(level);
        let i = cell.current(vg, &mut rng);
        // Allow for the multiplicative read-noise factor on top of the
        // series blend (noise can exceed 1 but the blend halves it well
        // below the clamp ceiling for any realistic factor).
        prop_assert!(i <= cell.clamp_current() * 1.5, "current {i:.3e} above clamp");
        prop_assert!(i >= 0.0);
    }

    /// Staircase conduction count equals the stored level for every
    /// level of any well-formed spec.
    #[test]
    fn staircase_counts_levels(pitch in 0.3f64..0.8) {
        let vts: Vec<f64> = (0..5).map(|k| 2.2 - pitch * k as f64).collect();
        let spec = MultiLevelSpec::new(vts, 1e-4, 1e-9, 0.05);
        let stair = hycim_fefet::StaircasePulse::for_spec(&spec, 10.0);
        for level in 0..=spec.max_level() {
            let vt = spec.threshold(level);
            let conducting = stair.iter().filter(|&(_, v)| v > vt).count();
            prop_assert_eq!(conducting, usize::from(level));
        }
    }
}
