use std::fmt;

use rand::Rng;

use crate::{DeviceError, VariationModel};

/// Specification of a multi-level FeFET: per-level threshold voltages
/// and the read voltages that discriminate them (paper Fig. 2(a,b),
/// Fig. 4(b)).
///
/// Levels are ordered by stored value: level 0 is the erased (high-Vt,
/// never conducting) state; higher levels have progressively *lower*
/// thresholds, so read voltage `Vread_j` (which sits between the
/// thresholds of levels `j−1` and `j`) turns ON exactly the cells
/// storing level ≥ `j`.
///
/// # Example
///
/// ```
/// use hycim_fefet::MultiLevelSpec;
///
/// let spec = MultiLevelSpec::paper_filter();
/// assert_eq!(spec.max_level(), 4);
/// // Read voltages decrease with index: Vread1 > Vread4.
/// assert!(spec.read_voltage(1) > spec.read_voltage(4));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MultiLevelSpec {
    /// Threshold voltage of each level, index = stored level.
    /// Strictly decreasing.
    vt_levels: Vec<f64>,
    /// ON current at strong inversion (A). The paper's devices reach
    /// ~10⁻⁴ A (Fig. 2(b)); the 1FeFET1R clamp later regulates this.
    i_on: f64,
    /// OFF / leakage current (A), ~10⁻⁹ A in Fig. 2(b).
    i_off: f64,
    /// Logistic transition width (V) of the I_D–V_G characteristic —
    /// wider means a softer subthreshold slope.
    transition_width: f64,
    /// Maximum safe gate voltage (V).
    vg_limit: f64,
}

impl MultiLevelSpec {
    /// The 5-level device used by the inequality filter (weights 0..=4
    /// per cell, four read voltages; paper Sec 3.3, Fig. 4(b)).
    ///
    /// Threshold spacing and current range follow the measured curves
    /// of Fig. 2(b): thresholds span ~0.2–2.2 V, currents 1 nA–100 µA,
    /// VDD = 2 V.
    pub fn paper_filter() -> Self {
        Self {
            // Level:      0     1     2     3     4
            vt_levels: vec![2.2, 1.7, 1.2, 0.7, 0.2],
            i_on: 1.0e-4,
            i_off: 1.0e-9,
            transition_width: 0.06,
            vg_limit: 4.0,
        }
    }

    /// The binary (2-level) device used by the QUBO crossbar cells
    /// (1 bit per 1FeFET1R cell; paper Sec 3.4, Fig. 6(a)).
    pub fn paper_binary() -> Self {
        Self {
            vt_levels: vec![2.2, 0.7],
            i_on: 1.0e-4,
            i_off: 1.0e-9,
            transition_width: 0.06,
            vg_limit: 4.0,
        }
    }

    /// Creates a custom specification.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two levels are given, thresholds are not
    /// strictly decreasing, or currents are not positive with
    /// `i_on > i_off`.
    pub fn new(vt_levels: Vec<f64>, i_on: f64, i_off: f64, transition_width: f64) -> Self {
        assert!(vt_levels.len() >= 2, "need at least two levels");
        assert!(
            vt_levels.windows(2).all(|w| w[0] > w[1]),
            "thresholds must strictly decrease with level"
        );
        assert!(i_on > i_off && i_off > 0.0, "need i_on > i_off > 0");
        assert!(transition_width > 0.0, "transition width must be positive");
        let vg_limit = vt_levels[0] + 2.0;
        Self {
            vt_levels,
            i_on,
            i_off,
            transition_width,
            vg_limit,
        }
    }

    /// Highest storable level (`number of levels − 1`).
    pub fn max_level(&self) -> u8 {
        (self.vt_levels.len() - 1) as u8
    }

    /// Nominal threshold voltage of `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` exceeds [`max_level`](Self::max_level).
    pub fn threshold(&self, level: u8) -> f64 {
        self.vt_levels[usize::from(level)]
    }

    /// ON current at strong inversion (A).
    pub fn i_on(&self) -> f64 {
        self.i_on
    }

    /// OFF current (A).
    pub fn i_off(&self) -> f64 {
        self.i_off
    }

    /// Maximum safe gate voltage (V).
    pub fn vg_limit(&self) -> f64 {
        self.vg_limit
    }

    /// Read voltage `Vread_j` for `j in 1..=max_level()`: the midpoint
    /// between the thresholds of levels `j−1` and `j`, so it turns ON
    /// exactly the cells storing level ≥ `j` (paper Fig. 4(b)).
    ///
    /// # Panics
    ///
    /// Panics if `j == 0` or `j > max_level()`.
    pub fn read_voltage(&self, j: u8) -> f64 {
        assert!(
            j >= 1 && j <= self.max_level(),
            "read index {j} outside 1..={}",
            self.max_level()
        );
        let hi = self.vt_levels[usize::from(j) - 1];
        let lo = self.vt_levels[usize::from(j)];
        (hi + lo) / 2.0
    }

    /// All read voltages `Vread_1 ..= Vread_max`, highest first.
    pub fn read_voltages(&self) -> Vec<f64> {
        (1..=self.max_level())
            .map(|j| self.read_voltage(j))
            .collect()
    }
}

impl fmt::Display for MultiLevelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MultiLevelSpec({} levels, Vt {:.2}..{:.2} V, Ion {:.1e} A)",
            self.vt_levels.len(),
            self.vt_levels[0],
            self.vt_levels[self.vt_levels.len() - 1],
            self.i_on
        )
    }
}

/// One FeFET device instance: a sampled threshold-voltage offset
/// (device-to-device variation) plus the currently programmed level.
///
/// The transfer characteristic is a logistic ramp between `i_off` and
/// `i_on` centered on the level's threshold — a standard behavioral
/// stand-in for the measured I_D–V_G curves of Fig. 2(b).
#[derive(Debug, Clone, PartialEq)]
pub struct FefetDevice {
    spec: MultiLevelSpec,
    variation: VariationModel,
    /// Fixed device-to-device Vt offset sampled at fabrication (V).
    vt_offset: f64,
    level: u8,
}

impl FefetDevice {
    /// Fabricates a device: samples its device-to-device Vt offset
    /// from `variation` using `rng`. Starts erased (level 0).
    pub fn sample<R: Rng + ?Sized>(
        spec: &MultiLevelSpec,
        variation: &VariationModel,
        rng: &mut R,
    ) -> Self {
        Self {
            spec: spec.clone(),
            variation: variation.clone(),
            vt_offset: variation.sample_d2d_offset(rng),
            level: 0,
        }
    }

    /// An ideal (variation-free) device, for noise-free reference runs.
    pub fn ideal(spec: &MultiLevelSpec) -> Self {
        Self {
            spec: spec.clone(),
            variation: VariationModel::none(),
            vt_offset: 0.0,
            level: 0,
        }
    }

    /// Device specification.
    pub fn spec(&self) -> &MultiLevelSpec {
        &self.spec
    }

    /// Currently programmed level.
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Programs the device to `level` (idealized write; the
    /// pulse-accurate path goes through [`crate::preisach`]).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::LevelOutOfRange`] if the level is not
    /// supported.
    pub fn try_program(&mut self, level: u8) -> Result<(), DeviceError> {
        if level > self.spec.max_level() {
            return Err(DeviceError::LevelOutOfRange {
                level,
                max_level: self.spec.max_level(),
            });
        }
        self.level = level;
        Ok(())
    }

    /// Programs the device to `level`.
    ///
    /// # Panics
    ///
    /// Panics if the level is not supported; use
    /// [`try_program`](Self::try_program) for a fallible variant.
    pub fn program(&mut self, level: u8) {
        self.try_program(level).expect("level within device range");
    }

    /// Erases the device back to level 0.
    pub fn erase(&mut self) {
        self.level = 0;
    }

    /// Effective threshold voltage: nominal level threshold plus the
    /// device's fixed offset.
    pub fn effective_threshold(&self) -> f64 {
        self.spec.threshold(self.level) + self.vt_offset
    }

    /// Drain current at gate voltage `vg` (A), including
    /// cycle-to-cycle read noise drawn from `rng`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::VoltageOutOfRange`] if `vg` exceeds the
    /// safe gate limit.
    pub fn try_drain_current<R: Rng + ?Sized>(
        &self,
        vg: f64,
        rng: &mut R,
    ) -> Result<f64, DeviceError> {
        if vg.abs() > self.spec.vg_limit() {
            return Err(DeviceError::VoltageOutOfRange {
                voltage: vg,
                limit: self.spec.vg_limit(),
            });
        }
        let vt = self.effective_threshold() + self.variation.sample_c2c_shift(rng);
        // Logistic I_D–V_G in log-current space: interpolate the
        // exponent between log(i_off) and log(i_on) so the subthreshold
        // region decays exponentially like a real transfer curve.
        let s = 1.0 / (1.0 + (-(vg - vt) / self.spec.transition_width).exp());
        let log_i = self.spec.i_off().ln() * (1.0 - s) + self.spec.i_on().ln() * s;
        let noise = self.variation.sample_current_factor(rng);
        Ok(log_i.exp() * noise)
    }

    /// Drain current at gate voltage `vg` (A).
    ///
    /// # Panics
    ///
    /// Panics if `vg` exceeds the safe gate limit.
    pub fn drain_current<R: Rng + ?Sized>(&self, vg: f64, rng: &mut R) -> f64 {
        self.try_drain_current(vg, rng)
            .expect("gate voltage within safe range")
    }

    /// Whether the device conducts (current above the geometric mean of
    /// ON and OFF currents) at gate voltage `vg`.
    ///
    /// # Panics
    ///
    /// Panics if `vg` exceeds the safe gate limit.
    pub fn is_on<R: Rng + ?Sized>(&self, vg: f64, rng: &mut R) -> bool {
        let mid = (self.spec.i_on().ln() + self.spec.i_off().ln()) / 2.0;
        self.drain_current(vg, rng) > mid.exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_filter_spec_shape() {
        let spec = MultiLevelSpec::paper_filter();
        assert_eq!(spec.max_level(), 4);
        // Read voltages strictly decrease with index (staircase goes
        // from Vread4 up to Vread1; paper Fig. 4(c)).
        let v = spec.read_voltages();
        assert!(v.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn read_voltage_separates_levels() {
        let spec = MultiLevelSpec::paper_filter();
        for j in 1..=4u8 {
            let vread = spec.read_voltage(j);
            for level in 0..=4u8 {
                let conducts = vread > spec.threshold(level);
                assert_eq!(
                    conducts,
                    level >= j,
                    "Vread{j} vs level {level}: expected on iff level >= j"
                );
            }
        }
    }

    #[test]
    fn multilevel_currents_are_ordered() {
        // A fixed Vg between thresholds: higher level → more current.
        let spec = MultiLevelSpec::paper_filter();
        let mut rng = StdRng::seed_from_u64(3);
        let mut dev = FefetDevice::ideal(&spec);
        let vg = 1.0;
        let mut last = 0.0;
        for level in 0..=4u8 {
            dev.program(level);
            let i = dev.drain_current(vg, &mut rng);
            assert!(i >= last, "current not monotone at level {level}");
            last = i;
        }
    }

    #[test]
    fn ideal_device_on_off_contrast() {
        let spec = MultiLevelSpec::paper_binary();
        let mut rng = StdRng::seed_from_u64(4);
        let mut dev = FefetDevice::ideal(&spec);
        dev.program(1);
        let i_on = dev.drain_current(1.95, &mut rng); // Vread1
        dev.erase();
        let i_off = dev.drain_current(1.95, &mut rng);
        assert!(
            i_on / i_off > 1e3,
            "ON/OFF ratio too small: {i_on:.2e}/{i_off:.2e}"
        );
    }

    #[test]
    fn program_validates_level() {
        let spec = MultiLevelSpec::paper_binary();
        let mut dev = FefetDevice::ideal(&spec);
        assert!(matches!(
            dev.try_program(5),
            Err(DeviceError::LevelOutOfRange {
                level: 5,
                max_level: 1
            })
        ));
        assert!(dev.try_program(1).is_ok());
        assert_eq!(dev.level(), 1);
    }

    #[test]
    fn voltage_limit_enforced() {
        let spec = MultiLevelSpec::paper_filter();
        let dev = FefetDevice::ideal(&spec);
        let mut rng = StdRng::seed_from_u64(5);
        assert!(matches!(
            dev.try_drain_current(9.0, &mut rng),
            Err(DeviceError::VoltageOutOfRange { .. })
        ));
    }

    #[test]
    fn d2d_variation_spreads_thresholds() {
        let spec = MultiLevelSpec::paper_filter();
        let variation = VariationModel::default();
        let mut rng = StdRng::seed_from_u64(6);
        let offsets: Vec<f64> = (0..60)
            .map(|_| FefetDevice::sample(&spec, &variation, &mut rng).vt_offset)
            .collect();
        let mean = offsets.iter().sum::<f64>() / offsets.len() as f64;
        let var = offsets.iter().map(|o| (o - mean).powi(2)).sum::<f64>() / offsets.len() as f64;
        assert!(var.sqrt() > 0.0, "no device-to-device spread");
        assert!(mean.abs() < 0.05, "offset mean too far from zero: {mean}");
    }

    #[test]
    #[should_panic(expected = "strictly decrease")]
    fn spec_rejects_unordered_thresholds() {
        let _ = MultiLevelSpec::new(vec![1.0, 1.5], 1e-4, 1e-9, 0.06);
    }

    #[test]
    fn display_mentions_levels() {
        assert!(MultiLevelSpec::paper_filter()
            .to_string()
            .contains("5 levels"));
    }
}
