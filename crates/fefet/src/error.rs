use std::error::Error;
use std::fmt;

/// Errors produced by the device substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DeviceError {
    /// A storage level outside the device's supported range was requested.
    LevelOutOfRange {
        /// Requested level.
        level: u8,
        /// Highest level the device supports.
        max_level: u8,
    },
    /// A voltage outside the safe operating range was requested.
    VoltageOutOfRange {
        /// Requested voltage in volts.
        voltage: f64,
        /// Maximum safe voltage in volts.
        limit: f64,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::LevelOutOfRange { level, max_level } => {
                write!(
                    f,
                    "storage level {level} exceeds device maximum {max_level}"
                )
            }
            DeviceError::VoltageOutOfRange { voltage, limit } => {
                write!(f, "voltage {voltage} V exceeds safe limit {limit} V")
            }
        }
    }
}

impl Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = DeviceError::LevelOutOfRange {
            level: 9,
            max_level: 4,
        };
        assert!(e.to_string().contains("level 9"));
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<DeviceError>();
    }
}
