//! Simplified Preisach-style ferroelectric polarization model.
//!
//! The paper simulates FeFETs with the circuit-compatible Preisach
//! compact model of Ni et al. \[26\]. For the solver, what matters is
//! the *map from write pulses to threshold voltage*: positive gate
//! pulses progressively polarize the ferroelectric (lowering Vt),
//! negative pulses depolarize it (raising Vt), with saturation and
//! history dependence. This module captures that with a scalar
//! polarization state driven by a tanh saturation law — a standard
//! reduced-order Preisach surrogate.
//!
//! # Example
//!
//! ```
//! use hycim_fefet::preisach::PolarizationState;
//! use hycim_fefet::{MultiLevelSpec, WritePulse};
//!
//! let spec = MultiLevelSpec::paper_filter();
//! let mut p = PolarizationState::new(&spec);
//! // A strong program pulse drives the device toward the lowest-Vt level.
//! p.apply_pulse(&WritePulse::program(4.0, 1000.0));
//! assert_eq!(p.nearest_level(), spec.max_level());
//! // A strong erase pulse resets it.
//! p.apply_pulse(&WritePulse::erase(-4.0, 1000.0));
//! assert_eq!(p.nearest_level(), 0);
//! ```

use crate::{MultiLevelSpec, WritePulse};

/// Scalar polarization state of one FeFET's ferroelectric layer,
/// normalized to `[-1, +1]` (−1 = fully erased / highest Vt, +1 =
/// fully programmed / lowest Vt).
#[derive(Debug, Clone, PartialEq)]
pub struct PolarizationState {
    /// Normalized remanent polarization in [-1, 1].
    p: f64,
    /// Vt at p = −1 (erased).
    vt_high: f64,
    /// Vt at p = +1 (fully programmed).
    vt_low: f64,
    /// Coercive voltage: pulses below this amplitude barely move P.
    v_coercive: f64,
    /// Time constant (ns) of the switching dynamics at 2× coercive
    /// voltage.
    tau_ns: f64,
}

impl PolarizationState {
    /// Initializes an erased device whose polarization range spans the
    /// spec's threshold range.
    pub fn new(spec: &MultiLevelSpec) -> Self {
        Self {
            p: -1.0,
            vt_high: spec.threshold(0),
            vt_low: spec.threshold(spec.max_level()),
            v_coercive: 1.0,
            tau_ns: 50.0,
        }
    }

    /// Normalized polarization in `[-1, 1]`.
    pub fn polarization(&self) -> f64 {
        self.p
    }

    /// Threshold voltage implied by the current polarization: linear
    /// interpolation between the erased and programmed extremes.
    pub fn threshold_voltage(&self) -> f64 {
        let t = (self.p + 1.0) / 2.0;
        self.vt_high + t * (self.vt_low - self.vt_high)
    }

    /// The discrete storage level whose nominal threshold is closest
    /// to the current analog threshold, given `levels` evenly spanning
    /// the Vt range.
    pub fn nearest_level(&self) -> u8 {
        // Levels are evenly spaced in Vt between vt_high (level 0) and
        // vt_low (max level); the polarization fraction maps directly.
        let t = (self.p + 1.0) / 2.0;
        // Number of levels is implied by construction via spec; since
        // t ∈ [0, 1], quantize to the nearest of the evenly spaced
        // points {0, 1/(L-1), ..., 1}.
        (t * f64::from(self.num_levels() - 1)).round() as u8
    }

    fn num_levels(&self) -> u8 {
        // Reconstructed from the Vt extremes assuming the paper's
        // 0.5 V level pitch; falls back to 2 for degenerate ranges.
        let span = (self.vt_high - self.vt_low).abs();
        ((span / 0.5).round() as u8 + 1).max(2)
    }

    /// Applies one write pulse. Positive amplitudes polarize toward
    /// +1 (program), negative toward −1 (erase). Sub-coercive pulses
    /// have exponentially suppressed effect; longer pulses and larger
    /// overdrive move the state further (tanh saturation, no
    /// overshoot).
    pub fn apply_pulse(&mut self, pulse: &WritePulse) {
        let v = pulse.amplitude();
        let width = pulse.width_ns();
        let target = if v >= 0.0 { 1.0 } else { -1.0 };
        let overdrive = (v.abs() / self.v_coercive) - 1.0;
        if overdrive <= 0.0 {
            // Sub-coercive: negligible switching.
            return;
        }
        // First-order relaxation toward the saturated state with a
        // voltage-accelerated rate (merged Preisach branch).
        let rate = overdrive * width / self.tau_ns;
        let step = 1.0 - (-rate).exp();
        self.p += (target - self.p) * step;
        self.p = self.p.clamp(-1.0, 1.0);
    }

    /// Applies the canonical pulse train that programs the device to
    /// `level`: a saturating erase followed by a partial program pulse
    /// whose width is tuned to land on the level (paper Fig. 2(a):
    /// "applying different write pulses").
    ///
    /// # Panics
    ///
    /// Panics if `level` is not representable in the device's range.
    pub fn program_level(&mut self, level: u8, spec: &MultiLevelSpec) {
        assert!(level <= spec.max_level(), "level out of range");
        // Full erase establishes a known branch.
        self.apply_pulse(&WritePulse::erase(-4.0, 2000.0));
        if level == 0 {
            return;
        }
        // Solve the relaxation equation for the width that reaches the
        // target polarization p* from p = −1:
        //   p* = −1 + 2·(1 − exp(−overdrive·w/τ))
        let t = f64::from(level) / f64::from(spec.max_level());
        let target_p = -1.0 + 2.0 * t;
        let amplitude = 4.0_f64;
        let overdrive = amplitude / self.v_coercive - 1.0;
        let step_needed = (target_p + 1.0) / 2.0;
        let width = if step_needed >= 1.0 {
            5000.0
        } else {
            -(1.0 - step_needed).ln() * self.tau_ns / overdrive
        };
        self.apply_pulse(&WritePulse::program(amplitude, width));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> MultiLevelSpec {
        MultiLevelSpec::paper_filter()
    }

    #[test]
    fn starts_erased() {
        let p = PolarizationState::new(&spec());
        assert_eq!(p.polarization(), -1.0);
        assert_eq!(p.nearest_level(), 0);
        assert!((p.threshold_voltage() - spec().threshold(0)).abs() < 1e-12);
    }

    #[test]
    fn saturating_program_reaches_max_level() {
        let mut p = PolarizationState::new(&spec());
        p.apply_pulse(&WritePulse::program(4.0, 5000.0));
        assert!(p.polarization() > 0.99);
        assert_eq!(p.nearest_level(), 4);
    }

    #[test]
    fn sub_coercive_pulse_is_inert() {
        let mut p = PolarizationState::new(&spec());
        let before = p.polarization();
        p.apply_pulse(&WritePulse::program(0.5, 1000.0));
        assert_eq!(p.polarization(), before);
    }

    #[test]
    fn longer_pulses_switch_more() {
        let mut short = PolarizationState::new(&spec());
        let mut long = PolarizationState::new(&spec());
        short.apply_pulse(&WritePulse::program(2.0, 10.0));
        long.apply_pulse(&WritePulse::program(2.0, 100.0));
        assert!(long.polarization() > short.polarization());
    }

    #[test]
    fn higher_amplitude_switches_more() {
        let mut weak = PolarizationState::new(&spec());
        let mut strong = PolarizationState::new(&spec());
        weak.apply_pulse(&WritePulse::program(1.5, 50.0));
        strong.apply_pulse(&WritePulse::program(3.5, 50.0));
        assert!(strong.polarization() > weak.polarization());
    }

    #[test]
    fn program_level_hits_every_level() {
        let spec = spec();
        for level in 0..=spec.max_level() {
            let mut p = PolarizationState::new(&spec);
            p.program_level(level, &spec);
            assert_eq!(p.nearest_level(), level, "missed level {level}");
        }
    }

    #[test]
    fn program_level_threshold_tracks_spec() {
        let spec = spec();
        for level in 0..=spec.max_level() {
            let mut p = PolarizationState::new(&spec);
            p.program_level(level, &spec);
            let err = (p.threshold_voltage() - spec.threshold(level)).abs();
            assert!(err < 0.15, "level {level} Vt error {err}");
        }
    }

    #[test]
    fn hysteresis_is_history_dependent() {
        // Same final pulse, different histories → different states.
        let mut a = PolarizationState::new(&spec());
        let mut b = PolarizationState::new(&spec());
        a.apply_pulse(&WritePulse::program(4.0, 5000.0)); // saturate first
        let pulse = WritePulse::program(2.0, 30.0);
        a.apply_pulse(&pulse);
        b.apply_pulse(&pulse);
        assert!(a.polarization() > b.polarization());
    }

    #[test]
    fn erase_resets() {
        let mut p = PolarizationState::new(&spec());
        p.apply_pulse(&WritePulse::program(4.0, 5000.0));
        p.apply_pulse(&WritePulse::erase(-4.0, 5000.0));
        assert!(p.polarization() < -0.99);
        assert_eq!(p.nearest_level(), 0);
    }
}
