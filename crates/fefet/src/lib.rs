//! Behavioral FeFET device substrate for the HyCiM reproduction.
//!
//! The paper's circuits (Sec 2.2, Fig. 2) rest on three device
//! properties, all modeled here:
//!
//! 1. **Multi-level storage** — different write pulses program
//!    different threshold voltages, giving the multi-level I_D–V_G
//!    curves of Fig. 2(b). Modeled by [`MultiLevelSpec`] +
//!    [`FefetDevice`] with a logistic transfer characteristic.
//! 2. **Hysteretic programming** — a simplified Preisach-style
//!    polarization model ([`preisach`]) maps program/erase pulses to
//!    threshold-voltage shifts, as in the compact model the paper
//!    simulates with \[26\].
//! 3. **Single-transistor multiplication** — with a binary bit `q`
//!    stored, drain current realizes `i = x · q · y` when `x` drives
//!    the gate and `y` the drain (Fig. 2(c)). See
//!    [`FefetCell::multiply`].
//!
//! Device-to-device and cycle-to-cycle variability (the spread across
//! the 60 measured devices in Fig. 2(b)) is modeled by
//! [`VariationModel`] and propagates into every read. Threshold-voltage
//! drift over time — the stored levels slowly relaxing toward each
//! other — is modeled separately in [`retention`], bounding how long a
//! programmed constraint stays accurate without a refresh. The 1FeFET1R
//! current clamp the paper uses to regulate ON current (Fig. 4(a,b),
//! \[24, 25\]) is modeled by [`FefetCell`].
//!
//! # Example
//!
//! A cell programmed to level 3 conducts under `Vread_j` exactly when
//! `j ≤ 3` (lower read indices use higher voltages — see
//! [`MultiLevelSpec::read_voltage`]):
//!
//! ```
//! use hycim_fefet::{FefetCell, MultiLevelSpec, VariationModel};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let spec = MultiLevelSpec::paper_filter();
//! let mut rng = StdRng::seed_from_u64(1);
//! let mut cell = FefetCell::sample(&spec, &VariationModel::default(), &mut rng);
//! cell.program(3);
//! assert!(cell.is_on(spec.read_voltage(3), &mut rng));
//! assert!(cell.is_on(spec.read_voltage(1), &mut rng));
//! assert!(!cell.is_on(spec.read_voltage(4), &mut rng));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cell;
mod device;
mod error;
pub mod preisach;
mod pulse;
pub mod retention;
mod variability;

pub use cell::FefetCell;
pub use device::{FefetDevice, MultiLevelSpec};
pub use error::DeviceError;
pub use pulse::{StaircasePulse, WritePulse};
pub use variability::VariationModel;
