//! Retention / threshold-voltage drift — an extension beyond the
//! paper's evaluation window.
//!
//! FeFET remanent polarization decays logarithmically with time
//! (standard depolarization-field behavior), shifting each level's
//! threshold toward the erased state. The paper reprograms the chip
//! per measurement (Fig. 7(f)), implicitly avoiding retention effects;
//! this module makes the effect explicit so the ablation benches can
//! ask *how long a programmed problem instance remains solvable*
//! without a refresh.

use crate::MultiLevelSpec;

/// Logarithmic retention model: after `t` seconds, a programmed
/// level's threshold shifts toward the erased threshold by
/// `drift_per_decade × log₁₀(1 + t/t₀)` volts.
///
/// # Example
///
/// ```
/// use hycim_fefet::retention::RetentionModel;
/// use hycim_fefet::MultiLevelSpec;
///
/// let spec = MultiLevelSpec::paper_filter();
/// let model = RetentionModel::paper();
/// // Fresh device: no shift.
/// assert_eq!(model.vt_shift(0.0), 0.0);
/// // After 10 years the shift is still below one level pitch (0.5 V),
/// // so the stored weight remains readable.
/// let ten_years = 10.0 * 365.25 * 86_400.0;
/// assert!(model.vt_shift(ten_years) < 0.5);
/// assert!(model.is_level_readable(&spec, ten_years));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RetentionModel {
    /// Vt drift per decade of time (V/decade).
    drift_per_decade: f64,
    /// Reference time t₀ (s) below which no drift accumulates.
    t0: f64,
}

impl RetentionModel {
    /// Typical 28 nm HKMG FeFET retention: ~20 mV/decade from a 1 s
    /// reference — extrapolating to < 0.2 V shift at 10 years, matching
    /// the ">10 year retention" usually quoted for these devices.
    pub fn paper() -> Self {
        Self {
            drift_per_decade: 0.020,
            t0: 1.0,
        }
    }

    /// Custom model.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is non-positive.
    pub fn new(drift_per_decade: f64, t0: f64) -> Self {
        assert!(drift_per_decade > 0.0, "drift must be positive");
        assert!(t0 > 0.0, "reference time must be positive");
        Self {
            drift_per_decade,
            t0,
        }
    }

    /// Threshold shift (V, toward erased) after `seconds` of
    /// retention.
    pub fn vt_shift(&self, seconds: f64) -> f64 {
        if seconds <= 0.0 {
            return 0.0;
        }
        self.drift_per_decade * (1.0 + seconds / self.t0).log10()
    }

    /// Whether every programmed level of `spec` is still read
    /// correctly after `seconds`: the drifted threshold must not cross
    /// the read voltage that separates it from the next-lower level
    /// (drift raises Vt toward erased, so level `k` fails once
    /// `Vt(k) + shift > Vread_k`).
    pub fn is_level_readable(&self, spec: &MultiLevelSpec, seconds: f64) -> bool {
        let shift = self.vt_shift(seconds);
        (1..=spec.max_level()).all(|k| spec.threshold(k) + shift < spec.read_voltage(k))
    }

    /// The retention time (s) at which the first level becomes
    /// unreadable, by bisection over the log-time axis. Returns
    /// `f64::INFINITY` if no failure occurs within 100 years.
    pub fn failure_time(&self, spec: &MultiLevelSpec) -> f64 {
        const CENTURY: f64 = 100.0 * 365.25 * 86_400.0;
        if self.is_level_readable(spec, CENTURY) {
            return f64::INFINITY;
        }
        let (mut lo, mut hi) = (0.0_f64, CENTURY);
        for _ in 0..200 {
            let mid = (lo + hi) / 2.0;
            if self.is_level_readable(spec, mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        hi
    }
}

impl Default for RetentionModel {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_is_monotone_in_time() {
        let m = RetentionModel::paper();
        assert!(m.vt_shift(10.0) > m.vt_shift(1.0));
        assert!(m.vt_shift(1e6) > m.vt_shift(1e3));
        assert_eq!(m.vt_shift(-5.0), 0.0);
    }

    #[test]
    fn logarithmic_shape() {
        // Equal shifts per decade.
        let m = RetentionModel::new(0.05, 1.0);
        let d1 = m.vt_shift(1e3) - m.vt_shift(1e2);
        let d2 = m.vt_shift(1e6) - m.vt_shift(1e5);
        assert!((d1 - d2).abs() < 1e-3, "decades differ: {d1} vs {d2}");
    }

    #[test]
    fn paper_devices_retain_ten_years() {
        let spec = MultiLevelSpec::paper_filter();
        let m = RetentionModel::paper();
        let ten_years = 10.0 * 365.25 * 86_400.0;
        assert!(m.is_level_readable(&spec, ten_years));
        assert!(m.failure_time(&spec).is_infinite());
    }

    #[test]
    fn aggressive_drift_fails_and_bisection_finds_it() {
        let spec = MultiLevelSpec::paper_filter();
        // 100 mV/decade: fails within years.
        let m = RetentionModel::new(0.1, 1.0);
        let t_fail = m.failure_time(&spec);
        assert!(t_fail.is_finite());
        assert!(m.is_level_readable(&spec, t_fail * 0.99));
        assert!(!m.is_level_readable(&spec, t_fail * 1.01));
    }

    #[test]
    #[should_panic(expected = "drift")]
    fn rejects_non_positive_drift() {
        let _ = RetentionModel::new(0.0, 1.0);
    }
}
