use std::fmt;

use crate::MultiLevelSpec;

/// A gate write pulse: amplitude (V, sign selects program vs erase)
/// and width (ns). See paper Fig. 2(a).
///
/// # Example
///
/// ```
/// use hycim_fefet::WritePulse;
///
/// let p = WritePulse::program(4.0, 100.0);
/// assert!(p.is_program());
/// let e = WritePulse::erase(-4.0, 100.0);
/// assert!(!e.is_program());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WritePulse {
    amplitude: f64,
    width_ns: f64,
}

impl WritePulse {
    /// A program pulse (positive amplitude).
    ///
    /// # Panics
    ///
    /// Panics if `amplitude <= 0` or `width_ns <= 0`.
    pub fn program(amplitude: f64, width_ns: f64) -> Self {
        assert!(amplitude > 0.0, "program pulses need positive amplitude");
        assert!(width_ns > 0.0, "pulse width must be positive");
        Self {
            amplitude,
            width_ns,
        }
    }

    /// An erase pulse (negative amplitude).
    ///
    /// # Panics
    ///
    /// Panics if `amplitude >= 0` or `width_ns <= 0`.
    pub fn erase(amplitude: f64, width_ns: f64) -> Self {
        assert!(amplitude < 0.0, "erase pulses need negative amplitude");
        assert!(width_ns > 0.0, "pulse width must be positive");
        Self {
            amplitude,
            width_ns,
        }
    }

    /// Pulse amplitude in volts (signed).
    pub fn amplitude(&self) -> f64 {
        self.amplitude
    }

    /// Pulse width in nanoseconds.
    pub fn width_ns(&self) -> f64 {
        self.width_ns
    }

    /// Whether this is a program (positive) pulse.
    pub fn is_program(&self) -> bool {
        self.amplitude > 0.0
    }
}

impl fmt::Display for WritePulse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} pulse {:.2} V / {:.0} ns",
            if self.is_program() {
                "program"
            } else {
                "erase"
            },
            self.amplitude,
            self.width_ns
        )
    }
}

/// The multi-phase staircase read pulse of the inequality filter
/// (paper Fig. 4(c)): phase `t` (0-based) applies `Vread_{L−t}`,
/// rising from the lowest read voltage (`Vread_L`, selecting only the
/// highest stored level) to the highest (`Vread_1`, selecting every
/// nonzero level). A cell storing level `k` therefore conducts in
/// exactly `k` phases, which is what makes the matchline discharge
/// proportional to the stored weight (paper Eq. 7–8).
///
/// # Example
///
/// ```
/// use hycim_fefet::{MultiLevelSpec, StaircasePulse};
///
/// let spec = MultiLevelSpec::paper_filter();
/// let stair = StaircasePulse::for_spec(&spec, 10.0);
/// assert_eq!(stair.num_phases(), 4);
/// // Amplitude rises phase by phase.
/// assert!(stair.phase_voltage(3) > stair.phase_voltage(0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StaircasePulse {
    /// Voltage applied in each phase, ascending.
    phase_voltages: Vec<f64>,
    /// Duration of each phase (ns).
    phase_width_ns: f64,
}

impl StaircasePulse {
    /// Builds the staircase matching a device spec: one phase per read
    /// voltage, ascending (`Vread_L` first, `Vread_1` last).
    ///
    /// # Panics
    ///
    /// Panics if `phase_width_ns <= 0`.
    pub fn for_spec(spec: &MultiLevelSpec, phase_width_ns: f64) -> Self {
        assert!(phase_width_ns > 0.0, "phase width must be positive");
        let mut v = spec.read_voltages(); // Vread_1 (highest) .. Vread_L (lowest)
        v.reverse(); // ascend: Vread_L .. Vread_1
        Self {
            phase_voltages: v,
            phase_width_ns,
        }
    }

    /// Builds a custom staircase.
    ///
    /// # Panics
    ///
    /// Panics if the voltages are not strictly ascending or the width
    /// is not positive.
    pub fn new(phase_voltages: Vec<f64>, phase_width_ns: f64) -> Self {
        assert!(!phase_voltages.is_empty(), "need at least one phase");
        assert!(
            phase_voltages.windows(2).all(|w| w[0] < w[1]),
            "staircase must ascend"
        );
        assert!(phase_width_ns > 0.0, "phase width must be positive");
        Self {
            phase_voltages,
            phase_width_ns,
        }
    }

    /// Number of phases.
    pub fn num_phases(&self) -> usize {
        self.phase_voltages.len()
    }

    /// Gate voltage applied during phase `t` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `t >= self.num_phases()`.
    pub fn phase_voltage(&self, t: usize) -> f64 {
        self.phase_voltages[t]
    }

    /// Duration of each phase in nanoseconds.
    pub fn phase_width_ns(&self) -> f64 {
        self.phase_width_ns
    }

    /// Iterates over `(phase_index, voltage)` pairs in time order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.phase_voltages.iter().copied().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staircase_matches_spec_read_voltages() {
        let spec = MultiLevelSpec::paper_filter();
        let stair = StaircasePulse::for_spec(&spec, 5.0);
        assert_eq!(stair.num_phases(), 4);
        // Phase 0 applies Vread_4 (lowest), phase 3 applies Vread_1.
        assert!((stair.phase_voltage(0) - spec.read_voltage(4)).abs() < 1e-12);
        assert!((stair.phase_voltage(3) - spec.read_voltage(1)).abs() < 1e-12);
    }

    #[test]
    fn conduction_count_equals_stored_level() {
        // The core staircase property behind ML ∝ −wᵢxᵢ (Eq. 8).
        let spec = MultiLevelSpec::paper_filter();
        let stair = StaircasePulse::for_spec(&spec, 5.0);
        for level in 0..=4u8 {
            let vt = spec.threshold(level);
            let conducting = stair.iter().filter(|&(_, v)| v > vt).count();
            assert_eq!(conducting, usize::from(level), "level {level}");
        }
    }

    #[test]
    #[should_panic(expected = "ascend")]
    fn rejects_descending_staircase() {
        let _ = StaircasePulse::new(vec![1.0, 0.5], 5.0);
    }

    #[test]
    fn write_pulse_validation() {
        let p = WritePulse::program(3.0, 10.0);
        assert_eq!(p.amplitude(), 3.0);
        assert!(p.to_string().contains("program"));
        let e = WritePulse::erase(-3.0, 10.0);
        assert!(e.to_string().contains("erase"));
    }

    #[test]
    #[should_panic(expected = "positive amplitude")]
    fn program_rejects_negative() {
        let _ = WritePulse::program(-1.0, 10.0);
    }
}
