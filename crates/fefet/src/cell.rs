use std::fmt;

use rand::Rng;

use crate::{FefetDevice, MultiLevelSpec, VariationModel};

/// A 1FeFET1R cell: one FeFET in series with a resistor R that clamps
/// the ON current (paper Fig. 4(a)).
///
/// The clamp is the paper's variability-regulation trick (\[24, 25\],
/// Fig. 4(b)): the FeFET's ON current varies device-to-device over
/// orders of magnitude, but in series with R the cell current
/// saturates at ≈ `V_DL / R`, so all ON cells draw nearly identical
/// current — a prerequisite for the matchline voltage being *linear*
/// in the number of conducting cells (Eq. 7) and for the crossbar
/// current being linear in the number of activated cells (Fig. 7(d)).
///
/// # Example
///
/// ```
/// use hycim_fefet::{FefetCell, MultiLevelSpec, VariationModel};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let spec = MultiLevelSpec::paper_binary();
/// let mut rng = StdRng::seed_from_u64(9);
/// let mut cell = FefetCell::sample(&spec, &VariationModel::default(), &mut rng);
/// cell.program(1);
/// // Single-transistor multiplication i = x·q·y (paper Fig. 2(c)):
/// let i = cell.multiply(true, true, &mut rng);
/// assert!(i > 0.0);
/// assert_eq!(cell.multiply(false, true, &mut rng), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FefetCell {
    device: FefetDevice,
    /// Series resistance (Ω).
    resistance: f64,
    /// Drain-line voltage when driven (V). The paper reads at
    /// V_DS = 50 mV (Fig. 2(b)).
    v_drive: f64,
}

impl FefetCell {
    /// Nominal clamped ON current: `v_drive / resistance` with the
    /// defaults below → 2 µA, matching the ~2 µA/cell slope of the
    /// measured crossbar linearity (paper Fig. 7(d): ~64 µA at 32
    /// cells).
    pub const DEFAULT_RESISTANCE: f64 = 25_000.0;
    /// Default drain drive voltage (50 mV, per Fig. 2(b)).
    pub const DEFAULT_DRIVE: f64 = 0.05;

    /// Fabricates a cell with sampled device variability.
    pub fn sample<R: Rng + ?Sized>(
        spec: &MultiLevelSpec,
        variation: &VariationModel,
        rng: &mut R,
    ) -> Self {
        Self {
            device: FefetDevice::sample(spec, variation, rng),
            resistance: Self::DEFAULT_RESISTANCE,
            v_drive: Self::DEFAULT_DRIVE,
        }
    }

    /// An ideal, variation-free cell.
    pub fn ideal(spec: &MultiLevelSpec) -> Self {
        Self {
            device: FefetDevice::ideal(spec),
            resistance: Self::DEFAULT_RESISTANCE,
            v_drive: Self::DEFAULT_DRIVE,
        }
    }

    /// Overrides the series resistance (Ω).
    ///
    /// # Panics
    ///
    /// Panics if `resistance <= 0`.
    pub fn with_resistance(mut self, resistance: f64) -> Self {
        assert!(resistance > 0.0, "resistance must be positive");
        self.resistance = resistance;
        self
    }

    /// Overrides the drain drive voltage (V).
    ///
    /// # Panics
    ///
    /// Panics if `v_drive <= 0`.
    pub fn with_drive(mut self, v_drive: f64) -> Self {
        assert!(v_drive > 0.0, "drive voltage must be positive");
        self.v_drive = v_drive;
        self
    }

    /// The underlying FeFET.
    pub fn device(&self) -> &FefetDevice {
        &self.device
    }

    /// Currently stored level.
    pub fn level(&self) -> u8 {
        self.device.level()
    }

    /// Programs the stored level.
    ///
    /// # Panics
    ///
    /// Panics if `level` exceeds the device's range.
    pub fn program(&mut self, level: u8) {
        self.device.program(level);
    }

    /// Erases to level 0.
    pub fn erase(&mut self) {
        self.device.erase();
    }

    /// Nominal clamped ON current (A).
    pub fn clamp_current(&self) -> f64 {
        self.v_drive / self.resistance
    }

    /// Cell current at gate voltage `vg` (A): the FeFET current
    /// limited by the series-R clamp.
    ///
    /// # Panics
    ///
    /// Panics if `vg` exceeds the device's safe range.
    pub fn current<R: Rng + ?Sized>(&self, vg: f64, rng: &mut R) -> f64 {
        let i_fet = self.device.drain_current(vg, rng);
        // Series R: the cell current cannot exceed V/R; when the FeFET
        // is strongly ON the resistor dominates, compressing
        // variability (paper Fig. 4(b)).
        let i_clamp = self.clamp_current();
        i_fet * i_clamp / (i_fet + i_clamp)
    }

    /// Whether the cell conducts meaningfully (≥ half the clamp
    /// current) at gate voltage `vg`.
    ///
    /// # Panics
    ///
    /// Panics if `vg` exceeds the device's safe range.
    pub fn is_on<R: Rng + ?Sized>(&self, vg: f64, rng: &mut R) -> bool {
        self.current(vg, rng) >= 0.5 * self.clamp_current()
    }

    /// Single-transistor multiplication `i = x · q · y` (paper
    /// Fig. 2(c)): gate input `x`, stored bit `q = level ≥ 1`, drain
    /// input `y`. Returns the drain current (A); exactly `0.0` when
    /// `x` or `y` is 0 (no drive).
    ///
    /// The read gate voltage targets the level-1 read point.
    pub fn multiply<R: Rng + ?Sized>(&self, x: bool, y: bool, rng: &mut R) -> f64 {
        if !x || !y {
            return 0.0;
        }
        let vread = self.device.spec().read_voltage(1);
        self.current(vread, rng)
    }
}

impl fmt::Display for FefetCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FefetCell(level={}, R={:.0} Ω, clamp={:.2e} A)",
            self.level(),
            self.resistance,
            self.clamp_current()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clamp_compresses_on_current_spread() {
        // The Fig. 4(b) effect: raw FeFET ON currents vary widely; the
        // 1FeFET1R cell currents cluster tightly at the clamp value.
        let spec = MultiLevelSpec::paper_binary();
        let variation = VariationModel::new(0.05, 0.01, 0.20); // exaggerated
        let mut rng = StdRng::seed_from_u64(10);
        let vread = spec.read_voltage(1);

        let mut raw = Vec::new();
        let mut clamped = Vec::new();
        for _ in 0..60 {
            let mut cell = FefetCell::sample(&spec, &variation, &mut rng);
            cell.program(1);
            raw.push(cell.device().drain_current(vread, &mut rng));
            clamped.push(cell.current(vread, &mut rng));
        }
        let rel_spread = |xs: &[f64]| {
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            let sd = (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt();
            sd / m
        };
        assert!(
            rel_spread(&clamped) < 0.5 * rel_spread(&raw),
            "clamp failed to compress spread: {} vs {}",
            rel_spread(&clamped),
            rel_spread(&raw)
        );
    }

    #[test]
    fn off_cell_draws_negligible_current() {
        let spec = MultiLevelSpec::paper_binary();
        let cell = FefetCell::ideal(&spec); // erased
        let mut rng = StdRng::seed_from_u64(11);
        let vread = spec.read_voltage(1);
        assert!(cell.current(vread, &mut rng) < 0.01 * cell.clamp_current());
        assert!(!cell.is_on(vread, &mut rng));
    }

    #[test]
    fn multiply_truth_table() {
        let spec = MultiLevelSpec::paper_binary();
        let mut rng = StdRng::seed_from_u64(12);
        let mut cell = FefetCell::ideal(&spec);
        // q = 0: every product is (near) zero.
        for (x, y) in [(false, false), (false, true), (true, false), (true, true)] {
            let i = cell.multiply(x, y, &mut rng);
            if x && y {
                assert!(i < 0.01 * cell.clamp_current(), "q=0 but current {i:.2e}");
            } else {
                assert_eq!(i, 0.0);
            }
        }
        // q = 1: only x=y=1 conducts.
        cell.program(1);
        assert!(cell.multiply(true, true, &mut rng) > 0.5 * cell.clamp_current());
        assert_eq!(cell.multiply(true, false, &mut rng), 0.0);
        assert_eq!(cell.multiply(false, true, &mut rng), 0.0);
    }

    #[test]
    fn default_clamp_is_two_microamps() {
        let spec = MultiLevelSpec::paper_binary();
        let cell = FefetCell::ideal(&spec);
        assert!((cell.clamp_current() - 2.0e-6).abs() < 1e-12);
    }

    #[test]
    fn builders_validate() {
        let spec = MultiLevelSpec::paper_binary();
        let cell = FefetCell::ideal(&spec)
            .with_resistance(50_000.0)
            .with_drive(0.1);
        assert!((cell.clamp_current() - 2.0e-6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "resistance")]
    fn zero_resistance_rejected() {
        let spec = MultiLevelSpec::paper_binary();
        let _ = FefetCell::ideal(&spec).with_resistance(0.0);
    }
}
