use rand::Rng;

/// Stochastic non-idealities of the FeFET devices: the spread visible
/// across the 60 measured devices of paper Fig. 2(b).
///
/// Three components, all Gaussian and independently sampled:
///
/// * **device-to-device** threshold offset, fixed per device at
///   fabrication;
/// * **cycle-to-cycle** threshold shift, redrawn at every read;
/// * **relative current noise**, a multiplicative log-normal-ish
///   factor `max(0, 1 + N(0, σ))` on each current sample.
///
/// # Example
///
/// ```
/// use hycim_fefet::VariationModel;
///
/// let noisy = VariationModel::default();
/// let clean = VariationModel::none();
/// assert!(noisy.vt_sigma_d2d() > 0.0);
/// assert_eq!(clean.vt_sigma_d2d(), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VariationModel {
    vt_sigma_d2d: f64,
    vt_sigma_c2c: f64,
    current_sigma_rel: f64,
}

impl VariationModel {
    /// Calibrated default: ~30 mV device-to-device and ~10 mV
    /// cycle-to-cycle Vt sigma with 3% relative current noise —
    /// consistent with the level separation the paper relies on
    /// (adjacent thresholds are 500 mV apart, so levels remain well
    /// separated, matching the clean classification of Fig. 8).
    pub fn paper() -> Self {
        Self {
            vt_sigma_d2d: 0.030,
            vt_sigma_c2c: 0.010,
            current_sigma_rel: 0.03,
        }
    }

    /// No variability at all (ideal hardware).
    pub fn none() -> Self {
        Self {
            vt_sigma_d2d: 0.0,
            vt_sigma_c2c: 0.0,
            current_sigma_rel: 0.0,
        }
    }

    /// Custom variability model.
    ///
    /// # Panics
    ///
    /// Panics if any sigma is negative or non-finite.
    pub fn new(vt_sigma_d2d: f64, vt_sigma_c2c: f64, current_sigma_rel: f64) -> Self {
        for (name, s) in [
            ("vt_sigma_d2d", vt_sigma_d2d),
            ("vt_sigma_c2c", vt_sigma_c2c),
            ("current_sigma_rel", current_sigma_rel),
        ] {
            assert!(s >= 0.0 && s.is_finite(), "{name} must be non-negative");
        }
        Self {
            vt_sigma_d2d,
            vt_sigma_c2c,
            current_sigma_rel,
        }
    }

    /// Device-to-device threshold sigma (V).
    pub fn vt_sigma_d2d(&self) -> f64 {
        self.vt_sigma_d2d
    }

    /// Cycle-to-cycle threshold sigma (V).
    pub fn vt_sigma_c2c(&self) -> f64 {
        self.vt_sigma_c2c
    }

    /// Relative current noise sigma.
    pub fn current_sigma_rel(&self) -> f64 {
        self.current_sigma_rel
    }

    /// Returns a copy scaled by `factor` on every sigma — convenient
    /// for variability sweeps in ablation benches.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor >= 0.0, "scale factor must be non-negative");
        Self {
            vt_sigma_d2d: self.vt_sigma_d2d * factor,
            vt_sigma_c2c: self.vt_sigma_c2c * factor,
            current_sigma_rel: self.current_sigma_rel * factor,
        }
    }

    /// Samples a device's fixed Vt offset (V).
    pub fn sample_d2d_offset<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        gaussian(rng) * self.vt_sigma_d2d
    }

    /// Samples a per-read Vt shift (V).
    pub fn sample_c2c_shift<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.vt_sigma_c2c == 0.0 {
            return 0.0;
        }
        gaussian(rng) * self.vt_sigma_c2c
    }

    /// Samples a multiplicative current factor (≥ 0, mean ≈ 1).
    pub fn sample_current_factor<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.current_sigma_rel == 0.0 {
            return 1.0;
        }
        (1.0 + gaussian(rng) * self.current_sigma_rel).max(0.0)
    }
}

impl Default for VariationModel {
    fn default() -> Self {
        Self::paper()
    }
}

/// Standard normal sample via Box–Muller (keeps the crate free of
/// distribution dependencies).
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random::<f64>();
        if u1 > f64::MIN_POSITIVE {
            let u2: f64 = rng.random::<f64>();
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_is_deterministic() {
        let v = VariationModel::none();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(v.sample_d2d_offset(&mut rng), 0.0);
        assert_eq!(v.sample_c2c_shift(&mut rng), 0.0);
        assert_eq!(v.sample_current_factor(&mut rng), 1.0);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..20_000).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn sigma_controls_spread() {
        let tight = VariationModel::new(0.01, 0.0, 0.0);
        let wide = VariationModel::new(0.10, 0.0, 0.0);
        let spread = |v: &VariationModel, seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let xs: Vec<f64> = (0..2000).map(|_| v.sample_d2d_offset(&mut rng)).collect();
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
        };
        assert!(spread(&wide, 3) > 5.0 * spread(&tight, 3));
    }

    #[test]
    fn current_factor_is_nonnegative() {
        let v = VariationModel::new(0.0, 0.0, 1.0); // huge noise
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..5000 {
            assert!(v.sample_current_factor(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn scaled_zero_equals_none() {
        assert_eq!(VariationModel::paper().scaled(0.0), VariationModel::none());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sigma_rejected() {
        let _ = VariationModel::new(-0.1, 0.0, 0.0);
    }
}
