//! The observability determinism law: instrumentation consumes zero
//! RNG draws, so every engine returns **bit-identical** `Solution`s
//! whether or not a metrics registry is installed, and a metrics
//! snapshot minus the `timing.` section is byte-identical across two
//! runs of the same seed.

use std::sync::Arc;

use hycim_cop::generator::QkpGenerator;
use hycim_core::{BatchRunner, EngineKind, EngineSettings, HyCimConfig, SoftwareEngine};
use hycim_obs::ObsRegistry;

/// Every engine kind, with and without the global registry: the
/// solves must not differ by a single bit, and the instrumented run
/// must actually have published counters.
///
/// All global install/uninstall traffic lives in this one test (the
/// slot is process-wide, and tests in one binary run concurrently).
#[test]
fn solutions_are_bit_identical_with_and_without_a_registry() {
    let inst = QkpGenerator::new(20, 0.5).generate(11);
    let settings = EngineSettings::new(30, 2);

    for kind in EngineKind::ALL {
        let engine = kind
            .build(&inst, &settings)
            .expect("QKP encodes everywhere");
        let bare: Vec<_> = (0..3).map(|seed| engine.solve(seed)).collect();

        let obs = Arc::new(ObsRegistry::new());
        let previous = hycim_obs::install(Arc::clone(&obs));
        let instrumented: Vec<_> = (0..3).map(|seed| engine.solve(seed)).collect();
        match previous {
            Some(previous) => {
                hycim_obs::install(previous);
            }
            None => {
                hycim_obs::uninstall();
            }
        }

        for (seed, (a, b)) in bare.iter().zip(&instrumented).enumerate() {
            assert_eq!(a.assignment, b.assignment, "{kind} diverged at seed {seed}");
            assert_eq!(a.objective, b.objective, "{kind} objective at seed {seed}");
            assert_eq!(
                a.reported_energy, b.reported_energy,
                "{kind} energy at seed {seed}"
            );
            assert_eq!(a.feasible, b.feasible, "{kind} feasibility at seed {seed}");
        }

        // The instrumented run really went through the flush hook.
        let snapshot = obs.snapshot();
        assert_eq!(
            snapshot.counter("core.anneal.solves"),
            Some(3),
            "{kind} published no solve counters"
        );
        assert!(
            snapshot.counter("core.anneal.iterations").unwrap() > 0,
            "{kind} published no iterations"
        );
    }
}

/// The stable snapshot form is a pure function of the work: two
/// same-seed `BatchRunner` runs — at *different thread counts* —
/// produce byte-identical `render_stable()` output, while the
/// wall-clock observations stay quarantined in the `timing.` section.
#[test]
fn stable_snapshots_are_byte_identical_across_runs() {
    let inst = QkpGenerator::new(18, 0.5).generate(4);
    let engine = SoftwareEngine::new(&inst, &HyCimConfig::default().with_sweeps(25))
        .expect("software engine builds");

    let run = |threads: usize| {
        let obs = Arc::new(ObsRegistry::new());
        let runner = BatchRunner::serial()
            .with_threads(threads)
            .with_obs(Arc::clone(&obs));
        let cells = runner.run_telemetry(&engine, 6, 42);
        assert_eq!(cells.len(), 6);
        obs.snapshot()
    };

    let first = run(1);
    let second = run(4);

    let stable = first.render_stable();
    assert_eq!(
        stable,
        second.render_stable(),
        "stable form varied across identical-seed runs"
    );
    // The batch counters made it in; the wall clock stayed out.
    assert!(stable.contains("batch.cells 6"));
    assert!(stable.contains("batch.iterations "));
    assert!(!stable.contains("timing."));
    assert_eq!(
        first
            .histogram("timing.batch.cell_seconds")
            .map(|h| h.count()),
        Some(6),
        "wall-clock observations were recorded, just quarantined"
    );
    assert!(first.render().contains("timing.batch.cell_seconds"));
}
