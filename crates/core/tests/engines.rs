//! The problem × engine matrix: every COP type in `hycim-cop` must
//! solve end-to-end through both the HyCiM pipeline (filter +
//! crossbar) and the D-QUBO penalty baseline, producing a typed
//! [`Solution`] — the "general COP framework" claim of paper Sec 3.2
//! made executable.

use hycim_cop::binpack::BinPacking;
use hycim_cop::coloring::GraphColoring;
use hycim_cop::knapsack::Knapsack;
use hycim_cop::maxcut::MaxCut;
use hycim_cop::mkp::{MkpGenerator, MultiKnapsack};
use hycim_cop::spinglass::SpinGlass;
use hycim_cop::tsp::Tsp;
use hycim_cop::{CopProblem, QkpInstance};
use hycim_core::{
    BankEngine, BatchRunner, DquboConfig, DquboEngine, Engine, HyCimConfig, HyCimEngine,
    SoftwareEngine, Solution,
};

/// Runs one problem through all three engine backends and returns the
/// HyCiM and D-QUBO solutions, checking the invariants every
/// (problem, engine) cell must satisfy.
fn solve_on_both<P: CopProblem>(problem: &P, sweeps: usize) -> (Solution<P>, Solution<P>) {
    let config = HyCimConfig::default().with_sweeps(sweeps);
    let hycim = HyCimEngine::new(problem, &config, 1)
        .unwrap_or_else(|e| panic!("{} does not map onto HyCiM: {e}", problem.kind()));
    let hy = hycim.solve(2);
    assert_eq!(hy.assignment.len(), problem.dim(), "{}", problem.kind());
    // The filter never admits a constraint violation into the
    // accepted trajectory.
    let iq = problem.to_inequality_qubo().expect("encodable");
    assert!(
        iq.is_feasible(&hy.assignment),
        "{}: HyCiM best violates the encoded inequality",
        problem.kind()
    );

    // The noise-free software backend runs the same encoding.
    let software = SoftwareEngine::new(problem, &config)
        .unwrap_or_else(|e| panic!("{} does not encode for software: {e}", problem.kind()));
    let sw = software.solve(2);
    assert_eq!(sw.assignment.len(), problem.dim(), "{}", problem.kind());
    assert!(
        iq.is_feasible(&sw.assignment),
        "{}: software best violates the encoded inequality",
        problem.kind()
    );
    assert_eq!(sw.objective, problem.objective(&sw.assignment));

    let dqubo = DquboEngine::new(problem, &DquboConfig::default().with_sweeps(sweeps))
        .unwrap_or_else(|e| panic!("{} has no D-QUBO form: {e}", problem.kind()));
    assert!(dqubo.form().dim() > problem.dim(), "{}", problem.kind());
    let dq = dqubo.solve(3);
    // The baseline decodes back to the problem's own variable space.
    assert_eq!(dq.assignment.len(), problem.dim(), "{}", problem.kind());

    for s in [&hy, &dq] {
        // Feasible solutions decode and carry a finite objective.
        if s.feasible {
            assert!(s.decoded.is_some(), "{}", problem.kind());
            assert!(s.objective.is_finite(), "{}", problem.kind());
        }
        assert_eq!(s.objective, problem.objective(&s.assignment));
    }
    (hy, dq)
}

#[test]
fn qkp_solves_on_both_engines() {
    let mut inst = QkpInstance::new(vec![10, 6, 8], vec![4, 7, 2], 9).unwrap();
    inst.set_pair_profit(0, 1, 3);
    inst.set_pair_profit(0, 2, 7);
    inst.set_pair_profit(1, 2, 2);
    let (hy, _dq) = solve_on_both(&inst, 100);
    assert!(hy.feasible);
    assert_eq!(hy.value(), 25);
}

#[test]
fn knapsack_solves_on_both_engines() {
    let ks = Knapsack::new(vec![60, 100, 120], vec![10, 20, 30], 50).unwrap();
    let (hy, _dq) = solve_on_both(&ks, 150);
    assert!(hy.feasible);
    // The exact DP optimum is 220; HyCiM must reach it at this size.
    assert_eq!(hy.value(), 220);
    assert_eq!(ks.reference_objective(0), Some(-220.0));
}

#[test]
fn maxcut_solves_on_both_engines() {
    let g = MaxCut::random(12, 0.5, 1);
    let (_, opt) = g.brute_force().unwrap();
    let (hy, dq) = solve_on_both(&g, 300);
    assert!(hy.feasible, "max-cut has no infeasible states");
    let cut = g.cut_value(&hy.assignment);
    assert!(
        cut as f64 >= 0.9 * opt as f64,
        "HyCiM cut {cut} below 90% of optimum {opt}"
    );
    // The baseline also always decodes (unconstrained problem).
    assert!(dq.decoded.is_some());
}

#[test]
fn spin_glass_solves_on_both_engines() {
    let sg = SpinGlass::random_binary(10, 4).unwrap();
    let (_, ground) = sg.ground_state().unwrap();
    let (hy, _dq) = solve_on_both(&sg, 400);
    assert!(hy.feasible);
    let spins = hy.decoded.expect("spin states always decode");
    assert_eq!(spins.len(), 10);
    assert!(
        hy.objective <= 0.8 * ground,
        "HyCiM energy {} far from ground state {ground}",
        hy.objective
    );
}

#[test]
fn tsp_solves_on_both_engines() {
    let tsp = Tsp::random_euclidean(5, 10.0, 7).unwrap();
    let (hy, _dq) = solve_on_both(&tsp, 600);
    assert!(hy.feasible, "HyCiM did not find a valid tour");
    let tour = hy.decoded.expect("feasible TSP solutions decode to tours");
    let len = tsp.tour_length(&tour).unwrap();
    assert_eq!(hy.objective, len);
    // At 5 cities SA must at least match the greedy heuristic's scale.
    let nn = tsp.tour_length(&tsp.nearest_neighbor()).unwrap();
    assert!(len <= 1.5 * nn, "tour {len:.1} vs nearest-neighbor {nn:.1}");
}

#[test]
fn coloring_solves_on_both_engines() {
    let g = GraphColoring::random(6, 0.4, 3, 5);
    let (hy, _dq) = solve_on_both(&g, 400);
    assert!(hy.feasible, "HyCiM did not find a proper coloring");
    assert_eq!(hy.objective, 0.0);
    let colors = hy.decoded.expect("proper colorings decode");
    assert_eq!(colors.len(), 6);
}

#[test]
fn bin_packing_solves_on_both_engines() {
    let bp = BinPacking::new(vec![4, 5, 3, 6], 9, 2).unwrap();
    let (hy, _dq) = solve_on_both(&bp, 500);
    assert!(hy.feasible, "HyCiM did not find a valid packing");
    assert_eq!(hy.objective, 0.0);
    let bins = hy.decoded.expect("valid packings decode");
    assert!(bp.is_valid_packing(&CopProblem::encode(&bp, &bins)));
}

/// Runs a multi-constraint problem through the bank engine, checking
/// the invariants every (problem, BankEngine) cell must satisfy: the
/// returned best configuration passes every encoded constraint, and
/// the typed solution scores consistently.
fn solve_on_bank<P: CopProblem>(problem: &P, sweeps: usize, seed: u64) -> Solution<P> {
    let config = HyCimConfig::default().with_sweeps(sweeps);
    let bank = BankEngine::new(problem, &config, 1)
        .unwrap_or_else(|e| panic!("{} does not map onto the bank: {e}", problem.kind()));
    let solution = bank.solve(seed);
    assert_eq!(
        solution.assignment.len(),
        problem.dim(),
        "{}",
        problem.kind()
    );
    let mq = problem.to_multi_inequality_qubo().expect("encodable");
    assert!(
        mq.is_feasible(&solution.assignment),
        "{}: bank best violates an encoded constraint (first: {:?})",
        problem.kind(),
        mq.first_violation(&solution.assignment)
    );
    assert_eq!(solution.objective, problem.objective(&solution.assignment));
    if solution.feasible {
        assert!(solution.decoded.is_some(), "{}", problem.kind());
    }
    solution
}

#[test]
fn bin_packing_is_bin_exact_on_the_bank_engine() {
    // The acceptance criterion: per-bin constraints enforced in
    // hardware, every returned solution bin-exact feasible — verified
    // against the domain decode, across several chip/solve seeds.
    let bp = BinPacking::new(vec![4, 5, 3, 6, 2, 7], 10, 3).unwrap();
    for seed in 0..5 {
        let sol = solve_on_bank(&bp, 400, seed);
        assert!(sol.feasible, "bank packing infeasible at seed {seed}");
        assert_eq!(sol.objective, 0.0);
        let bins = sol.decoded.expect("valid packings decode");
        let encoded = CopProblem::encode(&bp, &bins);
        assert!(bp.is_valid_packing(&encoded));
        // Bin-exact: every bin within its own capacity (not just the
        // aggregate the single-filter path enforces).
        for k in 0..bp.num_bins() {
            assert!(bp.bin_load(&encoded, k) <= bp.capacity(), "bin {k} over");
        }
    }
}

#[test]
fn mkp_solves_on_bank_and_single_filter_engines() {
    let mkp = MultiKnapsack::new(
        vec![10, 6, 8],
        vec![vec![4, 7, 2], vec![1, 2, 6]],
        vec![9, 7],
    )
    .unwrap();
    let sol = solve_on_bank(&mkp, 200, 2);
    assert!(sol.feasible, "bank MKP solutions satisfy every dimension");
    // The tiny instance's exact optimum must be reached.
    assert_eq!(sol.value(), 18);
    assert_eq!(mkp.reference_objective(0), Some(-18.0));

    // The aggregate relaxation also runs (on all three single-filter
    // backends) — its best may or may not be dimension-feasible, which
    // is exactly the gap the bank closes.
    let (hy, _dq) = solve_on_both(&mkp, 200);
    assert_eq!(hy.assignment.len(), 3);
}

#[test]
fn generated_mkp_instances_cover_the_bank_matrix() {
    // The generator feeds the matrix: a fresh MKP instance per seed
    // runs end-to-end on the bank engine and stays exact.
    for seed in 0..3 {
        let mkp = MkpGenerator::new(10, 2).generate(seed);
        let sol = solve_on_bank(&mkp, 150, seed);
        assert!(sol.feasible, "seed {seed}");
        // Compare against the exhaustive reference: the bank must land
        // within 80% of optimal on these tiny instances.
        let reference = -mkp.reference_objective(seed).expect("exact at n=10");
        assert!(
            sol.value() as f64 >= 0.8 * reference,
            "seed {seed}: bank value {} far from reference {reference}",
            sol.value()
        );
    }
}

#[test]
fn bank_engine_is_bit_identical_across_thread_counts() {
    // The second acceptance criterion: BatchRunner grids over the
    // bank engine reproduce bit-identically at any thread count.
    let bp = BinPacking::new(vec![4, 5, 3, 6], 9, 2).unwrap();
    let engine = BankEngine::new(&bp, &HyCimConfig::default().with_sweeps(60), 3).unwrap();
    let serial = BatchRunner::serial().run(&engine, 6, 42);
    for threads in [2, 4] {
        let parallel = BatchRunner::new().with_threads(threads).run(&engine, 6, 42);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.assignment, p.assignment, "{threads} threads diverged");
            assert_eq!(s.objective, p.objective);
            assert_eq!(s.reported_energy, p.reported_energy);
        }
    }
}

#[test]
fn batch_runner_covers_the_matrix_deterministically() {
    // One problem family per constraint class, both thread counts.
    let g = MaxCut::random(10, 0.5, 9);
    let engine = HyCimEngine::new(&g, &HyCimConfig::default().with_sweeps(50), 2).unwrap();
    let serial = BatchRunner::serial().run(&engine, 4, 11);
    let parallel = BatchRunner::new().with_threads(4).run(&engine, 4, 11);
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.assignment, p.assignment);
        assert_eq!(s.objective, p.objective);
    }
}

mod packed_bit_identity {
    //! The engine-level bit-identity law of the packed engine: lane
    //! `k` of `PackedEngine::solve(seed)` is exactly the scalar
    //! sweep-reference replica seeded with `replica_seed(seed, 0, k)`.

    use super::*;
    use hycim_anneal::{run_replica_scalar, PackedSoftwareState};
    use hycim_core::{replica_seed, PackedConfig, PackedEngine};
    use hycim_qubo::LANES;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_lanes_match_scalar<P: CopProblem>(problem: &P, sweeps: usize, seed: u64) {
        let config = PackedConfig::paper().with_sweeps(sweeps);
        let engine = PackedEngine::new(problem, &config).expect("encodable");
        let packed = engine.lane_outcomes(seed);

        // Reconstruct the deterministic schedule from the initials the
        // lane streams draw (the T₀ probe is RNG-free by contract).
        let iq = problem.to_inequality_qubo().expect("encodable");
        let mut streams: Vec<StdRng> = (0..LANES as u64)
            .map(|k| StdRng::seed_from_u64(replica_seed(seed, 0, k)))
            .collect();
        let initials: Vec<_> = streams.iter_mut().map(|rng| problem.initial(rng)).collect();
        let state = PackedSoftwareState::new(&iq, &initials);
        let schedule = engine.schedule_for(&state);

        let (mut accepted, mut rejected, mut infeasible) = (0u64, 0u64, 0u64);
        for (k, rng) in streams.iter_mut().enumerate() {
            // The stream continues where the initial draw left it —
            // exactly what the packed lane consumed.
            let scalar = run_replica_scalar(&iq, initials[k].clone(), sweeps, &schedule, rng);
            assert_eq!(
                packed.best_energies[k].to_bits(),
                scalar.best_energy.to_bits(),
                "lane {k} best energy diverged"
            );
            assert_eq!(
                packed.best_assignments[k], scalar.best_assignment,
                "lane {k} best assignment diverged"
            );
            assert_eq!(
                packed.final_energies[k].to_bits(),
                scalar.final_energy.to_bits(),
                "lane {k} final energy diverged"
            );
            accepted += scalar.accepted;
            rejected += scalar.rejected;
            infeasible += scalar.infeasible;
        }
        assert_eq!(
            (packed.accepted, packed.rejected, packed.infeasible),
            (accepted, rejected, infeasible),
            "aggregate counts diverged"
        );

        // And the engine's Solution reports the best of those lanes.
        let solution = engine.solve(seed);
        let k = packed.best_lane();
        assert_eq!(
            solution.reported_energy.to_bits(),
            packed.best_energies[k].to_bits()
        );
        assert_eq!(solution.assignment, packed.best_assignments[k]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// 64 packed lanes == 64 scalar replicas, bit for bit, under
        /// the `replica_seed` stream contract (max-cut).
        #[test]
        fn packed_engine_lanes_equal_scalar_replicas_maxcut(
            n in 12usize..40,
            density in 0.1f64..0.5,
            instance_seed in 0u64..1000,
            solve_seed in 0u64..1000,
        ) {
            let g = MaxCut::random(n, density, instance_seed);
            check_lanes_match_scalar(&g, 12, solve_seed);
        }

        /// The same law on spin glasses (signed couplings).
        #[test]
        fn packed_engine_lanes_equal_scalar_replicas_spinglass(
            n in 10usize..30,
            instance_seed in 0u64..1000,
            solve_seed in 0u64..1000,
        ) {
            let sg = SpinGlass::random_binary(n, instance_seed).unwrap();
            check_lanes_match_scalar(&sg, 10, solve_seed);
        }
    }

    #[test]
    fn packed_engine_covers_the_qkp_matrix() {
        use hycim_cop::generator::QkpGenerator;
        let inst = QkpGenerator::new(20, 0.5).generate(1);
        check_lanes_match_scalar(&inst, 25, 7);
    }
}
