//! Engine configurations: the HyCiM pipeline settings (Sec 4) and the
//! D-QUBO baseline settings (Sec 2.1), plus the annealing-schedule
//! parameters both share.

use hycim_cim::crossbar::CrossbarConfig;
use hycim_cim::filter::FilterConfig;
use hycim_qubo::dqubo::{AuxEncoding, PenaltyWeights};

/// The annealing-schedule parameters shared by every engine: sweep
/// count, move mix, and the calibrated geometric schedule (T₀ from
/// probed deltas, T_end as a fraction of T₀). Extracted so the three
/// pipelines cannot drift apart — see
/// [`run_annealing`](crate::run_annealing).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealSettings {
    /// Annealing sweeps; each sweep proposes `dim` moves.
    pub sweeps: usize,
    /// Fraction of exchange (swap) moves — the paper value 0.5.
    pub swap_probability: f64,
    /// T₀ = `t0_fraction × mean|Δ|` at the initial state.
    pub t0_fraction: f64,
    /// Final temperature as a fraction of T₀.
    pub t_end_fraction: f64,
    /// Record per-iteration energies.
    pub record_trace: bool,
}

/// Configuration of the HyCiM engine pipeline.
#[derive(Debug, Clone)]
pub struct HyCimConfig {
    /// Annealing sweeps; each sweep proposes `n` moves (the paper's
    /// "1000 iterations", read as full-network updates — see
    /// EXPERIMENTS.md).
    pub sweeps: usize,
    /// Fraction of exchange (swap) moves (the paper value 0.5, the
    /// [`Annealer`](hycim_anneal::Annealer) default).
    pub swap_probability: f64,
    /// T₀ = `t0_fraction × mean|Δ|` at the initial state.
    pub t0_fraction: f64,
    /// Final temperature as a fraction of T₀.
    pub t_end_fraction: f64,
    /// Inequality filter hardware configuration.
    pub filter: FilterConfig,
    /// Crossbar hardware configuration.
    pub crossbar: CrossbarConfig,
    /// Record per-iteration energies (Fig. 7(f) traces) — off by
    /// default to keep bulk experiments lean.
    pub record_trace: bool,
}

impl HyCimConfig {
    /// The paper-calibrated defaults (Sec 4).
    pub fn paper() -> Self {
        Self {
            sweeps: 1000,
            swap_probability: hycim_anneal::DEFAULT_SWAP_PROBABILITY,
            t0_fraction: 0.5,
            t_end_fraction: 0.002,
            filter: FilterConfig::paper(),
            crossbar: CrossbarConfig::paper(),
            record_trace: false,
        }
    }

    /// Overrides the sweep count.
    ///
    /// # Panics
    ///
    /// Panics if `sweeps == 0`.
    pub fn with_sweeps(mut self, sweeps: usize) -> Self {
        assert!(sweeps > 0, "need at least one sweep");
        self.sweeps = sweeps;
        self
    }

    /// Enables per-iteration trace recording.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Replaces the filter configuration.
    pub fn with_filter(mut self, filter: FilterConfig) -> Self {
        self.filter = filter;
        self
    }

    /// Replaces the crossbar configuration.
    pub fn with_crossbar(mut self, crossbar: CrossbarConfig) -> Self {
        self.crossbar = crossbar;
        self
    }

    /// The shared annealing-schedule parameters.
    pub fn anneal_settings(&self) -> AnnealSettings {
        AnnealSettings {
            sweeps: self.sweeps,
            swap_probability: self.swap_probability,
            t0_fraction: self.t0_fraction,
            t_end_fraction: self.t_end_fraction,
            record_trace: self.record_trace,
        }
    }
}

impl Default for HyCimConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Configuration of the D-QUBO baseline pipeline (paper Fig. 1(b),
/// Sec 2.1): penalty transformation on a single large crossbar, no
/// inequality filter.
#[derive(Debug, Clone)]
pub struct DquboConfig {
    /// Annealing sweeps (each sweep proposes `n + n_aux` moves).
    pub sweeps: usize,
    /// Fraction of exchange (swap) moves.
    pub swap_probability: f64,
    /// T₀ = `t0_fraction × mean|Δ|` at the initial state.
    pub t0_fraction: f64,
    /// Final temperature as a fraction of T₀.
    pub t_end_fraction: f64,
    /// Penalty coefficients α, β (paper sets both to 2).
    pub penalty: PenaltyWeights,
    /// Auxiliary-variable encoding (paper baseline: one-hot).
    pub encoding: AuxEncoding,
    /// Crossbar quantization override; `None` → `⌈log₂(Q_ij)MAX⌉`
    /// (16–25 bits on the benchmark set, Fig. 9(a)).
    pub bits: Option<u32>,
    /// Relative device current noise feeding the readout model.
    pub current_sigma_rel: f64,
    /// Record per-iteration energies.
    pub record_trace: bool,
}

impl DquboConfig {
    /// The paper's baseline settings.
    pub fn paper() -> Self {
        Self {
            sweeps: 1000,
            swap_probability: hycim_anneal::DEFAULT_SWAP_PROBABILITY,
            t0_fraction: 0.5,
            t_end_fraction: 0.002,
            penalty: PenaltyWeights::PAPER,
            encoding: AuxEncoding::OneHot,
            bits: None,
            current_sigma_rel: 0.03,
            record_trace: false,
        }
    }

    /// Overrides the sweep count.
    ///
    /// # Panics
    ///
    /// Panics if `sweeps == 0`.
    pub fn with_sweeps(mut self, sweeps: usize) -> Self {
        assert!(sweeps > 0, "need at least one sweep");
        self.sweeps = sweeps;
        self
    }

    /// Overrides the aux encoding (binary slack is the ablation
    /// variant).
    pub fn with_encoding(mut self, encoding: AuxEncoding) -> Self {
        self.encoding = encoding;
        self
    }

    /// Overrides the quantization bit width.
    pub fn with_bits(mut self, bits: u32) -> Self {
        self.bits = Some(bits);
        self
    }

    /// Overrides the penalty weights.
    pub fn with_penalty(mut self, penalty: PenaltyWeights) -> Self {
        self.penalty = penalty;
        self
    }

    /// The shared annealing-schedule parameters.
    pub fn anneal_settings(&self) -> AnnealSettings {
        AnnealSettings {
            sweeps: self.sweeps,
            swap_probability: self.swap_probability,
            t0_fraction: self.t0_fraction,
            t_end_fraction: self.t_end_fraction,
            record_trace: self.record_trace,
        }
    }
}

impl Default for DquboConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_paper_settings() {
        let h = HyCimConfig::default();
        assert_eq!(h.sweeps, 1000);
        assert_eq!(h.swap_probability, 0.5);
        let d = DquboConfig::default();
        assert_eq!(d.swap_probability, 0.5);
        assert_eq!(d.penalty, PenaltyWeights::PAPER);
    }

    #[test]
    fn builders_override_fields() {
        let h = HyCimConfig::default().with_sweeps(7).with_trace();
        assert_eq!(h.sweeps, 7);
        assert!(h.record_trace);
        let d = DquboConfig::default()
            .with_sweeps(9)
            .with_bits(5)
            .with_encoding(AuxEncoding::Binary);
        assert_eq!(d.sweeps, 9);
        assert_eq!(d.bits, Some(5));
        assert_eq!(d.encoding, AuxEncoding::Binary);
    }

    #[test]
    fn anneal_settings_mirror_the_configs() {
        let h = HyCimConfig::default().with_sweeps(123);
        let s = h.anneal_settings();
        assert_eq!(s.sweeps, 123);
        assert_eq!(s.swap_probability, h.swap_probability);
        assert_eq!(s.t0_fraction, h.t0_fraction);
        let d = DquboConfig::default();
        assert_eq!(d.anneal_settings().sweeps, 1000);
    }
}
