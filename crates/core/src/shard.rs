//! Shard planning and result merging for distributed replica grids.
//!
//! The determinism backbone makes sharding trivial to get *right* and
//! this module makes it hard to get *wrong*: because every cell of a
//! replica × problem grid derives its seed positionally via
//! [`replica_seed`](crate::replica_seed), any contiguous index range
//! of the flattened grid can be computed anywhere — a worker process
//! across the network, a thread, a retry after a crash — and the
//! merged result is bit-identical to a local
//! [`BatchRunner`](crate::BatchRunner) run as long as every index is
//! covered exactly once. [`ShardPlan`] produces such ranges and
//! [`merge_shards`] enforces the exactly-once property with typed
//! errors (overlap, gap, length mismatch) instead of silently
//! corrupting a merge.

use std::fmt;

/// One contiguous index range `[start, end)` of a flattened grid,
/// tagged with its position in the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shard {
    /// Position of this shard in the plan (0-based).
    pub index: usize,
    /// First flat grid index covered (inclusive).
    pub start: usize,
    /// One past the last flat grid index covered.
    pub end: usize,
}

impl Shard {
    /// Number of grid cells this shard covers.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the shard covers no cells.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The flat grid indices of this shard, in order.
    pub fn indices(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }
}

impl fmt::Display for Shard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard {} [{}, {})", self.index, self.start, self.end)
    }
}

/// A partition of `0..total` into contiguous shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    total: usize,
    shards: Vec<Shard>,
}

impl ShardPlan {
    /// Splits `0..total` into at most `shards` near-equal contiguous
    /// ranges (the first `total % shards` ranges are one cell longer).
    /// Empty shards are never produced: when `total < shards` the plan
    /// has `total` one-cell shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn split(total: usize, shards: usize) -> Self {
        assert!(shards > 0, "shard count must be at least 1");
        let parts = shards.min(total);
        let mut out = Vec::with_capacity(parts);
        let mut start = 0;
        for index in 0..parts {
            let len = total / parts + usize::from(index < total % parts);
            out.push(Shard {
                index,
                start,
                end: start + len,
            });
            start += len;
        }
        Self { total, shards: out }
    }

    /// Total number of grid cells the plan covers.
    pub fn total(&self) -> usize {
        self.total
    }

    /// The shards, in index order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }
}

/// Why a set of shard results cannot be merged. Every variant means a
/// bug or a fault upstream — the merge refuses rather than producing
/// a silently wrong artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// A shard returned a different number of results than the range
    /// it was assigned.
    LengthMismatch {
        /// The offending shard.
        shard: Shard,
        /// Results it returned.
        got: usize,
    },
    /// Two shards cover overlapping index ranges.
    Overlap {
        /// The earlier shard (by start index).
        first: Shard,
        /// The overlapping shard.
        second: Shard,
    },
    /// No shard covers the cells starting at this index.
    Gap {
        /// First uncovered flat grid index.
        missing: usize,
    },
    /// Coverage ends beyond the grid (a shard from a different plan).
    OutOfRange {
        /// The offending shard.
        shard: Shard,
        /// The grid's total cell count.
        total: usize,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::LengthMismatch { shard, got } => {
                write!(
                    f,
                    "{shard} returned {got} results for {} cells",
                    shard.len()
                )
            }
            ShardError::Overlap { first, second } => {
                write!(f, "{second} overlaps {first}")
            }
            ShardError::Gap { missing } => {
                write!(f, "no shard covers grid index {missing}")
            }
            ShardError::OutOfRange { shard, total } => {
                write!(f, "{shard} exceeds grid of {total} cells")
            }
        }
    }
}

impl std::error::Error for ShardError {}

/// Reassembles per-shard results into grid order, verifying that the
/// shards cover `0..total` exactly once and that each shard returned
/// exactly as many results as cells it was assigned.
///
/// Shard arrival order does not matter — the merge sorts by range —
/// which is what makes the merged artifact invariant under dispatch
/// order, retries, and worker count.
///
/// # Errors
///
/// Returns a [`ShardError`] naming the first violation.
pub fn merge_shards<T>(total: usize, parts: Vec<(Shard, Vec<T>)>) -> Result<Vec<T>, ShardError> {
    let mut parts = parts;
    parts.sort_by_key(|(shard, _)| (shard.start, shard.end));
    let mut cursor = 0usize;
    for (shard, results) in &parts {
        if shard.end > total || shard.start > total {
            return Err(ShardError::OutOfRange {
                shard: *shard,
                total,
            });
        }
        if results.len() != shard.len() {
            return Err(ShardError::LengthMismatch {
                shard: *shard,
                got: results.len(),
            });
        }
        if shard.start < cursor {
            // Find the earlier shard it collides with for the report.
            let first = parts
                .iter()
                .map(|(s, _)| *s)
                .take_while(|s| s != shard)
                .filter(|s| s.end > shard.start)
                .last()
                .unwrap_or(*shard);
            return Err(ShardError::Overlap {
                first,
                second: *shard,
            });
        }
        if shard.start > cursor {
            return Err(ShardError::Gap { missing: cursor });
        }
        cursor = shard.end;
    }
    if cursor < total {
        return Err(ShardError::Gap { missing: cursor });
    }
    Ok(parts.into_iter().flat_map(|(_, r)| r).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_partitions_exactly() {
        for total in [0usize, 1, 2, 5, 7, 64, 100] {
            for shards in [1usize, 2, 3, 7, 16] {
                let plan = ShardPlan::split(total, shards);
                assert_eq!(plan.total(), total);
                assert_eq!(plan.shards().len(), shards.min(total));
                let mut cursor = 0;
                for (i, s) in plan.shards().iter().enumerate() {
                    assert_eq!(s.index, i);
                    assert_eq!(s.start, cursor);
                    assert!(!s.is_empty(), "{total}/{shards} produced empty {s}");
                    cursor = s.end;
                }
                assert_eq!(cursor, total, "{total}/{shards}");
                // Near-equal: lengths differ by at most one.
                if let (Some(max), Some(min)) = (
                    plan.shards().iter().map(Shard::len).max(),
                    plan.shards().iter().map(Shard::len).min(),
                ) {
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    fn merge_restores_grid_order_under_any_permutation() {
        let plan = ShardPlan::split(11, 3);
        let make = |s: &Shard| (*s, s.indices().collect::<Vec<usize>>());
        let base: Vec<_> = plan.shards().iter().map(make).collect();
        // All 6 permutations of 3 shards.
        for perm in [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ] {
            let parts: Vec<_> = perm.iter().map(|&i| base[i].clone()).collect();
            let merged = merge_shards(11, parts).unwrap();
            assert_eq!(merged, (0..11).collect::<Vec<_>>(), "{perm:?}");
        }
    }

    #[test]
    fn merge_rejects_length_mismatch() {
        let plan = ShardPlan::split(6, 2);
        let s0 = plan.shards()[0];
        let s1 = plan.shards()[1];
        let err = merge_shards(6, vec![(s0, vec![0, 1, 2]), (s1, vec![3, 4])]).unwrap_err();
        assert!(
            matches!(err, ShardError::LengthMismatch { got: 2, .. }),
            "{err}"
        );
    }

    #[test]
    fn merge_rejects_gaps_missing_shards_and_overlaps() {
        let plan = ShardPlan::split(6, 3);
        let [s0, s1, s2] = [plan.shards()[0], plan.shards()[1], plan.shards()[2]];
        let data = |s: &Shard| s.indices().collect::<Vec<usize>>();

        // Missing middle shard.
        let err = merge_shards(6, vec![(s0, data(&s0)), (s2, data(&s2))]).unwrap_err();
        assert_eq!(err, ShardError::Gap { missing: s1.start });

        // Missing tail shard.
        let err = merge_shards(6, vec![(s0, data(&s0)), (s1, data(&s1))]).unwrap_err();
        assert_eq!(err, ShardError::Gap { missing: s2.start });

        // Duplicate shard = overlap.
        let err =
            merge_shards(6, vec![(s0, data(&s0)), (s0, data(&s0)), (s1, data(&s1))]).unwrap_err();
        assert!(matches!(err, ShardError::Overlap { .. }), "{err}");

        // A shard from a bigger plan.
        let foreign = Shard {
            index: 9,
            start: 4,
            end: 9,
        };
        let err = merge_shards(6, vec![(s0, data(&s0)), (foreign, vec![0; 5])]).unwrap_err();
        assert!(matches!(err, ShardError::OutOfRange { .. }), "{err}");
    }

    #[test]
    fn errors_render_readably() {
        let s = Shard {
            index: 1,
            start: 2,
            end: 5,
        };
        assert_eq!(s.to_string(), "shard 1 [2, 5)");
        assert!(ShardError::LengthMismatch { shard: s, got: 1 }
            .to_string()
            .contains("1 results for 3 cells"));
        assert!(ShardError::Gap { missing: 7 }.to_string().contains("7"));
    }
}
