use std::fmt;

use hycim_anneal::AnnealTrace;
use hycim_cop::CopProblem;
use hycim_qubo::Assignment;

/// Result of one engine run on any [`CopProblem`]: the raw
/// configuration, the typed domain solution it decodes to, and the
/// domain objective (minimization convention — maximization problems
/// such as QKP report the negated value).
#[derive(Debug, Clone)]
pub struct Solution<P: CopProblem> {
    /// Best configuration found, in the problem's own variable space
    /// (D-QUBO runs are decoded back from the extended space).
    pub assignment: Assignment,
    /// Typed domain solution, when `assignment` has the problem's
    /// structural shape (a tour, a coloring, a selection, …).
    pub decoded: Option<P::Decoded>,
    /// Domain objective of `assignment` (lower is better; may be
    /// `f64::INFINITY` when the configuration does not decode).
    pub objective: f64,
    /// Whether `assignment` is fully feasible in the domain — always
    /// true for HyCiM on single-constraint problems (the filter never
    /// admits violations into the accepted trajectory); frequently
    /// false for the D-QUBO baseline (paper Fig. 10: "trapped in
    /// infeasible input configuration").
    pub feasible: bool,
    /// Energy as reported by the (noisy) hardware for its best state.
    pub reported_energy: f64,
    /// The annealing trace (energy evolution, acceptance statistics).
    pub trace: AnnealTrace,
}

/// The scoring-side success criterion as a free function of the raw
/// (objective, feasible) pair — shared by [`Solution`] and by
/// consumers scoring solutions that crossed the wire, so the two
/// paths cannot drift apart: feasible and within 5% of `reference` on
/// the favorable side; `reference == 0` (pure feasibility problems)
/// demands an exact zero-violation solution.
pub fn objective_success(objective: f64, feasible: bool, reference: f64) -> bool {
    const EPS: f64 = 1e-9;
    if !feasible || !reference.is_finite() {
        return false;
    }
    if reference.abs() < EPS {
        objective.abs() < EPS
    } else if reference < 0.0 {
        objective <= 0.95 * reference
    } else {
        objective <= reference / 0.95
    }
}

impl<P: CopProblem> Solution<P> {
    /// Scores a final configuration against the problem: decodes it,
    /// checks feasibility, and records the domain objective.
    pub(crate) fn score(problem: &P, assignment: Assignment, trace: AnnealTrace) -> Self {
        let decoded = problem.decode(&assignment);
        let feasible = problem.is_feasible(&assignment);
        let objective = problem.objective(&assignment);
        Solution {
            assignment,
            decoded,
            objective,
            feasible,
            reported_energy: trace.best_energy(),
            trace,
        }
    }

    /// Objective value as a non-negative integer for *maximization*
    /// problems (QKP, knapsack, max-cut): the negated objective,
    /// clamped at 0 — infeasible runs report 0, matching the paper's
    /// accounting.
    pub fn value(&self) -> u64 {
        if self.objective.is_finite() {
            (-self.objective).round().max(0.0) as u64
        } else {
            0
        }
    }

    /// Whether this run counts as a success under the paper's
    /// criterion (Sec 4.3) for maximization problems: feasible and
    /// within 95% of the best-known value.
    pub fn is_success(&self, best_known: u64) -> bool {
        self.feasible && self.value() as f64 >= 0.95 * best_known as f64
    }

    /// Value normalized by the best-known optimum — the y-axis of
    /// paper Fig. 10 (maximization problems).
    pub fn normalized_value(&self, best_known: u64) -> f64 {
        if best_known == 0 {
            return 1.0;
        }
        self.value() as f64 / best_known as f64
    }

    /// The success criterion generalized to any objective sign:
    /// feasible and within 5% of `reference` on the favorable side.
    /// `reference == 0` (pure feasibility problems: coloring, bin
    /// packing) demands an exact zero-violation solution.
    pub fn objective_success(&self, reference: f64) -> bool {
        objective_success(self.objective, self.feasible, reference)
    }

    /// Solution quality in `[0, ~1]` relative to `reference` (1 =
    /// matched or beat the reference), defined for both maximization
    /// (negative objectives) and minimization (positive) problems.
    pub fn normalized_objective(&self, reference: f64) -> f64 {
        const EPS: f64 = 1e-9;
        if !self.objective.is_finite() || !reference.is_finite() {
            return 0.0;
        }
        if reference.abs() < EPS {
            return if self.objective.abs() < EPS { 1.0 } else { 0.0 };
        }
        if reference < 0.0 {
            (self.objective / reference).max(0.0)
        } else if self.objective.abs() < EPS {
            0.0
        } else {
            (reference / self.objective).max(0.0)
        }
    }
}

impl<P: CopProblem> fmt::Display for Solution<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Solution(objective={}, feasible={}, {} bits set, E={:.1})",
            self.objective,
            self.feasible,
            self.assignment.ones(),
            self.reported_energy
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hycim_cop::QkpInstance;

    fn dummy(objective: f64, feasible: bool) -> Solution<QkpInstance> {
        Solution {
            assignment: Assignment::zeros(3),
            decoded: Some(Assignment::zeros(3)),
            objective,
            feasible,
            reported_energy: objective,
            trace: AnnealTrace::new(0.0, Assignment::zeros(3), false),
        }
    }

    #[test]
    fn success_criterion() {
        assert!(dummy(-95.0, true).is_success(100));
        assert!(!dummy(-94.0, true).is_success(100));
        assert!(!dummy(-100.0, false).is_success(100));
        assert!(dummy(-100.0, true).is_success(100));
    }

    #[test]
    fn normalized_value() {
        assert!((dummy(-80.0, true).normalized_value(100) - 0.8).abs() < 1e-12);
        assert_eq!(dummy(-5.0, true).normalized_value(0), 1.0);
    }

    #[test]
    fn value_clamps_infeasible_and_positive() {
        assert_eq!(dummy(-42.0, true).value(), 42);
        assert_eq!(dummy(f64::INFINITY, false).value(), 0);
        assert_eq!(dummy(3.0, false).value(), 0);
    }

    #[test]
    fn objective_success_handles_both_signs() {
        // Maximization (negative reference): within 95%.
        assert!(dummy(-96.0, true).objective_success(-100.0));
        assert!(!dummy(-94.0, true).objective_success(-100.0));
        // Minimization (positive reference): within ~5% above.
        assert!(dummy(104.0, true).objective_success(100.0));
        assert!(!dummy(106.0, true).objective_success(100.0));
        // Feasibility problems (zero reference): exact.
        assert!(dummy(0.0, true).objective_success(0.0));
        assert!(!dummy(1.0, true).objective_success(0.0));
        // Infeasible never succeeds.
        assert!(!dummy(-100.0, false).objective_success(-100.0));
    }

    #[test]
    fn normalized_objective_handles_both_signs() {
        assert!((dummy(-80.0, true).normalized_objective(-100.0) - 0.8).abs() < 1e-12);
        assert!((dummy(125.0, true).normalized_objective(100.0) - 0.8).abs() < 1e-12);
        assert_eq!(dummy(0.0, true).normalized_objective(0.0), 1.0);
        assert_eq!(dummy(2.0, true).normalized_objective(0.0), 0.0);
        assert_eq!(dummy(f64::INFINITY, false).normalized_objective(10.0), 0.0);
    }

    #[test]
    fn display() {
        assert!(dummy(-42.0, true).to_string().contains("objective=-42"));
    }
}
