use std::fmt;

use hycim_anneal::AnnealTrace;
use hycim_qubo::Assignment;

/// Result of one solver run on a QKP instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Best item selection found (decoded to the original `n`
    /// variables for D-QUBO runs).
    pub assignment: Assignment,
    /// True QKP objective value of `assignment` (0 if infeasible).
    pub value: u64,
    /// Whether `assignment` satisfies the capacity constraint — always
    /// true for HyCiM (the filter never admits violations into the
    /// accepted trajectory); frequently false for the D-QUBO baseline
    /// (paper Fig. 10: "trapped in infeasible input configuration").
    pub feasible: bool,
    /// Energy as reported by the (noisy) hardware for its best state.
    pub reported_energy: f64,
    /// The annealing trace (energy evolution, acceptance statistics).
    pub trace: AnnealTrace,
}

impl Solution {
    /// Whether this run counts as a success under the paper's
    /// criterion (Sec 4.3): feasible and within 95% of the best-known
    /// value.
    pub fn is_success(&self, best_known: u64) -> bool {
        self.feasible && self.value as f64 >= 0.95 * best_known as f64
    }

    /// Value normalized by the best-known optimum — the y-axis of
    /// paper Fig. 10.
    pub fn normalized_value(&self, best_known: u64) -> f64 {
        if best_known == 0 {
            return 1.0;
        }
        self.value as f64 / best_known as f64
    }
}

impl fmt::Display for Solution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Solution(value={}, feasible={}, {} items, E={:.1})",
            self.value,
            self.feasible,
            self.assignment.ones(),
            self.reported_energy
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(value: u64, feasible: bool) -> Solution {
        Solution {
            assignment: Assignment::zeros(3),
            value,
            feasible,
            reported_energy: -(value as f64),
            trace: AnnealTrace::new(0.0, Assignment::zeros(3), false),
        }
    }

    #[test]
    fn success_criterion() {
        assert!(dummy(95, true).is_success(100));
        assert!(!dummy(94, true).is_success(100));
        assert!(!dummy(100, false).is_success(100));
        assert!(dummy(100, true).is_success(100));
    }

    #[test]
    fn normalized_value() {
        assert!((dummy(80, true).normalized_value(100) - 0.8).abs() < 1e-12);
        assert_eq!(dummy(5, true).normalized_value(0), 1.0);
    }

    #[test]
    fn display() {
        assert!(dummy(42, true).to_string().contains("value=42"));
    }
}
