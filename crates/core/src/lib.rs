//! **HyCiM** — the hybrid computing-in-memory COP solving framework of
//! the paper (Fig. 3), assembled from the substrate crates.
//!
//! The pipeline for a COP with an inequality constraint (the paper's
//! running example is the quadratic knapsack problem):
//!
//! 1. Transform the COP into the **inequality-QUBO** form
//!    `min (Σwᵢxᵢ ≤ C)·xᵀQx` (Sec 3.2) — no auxiliary variables. Any
//!    [`CopProblem`](hycim_cop::CopProblem) provides this encoding;
//!    unconstrained and equality-penalty problems are the paper's
//!    "special cases" with a trivially satisfied constraint.
//! 2. Map the constraint onto the **FeFET inequality filter**
//!    (Sec 3.3) and `Q` onto the **FeFET CiM crossbar** (Sec 3.4).
//! 3. Run **simulated annealing**: each proposed configuration goes
//!    through the filter; only feasible ones reach the crossbar for a
//!    QUBO energy computation.
//!
//! The engine layer is generic over the problem:
//!
//! * [`HyCimEngine`] — the filter + crossbar pipeline above.
//! * [`BankEngine`] — the multi-constraint pipeline: a filter *bank*
//!   (one filter per inequality) gating the crossbar, making bin
//!   packing bin-exact and multi-dimensional knapsacks native.
//! * [`DquboEngine`] — the baseline **D-QUBO** pipeline (Fig. 1(b)):
//!   penalty encoding on a much larger crossbar, no filter.
//! * [`SoftwareEngine`] — a noise-free software reference.
//! * [`PackedEngine`] — the bit-parallel software engine: 64 replicas
//!   per solve in `u64` spin bitplanes (independent lanes or parallel
//!   tempering), each lane bit-identical to a scalar run under the
//!   [`replica_seed`] contract.
//! * [`BatchRunner`] — deterministic multi-threaded multi-start
//!   evaluation over a replica × problem grid.
//!
//! [`HyCimSolver`], [`DquboSolver`] and [`SoftwareSolver`] are the QKP
//! specializations the paper evaluates.
//!
//! # Example
//!
//! ```
//! use hycim_core::{Engine, HyCimConfig, HyCimSolver};
//! use hycim_cop::QkpInstance;
//!
//! # fn main() -> Result<(), hycim_core::HycimError> {
//! // The paper's Fig. 7(e) example problem.
//! let mut inst = QkpInstance::new(vec![10, 6, 8], vec![4, 7, 2], 9)?;
//! inst.set_pair_profit(0, 1, 3);
//! inst.set_pair_profit(0, 2, 7);
//! inst.set_pair_profit(1, 2, 2);
//!
//! let solver = HyCimSolver::new(&inst, &HyCimConfig::default(), 1)?;
//! let solution = solver.solve(42);
//! assert!(solution.feasible);
//! assert_eq!(solution.value(), 25); // items 0 and 2: 10 + 8 + 7
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod calibrate;
mod config;
mod engine;
mod error;
mod hardware;
mod kind;
mod packed_engine;
pub mod shard;
mod solution;
pub mod success;
pub mod table;

pub use batch::{default_threads, replica_seed, BatchRunner, CellTelemetry};
pub use calibrate::{calibrate_t0, run_annealing};
pub use config::{AnnealSettings, DquboConfig, HyCimConfig};
pub use engine::{
    BankEngine, DquboEngine, DquboSolver, Engine, HyCimEngine, HyCimSolver, SoftwareEngine,
    SoftwareSolver,
};
pub use error::HycimError;
pub use hardware::{BankHardwareState, DquboHardwareState, HyCimHardwareState};
pub use kind::{EngineKind, EngineSettings};
pub use packed_engine::{PackedConfig, PackedEngine, PackedMode};
pub use shard::{merge_shards, Shard, ShardError, ShardPlan};
pub use solution::{objective_success, Solution};
