//! **HyCiM** — the hybrid computing-in-memory QUBO solver framework of
//! the paper (Fig. 3), assembled from the substrate crates.
//!
//! The pipeline for a COP with an inequality constraint (the paper's
//! running example is the quadratic knapsack problem):
//!
//! 1. Transform the COP into the **inequality-QUBO** form
//!    `min (Σwᵢxᵢ ≤ C)·xᵀQx` (Sec 3.2) — no auxiliary variables.
//! 2. Map the constraint onto the **FeFET inequality filter**
//!    (Sec 3.3) and `Q` onto the **FeFET CiM crossbar** (Sec 3.4).
//! 3. Run **simulated annealing**: each proposed configuration goes
//!    through the filter; only feasible ones reach the crossbar for a
//!    QUBO energy computation.
//!
//! The baseline **D-QUBO** pipeline (Fig. 1(b)) — penalty encoding on
//! a much larger crossbar, no filter — is provided for comparison, as
//! is a noise-free software solver used for validation.
//!
//! # Example
//!
//! ```
//! use hycim_core::{HyCimConfig, HyCimSolver};
//! use hycim_cop::QkpInstance;
//!
//! # fn main() -> Result<(), hycim_core::HycimError> {
//! // The paper's Fig. 7(e) example problem.
//! let mut inst = QkpInstance::new(vec![10, 6, 8], vec![4, 7, 2], 9)?;
//! inst.set_pair_profit(0, 1, 3);
//! inst.set_pair_profit(0, 2, 7);
//! inst.set_pair_profit(1, 2, 2);
//!
//! let solver = HyCimSolver::new(&inst, &HyCimConfig::default(), 1)?;
//! let solution = solver.solve(42);
//! assert!(solution.feasible);
//! assert_eq!(solution.value, 25); // items 0 and 2: 10 + 8 + 7
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calibrate;
mod dqubo_solver;
mod error;
pub mod generic;
mod hardware;
mod solution;
mod solver;
pub mod success;
pub mod table;

pub use calibrate::calibrate_t0;
pub use dqubo_solver::{DquboConfig, DquboSolver};
pub use error::HycimError;
pub use hardware::{DquboHardwareState, HyCimHardwareState};
pub use solution::Solution;
pub use solver::{HyCimConfig, HyCimSolver, SoftwareSolver};
