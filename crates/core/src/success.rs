//! Success-rate experiment harness (paper Sec 4.3, Fig. 10).
//!
//! The paper's protocol: for each QKP instance, generate initial input
//! configurations by Monte-Carlo sampling, run SA from each, and count
//! a run as a success when it reaches ≥ 95% of the optimal value.
//! HyCiM averages 98.54%; D-QUBO 10.75%.

use hycim_cop::{solvers, QkpInstance};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{DquboConfig, DquboSolver, HyCimConfig, HyCimSolver, HycimError, Solution};

/// Outcome of a success-rate experiment over one instance.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceReport {
    /// Instance name.
    pub name: String,
    /// Best-known value used as the optimum reference.
    pub best_known: u64,
    /// Normalized values of every run (Fig. 10 scatter points).
    pub normalized_values: Vec<f64>,
    /// Number of successful runs (≥ 95% of best-known, feasible).
    pub successes: usize,
    /// Number of runs that ended infeasible (D-QUBO trapping).
    pub infeasible_runs: usize,
}

impl InstanceReport {
    /// Success rate of this instance in percent.
    pub fn success_rate(&self) -> f64 {
        if self.normalized_values.is_empty() {
            return 0.0;
        }
        100.0 * self.successes as f64 / self.normalized_values.len() as f64
    }
}

/// Aggregate outcome across instances.
#[derive(Debug, Clone, PartialEq)]
pub struct SuccessReport {
    /// Per-instance breakdown.
    pub instances: Vec<InstanceReport>,
}

impl SuccessReport {
    /// Average success rate across all runs (the paper's headline
    /// 98.54% / 10.75% numbers).
    pub fn average_success_rate(&self) -> f64 {
        let total_runs: usize = self
            .instances
            .iter()
            .map(|i| i.normalized_values.len())
            .sum();
        if total_runs == 0 {
            return 0.0;
        }
        let total_successes: usize = self.instances.iter().map(|i| i.successes).sum();
        100.0 * total_successes as f64 / total_runs as f64
    }

    /// Fraction of runs ending infeasible, in percent.
    pub fn infeasible_rate(&self) -> f64 {
        let total_runs: usize = self
            .instances
            .iter()
            .map(|i| i.normalized_values.len())
            .sum();
        if total_runs == 0 {
            return 0.0;
        }
        let infeasible: usize = self.instances.iter().map(|i| i.infeasible_runs).sum();
        100.0 * infeasible as f64 / total_runs as f64
    }

    /// All normalized values flattened (the full Fig. 10 scatter).
    pub fn all_normalized_values(&self) -> Vec<f64> {
        self.instances
            .iter()
            .flat_map(|i| i.normalized_values.iter().copied())
            .collect()
    }
}

/// Establishes the best-known value for an instance, folding in any
/// extra candidate values discovered during the experiment runs.
pub fn best_known_value(inst: &QkpInstance, candidates: &[u64], seed: u64) -> u64 {
    let (_, heuristic) = solvers::best_known(inst, 15, seed);
    candidates
        .iter()
        .copied()
        .chain(std::iter::once(heuristic))
        .max()
        .unwrap_or(heuristic)
}

/// Runs the HyCiM side of the Fig. 10 experiment on one instance:
/// `initials` Monte-Carlo starting configurations, one SA run each.
///
/// # Errors
///
/// Propagates solver construction failures.
pub fn run_hycim_instance(
    inst: &QkpInstance,
    config: &HyCimConfig,
    initials: usize,
    seed: u64,
) -> Result<InstanceReport, HycimError> {
    let solver = HyCimSolver::new(inst, config, seed)?;
    let solutions: Vec<Solution> = (0..initials)
        .map(|k| solver.solve(seed.wrapping_add(k as u64)))
        .collect();
    Ok(summarize(inst, solutions, seed))
}

/// Runs the D-QUBO side of the Fig. 10 experiment on one instance.
///
/// # Errors
///
/// Propagates solver construction failures.
pub fn run_dqubo_instance(
    inst: &QkpInstance,
    config: &DquboConfig,
    initials: usize,
    seed: u64,
) -> Result<InstanceReport, HycimError> {
    let solver = DquboSolver::new(inst, config)?;
    let solutions: Vec<Solution> = (0..initials)
        .map(|k| solver.solve(seed.wrapping_add(k as u64)))
        .collect();
    Ok(summarize(inst, solutions, seed))
}

fn summarize(inst: &QkpInstance, solutions: Vec<Solution>, seed: u64) -> InstanceReport {
    let candidates: Vec<u64> = solutions.iter().map(|s| s.value).collect();
    let best = best_known_value(inst, &candidates, seed);
    let normalized_values: Vec<f64> = solutions.iter().map(|s| s.normalized_value(best)).collect();
    let successes = solutions.iter().filter(|s| s.is_success(best)).count();
    let infeasible_runs = solutions.iter().filter(|s| !s.feasible).count();
    InstanceReport {
        name: inst.name().to_string(),
        best_known: best,
        normalized_values,
        successes,
        infeasible_runs,
    }
}

/// Draws the paper's Monte-Carlo initial configurations: `count`
/// feasible random selections for an instance.
pub fn monte_carlo_initials(
    inst: &QkpInstance,
    count: usize,
    seed: u64,
) -> Vec<hycim_qubo::Assignment> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| solvers::random_feasible(inst, &mut rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hycim_cop::generator::QkpGenerator;

    #[test]
    fn hycim_report_on_small_set() {
        let inst = QkpGenerator::new(25, 0.5).generate(1);
        let report =
            run_hycim_instance(&inst, &HyCimConfig::default().with_sweeps(150), 5, 1).unwrap();
        assert_eq!(report.normalized_values.len(), 5);
        assert!(
            report.success_rate() >= 80.0,
            "rate {}",
            report.success_rate()
        );
        assert_eq!(report.infeasible_runs, 0);
    }

    #[test]
    fn dqubo_report_counts_infeasible() {
        let inst = QkpGenerator::new(25, 0.5).generate(2);
        let report =
            run_dqubo_instance(&inst, &DquboConfig::default().with_sweeps(50), 5, 2).unwrap();
        assert_eq!(report.normalized_values.len(), 5);
        // All values within [0, ~1].
        assert!(report
            .normalized_values
            .iter()
            .all(|&v| (0.0..=1.001).contains(&v)));
    }

    #[test]
    fn aggregate_rates() {
        let r1 = InstanceReport {
            name: "a".into(),
            best_known: 100,
            normalized_values: vec![1.0, 0.5],
            successes: 1,
            infeasible_runs: 1,
        };
        let r2 = InstanceReport {
            name: "b".into(),
            best_known: 100,
            normalized_values: vec![1.0, 1.0],
            successes: 2,
            infeasible_runs: 0,
        };
        let report = SuccessReport {
            instances: vec![r1, r2],
        };
        assert!((report.average_success_rate() - 75.0).abs() < 1e-12);
        assert!((report.infeasible_rate() - 25.0).abs() < 1e-12);
        assert_eq!(report.all_normalized_values().len(), 4);
    }

    #[test]
    fn monte_carlo_initials_are_feasible() {
        let inst = QkpGenerator::new(30, 0.75).generate(3);
        for x in monte_carlo_initials(&inst, 10, 4) {
            assert!(inst.is_feasible(&x));
        }
    }

    #[test]
    fn best_known_folds_in_candidates() {
        let inst = QkpGenerator::new(10, 0.5).generate(5);
        let base = best_known_value(&inst, &[], 5);
        assert_eq!(best_known_value(&inst, &[base + 50], 5), base + 50);
    }
}
