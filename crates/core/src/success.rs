//! Success-rate experiment harness (paper Sec 4.3, Fig. 10),
//! generalized over every [`CopProblem`] × [`Engine`] combination and
//! executed through the deterministic [`BatchRunner`].
//!
//! The paper's protocol: for each instance, generate initial input
//! configurations by Monte-Carlo sampling, run SA from each, and count
//! a run as a success when it reaches ≥ 95% of the optimal value.
//! HyCiM averages 98.54% on QKP; D-QUBO 10.75%.

use hycim_cop::{solvers, CopProblem, QkpInstance};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{BatchRunner, Engine, Solution};

/// Outcome of a success-rate experiment over one instance on one
/// engine backend.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceReport {
    /// Instance name.
    pub name: String,
    /// Problem kind tag (`"qkp"`, `"max-cut"`, …).
    pub kind: String,
    /// Engine backend tag (`"hycim"`, `"dqubo"`, `"software"`).
    pub backend: String,
    /// Reference objective (minimization convention) the runs are
    /// scored against: the problem's exact/heuristic reference folded
    /// with the best feasible run of the batch.
    pub reference: f64,
    /// Normalized solution qualities of every run (Fig. 10 scatter
    /// points; 1 = matched the reference).
    pub normalized_values: Vec<f64>,
    /// Number of successful runs (within 5% of the reference,
    /// feasible).
    pub successes: usize,
    /// Number of runs that ended infeasible (D-QUBO trapping).
    pub infeasible_runs: usize,
}

impl InstanceReport {
    /// Success rate of this instance in percent.
    pub fn success_rate(&self) -> f64 {
        if self.normalized_values.is_empty() {
            return 0.0;
        }
        100.0 * self.successes as f64 / self.normalized_values.len() as f64
    }

    /// Reference expressed as a maximization value (QKP-style
    /// reporting): `max(0, -reference)` rounded.
    pub fn best_known(&self) -> u64 {
        if self.reference.is_finite() {
            (-self.reference).round().max(0.0) as u64
        } else {
            0
        }
    }
}

/// Aggregate outcome across instances.
#[derive(Debug, Clone, PartialEq)]
pub struct SuccessReport {
    /// Per-instance breakdown.
    pub instances: Vec<InstanceReport>,
}

impl SuccessReport {
    /// Average success rate across all runs (the paper's headline
    /// 98.54% / 10.75% numbers).
    pub fn average_success_rate(&self) -> f64 {
        let total_runs: usize = self
            .instances
            .iter()
            .map(|i| i.normalized_values.len())
            .sum();
        if total_runs == 0 {
            return 0.0;
        }
        let total_successes: usize = self.instances.iter().map(|i| i.successes).sum();
        100.0 * total_successes as f64 / total_runs as f64
    }

    /// Fraction of runs ending infeasible, in percent.
    pub fn infeasible_rate(&self) -> f64 {
        let total_runs: usize = self
            .instances
            .iter()
            .map(|i| i.normalized_values.len())
            .sum();
        if total_runs == 0 {
            return 0.0;
        }
        let infeasible: usize = self.instances.iter().map(|i| i.infeasible_runs).sum();
        100.0 * infeasible as f64 / total_runs as f64
    }

    /// All normalized values flattened (the full Fig. 10 scatter).
    pub fn all_normalized_values(&self) -> Vec<f64> {
        self.instances
            .iter()
            .flat_map(|i| i.normalized_values.iter().copied())
            .collect()
    }
}

/// Scores a batch of solutions against the problem's reference: the
/// exact/heuristic [`reference_objective`](CopProblem::reference_objective)
/// folded with the best feasible run (the batch may beat the
/// heuristic).
pub fn summarize<P, E>(engine: &E, solutions: &[Solution<P>], seed: u64) -> InstanceReport
where
    P: CopProblem,
    E: Engine<P>,
{
    let problem = engine.problem();
    let best_seen = solutions
        .iter()
        .filter(|s| s.feasible)
        .map(|s| s.objective)
        .fold(f64::INFINITY, f64::min);
    let reference = problem
        .reference_objective(seed)
        .unwrap_or(f64::INFINITY)
        .min(best_seen);
    let normalized_values: Vec<f64> = solutions
        .iter()
        .map(|s| s.normalized_objective(reference))
        .collect();
    let successes = solutions
        .iter()
        .filter(|s| s.objective_success(reference))
        .count();
    let infeasible_runs = solutions.iter().filter(|s| !s.feasible).count();
    InstanceReport {
        name: problem.name(),
        kind: problem.kind().to_string(),
        backend: engine.backend().to_string(),
        reference,
        normalized_values,
        successes,
        infeasible_runs,
    }
}

/// Runs the Fig. 10 protocol for one engine: `replicas` Monte-Carlo
/// starting configurations through the [`BatchRunner`], scored against
/// the instance reference. Deterministic in `seed` independent of the
/// runner's thread count.
pub fn run_engine_instance<P, E>(
    engine: &E,
    replicas: usize,
    seed: u64,
    runner: &BatchRunner,
) -> InstanceReport
where
    P: CopProblem,
    E: Engine<P>,
{
    let solutions = runner.run(engine, replicas, seed);
    summarize(engine, &solutions, seed)
}

/// Runs the full Fig. 10 grid for a list of engines (one per
/// instance): `replicas` Monte-Carlo starts each through the
/// [`BatchRunner`], then scores every instance against its reference.
/// Instance `idx` is scored with reference seed `seed + idx` (the
/// heuristic reference solver is seeded per instance). Both the solve
/// grid and the scoring pass run on the runner's worker threads —
/// scoring re-runs the per-instance reference heuristic, which is too
/// expensive for a serial tail on large sets.
pub fn run_grid_report<P, E>(
    engines: &[E],
    replicas: usize,
    seed: u64,
    runner: &BatchRunner,
) -> SuccessReport
where
    P: CopProblem,
    E: Engine<P>,
{
    let grid = runner.run_grid(engines, replicas, seed);
    let instances = runner.map_indexed(engines.len(), |idx| {
        summarize(&engines[idx], &grid[idx], seed + idx as u64)
    });
    SuccessReport { instances }
}

/// Establishes the best-known value for a QKP instance, folding in any
/// extra candidate values discovered during the experiment runs.
pub fn best_known_value(inst: &QkpInstance, candidates: &[u64], seed: u64) -> u64 {
    let (_, heuristic) = solvers::best_known(inst, 15, seed);
    candidates
        .iter()
        .copied()
        .chain(std::iter::once(heuristic))
        .max()
        .unwrap_or(heuristic)
}

/// Draws the paper's Monte-Carlo initial configurations: `count`
/// feasible random selections for a QKP instance.
pub fn monte_carlo_initials(
    inst: &QkpInstance,
    count: usize,
    seed: u64,
) -> Vec<hycim_qubo::Assignment> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| solvers::random_feasible(inst, &mut rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DquboConfig, DquboEngine, HyCimConfig, HyCimEngine};
    use hycim_cop::generator::QkpGenerator;
    use hycim_cop::maxcut::MaxCut;

    #[test]
    fn hycim_report_on_small_set() {
        let inst = QkpGenerator::new(25, 0.5).generate(1);
        let engine = HyCimEngine::new(&inst, &HyCimConfig::default().with_sweeps(150), 1).unwrap();
        let report = run_engine_instance(&engine, 5, 1, &BatchRunner::serial());
        assert_eq!(report.normalized_values.len(), 5);
        assert!(
            report.success_rate() >= 80.0,
            "rate {}",
            report.success_rate()
        );
        assert_eq!(report.infeasible_runs, 0);
        assert_eq!(report.backend, "hycim");
        assert_eq!(report.kind, "qkp");
        assert!(report.best_known() > 0);
    }

    #[test]
    fn dqubo_report_counts_infeasible() {
        let inst = QkpGenerator::new(25, 0.5).generate(2);
        let engine = DquboEngine::new(&inst, &DquboConfig::default().with_sweeps(50)).unwrap();
        let report = run_engine_instance(&engine, 5, 2, &BatchRunner::serial());
        assert_eq!(report.normalized_values.len(), 5);
        assert_eq!(report.backend, "dqubo");
        // All values within [0, ~1].
        assert!(report
            .normalized_values
            .iter()
            .all(|&v| (0.0..=1.001).contains(&v)));
    }

    #[test]
    fn generic_report_runs_maxcut() {
        let graph = MaxCut::random(14, 0.5, 3);
        let engine = HyCimEngine::new(&graph, &HyCimConfig::default().with_sweeps(200), 3).unwrap();
        let report = run_engine_instance(&engine, 4, 3, &BatchRunner::new().with_threads(2));
        assert_eq!(report.kind, "max-cut");
        assert_eq!(report.normalized_values.len(), 4);
        assert!(
            report.success_rate() > 0.0,
            "no run reached 95% of the cut reference"
        );
    }

    #[test]
    fn aggregate_rates() {
        let r1 = InstanceReport {
            name: "a".into(),
            kind: "qkp".into(),
            backend: "hycim".into(),
            reference: -100.0,
            normalized_values: vec![1.0, 0.5],
            successes: 1,
            infeasible_runs: 1,
        };
        let r2 = InstanceReport {
            name: "b".into(),
            kind: "qkp".into(),
            backend: "hycim".into(),
            reference: -100.0,
            normalized_values: vec![1.0, 1.0],
            successes: 2,
            infeasible_runs: 0,
        };
        let report = SuccessReport {
            instances: vec![r1, r2],
        };
        assert!((report.average_success_rate() - 75.0).abs() < 1e-12);
        assert!((report.infeasible_rate() - 25.0).abs() < 1e-12);
        assert_eq!(report.all_normalized_values().len(), 4);
    }

    #[test]
    fn monte_carlo_initials_are_feasible() {
        let inst = QkpGenerator::new(30, 0.75).generate(3);
        for x in monte_carlo_initials(&inst, 10, 4) {
            assert!(inst.is_feasible(&x));
        }
    }

    #[test]
    fn best_known_folds_in_candidates() {
        let inst = QkpGenerator::new(10, 0.5).generate(5);
        let base = best_known_value(&inst, &[], 5);
        assert_eq!(best_known_value(&inst, &[base + 50], 5), base + 50);
    }
}
