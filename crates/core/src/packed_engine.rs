//! The bit-parallel multi-replica engine: 64 annealing replicas per
//! [`solve`](crate::Engine::solve) call, packed into `u64` spin
//! bitplanes ([`hycim_qubo::PackedReplicaState`]) and advanced by
//! [`hycim_anneal::packed`] sweeps.
//!
//! Where every other engine runs *one* replica per seed, the packed
//! engine runs [`LANES`] replicas in one pass over the coupling
//! structure and reports the best lane. The replicas are not merely
//! "similar" to scalar runs — they are bit-identical to them:
//!
//! # The `replica_seed` lane contract
//!
//! Lane `k` of `solve(seed)` consumes exactly the RNG stream
//! `StdRng::seed_from_u64(replica_seed(seed, 0, k))` — the same
//! stream-derivation rule [`BatchRunner`](crate::BatchRunner) uses for
//! scalar replica fan-outs. The lane draws its initial configuration
//! from that stream and continues annealing on it, so a 64-lane packed
//! run is bit-identical to 64 independent scalar
//! [`run_replica_scalar`](hycim_anneal::run_replica_scalar) runs
//! seeded the same way. The law is pinned by a proptest in
//! `tests/engines.rs`.
//!
//! Determinism of the schedule: T₀ is calibrated *without randomness*
//! as `t0_fraction × mean|h|` over all `n × 64` maintained fields at
//! the initial configurations
//! ([`PackedSoftwareState::mean_abs_field`]), floored at 1 like
//! [`calibrate_t0`](crate::calibrate_t0), so scalar twins can
//! reconstruct the exact cooling schedule from the initials alone.

use hycim_anneal::{
    run_packed_tempering, AnnealTrace, PackedRunOutcome, PackedSoftwareState,
    PackedTemperingConfig, SweepSchedule,
};
use hycim_cop::CopProblem;
use hycim_qubo::{Assignment, InequalityQubo, LANES};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::batch::replica_seed;
use crate::{Engine, HyCimConfig, HycimError, Solution};

/// How the packed engine couples its 64 lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackedMode {
    /// Independent lanes: every lane cools on the same geometric
    /// per-sweep schedule. This is the mode covered by the
    /// packed-vs-scalar bit-identity law.
    Independent,
    /// Parallel tempering: the 64 lanes hold a geometric temperature
    /// ladder and exchange rungs in deterministic even/odd sweeps
    /// ([`hycim_anneal::tempering::run_packed_tempering`]).
    Tempering,
}

/// Configuration of the [`PackedEngine`]: the shared annealing-scale
/// parameters (paper defaults, matching [`HyCimConfig`]) plus the
/// lane-coupling mode.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedConfig {
    /// Annealing sweeps; each sweep proposes `n` moves *per lane*.
    pub sweeps: usize,
    /// T₀ = `t0_fraction × mean|h|` at the initial configurations.
    pub t0_fraction: f64,
    /// Final (coldest) temperature as a fraction of T₀.
    pub t_end_fraction: f64,
    /// Packed sweeps between exchange rounds (tempering mode only).
    pub sweeps_per_exchange: usize,
    /// Lane-coupling mode.
    pub mode: PackedMode,
}

impl PackedConfig {
    /// The paper-calibrated defaults (Sec 4), independent lanes.
    pub fn paper() -> Self {
        Self {
            sweeps: 1000,
            t0_fraction: 0.5,
            t_end_fraction: 0.002,
            sweeps_per_exchange: 2,
            mode: PackedMode::Independent,
        }
    }

    /// Overrides the sweep count.
    ///
    /// # Panics
    ///
    /// Panics if `sweeps == 0`.
    pub fn with_sweeps(mut self, sweeps: usize) -> Self {
        assert!(sweeps > 0, "need at least one sweep");
        self.sweeps = sweeps;
        self
    }

    /// Switches the lanes to parallel tempering with
    /// `sweeps_per_exchange` packed sweeps between exchange rounds.
    ///
    /// # Panics
    ///
    /// Panics if `sweeps_per_exchange == 0`.
    pub fn with_tempering(mut self, sweeps_per_exchange: usize) -> Self {
        assert!(
            sweeps_per_exchange > 0,
            "need at least one sweep between exchanges"
        );
        self.mode = PackedMode::Tempering;
        self.sweeps_per_exchange = sweeps_per_exchange;
        self
    }

    /// The packed counterpart of a scalar engine configuration: same
    /// sweep count and temperature fractions.
    pub fn from_hycim(config: &HyCimConfig) -> Self {
        Self {
            sweeps: config.sweeps,
            t0_fraction: config.t0_fraction,
            t_end_fraction: config.t_end_fraction,
            ..Self::paper()
        }
    }
}

impl Default for PackedConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// The bit-parallel software engine: exact inequality-QUBO evaluation
/// like [`SoftwareEngine`](crate::SoftwareEngine), but annealing
/// [`LANES`] replicas per solve in `u64` bitplanes and reporting the
/// best lane. See [`hycim_anneal::packed`] for the lane/seed contract.
#[derive(Debug, Clone)]
pub struct PackedEngine<P: CopProblem> {
    problem: P,
    encoded: InequalityQubo,
    config: PackedConfig,
}

impl<P: CopProblem> PackedEngine<P> {
    /// Builds a packed engine for a problem.
    ///
    /// # Errors
    ///
    /// Returns [`HycimError`] if the problem cannot be encoded.
    pub fn new(problem: &P, config: &PackedConfig) -> Result<Self, HycimError> {
        Ok(Self {
            problem: problem.clone(),
            encoded: problem.to_inequality_qubo()?,
            config: config.clone(),
        })
    }

    /// The problem in inequality-QUBO form.
    pub fn encoded(&self) -> &InequalityQubo {
        &self.encoded
    }

    /// The engine configuration.
    pub fn config(&self) -> &PackedConfig {
        &self.config
    }

    /// Lane `k`'s RNG stream for a solve: the
    /// [`replica_seed`](crate::replica_seed) contract with
    /// `problem_index = 0`.
    fn lane_rngs(seed: u64) -> Vec<StdRng> {
        (0..LANES)
            .map(|k| StdRng::seed_from_u64(replica_seed(seed, 0, k as u64)))
            .collect()
    }

    /// Draws each lane's initial configuration from its own stream
    /// (the stream then continues into the annealing loop).
    fn lane_initials(&self, rngs: &mut [StdRng]) -> Vec<Assignment> {
        rngs.iter_mut()
            .map(|rng| self.problem.initial(rng))
            .collect()
    }

    /// The deterministic per-sweep cooling schedule for a packed state
    /// at its initial configurations: `T₀ = t0_fraction × mean|h|`
    /// (floored at 1, like [`calibrate_t0`](crate::calibrate_t0)),
    /// decaying geometrically to `t_end_fraction × T₀` over `sweeps`.
    pub fn schedule_for(&self, state: &PackedSoftwareState) -> SweepSchedule {
        let t0 = (self.config.t0_fraction * state.mean_abs_field()).max(1.0);
        SweepSchedule::cooling_to(t0, self.config.t_end_fraction, self.config.sweeps)
    }

    /// Runs all [`LANES`] independent lanes of `solve(seed)` and
    /// returns the per-lane outcomes — the testable surface of the
    /// bit-identity law, and what the throughput benchmarks time.
    ///
    /// Only meaningful in [`PackedMode::Independent`]; tempering mode
    /// couples the lanes, so per-lane outcomes are not scalar runs.
    pub fn lane_outcomes(&self, seed: u64) -> PackedRunOutcome {
        let mut rngs = Self::lane_rngs(seed);
        let initials = self.lane_initials(&mut rngs);
        let mut state = PackedSoftwareState::new(&self.encoded, &initials);
        let schedule = self.schedule_for(&state);
        let mut temperatures = [0.0f64; LANES];
        for sweep in 0..self.config.sweeps {
            temperatures.fill(schedule.temperature(sweep));
            state.sweep(&temperatures, &mut rngs);
        }
        let (accepted, rejected, infeasible) = state.counts();
        PackedRunOutcome {
            best_energies: (0..LANES).map(|k| state.best_energy(k)).collect(),
            best_assignments: (0..LANES).map(|k| state.best_assignment(k)).collect(),
            final_energies: (0..LANES).map(|k| state.energy(k)).collect(),
            accepted,
            rejected,
            infeasible,
        }
    }

    fn solve_tempering(&self, seed: u64) -> Solution<P> {
        let mut rngs = Self::lane_rngs(seed);
        let initials = self.lane_initials(&mut rngs);
        let state = PackedSoftwareState::new(&self.encoded, &initials);
        let schedule = self.schedule_for(&state);
        let rounds = (self.config.sweeps / self.config.sweeps_per_exchange).max(1);
        let config = PackedTemperingConfig {
            t_min: schedule.t0() * self.config.t_end_fraction,
            t_max: schedule.t0(),
            sweeps_per_exchange: self.config.sweeps_per_exchange,
            rounds,
        };
        // The exchange decisions draw from their own stream (replica
        // index LANES — past every lane) so lane streams stay aligned
        // with their independent-mode twins.
        let mut swap_rng = StdRng::seed_from_u64(replica_seed(seed, 0, LANES as u64));
        let result =
            run_packed_tempering(&self.encoded, &initials, &config, &mut rngs, &mut swap_rng);
        let trace = AnnealTrace::from_counts(
            result.best_energy,
            result.best_assignment.clone(),
            result.accepted as usize,
            result.rejected as usize,
            result.infeasible as usize,
        );
        crate::calibrate::flush_anneal_counts("packed-tempering", &trace);
        Solution::score(&self.problem, result.best_assignment, trace)
    }
}

impl<P: CopProblem> Engine<P> for PackedEngine<P> {
    fn problem(&self) -> &P {
        &self.problem
    }

    fn backend(&self) -> &'static str {
        "packed"
    }

    fn solve(&self, seed: u64) -> Solution<P> {
        match self.config.mode {
            PackedMode::Independent => {
                let outcome = self.lane_outcomes(seed);
                let k = outcome.best_lane();
                let trace = AnnealTrace::from_counts(
                    outcome.best_energies[k],
                    outcome.best_assignments[k].clone(),
                    outcome.accepted as usize,
                    outcome.rejected as usize,
                    outcome.infeasible as usize,
                );
                crate::calibrate::flush_anneal_counts("packed", &trace);
                Solution::score(&self.problem, outcome.best_assignments[k].clone(), trace)
            }
            PackedMode::Tempering => self.solve_tempering(seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hycim_cop::generator::QkpGenerator;
    use hycim_cop::QkpInstance;

    fn fig7e() -> QkpInstance {
        let mut inst = QkpInstance::new(vec![10, 6, 8], vec![4, 7, 2], 9).unwrap();
        inst.set_pair_profit(0, 1, 3);
        inst.set_pair_profit(0, 2, 7);
        inst.set_pair_profit(1, 2, 2);
        inst
    }

    #[test]
    fn packed_engine_solves_fig7e() {
        let engine = PackedEngine::new(&fig7e(), &PackedConfig::paper().with_sweeps(30)).unwrap();
        assert_eq!(engine.backend(), "packed");
        let solution = engine.solve(2);
        assert!(solution.feasible);
        assert_eq!(solution.value(), 25);
        assert_eq!(solution.objective, -25.0);
    }

    #[test]
    fn packed_engine_is_seed_deterministic() {
        let inst = QkpGenerator::new(25, 0.5).generate(4);
        let engine = PackedEngine::new(&inst, &PackedConfig::paper().with_sweeps(40)).unwrap();
        let a = engine.solve(9);
        let b = engine.solve(9);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.reported_energy, b.reported_energy);
        assert_eq!(a.trace.iterations(), b.trace.iterations());
    }

    #[test]
    fn solution_reports_the_best_lane() {
        let inst = QkpGenerator::new(20, 0.5).generate(7);
        let engine = PackedEngine::new(&inst, &PackedConfig::paper().with_sweeps(30)).unwrap();
        let outcome = engine.lane_outcomes(3);
        let solution = engine.solve(3);
        let k = outcome.best_lane();
        assert_eq!(solution.reported_energy, outcome.best_energies[k]);
        assert_eq!(solution.assignment, outcome.best_assignments[k]);
        // The trace aggregates all 64 lanes' move counts.
        assert_eq!(
            solution.trace.iterations() as u64,
            outcome.accepted + outcome.rejected + outcome.infeasible
        );
        assert_eq!(
            solution.trace.iterations(),
            engine.config().sweeps * engine.encoded().dim() * LANES
        );
    }

    #[test]
    fn tempering_mode_solves_and_is_deterministic() {
        let inst = QkpGenerator::new(15, 0.6).generate(2);
        let engine = PackedEngine::new(
            &inst,
            &PackedConfig::paper().with_sweeps(40).with_tempering(2),
        )
        .unwrap();
        let a = engine.solve(5);
        let b = engine.solve(5);
        assert!(a.feasible);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.reported_energy, b.reported_energy);
    }

    #[test]
    fn from_hycim_copies_the_shared_scale_parameters() {
        let h = HyCimConfig::default().with_sweeps(77);
        let p = PackedConfig::from_hycim(&h);
        assert_eq!(p.sweeps, 77);
        assert_eq!(p.t0_fraction, h.t0_fraction);
        assert_eq!(p.t_end_fraction, h.t_end_fraction);
        assert_eq!(p.mode, PackedMode::Independent);
    }
}
