//! Engine-backend selection by tag: the shared vocabulary between the
//! study harness (`hycim-bench`), the wire protocol (`hycim-net`),
//! and anything else that needs to name a backend in text and build
//! it later.
//!
//! [`EngineKind::build`] is the one place the per-backend construction
//! details live (trace recording, packed paper defaults, D-QUBO
//! penalty config), so a worker process reconstructing an engine from
//! a wire job description produces *exactly* the engine a local study
//! run would — the precondition for bit-identical distributed merges.

use std::fmt;

use hycim_cop::CopProblem;

use crate::{
    BankEngine, DquboConfig, DquboEngine, Engine, HyCimConfig, HyCimEngine, HycimError,
    PackedConfig, PackedEngine, SoftwareEngine,
};

/// Engine backends a study column or wire job can select.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EngineKind {
    /// Noise-free software reference (`SoftwareEngine`).
    Software,
    /// Filter + crossbar pipeline (`HyCimEngine`).
    HyCim,
    /// Multi-constraint filter bank (`BankEngine`).
    Bank,
    /// Penalty-encoding D-QUBO baseline (`DquboEngine`).
    Dqubo,
    /// Bit-parallel 64-lane software engine (`PackedEngine`).
    Packed,
}

/// Construction knobs [`EngineKind::build`] needs beyond the problem:
/// the annealing budget, the hardware fabrication seed, and whether
/// the per-iteration energy trace is recorded (the study harness and
/// the wire protocol need it for the iters-to-best statistic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineSettings {
    /// Annealing sweeps per solve (iterations = sweeps × dim).
    pub sweeps: usize,
    /// Seed fabricating the device-variability sample of the
    /// hardware-backed engines (ignored by software backends).
    pub hardware_seed: u64,
    /// Record per-iteration energies into the solution trace.
    pub record_trace: bool,
}

impl EngineSettings {
    /// Settings with trace recording on (the study/wire default).
    pub fn new(sweeps: usize, hardware_seed: u64) -> Self {
        Self {
            sweeps,
            hardware_seed,
            record_trace: true,
        }
    }
}

impl EngineKind {
    /// All engine kinds, in canonical order.
    pub const ALL: [EngineKind; 5] = [
        EngineKind::Software,
        EngineKind::HyCim,
        EngineKind::Bank,
        EngineKind::Dqubo,
        EngineKind::Packed,
    ];

    /// The recipe/JSON/wire tag of this backend.
    pub fn tag(self) -> &'static str {
        match self {
            EngineKind::Software => "software",
            EngineKind::HyCim => "hycim",
            EngineKind::Bank => "bank",
            EngineKind::Dqubo => "dqubo",
            EngineKind::Packed => "packed",
        }
    }

    /// Parses a backend tag.
    pub fn from_tag(tag: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.tag() == tag)
    }

    /// Builds the boxed engine of this kind for a problem (`'static`
    /// because the boxed engine owns its clone of the problem).
    ///
    /// # Errors
    ///
    /// Returns [`HycimError`] when the problem cannot be encoded or
    /// mapped onto this backend (e.g. constraint weights exceeding the
    /// filter's 64-unit columns).
    pub fn build<P: CopProblem + 'static>(
        self,
        problem: &P,
        settings: &EngineSettings,
    ) -> Result<Box<dyn Engine<P>>, HycimError> {
        let mut config = HyCimConfig::default().with_sweeps(settings.sweeps);
        if settings.record_trace {
            config = config.with_trace();
        }
        Ok(match self {
            EngineKind::Software => Box::new(SoftwareEngine::new(problem, &config)?),
            EngineKind::HyCim => {
                Box::new(HyCimEngine::new(problem, &config, settings.hardware_seed)?)
            }
            EngineKind::Bank => {
                Box::new(BankEngine::new(problem, &config, settings.hardware_seed)?)
            }
            EngineKind::Dqubo => {
                let mut dq = DquboConfig::default().with_sweeps(settings.sweeps);
                dq.record_trace = settings.record_trace;
                Box::new(DquboEngine::new(problem, &dq)?)
            }
            EngineKind::Packed => {
                // 64 bitplane lanes per solve; counts-only trace (the
                // iters-to-best proxy reads 0 on its empty energy
                // curve).
                let packed = PackedConfig::paper().with_sweeps(settings.sweeps);
                Box::new(PackedEngine::new(problem, &packed)?)
            }
        })
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hycim_cop::QkpInstance;

    fn fig7e() -> QkpInstance {
        let mut inst = QkpInstance::new(vec![10, 6, 8], vec![4, 7, 2], 9).unwrap();
        inst.set_pair_profit(0, 1, 3);
        inst.set_pair_profit(0, 2, 7);
        inst.set_pair_profit(1, 2, 2);
        inst
    }

    #[test]
    fn tags_round_trip() {
        for kind in EngineKind::ALL {
            assert_eq!(EngineKind::from_tag(kind.tag()), Some(kind));
            assert_eq!(kind.to_string(), kind.tag());
        }
        assert_eq!(EngineKind::from_tag("warp"), None);
    }

    #[test]
    fn builds_every_backend_with_matching_tag() {
        let inst = fig7e();
        let settings = EngineSettings::new(20, 1);
        for kind in EngineKind::ALL {
            let engine = kind.build(&inst, &settings).unwrap();
            assert_eq!(engine.backend(), kind.tag());
            // Trace recording flows through (packed aggregates lanes
            // into a counts-only trace, so its energy curve is empty).
            let has_curve = !engine.solve(3).trace.energies().is_empty();
            assert_eq!(has_curve, kind != EngineKind::Packed, "{kind}");
        }
    }

    #[test]
    fn trace_recording_can_be_disabled() {
        let inst = fig7e();
        let mut settings = EngineSettings::new(20, 1);
        settings.record_trace = false;
        for kind in [EngineKind::Software, EngineKind::Dqubo] {
            let engine = kind.build(&inst, &settings).unwrap();
            assert!(engine.solve(3).trace.energies().is_empty(), "{kind}");
        }
    }

    #[test]
    fn build_surfaces_encoding_errors() {
        // Item weight 100 > filter column limit 64.
        let inst = QkpInstance::new(vec![5, 5], vec![100, 3], 50).unwrap();
        assert!(EngineKind::HyCim
            .build(&inst, &EngineSettings::new(10, 1))
            .is_err());
    }
}
