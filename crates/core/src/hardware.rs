//! Hardware-backed [`AnnealState`] implementations: the glue between
//! the SA logic and the CiM circuit models (paper Fig. 3 / Fig. 6(b)).
//!
//! Per DESIGN.md §2, the SA hot loop does not re-simulate every cell
//! per iteration; it uses the crossbar's *stored* (quantized) matrix
//! for incremental deltas plus statistically matched readout noise,
//! and the inequality filter's fast path (which still includes
//! matchline noise, comparator offset and decision noise). The
//! device-accurate paths of `hycim-cim` validate this equivalence in
//! tests and generate the paper's validation figures.

use hycim_anneal::{AnnealState, FlipOutcome};
use hycim_cim::crossbar::{Crossbar, CrossbarConfig};
use hycim_cim::filter::{FilterBank, FilterConfig, InequalityFilter};
use hycim_cim::CimError;
use hycim_qubo::dqubo::DquboForm;
use hycim_qubo::quant::QuantizedMatrix;
use hycim_qubo::{Assignment, DeltaEngine, InequalityQubo, MultiInequalityQubo, QuboMatrix};
use rand::rngs::StdRng;
use rand::Rng;

/// The HyCiM pipeline state: inequality filter + CiM crossbar + SA
/// bookkeeping.
#[derive(Debug, Clone)]
pub struct HyCimHardwareState {
    /// The matrix the crossbar actually stores (quantized).
    matrix: QuboMatrix,
    filter: InequalityFilter,
    weights: Vec<u64>,
    x: Assignment,
    load: u64,
    /// Energy as reported by the hardware (accumulated noisy deltas) —
    /// what the SA logic sees.
    energy: f64,
    /// Per-readout energy noise sigma.
    readout_sigma: f64,
    /// Flip-delta backend over the stored matrix (local fields by
    /// default).
    deltas: DeltaEngine,
}

impl HyCimHardwareState {
    /// Builds the hardware state for an inequality-QUBO problem:
    /// programs the filter with the constraint and the crossbar with
    /// the objective, then initializes at `initial` (must be feasible).
    ///
    /// # Errors
    ///
    /// Propagates [`CimError`] from filter or crossbar construction.
    ///
    /// # Panics
    ///
    /// Panics if `initial` violates the constraint.
    pub fn build(
        problem: &InequalityQubo,
        filter_config: &FilterConfig,
        crossbar_config: &CrossbarConfig,
        initial: Assignment,
        rng: &mut StdRng,
    ) -> Result<Self, CimError> {
        assert!(
            problem.is_feasible(&initial),
            "initial configuration must be feasible"
        );
        let constraint = problem.constraint();
        let filter = InequalityFilter::build(
            constraint.weights(),
            constraint.capacity(),
            filter_config,
            rng,
        )?;
        let crossbar = Crossbar::program(problem.objective(), crossbar_config, rng)?;
        let matrix = crossbar.stored_matrix().clone();
        // Typical readout activates about half the programmed cells.
        let typical_active = crossbar.mapping().programmed_cells() / 2;
        let readout_sigma = crossbar.readout_sigma(typical_active);
        let load = constraint.load(&initial);
        let energy = matrix.energy(&initial);
        let deltas = DeltaEngine::local(&matrix, &initial);
        Ok(Self {
            matrix,
            filter,
            weights: constraint.weights().to_vec(),
            x: initial,
            load,
            energy,
            readout_sigma,
            deltas,
        })
    }

    /// Switches to dense O(n) row-scan deltas over the stored matrix
    /// (benchmark/equivalence use only — the default local-field
    /// backend reports the same deltas in O(1)).
    pub fn with_dense_deltas(mut self) -> Self {
        self.deltas = DeltaEngine::dense();
        self
    }

    /// Current constraint load.
    pub fn load(&self) -> u64 {
        self.load
    }

    /// The filter instance in use.
    pub fn filter(&self) -> &InequalityFilter {
        &self.filter
    }

    /// The stored (quantized) objective matrix.
    pub fn stored_matrix(&self) -> &QuboMatrix {
        &self.matrix
    }

    /// Per-readout energy noise sigma.
    pub fn readout_sigma(&self) -> f64 {
        self.readout_sigma
    }

    fn new_load(&self, i: usize) -> u64 {
        if self.x.get(i) {
            self.load - self.weights[i]
        } else {
            self.load + self.weights[i]
        }
    }
}

impl AnnealState for HyCimHardwareState {
    fn dim(&self) -> usize {
        self.matrix.dim()
    }

    fn assignment(&self) -> &Assignment {
        &self.x
    }

    fn energy(&self) -> f64 {
        self.energy
    }

    fn probe_flip(&mut self, i: usize, rng: &mut StdRng) -> FlipOutcome {
        let new_load = self.new_load(i);
        // The inequality filter evaluates the proposed configuration
        // (fast path: analog matchline + comparator noise included).
        let decision = self.filter.classify_load(new_load, rng);
        if !decision.is_feasible() {
            return FlipOutcome::Infeasible;
        }
        // Feasible: the crossbar computes the QUBO energy; modeled as
        // the stored matrix's exact delta plus readout noise.
        let delta =
            self.deltas.flip_delta(&self.matrix, &self.x, i) + gaussian(rng) * self.readout_sigma;
        FlipOutcome::Feasible { delta }
    }

    fn commit_flip(&mut self, i: usize, delta: f64) {
        if self.x.flip(i) {
            self.load += self.weights[i];
        } else {
            self.load -= self.weights[i];
        }
        self.deltas.commit_flip(&self.x, i);
        self.energy += delta;
    }

    fn probe_pair(&mut self, i: usize, j: usize, rng: &mut StdRng) -> FlipOutcome {
        assert_ne!(i, j, "pair flip needs two distinct bits");
        let signed = |on: bool, w: u64| if on { -(w as i64) } else { w as i64 };
        let new_load = self.load as i64
            + signed(self.x.get(i), self.weights[i])
            + signed(self.x.get(j), self.weights[j]);
        let decision = self.filter.classify_load(new_load.max(0) as u64, rng);
        if !decision.is_feasible() {
            return FlipOutcome::Infeasible;
        }
        let delta = self.deltas.pair_delta(&self.matrix, &self.x, i, j)
            + gaussian(rng) * self.readout_sigma;
        FlipOutcome::Feasible { delta }
    }

    fn commit_pair(&mut self, i: usize, j: usize, delta: f64) {
        for bit in [i, j] {
            if self.x.flip(bit) {
                self.load += self.weights[bit];
            } else {
                self.load -= self.weights[bit];
            }
        }
        self.deltas.commit_pair(&self.x, i, j);
        self.energy += delta;
    }

    fn verify_best(&mut self, rng: &mut StdRng) -> bool {
        // Paper Fig. 6(b): before the accepted configuration replaces
        // the reserved best x_o it passes the inequality evaluation
        // again. Two extra filter reads make a rare noisy
        // false-feasible admission vanishingly unlikely to persist.
        (0..2).all(|_| self.filter.classify_load(self.load, rng).is_feasible())
    }
}

/// The multi-constraint HyCiM pipeline state: a [`FilterBank`] (one
/// inequality filter per constraint) + CiM crossbar + SA bookkeeping.
///
/// The single-filter [`HyCimHardwareState`] can only gate one
/// inequality, which forces multi-constraint COPs (bin packing, the
/// multi-dimensional knapsack) onto aggregate-capacity relaxations.
/// This state programs the *exact* per-constraint form: every
/// proposed flip is classified by all `k` filters concurrently (in
/// hardware the bank shares one 4-phase matchline read, so the
/// latency is that of a single filter) and reaches the crossbar only
/// when every filter admits it.
///
/// Like the single-filter state, the SA hot loop tracks each
/// constraint's load `Σw⁽ᵏ⁾ᵢxᵢ` incrementally — O(k) per flip — and
/// uses the bank's fast path (matchline + comparator noise included)
/// rather than re-simulating every cell.
#[derive(Debug, Clone)]
pub struct BankHardwareState {
    /// The matrix the crossbar actually stores (quantized).
    matrix: QuboMatrix,
    bank: FilterBank,
    /// Per-constraint weight rows, in bank order.
    weights: Vec<Vec<u64>>,
    x: Assignment,
    /// Current per-constraint loads, index-aligned with the bank.
    loads: Vec<u64>,
    /// Proposed-loads buffer reused across probes (no per-iteration
    /// allocation in the hot loop).
    proposed: Vec<u64>,
    energy: f64,
    readout_sigma: f64,
    /// Flip-delta backend over the stored matrix (local fields by
    /// default).
    deltas: DeltaEngine,
}

impl BankHardwareState {
    /// Builds the hardware state for a multi-inequality QUBO problem:
    /// programs one filter per constraint and the crossbar with the
    /// objective, then initializes at `initial` (must satisfy every
    /// constraint).
    ///
    /// Device variability is sampled from `rng` filter-by-filter in
    /// constraint order, then for the crossbar — so a fixed hardware
    /// seed fabricates the same "chip instance" (bank included) on
    /// every build, which is what keeps bank solves bit-identical
    /// across threads and services.
    ///
    /// # Errors
    ///
    /// Propagates [`CimError`] from filter-bank or crossbar
    /// construction.
    ///
    /// # Panics
    ///
    /// Panics if `initial` violates any constraint.
    pub fn build(
        problem: &MultiInequalityQubo,
        filter_config: &FilterConfig,
        crossbar_config: &CrossbarConfig,
        initial: Assignment,
        rng: &mut StdRng,
    ) -> Result<Self, CimError> {
        assert!(
            problem.is_feasible(&initial),
            "initial configuration must satisfy every constraint"
        );
        let bank = FilterBank::build(problem.constraints(), filter_config, rng)?;
        let crossbar = Crossbar::program(problem.objective(), crossbar_config, rng)?;
        let matrix = crossbar.stored_matrix().clone();
        let typical_active = crossbar.mapping().programmed_cells() / 2;
        let readout_sigma = crossbar.readout_sigma(typical_active);
        let weights: Vec<Vec<u64>> = problem
            .constraints()
            .iter()
            .map(|c| c.weights().to_vec())
            .collect();
        let loads = problem.loads(&initial);
        let proposed = vec![0; loads.len()];
        let energy = matrix.energy(&initial);
        let deltas = DeltaEngine::local(&matrix, &initial);
        Ok(Self {
            matrix,
            bank,
            weights,
            x: initial,
            loads,
            proposed,
            energy,
            readout_sigma,
            deltas,
        })
    }

    /// Switches to dense O(n) row-scan deltas over the stored matrix
    /// (benchmark/equivalence use only).
    pub fn with_dense_deltas(mut self) -> Self {
        self.deltas = DeltaEngine::dense();
        self
    }

    /// Current per-constraint loads, in bank order.
    pub fn loads(&self) -> &[u64] {
        &self.loads
    }

    /// The filter bank in use.
    pub fn bank(&self) -> &FilterBank {
        &self.bank
    }

    /// The stored (quantized) objective matrix.
    pub fn stored_matrix(&self) -> &QuboMatrix {
        &self.matrix
    }

    /// Per-readout energy noise sigma.
    pub fn readout_sigma(&self) -> f64 {
        self.readout_sigma
    }

    /// Fills `self.proposed` with the loads after flipping `bits`
    /// (distinct indices).
    fn propose(&mut self, bits: &[usize]) {
        for (k, row) in self.weights.iter().enumerate() {
            let mut load = self.loads[k] as i64;
            for &i in bits {
                let w = row[i] as i64;
                load += if self.x.get(i) { -w } else { w };
            }
            debug_assert!(load >= 0, "loads are sums of selected non-negative weights");
            self.proposed[k] = load.max(0) as u64;
        }
    }

    /// Applies a committed flip of `bits` to the load caches.
    fn apply(&mut self, bits: &[usize]) {
        for &i in bits {
            let selected = self.x.flip(i);
            for (k, row) in self.weights.iter().enumerate() {
                if selected {
                    self.loads[k] += row[i];
                } else {
                    self.loads[k] -= row[i];
                }
            }
        }
    }
}

impl AnnealState for BankHardwareState {
    fn dim(&self) -> usize {
        self.matrix.dim()
    }

    fn assignment(&self) -> &Assignment {
        &self.x
    }

    fn energy(&self) -> f64 {
        self.energy
    }

    fn probe_flip(&mut self, i: usize, rng: &mut StdRng) -> FlipOutcome {
        self.propose(&[i]);
        // All k filters evaluate the proposal concurrently (fast
        // path: analog matchline + comparator noise per filter).
        let decision = self.bank.classify_loads(&self.proposed, rng);
        if !decision.is_feasible() {
            return FlipOutcome::Infeasible;
        }
        let delta =
            self.deltas.flip_delta(&self.matrix, &self.x, i) + gaussian(rng) * self.readout_sigma;
        FlipOutcome::Feasible { delta }
    }

    fn commit_flip(&mut self, i: usize, delta: f64) {
        self.apply(&[i]);
        self.deltas.commit_flip(&self.x, i);
        self.energy += delta;
    }

    fn probe_pair(&mut self, i: usize, j: usize, rng: &mut StdRng) -> FlipOutcome {
        assert_ne!(i, j, "pair flip needs two distinct bits");
        self.propose(&[i, j]);
        let decision = self.bank.classify_loads(&self.proposed, rng);
        if !decision.is_feasible() {
            return FlipOutcome::Infeasible;
        }
        let delta = self.deltas.pair_delta(&self.matrix, &self.x, i, j)
            + gaussian(rng) * self.readout_sigma;
        FlipOutcome::Feasible { delta }
    }

    fn commit_pair(&mut self, i: usize, j: usize, delta: f64) {
        self.apply(&[i, j]);
        self.deltas.commit_pair(&self.x, i, j);
        self.energy += delta;
    }

    fn verify_best(&mut self, rng: &mut StdRng) -> bool {
        // Same Fig. 6(b) protocol as the single filter: the candidate
        // best re-passes the whole bank twice, so a rare noisy
        // false-feasible admission on any filter cannot persist.
        (0..2).all(|_| self.bank.classify_loads(&self.loads, rng).is_feasible())
    }
}

/// The D-QUBO baseline state: the penalty-form matrix on a (much
/// larger) crossbar, no filter — every move is admissible and pays a
/// full crossbar evaluation (paper Sec 2.1, Fig. 10).
///
/// The expanded matrix is quantized at
/// `⌈log₂(Q_ij)MAX⌉` bits (or an explicit override for ablations) but
/// not materialized as a cell array: at n ≈ 2600 and 25 bits that
/// would be hundreds of millions of cells (the very overhead Fig. 9(c)
/// charges against D-QUBO).
#[derive(Debug, Clone)]
pub struct DquboHardwareState {
    matrix: QuboMatrix,
    offset: f64,
    x: Assignment,
    energy: f64,
    readout_sigma: f64,
    num_items: usize,
    /// Flip-delta backend over the stored matrix (local fields by
    /// default).
    deltas: DeltaEngine,
}

impl DquboHardwareState {
    /// Builds the baseline state from a D-QUBO form. `bits` overrides
    /// the quantization width (`None` → `⌈log₂(Q_ij)MAX⌉`, the paper's
    /// setting, which is lossless for integer penalties).
    pub fn build(
        form: &DquboForm,
        bits: Option<u32>,
        current_sigma_rel: f64,
        initial: Assignment,
    ) -> Self {
        assert_eq!(initial.len(), form.dim(), "configuration length mismatch");
        let bits = bits.unwrap_or_else(|| hycim_qubo::quant::matrix_bits(form.matrix()));
        let quant = QuantizedMatrix::quantize(form.matrix(), bits);
        let matrix = quant.dequantize();
        // Same readout model as the HyCiM crossbar: σ grows with the
        // active cell count, which for the D-QUBO matrix is large.
        let typical_active = matrix.nonzeros() * bits as usize / 2;
        let readout_sigma = current_sigma_rel * (typical_active as f64).sqrt() * quant.scale();
        let energy = matrix.energy(&initial) + form.offset();
        let deltas = DeltaEngine::local(&matrix, &initial);
        Self {
            matrix,
            offset: form.offset(),
            x: initial,
            energy,
            readout_sigma,
            num_items: form.num_items(),
            deltas,
        }
    }

    /// Switches to dense O(n) row-scan deltas over the stored matrix
    /// (benchmark/equivalence use only).
    pub fn with_dense_deltas(mut self) -> Self {
        self.deltas = DeltaEngine::dense();
        self
    }

    /// Item part of the current configuration.
    pub fn item_assignment(&self) -> Assignment {
        self.x.truncated(self.num_items)
    }

    /// Per-readout energy noise sigma.
    pub fn readout_sigma(&self) -> f64 {
        self.readout_sigma
    }

    /// The stored (quantized) penalty matrix.
    pub fn stored_matrix(&self) -> &QuboMatrix {
        &self.matrix
    }

    /// Constant offset of the penalty expansion.
    pub fn offset(&self) -> f64 {
        self.offset
    }
}

impl AnnealState for DquboHardwareState {
    fn dim(&self) -> usize {
        self.matrix.dim()
    }

    fn assignment(&self) -> &Assignment {
        &self.x
    }

    fn energy(&self) -> f64 {
        self.energy
    }

    fn probe_flip(&mut self, i: usize, rng: &mut StdRng) -> FlipOutcome {
        FlipOutcome::Feasible {
            delta: self.deltas.flip_delta(&self.matrix, &self.x, i)
                + gaussian(rng) * self.readout_sigma,
        }
    }

    fn commit_flip(&mut self, i: usize, delta: f64) {
        self.x.flip(i);
        self.deltas.commit_flip(&self.x, i);
        self.energy += delta;
    }

    fn probe_pair(&mut self, i: usize, j: usize, rng: &mut StdRng) -> FlipOutcome {
        assert_ne!(i, j, "pair flip needs two distinct bits");
        let delta = self.deltas.pair_delta(&self.matrix, &self.x, i, j)
            + gaussian(rng) * self.readout_sigma;
        FlipOutcome::Feasible { delta }
    }

    fn commit_pair(&mut self, i: usize, j: usize, delta: f64) {
        self.x.flip(i);
        self.x.flip(j);
        self.deltas.commit_pair(&self.x, i, j);
        self.energy += delta;
    }
}

fn gaussian(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.random::<f64>();
        if u1 > f64::MIN_POSITIVE {
            let u2: f64 = rng.random::<f64>();
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hycim_cop::generator::QkpGenerator;
    use hycim_fefet::VariationModel;
    use hycim_qubo::dqubo::{AuxEncoding, PenaltyWeights};
    use rand::SeedableRng;

    fn noiseless_filter_config() -> FilterConfig {
        FilterConfig::default()
            .with_variation(VariationModel::none())
            .with_comparator(hycim_cim::filter::ComparatorConfig::ideal())
    }

    #[test]
    fn hycim_state_matches_software_when_noise_free() {
        let inst = QkpGenerator::new(25, 0.5).generate(1);
        let iq = inst.to_inequality_qubo().unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let cb_cfg = CrossbarConfig::paper().with_variation(VariationModel::none());
        let mut hw = HyCimHardwareState::build(
            &iq,
            &noiseless_filter_config(),
            &cb_cfg,
            Assignment::zeros(25),
            &mut rng,
        )
        .unwrap();
        // Random walk: energies must track the exact objective (7-bit
        // quantization of ≤100 profits is lossless).
        for step in 0..300 {
            let i = step % 25;
            match hw.probe_flip(i, &mut rng) {
                FlipOutcome::Feasible { delta } => {
                    hw.commit_flip(i, delta);
                    let expected = iq.objective_energy(hw.assignment());
                    assert!(
                        (hw.energy() - expected).abs() < 1e-6,
                        "hardware energy diverged at step {step}"
                    );
                    assert!(iq.is_feasible(hw.assignment()));
                }
                FlipOutcome::Infeasible => {
                    // Verify the veto was correct.
                    let mut probe = hw.assignment().clone();
                    probe.flip(i);
                    assert!(
                        !iq.is_feasible(&probe),
                        "ideal filter vetoed a feasible flip"
                    );
                }
            }
        }
    }

    #[test]
    fn hycim_state_rejects_infeasible_start() {
        let inst = QkpGenerator::new(10, 0.5).generate(3);
        let iq = inst.to_inequality_qubo().unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let heavy = Assignment::ones_vec(10);
        if !iq.is_feasible(&heavy) {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                HyCimHardwareState::build(
                    &iq,
                    &noiseless_filter_config(),
                    &CrossbarConfig::paper(),
                    heavy,
                    &mut rng,
                )
            }));
            assert!(result.is_err());
        }
    }

    #[test]
    fn noisy_probes_have_spread() {
        let inst = QkpGenerator::new(30, 1.0).generate(5);
        let iq = inst.to_inequality_qubo().unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let mut hw = HyCimHardwareState::build(
            &iq,
            &FilterConfig::default(),
            &CrossbarConfig::paper(),
            Assignment::zeros(30),
            &mut rng,
        )
        .unwrap();
        assert!(hw.readout_sigma() > 0.0);
        let deltas: Vec<f64> = (0..50)
            .filter_map(|_| match hw.probe_flip(0, &mut rng) {
                FlipOutcome::Feasible { delta } => Some(delta),
                FlipOutcome::Infeasible => None,
            })
            .collect();
        assert!(deltas.len() > 10);
        assert!(deltas.iter().any(|&d| (d - deltas[0]).abs() > 1e-12));
    }

    /// A 4-item, 2-bin packing in multi-inequality form.
    fn bank_problem() -> (hycim_cop::binpack::BinPacking, MultiInequalityQubo) {
        use hycim_cop::CopProblem;
        let bp = hycim_cop::binpack::BinPacking::new(vec![4, 5, 3, 6], 9, 2).unwrap();
        let mq = bp.to_multi_inequality_qubo().unwrap();
        (bp, mq)
    }

    #[test]
    fn bank_state_matches_software_when_noise_free() {
        let (bp, mq) = bank_problem();
        let mut rng = StdRng::seed_from_u64(21);
        let cb_cfg = CrossbarConfig::paper().with_variation(VariationModel::none());
        let mut hw = BankHardwareState::build(
            &mq,
            &noiseless_filter_config(),
            &cb_cfg,
            Assignment::zeros(mq.dim()),
            &mut rng,
        )
        .unwrap();
        assert_eq!(hw.bank().len(), 2);
        // Random walk: energies must track the exact objective and the
        // trajectory must stay inside every bin's capacity.
        for step in 0..400 {
            let i = step % mq.dim();
            match hw.probe_flip(i, &mut rng) {
                FlipOutcome::Feasible { delta } => {
                    hw.commit_flip(i, delta);
                    let expected = mq.objective_energy(hw.assignment());
                    assert!(
                        (hw.energy() - expected).abs() < 1e-6,
                        "bank energy diverged at step {step}"
                    );
                    assert!(mq.is_feasible(hw.assignment()));
                    assert_eq!(hw.loads(), mq.loads(hw.assignment()).as_slice());
                    for k in 0..bp.num_bins() {
                        assert!(bp.bin_load(hw.assignment(), k) <= bp.capacity());
                    }
                    assert!(hw.verify_best(&mut rng));
                }
                FlipOutcome::Infeasible => {
                    let mut probe = hw.assignment().clone();
                    probe.flip(i);
                    assert!(
                        !mq.is_feasible(&probe),
                        "ideal bank vetoed a feasible flip at step {step}"
                    );
                }
            }
        }
    }

    #[test]
    fn bank_pair_probe_matches_sequential_arithmetic() {
        let (_, mq) = bank_problem();
        let mut rng = StdRng::seed_from_u64(22);
        let cb_cfg = CrossbarConfig::paper().with_variation(VariationModel::none());
        let mut hw = BankHardwareState::build(
            &mq,
            &noiseless_filter_config(),
            &cb_cfg,
            Assignment::zeros(mq.dim()),
            &mut rng,
        )
        .unwrap();
        // A pair flip landing inside both bins is admitted with the
        // exact cross-term delta.
        if let FlipOutcome::Feasible { delta } = hw.probe_pair(0, 3, &mut rng) {
            hw.commit_pair(0, 3, delta);
            let expected = mq.objective_energy(hw.assignment());
            assert!((hw.energy() - expected).abs() < 1e-6);
            assert_eq!(hw.loads(), mq.loads(hw.assignment()).as_slice());
        } else {
            panic!("items 0 (bin 0) and 1 (bin 1) fit their bins");
        }
        // A pair flip overloading one bin is vetoed: items 1 and 2
        // into bin 0 on top of item 0 → 4 + 5 + 3 = 12 > 9.
        // Current x has vars 0 (item0→bin0) and 3 (item1→bin1) set.
        let before = hw.assignment().clone();
        match hw.probe_pair(2, 4, &mut rng) {
            FlipOutcome::Infeasible => {}
            FlipOutcome::Feasible { .. } => {
                panic!("overloading bin 0 must be vetoed")
            }
        }
        assert_eq!(hw.assignment(), &before, "probe must not mutate");
    }

    #[test]
    fn bank_state_rejects_infeasible_start() {
        let (_, mq) = bank_problem();
        let mut rng = StdRng::seed_from_u64(23);
        // Everything into bin 0: violates its capacity.
        let mut heavy = Assignment::zeros(mq.dim());
        for i in 0..4 {
            heavy.set(i * 2, true);
        }
        assert!(!mq.is_feasible(&heavy));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            BankHardwareState::build(
                &mq,
                &noiseless_filter_config(),
                &CrossbarConfig::paper(),
                heavy,
                &mut rng,
            )
        }));
        assert!(result.is_err());
    }

    #[test]
    fn bank_state_handles_mkp_dimensions() {
        use hycim_cop::CopProblem;
        let mkp = hycim_cop::mkp::MkpGenerator::new(12, 3).generate(5);
        let mq = mkp.to_multi_inequality_qubo().unwrap();
        let mut rng = StdRng::seed_from_u64(24);
        let mut hw = BankHardwareState::build(
            &mq,
            &noiseless_filter_config(),
            &CrossbarConfig::paper().with_variation(VariationModel::none()),
            Assignment::zeros(12),
            &mut rng,
        )
        .unwrap();
        assert_eq!(hw.bank().len(), 3);
        for step in 0..300 {
            let i = step % 12;
            if let FlipOutcome::Feasible { delta } = hw.probe_flip(i, &mut rng) {
                hw.commit_flip(i, delta);
                assert!(mkp.is_feasible(hw.assignment()), "step {step} violated");
            }
        }
    }

    /// Dense and local-field backends are bit-identical on the noisy
    /// single-filter hardware state: the 7-bit quantization of integer
    /// QKP profits is lossless, so both backends report the exact same
    /// deltas, consume the same RNG stream, and take the same accept
    /// decisions — the whole trajectory matches.
    #[test]
    fn hycim_state_dense_and_local_runs_are_bit_identical() {
        use hycim_anneal::{Annealer, GeometricSchedule};
        let inst = QkpGenerator::new(30, 0.5).generate(31);
        let iq = inst.to_inequality_qubo().unwrap();
        let annealer = Annealer::new(GeometricSchedule::new(40.0, 0.995), 800);
        let build = |rng: &mut StdRng| {
            HyCimHardwareState::build(
                &iq,
                &FilterConfig::default(),
                &CrossbarConfig::paper(),
                Assignment::zeros(30),
                rng,
            )
            .unwrap()
        };
        let mut hw_rng = StdRng::seed_from_u64(7);
        let mut local = build(&mut hw_rng);
        let mut hw_rng = StdRng::seed_from_u64(7);
        let mut dense = build(&mut hw_rng).with_dense_deltas();
        let mut rng_a = StdRng::seed_from_u64(99);
        let mut rng_b = StdRng::seed_from_u64(99);
        let trace_local = annealer.run(&mut local, &mut rng_a);
        let trace_dense = annealer.run(&mut dense, &mut rng_b);
        assert_eq!(trace_local, trace_dense);
        assert_eq!(local.assignment(), dense.assignment());
        assert_eq!(local.energy(), dense.energy());
        assert_eq!(local.load(), dense.load());
    }

    /// Same bit-identity law on the filter-bank state (MKP, 3
    /// constraints, noisy filters).
    #[test]
    fn bank_state_dense_and_local_runs_are_bit_identical() {
        use hycim_anneal::{Annealer, GeometricSchedule};
        use hycim_cop::CopProblem;
        let mkp = hycim_cop::mkp::MkpGenerator::new(14, 3).generate(8);
        let mq = mkp.to_multi_inequality_qubo().unwrap();
        let annealer = Annealer::new(GeometricSchedule::new(40.0, 0.99), 600);
        let build = |rng: &mut StdRng| {
            BankHardwareState::build(
                &mq,
                &FilterConfig::default(),
                &CrossbarConfig::paper(),
                Assignment::zeros(mq.dim()),
                rng,
            )
            .unwrap()
        };
        let mut hw_rng = StdRng::seed_from_u64(11);
        let mut local = build(&mut hw_rng);
        let mut hw_rng = StdRng::seed_from_u64(11);
        let mut dense = build(&mut hw_rng).with_dense_deltas();
        let mut rng_a = StdRng::seed_from_u64(42);
        let mut rng_b = StdRng::seed_from_u64(42);
        let trace_local = annealer.run(&mut local, &mut rng_a);
        let trace_dense = annealer.run(&mut dense, &mut rng_b);
        assert_eq!(trace_local, trace_dense);
        assert_eq!(local.loads(), dense.loads());
    }

    /// Same bit-identity law on the filterless D-QUBO baseline state
    /// (integer penalties are lossless at the default bit width).
    #[test]
    fn dqubo_state_dense_and_local_runs_are_bit_identical() {
        use hycim_anneal::{Annealer, GeometricSchedule};
        let inst = QkpGenerator::new(12, 0.5)
            .with_capacity_range(10, 40)
            .generate(13);
        let form = inst
            .to_dqubo(PenaltyWeights::PAPER, AuxEncoding::Binary)
            .unwrap();
        let annealer = Annealer::new(GeometricSchedule::new(60.0, 0.99), 600);
        let mut local = DquboHardwareState::build(&form, None, 0.02, Assignment::zeros(form.dim()));
        let mut dense = DquboHardwareState::build(&form, None, 0.02, Assignment::zeros(form.dim()))
            .with_dense_deltas();
        let mut rng_a = StdRng::seed_from_u64(5);
        let mut rng_b = StdRng::seed_from_u64(5);
        let trace_local = annealer.run(&mut local, &mut rng_a);
        let trace_dense = annealer.run(&mut dense, &mut rng_b);
        assert_eq!(trace_local, trace_dense);
        assert_eq!(local.assignment(), dense.assignment());
    }

    #[test]
    fn dqubo_state_energy_tracks_form() {
        let inst = QkpGenerator::new(8, 0.75)
            .with_capacity_range(10, 30)
            .generate(7);
        let form = inst
            .to_dqubo(PenaltyWeights::PAPER, AuxEncoding::OneHot)
            .unwrap();
        let mut state = DquboHardwareState::build(&form, None, 0.0, Assignment::zeros(form.dim()));
        let mut rng = StdRng::seed_from_u64(8);
        for step in 0..200 {
            let i = step % form.dim();
            if let FlipOutcome::Feasible { delta } = state.probe_flip(i, &mut rng) {
                state.commit_flip(i, delta);
            }
        }
        // Noise-free: tracked energy equals the exact form energy
        // (default bits are lossless for integer penalties).
        let expected = form.energy(state.assignment());
        assert!(
            (state.energy() - expected).abs() < 1e-6,
            "dqubo energy {} vs exact {expected}",
            state.energy()
        );
        assert_eq!(state.item_assignment().len(), 8);
    }

    #[test]
    fn dqubo_pair_probe_matches_sequential_flips() {
        let inst = QkpGenerator::new(6, 1.0)
            .with_capacity_range(10, 20)
            .generate(9);
        let form = inst
            .to_dqubo(PenaltyWeights::PAPER, AuxEncoding::Binary)
            .unwrap();
        let mut state = DquboHardwareState::build(&form, None, 0.0, Assignment::zeros(form.dim()));
        let mut rng = StdRng::seed_from_u64(10);
        let before = state.energy();
        if let FlipOutcome::Feasible { delta } = state.probe_pair(0, 3, &mut rng) {
            state.commit_pair(0, 3, delta);
        }
        let expected = form.energy(state.assignment());
        assert!((state.energy() - expected).abs() < 1e-6);
        assert_ne!(state.energy(), before);
    }
}
