//! Formatting helpers for the paper's summary table (Table 1) and the
//! Fig. 9 hardware comparison rows.

use std::fmt::Write as _;

/// One row of the paper's Table 1 (QUBO solver summary).
#[derive(Debug, Clone, PartialEq)]
pub struct SolverRow {
    /// Citation tag (e.g. "\[29\]" or "This work").
    pub reference: String,
    /// Target COP.
    pub cop: String,
    /// Constraint type handled.
    pub constraint: String,
    /// Whether the solver reduces the search space.
    pub search_space_reduction: bool,
    /// COP-to-QUBO transformation used.
    pub transformation: String,
    /// Crossbar device technology.
    pub hardware: String,
    /// Problem size demonstrated.
    pub problem_size: String,
    /// Average success rate in percent, when reported.
    pub success_rate: Option<f64>,
}

/// The literature rows of Table 1 (values cited from the paper).
pub fn literature_rows() -> Vec<SolverRow> {
    vec![
        SolverRow {
            reference: "[29]".into(),
            cop: "Max-Cut".into(),
            constraint: "-".into(),
            search_space_reduction: false,
            transformation: "D-QUBO".into(),
            hardware: "Memristor".into(),
            problem_size: "60 node".into(),
            success_rate: Some(65.0),
        },
        SolverRow {
            reference: "[30]".into(),
            cop: "Spin Glass".into(),
            constraint: "-".into(),
            search_space_reduction: false,
            transformation: "D-QUBO".into(),
            hardware: "RRAM".into(),
            problem_size: "15 node".into(),
            success_rate: None,
        },
        SolverRow {
            reference: "[31]".into(),
            cop: "Traveling Salesman".into(),
            constraint: "Equality".into(),
            search_space_reduction: false,
            transformation: "D-QUBO".into(),
            hardware: "RRAM".into(),
            problem_size: "100 node".into(),
            success_rate: Some(31.0),
        },
        SolverRow {
            reference: "[3]".into(),
            cop: "Graph Coloring".into(),
            constraint: "Equality".into(),
            search_space_reduction: false,
            transformation: "D-QUBO".into(),
            hardware: "FeFET".into(),
            problem_size: "21 node".into(),
            success_rate: None,
        },
        SolverRow {
            reference: "[32]".into(),
            cop: "Knapsack".into(),
            constraint: "Inequality".into(),
            search_space_reduction: false,
            transformation: "D-QUBO".into(),
            hardware: "RRAM".into(),
            problem_size: "10 node".into(),
            success_rate: Some(92.4),
        },
    ]
}

/// The "This work" row with a measured success rate.
pub fn this_work_row(success_rate: f64) -> SolverRow {
    SolverRow {
        reference: "This work".into(),
        cop: "Quadratic Knapsack".into(),
        constraint: "Inequality".into(),
        search_space_reduction: true,
        transformation: "Inequality-QUBO".into(),
        hardware: "FeFET".into(),
        problem_size: "100 node".into(),
        success_rate: Some(success_rate),
    }
}

/// Renders Table 1 as aligned plain text.
pub fn render_table(rows: &[SolverRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:<20} {:<11} {:<10} {:<16} {:<10} {:<10} {:>8}",
        "Reference", "COP", "Constraint", "SS-Red.", "Transformation", "Hardware", "Size", "Succ.%"
    );
    let _ = writeln!(out, "{}", "-".repeat(102));
    for row in rows {
        let rate = row
            .success_rate
            .map(|r| format!("{r:.2}"))
            .unwrap_or_else(|| "-".into());
        let _ = writeln!(
            out,
            "{:<10} {:<20} {:<11} {:<10} {:<16} {:<10} {:<10} {:>8}",
            row.reference,
            row.cop,
            row.constraint,
            if row.search_space_reduction {
                "Yes"
            } else {
                "No"
            },
            row.transformation,
            row.hardware,
            row.problem_size,
            rate
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literature_rows_match_paper() {
        let rows = literature_rows();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].success_rate, Some(65.0));
        assert_eq!(rows[2].success_rate, Some(31.0));
        assert_eq!(rows[4].success_rate, Some(92.4));
        assert!(rows.iter().all(|r| !r.search_space_reduction));
        assert!(rows.iter().all(|r| r.transformation == "D-QUBO"));
    }

    #[test]
    fn this_work_is_inequality_qubo() {
        let row = this_work_row(98.54);
        assert!(row.search_space_reduction);
        assert_eq!(row.transformation, "Inequality-QUBO");
        assert_eq!(row.success_rate, Some(98.54));
    }

    #[test]
    fn render_contains_all_references() {
        let mut rows = literature_rows();
        rows.push(this_work_row(98.5));
        let text = render_table(&rows);
        for r in &rows {
            assert!(text.contains(&r.reference), "missing {}", r.reference);
        }
        assert!(text.contains("Inequality-QUBO"));
    }
}
