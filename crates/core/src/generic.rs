//! Hardware solving for *arbitrary* inequality-QUBO problems — not
//! just QKP. The paper frames the framework as general (Sec 3.2:
//! "COPs without constraints or with equality constraints can be
//! considered as special cases"); this solver accepts any
//! [`InequalityQubo`], so Max-Cut (trivial constraint), penalty-encoded
//! equality problems, or custom models run on the same filter +
//! crossbar + SA pipeline.

use hycim_anneal::{Annealer, GeometricSchedule};
use hycim_qubo::{Assignment, InequalityQubo};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{calibrate_t0, HyCimConfig, HyCimHardwareState, HycimError};

/// Result of a generic inequality-QUBO solve.
#[derive(Debug, Clone, PartialEq)]
pub struct GenericSolution {
    /// Best configuration found (always constraint-feasible).
    pub assignment: Assignment,
    /// Exact objective energy `xᵀQx` of the best configuration,
    /// re-evaluated in software.
    pub energy: f64,
    /// Energy the noisy hardware reported for its best state.
    pub reported_energy: f64,
    /// Iterations spent on filtered (infeasible) proposals.
    pub filtered_proposals: usize,
}

/// HyCiM pipeline for any [`InequalityQubo`] problem.
///
/// # Example
///
/// ```
/// use hycim_core::generic::GenericSolver;
/// use hycim_core::HyCimConfig;
/// use hycim_qubo::{InequalityQubo, LinearConstraint, QuboMatrix};
///
/// # fn main() -> Result<(), hycim_core::HycimError> {
/// let mut q = QuboMatrix::zeros(3);
/// q.set(0, 0, -10.0);
/// q.set(2, 2, -8.0);
/// q.set(0, 2, -14.0);
/// let iq = InequalityQubo::new(q, LinearConstraint::new(vec![4, 7, 2], 9)
///     .map_err(hycim_core::HycimError::from)?)?;
/// let solver = GenericSolver::new(&iq, &HyCimConfig::default().with_sweeps(50), 1)?;
/// let solution = solver.solve(3);
/// assert_eq!(solution.energy, -32.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GenericSolver {
    problem: InequalityQubo,
    config: HyCimConfig,
    hardware_seed: u64,
}

impl GenericSolver {
    /// Builds the solver, validating the hardware mapping eagerly.
    ///
    /// # Errors
    ///
    /// Returns [`HycimError`] if the constraint or matrix cannot be
    /// mapped onto the filter/crossbar models.
    pub fn new(
        problem: &InequalityQubo,
        config: &HyCimConfig,
        hardware_seed: u64,
    ) -> Result<Self, HycimError> {
        let mut rng = StdRng::seed_from_u64(hardware_seed);
        let _ = HyCimHardwareState::build(
            problem,
            &config.filter,
            &config.crossbar,
            Assignment::zeros(problem.dim()),
            &mut rng,
        )?;
        Ok(Self {
            problem: problem.clone(),
            config: config.clone(),
            hardware_seed,
        })
    }

    /// The problem being solved.
    pub fn problem(&self) -> &InequalityQubo {
        &self.problem
    }

    /// Solves from a seed-derived random *feasible* start (greedy
    /// random insertion against the constraint).
    pub fn solve(&self, seed: u64) -> GenericSolution {
        let mut rng = StdRng::seed_from_u64(seed);
        let initial = self.random_feasible(&mut rng);
        self.solve_from(&initial, seed)
    }

    /// Solves from an explicit feasible start.
    ///
    /// # Panics
    ///
    /// Panics if `initial` violates the constraint or has the wrong
    /// length.
    pub fn solve_from(&self, initial: &Assignment, seed: u64) -> GenericSolution {
        let mut hw_rng = StdRng::seed_from_u64(self.hardware_seed);
        let mut state = HyCimHardwareState::build(
            &self.problem,
            &self.config.filter,
            &self.config.crossbar,
            initial.clone(),
            &mut hw_rng,
        )
        .expect("mapping validated at construction");
        let mut rng = StdRng::seed_from_u64(seed);
        let iterations = self.config.sweeps * self.problem.dim();
        let t0 = calibrate_t0(&mut state, self.config.t0_fraction, 64, &mut rng);
        let alpha = self.config.t_end_fraction.powf(1.0 / iterations as f64);
        let annealer = Annealer::new(GeometricSchedule::new(t0, alpha), iterations)
            .with_swap_probability(self.config.swap_probability)
            .without_trace();
        let trace = annealer.run(&mut state, &mut rng);
        let assignment = trace.best_assignment().clone();
        GenericSolution {
            energy: self.problem.objective_energy(&assignment),
            reported_energy: trace.best_energy(),
            filtered_proposals: trace.rejected_infeasible(),
            assignment,
        }
    }

    /// Draws a random feasible configuration by shuffled greedy
    /// insertion against the constraint.
    fn random_feasible(&self, rng: &mut StdRng) -> Assignment {
        let n = self.problem.dim();
        let c = self.problem.constraint();
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        let mut x = Assignment::zeros(n);
        let mut load = 0u64;
        for i in order {
            let w = c.weights()[i];
            if load + w <= c.capacity() && rng.random_bool(0.7) {
                x.set(i, true);
                load += w;
            }
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hycim_cop::maxcut::MaxCut;
    use hycim_qubo::{LinearConstraint, QuboMatrix};

    #[test]
    fn solves_maxcut_through_hardware() {
        // An unconstrained problem through the full hardware pipeline.
        let g = MaxCut::random(20, 0.4, 1);
        let (_, opt) = g.brute_force().unwrap();
        let iq = g.to_inequality_qubo().unwrap();
        let solver = GenericSolver::new(&iq, &HyCimConfig::default().with_sweeps(300), 1).unwrap();
        let solution = solver.solve(2);
        let cut = g.cut_value(&solution.assignment);
        assert!(
            cut as f64 >= 0.9 * opt as f64,
            "cut {cut} below 90% of optimum {opt}"
        );
        // Trivial constraint: the filter almost never fires (noise can
        // produce a handful of spurious rejections at the boundary).
        let total = 300 * 20;
        assert!(
            solution.filtered_proposals < total / 100,
            "{} filtered proposals on an unconstrained problem",
            solution.filtered_proposals
        );
    }

    #[test]
    fn solves_constrained_problem() {
        let mut q = QuboMatrix::zeros(3);
        q.set(0, 0, -10.0);
        q.set(2, 2, -8.0);
        q.set(0, 2, -14.0);
        let iq = InequalityQubo::new(q, LinearConstraint::new(vec![4, 7, 2], 9).unwrap()).unwrap();
        let solver = GenericSolver::new(&iq, &HyCimConfig::default().with_sweeps(60), 5).unwrap();
        let solution = solver.solve(6);
        assert_eq!(solution.energy, -32.0);
        assert!(iq.is_feasible(&solution.assignment));
    }

    #[test]
    fn reported_energy_tracks_exact_within_noise() {
        let mut q = QuboMatrix::zeros(4);
        for i in 0..4 {
            q.set(i, i, -(10.0 + i as f64));
        }
        let iq =
            InequalityQubo::new(q, LinearConstraint::new(vec![1, 1, 1, 1], 4).unwrap()).unwrap();
        let solver = GenericSolver::new(&iq, &HyCimConfig::default().with_sweeps(40), 7).unwrap();
        let solution = solver.solve(8);
        assert!(
            (solution.reported_energy - solution.energy).abs()
                < 0.05 * solution.energy.abs().max(1.0),
            "reported {} vs exact {}",
            solution.reported_energy,
            solution.energy
        );
    }

    #[test]
    fn unmappable_problem_rejected() {
        let q = QuboMatrix::zeros(2);
        let iq = InequalityQubo::new(q, LinearConstraint::new(vec![100, 1], 50).unwrap()).unwrap();
        assert!(GenericSolver::new(&iq, &HyCimConfig::default(), 1).is_err());
    }
}
