use hycim_anneal::{Annealer, GeometricSchedule, SoftwareState};
use hycim_cim::crossbar::CrossbarConfig;
use hycim_cim::filter::FilterConfig;
use hycim_cop::{solvers, QkpInstance};
use hycim_qubo::{Assignment, InequalityQubo};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{calibrate_t0, HyCimHardwareState, HycimError, Solution};

/// Configuration of the HyCiM solver pipeline.
#[derive(Debug, Clone)]
pub struct HyCimConfig {
    /// Annealing sweeps; each sweep proposes `n` moves (the paper's
    /// "1000 iterations", read as full-network updates — see
    /// EXPERIMENTS.md).
    pub sweeps: usize,
    /// Fraction of exchange (swap) moves.
    pub swap_probability: f64,
    /// T₀ = `t0_fraction × mean|Δ|` at the initial state.
    pub t0_fraction: f64,
    /// Final temperature as a fraction of T₀.
    pub t_end_fraction: f64,
    /// Inequality filter hardware configuration.
    pub filter: FilterConfig,
    /// Crossbar hardware configuration.
    pub crossbar: CrossbarConfig,
    /// Record per-iteration energies (Fig. 7(f) traces) — off by
    /// default to keep bulk experiments lean.
    pub record_trace: bool,
}

impl HyCimConfig {
    /// The paper-calibrated defaults (Sec 4).
    pub fn paper() -> Self {
        Self {
            sweeps: 1000,
            swap_probability: 0.5,
            t0_fraction: 0.5,
            t_end_fraction: 0.002,
            filter: FilterConfig::paper(),
            crossbar: CrossbarConfig::paper(),
            record_trace: false,
        }
    }

    /// Overrides the sweep count.
    ///
    /// # Panics
    ///
    /// Panics if `sweeps == 0`.
    pub fn with_sweeps(mut self, sweeps: usize) -> Self {
        assert!(sweeps > 0, "need at least one sweep");
        self.sweeps = sweeps;
        self
    }

    /// Enables per-iteration trace recording.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Replaces the filter configuration.
    pub fn with_filter(mut self, filter: FilterConfig) -> Self {
        self.filter = filter;
        self
    }

    /// Replaces the crossbar configuration.
    pub fn with_crossbar(mut self, crossbar: CrossbarConfig) -> Self {
        self.crossbar = crossbar;
        self
    }
}

impl Default for HyCimConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// The HyCiM solver: inequality-QUBO transformation + FeFET inequality
/// filter + FeFET CiM crossbar + SA logic (paper Fig. 3).
#[derive(Debug, Clone)]
pub struct HyCimSolver {
    instance: QkpInstance,
    problem: InequalityQubo,
    config: HyCimConfig,
    /// Seed used to fabricate hardware instances (device variability
    /// is sampled per-solver, like a real chip).
    hardware_seed: u64,
}

impl HyCimSolver {
    /// Builds a solver for a QKP instance. `hardware_seed` fixes the
    /// fabricated device variability (a "chip instance").
    ///
    /// # Errors
    ///
    /// Returns [`HycimError`] if the instance cannot be transformed or
    /// mapped onto the hardware (e.g. weights exceeding the filter's
    /// 64-unit columns).
    pub fn new(
        instance: &QkpInstance,
        config: &HyCimConfig,
        hardware_seed: u64,
    ) -> Result<Self, HycimError> {
        let problem = instance.to_inequality_qubo()?;
        // Validate hardware mapping eagerly so configuration errors
        // surface at build time, not first solve.
        let mut rng = StdRng::seed_from_u64(hardware_seed);
        let _ = HyCimHardwareState::build(
            &problem,
            &config.filter,
            &config.crossbar,
            Assignment::zeros(problem.dim()),
            &mut rng,
        )?;
        Ok(Self {
            instance: instance.clone(),
            problem,
            config: config.clone(),
            hardware_seed,
        })
    }

    /// The problem in inequality-QUBO form.
    pub fn problem(&self) -> &InequalityQubo {
        &self.problem
    }

    /// The QKP instance being solved.
    pub fn instance(&self) -> &QkpInstance {
        &self.instance
    }

    /// Runs one annealing from a random feasible initial configuration
    /// derived from `seed`.
    pub fn solve(&self, seed: u64) -> Solution {
        let mut rng = StdRng::seed_from_u64(seed);
        let initial = solvers::random_feasible(&self.instance, &mut rng);
        self.solve_from(&initial, seed)
    }

    /// Runs one annealing from an explicit initial configuration
    /// (which must be feasible — the paper's initial states are
    /// Monte-Carlo sampled feasible configurations).
    ///
    /// # Panics
    ///
    /// Panics if `initial` is infeasible or has the wrong length.
    pub fn solve_from(&self, initial: &Assignment, seed: u64) -> Solution {
        let mut hw_rng = StdRng::seed_from_u64(self.hardware_seed);
        let mut state = HyCimHardwareState::build(
            &self.problem,
            &self.config.filter,
            &self.config.crossbar,
            initial.clone(),
            &mut hw_rng,
        )
        .expect("mapping validated at construction");
        let mut rng = StdRng::seed_from_u64(seed);
        let iterations = self.config.sweeps * self.problem.dim();
        let t0 = calibrate_t0(&mut state, self.config.t0_fraction, 64, &mut rng);
        let alpha = self.config.t_end_fraction.powf(1.0 / iterations as f64);
        let mut annealer = Annealer::new(GeometricSchedule::new(t0, alpha), iterations)
            .with_swap_probability(self.config.swap_probability);
        if !self.config.record_trace {
            annealer = annealer.without_trace();
        }
        let trace = annealer.run(&mut state, &mut rng);
        let assignment = trace.best_assignment().clone();
        let feasible = self.instance.is_feasible(&assignment);
        let value = if feasible {
            self.instance.value(&assignment)
        } else {
            0
        };
        Solution {
            assignment,
            value,
            feasible,
            reported_energy: trace.best_energy(),
            trace,
        }
    }
}

/// Noise-free software reference solver on the same inequality-QUBO
/// form: exact constraint arithmetic, exact energies. Used to separate
/// algorithmic effects from hardware effects.
#[derive(Debug, Clone)]
pub struct SoftwareSolver {
    instance: QkpInstance,
    problem: InequalityQubo,
    config: HyCimConfig,
}

impl SoftwareSolver {
    /// Builds a software solver with the same annealing parameters.
    ///
    /// # Errors
    ///
    /// Returns [`HycimError`] if the instance cannot be transformed.
    pub fn new(instance: &QkpInstance, config: &HyCimConfig) -> Result<Self, HycimError> {
        Ok(Self {
            instance: instance.clone(),
            problem: instance.to_inequality_qubo()?,
            config: config.clone(),
        })
    }

    /// Runs one annealing from a seed-derived random feasible start.
    pub fn solve(&self, seed: u64) -> Solution {
        let mut rng = StdRng::seed_from_u64(seed);
        let initial = solvers::random_feasible(&self.instance, &mut rng);
        self.solve_from(&initial, seed)
    }

    /// Runs one annealing from an explicit feasible start.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is infeasible or has the wrong length.
    pub fn solve_from(&self, initial: &Assignment, seed: u64) -> Solution {
        let mut state = SoftwareState::new(&self.problem, initial.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let iterations = self.config.sweeps * self.problem.dim();
        let t0 = calibrate_t0(&mut state, self.config.t0_fraction, 64, &mut rng);
        let alpha = self.config.t_end_fraction.powf(1.0 / iterations as f64);
        let mut annealer = Annealer::new(GeometricSchedule::new(t0, alpha), iterations)
            .with_swap_probability(self.config.swap_probability);
        if !self.config.record_trace {
            annealer = annealer.without_trace();
        }
        let trace = annealer.run(&mut state, &mut rng);
        let assignment = trace.best_assignment().clone();
        let feasible = self.instance.is_feasible(&assignment);
        let value = if feasible {
            self.instance.value(&assignment)
        } else {
            0
        };
        Solution {
            assignment,
            value,
            feasible,
            reported_energy: trace.best_energy(),
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hycim_cop::generator::QkpGenerator;

    fn fig7e() -> QkpInstance {
        let mut inst = QkpInstance::new(vec![10, 6, 8], vec![4, 7, 2], 9).unwrap();
        inst.set_pair_profit(0, 1, 3);
        inst.set_pair_profit(0, 2, 7);
        inst.set_pair_profit(1, 2, 2);
        inst
    }

    #[test]
    fn hycim_solves_fig7e() {
        let solver =
            HyCimSolver::new(&fig7e(), &HyCimConfig::default().with_sweeps(50), 1).unwrap();
        let solution = solver.solve(2);
        assert!(solution.feasible);
        assert_eq!(solution.value, 25);
        assert!(solution.is_success(25));
    }

    #[test]
    fn software_solves_fig7e() {
        let solver =
            SoftwareSolver::new(&fig7e(), &HyCimConfig::default().with_sweeps(50)).unwrap();
        let solution = solver.solve(3);
        assert_eq!(solution.value, 25);
    }

    #[test]
    fn solutions_are_seed_deterministic() {
        let solver =
            HyCimSolver::new(&fig7e(), &HyCimConfig::default().with_sweeps(20), 7).unwrap();
        assert_eq!(solver.solve(11).value, solver.solve(11).value);
        assert_eq!(
            solver.solve(11).reported_energy,
            solver.solve(11).reported_energy
        );
    }

    #[test]
    fn hycim_result_is_always_feasible() {
        for seed in 0..5 {
            let inst = QkpGenerator::new(40, 0.5).generate(seed);
            let solver =
                HyCimSolver::new(&inst, &HyCimConfig::default().with_sweeps(100), seed).unwrap();
            let solution = solver.solve(seed);
            assert!(
                solution.feasible,
                "HyCiM produced infeasible at seed {seed}"
            );
            assert!(solution.value > 0);
        }
    }

    #[test]
    fn trace_recording_toggles() {
        let solver = HyCimSolver::new(
            &fig7e(),
            &HyCimConfig::default().with_sweeps(10).with_trace(),
            1,
        )
        .unwrap();
        assert!(!solver.solve(1).trace.energies().is_empty());
        let solver2 =
            HyCimSolver::new(&fig7e(), &HyCimConfig::default().with_sweeps(10), 1).unwrap();
        assert!(solver2.solve(1).trace.energies().is_empty());
    }

    #[test]
    fn oversized_weights_fail_at_build() {
        // Item weight 100 > filter column limit 64.
        let inst = QkpInstance::new(vec![5, 5], vec![100, 3], 50).unwrap();
        assert!(HyCimSolver::new(&inst, &HyCimConfig::default(), 1).is_err());
    }
}
