use hycim_anneal::{Annealer, GeometricSchedule};
use hycim_cop::QkpInstance;
use hycim_qubo::dqubo::{AuxEncoding, DquboForm, PenaltyWeights};
use hycim_qubo::Assignment;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{calibrate_t0, DquboHardwareState, HycimError, Solution};

/// Configuration of the D-QUBO baseline pipeline (paper Fig. 1(b),
/// Sec 2.1): penalty transformation on a single large crossbar, no
/// inequality filter.
#[derive(Debug, Clone)]
pub struct DquboConfig {
    /// Annealing sweeps (each sweep proposes `n + n_aux` moves).
    pub sweeps: usize,
    /// Fraction of exchange (swap) moves.
    pub swap_probability: f64,
    /// T₀ = `t0_fraction × mean|Δ|` at the initial state.
    pub t0_fraction: f64,
    /// Final temperature as a fraction of T₀.
    pub t_end_fraction: f64,
    /// Penalty coefficients α, β (paper sets both to 2).
    pub penalty: PenaltyWeights,
    /// Auxiliary-variable encoding (paper baseline: one-hot).
    pub encoding: AuxEncoding,
    /// Crossbar quantization override; `None` → `⌈log₂(Q_ij)MAX⌉`
    /// (16–25 bits on the benchmark set, Fig. 9(a)).
    pub bits: Option<u32>,
    /// Relative device current noise feeding the readout model.
    pub current_sigma_rel: f64,
    /// Record per-iteration energies.
    pub record_trace: bool,
}

impl DquboConfig {
    /// The paper's baseline settings.
    pub fn paper() -> Self {
        Self {
            sweeps: 1000,
            swap_probability: 0.5,
            t0_fraction: 0.5,
            t_end_fraction: 0.002,
            penalty: PenaltyWeights::PAPER,
            encoding: AuxEncoding::OneHot,
            bits: None,
            current_sigma_rel: 0.03,
            record_trace: false,
        }
    }

    /// Overrides the sweep count.
    ///
    /// # Panics
    ///
    /// Panics if `sweeps == 0`.
    pub fn with_sweeps(mut self, sweeps: usize) -> Self {
        assert!(sweeps > 0, "need at least one sweep");
        self.sweeps = sweeps;
        self
    }

    /// Overrides the aux encoding (binary slack is the ablation
    /// variant).
    pub fn with_encoding(mut self, encoding: AuxEncoding) -> Self {
        self.encoding = encoding;
        self
    }

    /// Overrides the quantization bit width.
    pub fn with_bits(mut self, bits: u32) -> Self {
        self.bits = Some(bits);
        self
    }

    /// Overrides the penalty weights.
    pub fn with_penalty(mut self, penalty: PenaltyWeights) -> Self {
        self.penalty = penalty;
        self
    }
}

impl Default for DquboConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// The D-QUBO baseline solver the paper compares against (Sec 4.3,
/// Fig. 10).
#[derive(Debug, Clone)]
pub struct DquboSolver {
    instance: QkpInstance,
    form: DquboForm,
    config: DquboConfig,
}

impl DquboSolver {
    /// Transforms the instance with penalty auxiliaries and prepares
    /// the baseline solver.
    ///
    /// # Errors
    ///
    /// Returns [`HycimError`] if the transformation fails.
    pub fn new(instance: &QkpInstance, config: &DquboConfig) -> Result<Self, HycimError> {
        let form = instance.to_dqubo(config.penalty, config.encoding)?;
        Ok(Self {
            instance: instance.clone(),
            form,
            config: config.clone(),
        })
    }

    /// The transformed D-QUBO form (dimension `n + n_aux`).
    pub fn form(&self) -> &DquboForm {
        &self.form
    }

    /// Runs one annealing from a random initial configuration over the
    /// *extended* space (item bits + aux bits), as the baseline
    /// hardware would.
    pub fn solve(&self, seed: u64) -> Solution {
        let mut rng = StdRng::seed_from_u64(seed);
        // D-QUBO has no filter, so the baseline starts from an
        // arbitrary configuration of the extended space; lift a random
        // item selection and let SA sort out the auxiliaries.
        let items = Assignment::random_with_density(self.form.num_items(), 0.3, &mut rng);
        let initial = self.form.lift(&items);
        self.solve_from(&initial, seed)
    }

    /// Runs one annealing from an explicit extended-space start.
    ///
    /// # Panics
    ///
    /// Panics if `initial.len() != self.form().dim()`.
    pub fn solve_from(&self, initial: &Assignment, seed: u64) -> Solution {
        let mut state = DquboHardwareState::build(
            &self.form,
            self.config.bits,
            self.config.current_sigma_rel,
            initial.clone(),
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let iterations = self.config.sweeps * self.form.dim();
        let t0 = calibrate_t0(&mut state, self.config.t0_fraction, 64, &mut rng);
        let alpha = self.config.t_end_fraction.powf(1.0 / iterations as f64);
        let mut annealer = Annealer::new(GeometricSchedule::new(t0, alpha), iterations)
            .with_swap_probability(self.config.swap_probability);
        if !self.config.record_trace {
            annealer = annealer.without_trace();
        }
        let trace = annealer.run(&mut state, &mut rng);
        // Decode the best extended configuration back to items; the
        // filterless baseline may well land infeasible (Fig. 10).
        let best_items = self.form.decode(trace.best_assignment());
        let feasible = self.instance.is_feasible(&best_items);
        let value = if feasible {
            self.instance.value(&best_items)
        } else {
            0
        };
        Solution {
            assignment: best_items,
            value,
            feasible,
            reported_energy: trace.best_energy(),
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hycim_cop::generator::QkpGenerator;
    use hycim_cop::solvers;

    #[test]
    fn baseline_runs_and_decodes() {
        let inst = QkpGenerator::new(10, 0.5)
            .with_capacity_range(20, 60)
            .generate(1);
        let solver = DquboSolver::new(&inst, &DquboConfig::default().with_sweeps(50)).unwrap();
        let solution = solver.solve(2);
        assert_eq!(solution.assignment.len(), 10);
        // Either feasible with positive value or marked infeasible
        // with zero.
        if solution.feasible {
            assert_eq!(solution.value, inst.value(&solution.assignment));
        } else {
            assert_eq!(solution.value, 0);
        }
    }

    #[test]
    fn binary_encoding_shrinks_dimension() {
        let inst = QkpGenerator::new(10, 0.5)
            .with_capacity_range(100, 200)
            .generate(3);
        let one_hot = DquboSolver::new(&inst, &DquboConfig::default()).unwrap();
        let binary = DquboSolver::new(
            &inst,
            &DquboConfig::default().with_encoding(AuxEncoding::Binary),
        )
        .unwrap();
        assert!(binary.form().dim() < one_hot.form().dim());
    }

    #[test]
    fn dqubo_success_rate_is_low_on_benchmark_style_instances() {
        // The headline Fig. 10 contrast, at reduced scale: the penalty
        // baseline fails much more often than 50%.
        let mut successes = 0;
        let runs = 8;
        for seed in 0..runs {
            let inst = QkpGenerator::new(20, 0.5).generate(seed);
            let (_, best) = solvers::best_known(&inst, 10, seed);
            let solver = DquboSolver::new(&inst, &DquboConfig::default().with_sweeps(100)).unwrap();
            if solver.solve(seed).is_success(best) {
                successes += 1;
            }
        }
        assert!(
            successes <= runs / 2,
            "D-QUBO baseline unexpectedly strong: {successes}/{runs}"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let inst = QkpGenerator::new(8, 0.5)
            .with_capacity_range(10, 30)
            .generate(5);
        let solver = DquboSolver::new(&inst, &DquboConfig::default().with_sweeps(20)).unwrap();
        assert_eq!(solver.solve(9).value, solver.solve(9).value);
    }
}
