//! Deterministic parallel multi-start evaluation: the paper's
//! Monte-Carlo protocol (Sec 4.3 runs 1000 initial states per
//! instance) fanned out over OS threads.
//!
//! [`BatchRunner`] replaces the serial ensemble loop for multi-start
//! evaluation. Its determinism guarantee: every (problem, replica)
//! cell derives its own seed from the root seed with
//! [`replica_seed`], and every [`Engine::solve`] call is a pure
//! function of that seed — so results are **bit-identical regardless
//! of thread count or scheduling**, and a single cell can be re-run in
//! isolation to reproduce a batch entry.
//!
//! # Example
//!
//! ```
//! use hycim_core::{BatchRunner, HyCimConfig, HyCimEngine};
//! use hycim_cop::generator::QkpGenerator;
//!
//! # fn main() -> Result<(), hycim_core::HycimError> {
//! let inst = QkpGenerator::new(15, 0.5).generate(1);
//! let engine = HyCimEngine::new(&inst, &HyCimConfig::default().with_sweeps(30), 1)?;
//! let runner = BatchRunner::new().with_threads(2);
//! let solutions = runner.run(&engine, 4, 7);
//! assert_eq!(solutions.len(), 4);
//! assert!(solutions.iter().all(|s| s.feasible));
//! # Ok(())
//! # }
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use hycim_cop::CopProblem;
use hycim_obs::ObsRegistry;

use crate::{Engine, Solution};

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the solve seed of one grid cell from the root seed. The
/// derivation is position-based (problem index × replica index), so it
/// does not depend on how cells are distributed over threads.
pub fn replica_seed(root_seed: u64, problem_index: u64, replica: u64) -> u64 {
    let per_problem = splitmix64(root_seed ^ splitmix64(problem_index));
    splitmix64(per_problem ^ splitmix64(replica.wrapping_add(0x5851_F42D_4C95_7F2D)))
}

/// Worker-thread count every layer that fans engine solves out over
/// OS threads agrees on: the `HYCIM_THREADS` environment variable
/// when set (`0` clamps to 1, i.e. serial — the historic
/// bench-harness semantics), else available parallelism, else 4.
/// Used by [`BatchRunner::new`] and the `hycim-service` worker pool,
/// so one knob sizes the whole stack.
pub fn default_threads() -> usize {
    std::env::var("HYCIM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|n| n.max(1))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        })
}

/// Per-cell execution telemetry from a [`BatchRunner`] fan-out.
///
/// Only `iterations` is deterministic; `wall_seconds` depends on the
/// machine and scheduling, so report layers must keep it out of any
/// artifact with a bit-identity guarantee (stdout is fine).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellTelemetry {
    /// Wall-clock duration of this cell's solve, in seconds.
    pub wall_seconds: f64,
    /// Annealing iterations the solve executed (from the trace).
    pub iterations: usize,
}

/// Multi-threaded, deterministic multi-start runner over a
/// replica-count × problem-list grid.
#[derive(Debug, Clone)]
pub struct BatchRunner {
    threads: usize,
    obs: Option<Arc<ObsRegistry>>,
}

impl BatchRunner {
    /// A runner using all available parallelism (respects the
    /// `HYCIM_THREADS` environment variable — see [`default_threads`]).
    pub fn new() -> Self {
        Self {
            threads: default_threads(),
            obs: None,
        }
    }

    /// A single-threaded runner (the serial reference the determinism
    /// guarantee is stated against).
    pub fn serial() -> Self {
        Self {
            threads: 1,
            obs: None,
        }
    }

    /// Publishes [`run_telemetry`](Self::run_telemetry) observations
    /// into `obs` (under `batch.*` names, wall-clock under
    /// `timing.batch.*`) instead of discarding them. Observations are
    /// recorded after the fan-out joins, in replica order, so every
    /// non-`timing.` metric is bit-identical across thread counts.
    pub fn with_obs(mut self, obs: Arc<ObsRegistry>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Overrides the worker-thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        self.threads = threads;
        self
    }

    /// Worker-thread count in use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `replicas` independent solves of one engine (replica `k`
    /// uses `replica_seed(root_seed, 0, k)`), returning solutions in
    /// replica order.
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0`.
    pub fn run<P, E>(&self, engine: &E, replicas: usize, root_seed: u64) -> Vec<Solution<P>>
    where
        P: CopProblem,
        E: Engine<P>,
    {
        assert!(replicas > 0, "need at least one replica");
        self.run_grid(std::slice::from_ref(engine), replicas, root_seed)
            .pop()
            .expect("one engine produces one row")
    }

    /// Runs one solve per pre-derived seed, in seed order — the
    /// primitive behind shard execution (a shard spec carries its
    /// exact [`replica_seed`]s, so the worker and the coordinator's
    /// local fallback both reduce to this call). Results are
    /// bit-identical for any thread count; an empty seed list returns
    /// an empty vector.
    pub fn run_seeds<P, E>(&self, engine: &E, seeds: &[u64]) -> Vec<Solution<P>>
    where
        P: CopProblem,
        E: Engine<P>,
    {
        self.map_indexed(seeds.len(), |k| engine.solve(seeds[k]))
    }

    /// Like [`run`](Self::run), but pairs every solution with its
    /// [`CellTelemetry`] — the hook the study harness uses to report
    /// throughput without polluting the deterministic results. The
    /// solutions are bit-identical to what `run` returns for the same
    /// arguments.
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0`.
    pub fn run_telemetry<P, E>(
        &self,
        engine: &E,
        replicas: usize,
        root_seed: u64,
    ) -> Vec<(Solution<P>, CellTelemetry)>
    where
        P: CopProblem,
        E: Engine<P>,
    {
        assert!(replicas > 0, "need at least one replica");
        let cells = self.map_indexed(replicas, |k| {
            let start = Instant::now();
            let solution = engine.solve(replica_seed(root_seed, 0, k as u64));
            let telemetry = CellTelemetry {
                wall_seconds: start.elapsed().as_secs_f64(),
                iterations: solution.trace.iterations(),
            };
            (solution, telemetry)
        });
        if let Some(obs) = &self.obs {
            // Feed the registry after the join, in replica order:
            // no hot-path contention, and the non-timing metrics are
            // independent of how cells landed on threads.
            let cell_count = obs.counter("batch.cells");
            let iterations = obs.counter("batch.iterations");
            let per_cell = obs.histogram("batch.cell_iterations");
            let wall = obs.histogram("timing.batch.cell_seconds");
            for (_, telemetry) in &cells {
                cell_count.inc();
                iterations.add(telemetry.iterations as u64);
                per_cell.record(telemetry.iterations as f64);
                wall.record(telemetry.wall_seconds);
            }
        }
        cells
    }

    /// Runs the full grid: `replicas` solves of every engine, fanned
    /// out cell-by-cell over the worker threads. Row `p` column `k`
    /// uses `replica_seed(root_seed, p, k)`; the output preserves
    /// engine order and replica order.
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0` (an engine list may be empty — that
    /// returns no rows — but every listed engine must get at least one
    /// replica so the output shape always matches `engines`).
    pub fn run_grid<P, E>(
        &self,
        engines: &[E],
        replicas: usize,
        root_seed: u64,
    ) -> Vec<Vec<Solution<P>>>
    where
        P: CopProblem,
        E: Engine<P>,
    {
        assert!(replicas > 0, "need at least one replica");
        let mut flat = self
            .map_indexed(engines.len() * replicas, |idx| {
                let (p, k) = (idx / replicas, idx % replicas);
                engines[p].solve(replica_seed(root_seed, p as u64, k as u64))
            })
            .into_iter();
        (0..engines.len())
            .map(|_| (0..replicas).map(|_| flat.next().expect("sized")).collect())
            .collect()
    }

    /// Order-preserving parallel map over `0..n` on this runner's
    /// worker threads: the deterministic fan-out primitive `run_grid`
    /// and the success-rate harness share.
    pub(crate) fn map_indexed<R, F>(&self, n: usize, job: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        if n == 0 {
            return Vec::new();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<&mut Option<R>>> = results.iter_mut().map(Mutex::new).collect();
        let (next_ref, slots_ref, job_ref) = (&next, &slots, &job);
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(n) {
                scope.spawn(move || loop {
                    let idx = next_ref.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    let r = job_ref(idx);
                    **slots_ref[idx].lock().expect("slot lock") = Some(r);
                });
            }
        });
        drop(slots);
        results
            .into_iter()
            .map(|r| r.expect("every slot filled"))
            .collect()
    }
}

impl Default for BatchRunner {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DquboConfig, DquboEngine, HyCimConfig, HyCimEngine};
    use hycim_cop::generator::QkpGenerator;

    #[test]
    fn replica_seeds_are_unique_across_the_grid() {
        let mut seen = std::collections::BTreeSet::new();
        for p in 0..8u64 {
            for k in 0..64u64 {
                assert!(
                    seen.insert(replica_seed(42, p, k)),
                    "collision at ({p},{k})"
                );
            }
        }
        // Different roots give different streams.
        assert_ne!(replica_seed(1, 0, 0), replica_seed(2, 0, 0));
    }

    #[test]
    fn parallel_run_is_bit_identical_to_serial() {
        let inst = QkpGenerator::new(25, 0.5).generate(3);
        let engine = HyCimEngine::new(&inst, &HyCimConfig::default().with_sweeps(40), 3).unwrap();
        let serial = BatchRunner::serial().run(&engine, 6, 99);
        for threads in [2, 4, 8] {
            let parallel = BatchRunner::new().with_threads(threads).run(&engine, 6, 99);
            assert_eq!(serial.len(), parallel.len());
            for (s, p) in serial.iter().zip(&parallel) {
                assert_eq!(s.assignment, p.assignment, "{threads} threads diverged");
                assert_eq!(s.objective, p.objective);
                assert_eq!(s.reported_energy, p.reported_energy);
            }
        }
    }

    #[test]
    fn grid_preserves_engine_and_replica_order() {
        let config = HyCimConfig::default().with_sweeps(20);
        let engines: Vec<_> = (0..3)
            .map(|seed| {
                let inst = QkpGenerator::new(12, 0.5).generate(seed);
                HyCimEngine::new(&inst, &config, seed).unwrap()
            })
            .collect();
        let grid = BatchRunner::new().with_threads(4).run_grid(&engines, 2, 5);
        assert_eq!(grid.len(), 3);
        for (p, row) in grid.iter().enumerate() {
            assert_eq!(row.len(), 2);
            for (k, sol) in row.iter().enumerate() {
                // Each cell reproduces from its derived seed alone.
                let expected = engines[p].solve(replica_seed(5, p as u64, k as u64));
                assert_eq!(sol.assignment, expected.assignment, "cell ({p},{k})");
                assert_eq!(sol.objective, expected.objective);
            }
        }
    }

    #[test]
    fn works_for_the_dqubo_backend_too() {
        let inst = QkpGenerator::new(10, 0.5)
            .with_capacity_range(20, 50)
            .generate(1);
        let engine = DquboEngine::new(&inst, &DquboConfig::default().with_sweeps(30)).unwrap();
        let a = BatchRunner::serial().run(&engine, 3, 1);
        let b = BatchRunner::new().with_threads(3).run(&engine, 3, 1);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.assignment, y.assignment);
        }
    }

    #[test]
    fn telemetry_runs_match_plain_runs() {
        let inst = QkpGenerator::new(15, 0.5).generate(7);
        let engine = HyCimEngine::new(&inst, &HyCimConfig::default().with_sweeps(30), 7).unwrap();
        let plain = BatchRunner::serial().run(&engine, 4, 13);
        let with_tel = BatchRunner::new()
            .with_threads(3)
            .run_telemetry(&engine, 4, 13);
        assert_eq!(plain.len(), with_tel.len());
        for (p, (s, t)) in plain.iter().zip(&with_tel) {
            assert_eq!(p.assignment, s.assignment);
            assert_eq!(p.objective, s.objective);
            // Telemetry is attached, not substituted: iterations come
            // from the trace and the wall clock is non-negative.
            assert_eq!(t.iterations, s.trace.iterations());
            assert!(t.iterations > 0);
            assert!(t.wall_seconds >= 0.0);
        }
    }

    #[test]
    fn run_seeds_matches_per_seed_solves() {
        let inst = QkpGenerator::new(12, 0.5).generate(2);
        let engine = HyCimEngine::new(&inst, &HyCimConfig::default().with_sweeps(25), 2).unwrap();
        let seeds: Vec<u64> = (0..5).map(|k| replica_seed(11, 0, k)).collect();
        let serial = BatchRunner::serial().run_seeds(&engine, &seeds);
        let threaded = BatchRunner::new()
            .with_threads(3)
            .run_seeds(&engine, &seeds);
        assert_eq!(serial.len(), 5);
        for ((s, t), &seed) in serial.iter().zip(&threaded).zip(&seeds) {
            let direct = engine.solve(seed);
            assert_eq!(s.assignment, direct.assignment);
            assert_eq!(t.assignment, direct.assignment);
            assert_eq!(s.objective, direct.objective);
        }
        // The explicit-seed path agrees with the replica-column path.
        let column = BatchRunner::serial().run(&engine, 5, 11);
        for (a, b) in serial.iter().zip(&column) {
            assert_eq!(a.assignment, b.assignment);
        }
        let empty: Vec<u64> = Vec::new();
        assert!(BatchRunner::serial().run_seeds(&engine, &empty).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_panics() {
        let inst = QkpGenerator::new(5, 0.5).generate(1);
        let engine = HyCimEngine::new(&inst, &HyCimConfig::default(), 1).unwrap();
        let _ = BatchRunner::serial().run(&engine, 0, 0);
    }
}
