use hycim_anneal::{AnnealState, AnnealTrace, Annealer, FlipOutcome, GeometricSchedule};
use rand::rngs::StdRng;
use rand::Rng;

use crate::AnnealSettings;

/// Publishes one finished solve's counters into the process-global
/// obs registry, if one is [`hycim_obs::install`]ed.
///
/// This is the *only* instrumentation hook on the solve path, and it
/// is deliberately whole-solve: the annealer already counts
/// accept/reject outcomes in its trace, so flushing here consumes
/// **zero RNG draws** and adds **zero branches inside the Metropolis
/// loop** — which is what keeps every bit-identity guarantee intact
/// with metrics enabled (pinned by the `obs_determinism` test).
/// When nothing is installed the cost is one `RwLock` read per solve.
pub(crate) fn flush_anneal_counts(label: &'static str, trace: &AnnealTrace) {
    let Some(obs) = hycim_obs::installed() else {
        return;
    };
    obs.counter("core.anneal.solves").inc();
    obs.counter("core.anneal.iterations")
        .add(trace.iterations() as u64);
    obs.counter("core.anneal.accepted")
        .add(trace.accepted() as u64);
    obs.counter("core.anneal.rejected_metropolis")
        .add(trace.rejected_metropolis() as u64);
    obs.counter("core.anneal.rejected_infeasible")
        .add(trace.rejected_infeasible() as u64);
    obs.tracer().record(hycim_obs::Event::AnnealPhase {
        label,
        iterations: trace.iterations() as u64,
    });
}

/// Calibrates the initial annealing temperature from the problem's
/// actual energy landscape: samples random flip deltas at the initial
/// state and returns `fraction × mean|Δ|` (at least 1).
///
/// QKP flip deltas scale with `density × selected items × pair
/// profits`, so a fixed T₀ that anneals a sparse instance correctly is
/// effectively greedy on a dense one; per-instance calibration keeps
/// the acceptance profile comparable across the benchmark set (the
/// paper's 40 instances span densities 25–100%).
///
/// # Example
///
/// ```
/// use hycim_anneal::SoftwareState;
/// use hycim_core::calibrate_t0;
/// use hycim_qubo::{Assignment, InequalityQubo, LinearConstraint, QuboMatrix};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut q = QuboMatrix::zeros(2);
/// q.set(0, 0, -40.0);
/// q.set(1, 1, -60.0);
/// let iq = InequalityQubo::new(q, LinearConstraint::new(vec![1, 1], 2)?)?;
/// let mut state = SoftwareState::new(&iq, Assignment::zeros(2));
/// let mut rng = StdRng::seed_from_u64(1);
/// let t0 = calibrate_t0(&mut state, 0.5, 64, &mut rng);
/// assert!(t0 >= 20.0 && t0 <= 30.0); // 0.5 × mean(40, 60)
/// # Ok(())
/// # }
/// ```
pub fn calibrate_t0<S: AnnealState>(
    state: &mut S,
    fraction: f64,
    samples: usize,
    rng: &mut StdRng,
) -> f64 {
    assert!(fraction > 0.0, "fraction must be positive");
    assert!(samples > 0, "need at least one sample");
    let n = state.dim();
    let mut sum = 0.0;
    let mut count = 0usize;
    for _ in 0..samples {
        let i = rng.random_range(0..n);
        if let FlipOutcome::Feasible { delta } = state.probe_flip(i, rng) {
            sum += delta.abs();
            count += 1;
        }
    }
    if count == 0 {
        // Every probe was filtered (start jammed against the
        // constraint); fall back to a generic profit-scale temperature.
        return 100.0 * fraction;
    }
    (fraction * sum / count as f64).max(1.0)
}

/// The shared annealing driver of every engine: calibrates T₀ from the
/// state's probed deltas ([`calibrate_t0`] with 64 samples), derives
/// the geometric decay reaching `t_end_fraction × T₀` after
/// `sweeps × dim` iterations, and runs the Metropolis loop.
///
/// The HyCiM, D-QUBO, and software pipelines previously each inlined
/// this setup; keeping it in one place guarantees their schedules
/// cannot drift apart.
///
/// # Example
///
/// ```
/// use hycim_anneal::SoftwareState;
/// use hycim_core::{run_annealing, HyCimConfig};
/// use hycim_qubo::{Assignment, InequalityQubo, LinearConstraint, QuboMatrix};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut q = QuboMatrix::zeros(2);
/// q.set(0, 0, -5.0);
/// let iq = InequalityQubo::new(q, LinearConstraint::new(vec![1, 1], 2)?)?;
/// let mut state = SoftwareState::new(&iq, Assignment::zeros(2));
/// let mut rng = StdRng::seed_from_u64(1);
/// let settings = HyCimConfig::default().with_sweeps(20).anneal_settings();
/// let trace = run_annealing(&mut state, &settings, &mut rng);
/// assert_eq!(trace.best_energy(), -5.0);
/// # Ok(())
/// # }
/// ```
pub fn run_annealing<S: AnnealState>(
    state: &mut S,
    settings: &AnnealSettings,
    rng: &mut StdRng,
) -> AnnealTrace {
    let iterations = settings.sweeps * state.dim();
    let t0 = calibrate_t0(state, settings.t0_fraction, 64, rng);
    let alpha = settings.t_end_fraction.powf(1.0 / iterations as f64);
    let mut annealer = Annealer::new(GeometricSchedule::new(t0, alpha), iterations)
        .with_swap_probability(settings.swap_probability);
    if !settings.record_trace {
        annealer = annealer.without_trace();
    }
    let trace = annealer.run(state, rng);
    flush_anneal_counts("scalar", &trace);
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use hycim_anneal::SoftwareState;
    use hycim_cop::generator::QkpGenerator;
    use hycim_qubo::Assignment;
    use rand::SeedableRng;

    #[test]
    fn denser_instances_calibrate_hotter() {
        let mut rng = StdRng::seed_from_u64(1);
        let t0_of = |density: f64, rng: &mut StdRng| {
            let inst = QkpGenerator::new(60, density).generate(9);
            let iq = inst.to_inequality_qubo().unwrap();
            // Start from a half-full configuration so deltas include
            // pair interactions.
            let mut x = Assignment::zeros(60);
            let mut load = 0;
            for i in 0..60 {
                if load + inst.weights()[i] <= inst.capacity() / 2 {
                    x.set(i, true);
                    load += inst.weights()[i];
                }
            }
            let mut state = SoftwareState::new(&iq, x);
            calibrate_t0(&mut state, 0.5, 128, rng)
        };
        let sparse = t0_of(0.25, &mut rng);
        let dense = t0_of(1.0, &mut rng);
        assert!(
            dense > 1.5 * sparse,
            "dense t0 {dense} not above sparse t0 {sparse}"
        );
    }

    #[test]
    fn calibration_does_not_mutate_state() {
        let inst = QkpGenerator::new(20, 0.5).generate(3);
        let iq = inst.to_inequality_qubo().unwrap();
        let mut state = SoftwareState::new(&iq, Assignment::zeros(20));
        let before = state.assignment().clone();
        let e_before = state.energy();
        let mut rng = StdRng::seed_from_u64(2);
        let _ = calibrate_t0(&mut state, 0.5, 64, &mut rng);
        assert_eq!(state.assignment(), &before);
        assert_eq!(state.energy(), e_before);
    }

    #[test]
    fn floor_is_one() {
        let inst = QkpGenerator::new(5, 0.25).with_max_profit(1).generate(4);
        let iq = inst.to_inequality_qubo().unwrap();
        let mut state = SoftwareState::new(&iq, Assignment::zeros(5));
        let mut rng = StdRng::seed_from_u64(3);
        assert!(calibrate_t0(&mut state, 0.001, 32, &mut rng) >= 1.0);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn zero_fraction_panics() {
        let inst = QkpGenerator::new(5, 0.5).generate(5);
        let iq = inst.to_inequality_qubo().unwrap();
        let mut state = SoftwareState::new(&iq, Assignment::zeros(5));
        let mut rng = StdRng::seed_from_u64(4);
        let _ = calibrate_t0(&mut state, 0.0, 32, &mut rng);
    }
}
