//! The engine layer: one generic solving pipeline per hardware
//! backend, parameterized over any [`CopProblem`].
//!
//! The three backends mirror the paper's comparison:
//!
//! * [`HyCimEngine`] — the paper's pipeline (Fig. 3): inequality-QUBO
//!   encoding, FeFET inequality filter, FeFET CiM crossbar, SA logic.
//! * [`DquboEngine`] — the D-QUBO baseline (Fig. 1(b)): penalty
//!   auxiliaries on one large crossbar, no filter.
//! * [`SoftwareEngine`] — noise-free software evaluation of the same
//!   inequality-QUBO form, separating algorithmic from hardware
//!   effects.
//!
//! All three produce the same typed [`Solution<P>`], so any problem in
//! `hycim-cop` (QKP, knapsack, max-cut, TSP, coloring, bin packing,
//! spin glass — or a raw [`InequalityQubo`](hycim_qubo::InequalityQubo))
//! runs end-to-end on every backend.
//!
//! # Example
//!
//! ```
//! use hycim_core::{Engine, HyCimConfig, HyCimEngine};
//! use hycim_cop::maxcut::MaxCut;
//!
//! # fn main() -> Result<(), hycim_core::HycimError> {
//! let graph = MaxCut::random(16, 0.5, 1);
//! let engine = HyCimEngine::new(&graph, &HyCimConfig::default().with_sweeps(100), 1)?;
//! let solution = engine.solve(2);
//! let partition = solution.decoded.expect("any partition decodes");
//! assert_eq!(graph.cut_value(&partition) as f64, -solution.objective);
//! # Ok(())
//! # }
//! ```

use hycim_cop::{CopProblem, QkpInstance};
use hycim_qubo::dqubo::DquboForm;
use hycim_qubo::{Assignment, InequalityQubo, MultiInequalityQubo};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{
    run_annealing, BankHardwareState, DquboConfig, DquboHardwareState, HyCimConfig,
    HyCimHardwareState, HycimError, Solution,
};

/// A solver backend over a [`CopProblem`]: construction validates the
/// encoding eagerly; [`solve`](Engine::solve) is a pure function of
/// the seed, which is what makes batched runs deterministic
/// independent of scheduling (see [`BatchRunner`](crate::BatchRunner)).
///
/// # Example
///
/// The encode → solve → decode round trip on a tiny max-cut: the
/// engine returns a typed [`Solution`] whose decoded partition
/// re-encodes to the exact configuration the annealer settled on.
///
/// ```
/// use hycim_core::{Engine, HyCimConfig, SoftwareEngine};
/// use hycim_cop::maxcut::MaxCut;
/// use hycim_cop::CopProblem;
///
/// # fn main() -> Result<(), hycim_core::HycimError> {
/// let graph = MaxCut::random(8, 0.5, 1);
/// let engine = SoftwareEngine::new(&graph, &HyCimConfig::default().with_sweeps(60))?;
///
/// let solution = engine.solve(7);                       // solve (pure in the seed)
/// let partition = solution.decoded.clone().expect("any partition decodes");
/// assert_eq!(graph.encode(&partition), solution.assignment);   // encode inverts decode
/// assert_eq!(solution.objective, -(graph.cut_value(&partition) as f64));
/// assert_eq!(solution.assignment, engine.solve(7).assignment); // deterministic
/// # Ok(())
/// # }
/// ```
pub trait Engine<P: CopProblem>: Send + Sync {
    /// The problem being solved.
    fn problem(&self) -> &P;

    /// Short backend tag (`"hycim"`, `"dqubo"`, `"software"`) for
    /// reports and the problem × engine matrix.
    fn backend(&self) -> &'static str;

    /// Runs one annealing from a seed-derived initial configuration.
    /// Deterministic in `seed`.
    fn solve(&self, seed: u64) -> Solution<P>;
}

/// Boxed engines are engines: lets heterogeneous backends share one
/// `Vec<Box<dyn Engine<P>>>` and still flow through [`BatchRunner`]
/// fan-outs (the study harness builds its engine columns this way).
///
/// [`BatchRunner`]: crate::BatchRunner
impl<P: CopProblem, E: Engine<P> + ?Sized> Engine<P> for Box<E> {
    fn problem(&self) -> &P {
        (**self).problem()
    }

    fn backend(&self) -> &'static str {
        (**self).backend()
    }

    fn solve(&self, seed: u64) -> Solution<P> {
        (**self).solve(seed)
    }
}

/// The HyCiM engine: inequality-QUBO transformation + FeFET inequality
/// filter + FeFET CiM crossbar + SA logic (paper Fig. 3), generic over
/// the problem being encoded.
#[derive(Debug, Clone)]
pub struct HyCimEngine<P: CopProblem> {
    problem: P,
    encoded: InequalityQubo,
    config: HyCimConfig,
    /// Seed used to fabricate hardware instances (device variability
    /// is sampled per-engine, like a real chip).
    hardware_seed: u64,
}

/// The paper's solver: the HyCiM engine specialized to the quadratic
/// knapsack problem it evaluates on.
pub type HyCimSolver = HyCimEngine<QkpInstance>;

impl<P: CopProblem> HyCimEngine<P> {
    /// Builds an engine for a problem. `hardware_seed` fixes the
    /// fabricated device variability (a "chip instance").
    ///
    /// # Errors
    ///
    /// Returns [`HycimError`] if the problem cannot be encoded or
    /// mapped onto the hardware (e.g. constraint weights exceeding the
    /// filter's 64-unit columns).
    pub fn new(problem: &P, config: &HyCimConfig, hardware_seed: u64) -> Result<Self, HycimError> {
        let encoded = problem.to_inequality_qubo()?;
        // Validate hardware mapping eagerly so configuration errors
        // surface at build time, not first solve.
        let mut rng = StdRng::seed_from_u64(hardware_seed);
        let _ = HyCimHardwareState::build(
            &encoded,
            &config.filter,
            &config.crossbar,
            Assignment::zeros(encoded.dim()),
            &mut rng,
        )?;
        Ok(Self {
            problem: problem.clone(),
            encoded,
            config: config.clone(),
            hardware_seed,
        })
    }

    /// The problem in inequality-QUBO form.
    pub fn encoded(&self) -> &InequalityQubo {
        &self.encoded
    }

    /// The instance being solved.
    pub fn instance(&self) -> &P {
        &self.problem
    }

    /// Runs one annealing from an explicit initial configuration
    /// (which must satisfy the encoded constraint — the paper's
    /// initial states are Monte-Carlo sampled feasible
    /// configurations).
    ///
    /// # Panics
    ///
    /// Panics if `initial` violates the constraint or has the wrong
    /// length.
    pub fn solve_from(&self, initial: &Assignment, seed: u64) -> Solution<P> {
        let mut hw_rng = StdRng::seed_from_u64(self.hardware_seed);
        let mut state = HyCimHardwareState::build(
            &self.encoded,
            &self.config.filter,
            &self.config.crossbar,
            initial.clone(),
            &mut hw_rng,
        )
        .expect("mapping validated at construction");
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = run_annealing(&mut state, &self.config.anneal_settings(), &mut rng);
        let assignment = trace.best_assignment().clone();
        Solution::score(&self.problem, assignment, trace)
    }
}

impl<P: CopProblem> Engine<P> for HyCimEngine<P> {
    fn problem(&self) -> &P {
        &self.problem
    }

    fn backend(&self) -> &'static str {
        "hycim"
    }

    fn solve(&self, seed: u64) -> Solution<P> {
        let mut rng = StdRng::seed_from_u64(seed);
        let initial = self.problem.initial(&mut rng);
        self.solve_from(&initial, seed)
    }
}

/// The multi-constraint HyCiM engine: the problem's exact
/// multi-inequality form (`CopProblem::to_multi_inequality_qubo`) on
/// a [`FilterBank`](hycim_cim::filter::FilterBank) — one FeFET filter
/// per constraint — plus the CiM crossbar and the same SA driver as
/// every other engine.
///
/// Where [`HyCimEngine`] runs multi-constraint COPs through an
/// aggregate-capacity relaxation (bin packing) or cannot express them
/// at all, `BankEngine` gates each constraint independently: a
/// proposed configuration reaches the crossbar only when **all**
/// filters admit it, so bin packing is bin-exact in hardware and
/// general multi-inequality COPs (the multi-dimensional knapsack)
/// run natively. Single-constraint problems work too — their bank has
/// one filter and behaves like the single-filter pipeline.
///
/// Determinism: `hardware_seed` fabricates the bank's filters in
/// constraint order from one RNG stream (then the crossbar), so the
/// same seed builds the same "chip instance"; `solve(seed)` is then a
/// pure function of the seed, which is what keeps
/// [`BatchRunner`](crate::BatchRunner) grids and `hycim-service` jobs
/// bit-identical at any thread count.
#[derive(Debug, Clone)]
pub struct BankEngine<P: CopProblem> {
    problem: P,
    encoded: MultiInequalityQubo,
    config: HyCimConfig,
    /// Seed used to fabricate hardware instances (device variability
    /// is sampled per-engine, like a real chip).
    hardware_seed: u64,
}

impl<P: CopProblem> BankEngine<P> {
    /// Builds a bank engine for a problem. `hardware_seed` fixes the
    /// fabricated device variability of every filter in the bank and
    /// the crossbar.
    ///
    /// # Errors
    ///
    /// Returns [`HycimError`] if the problem cannot be encoded into
    /// the multi-inequality form or mapped onto the hardware (e.g.
    /// constraint weights exceeding the filter's 64-unit columns).
    pub fn new(problem: &P, config: &HyCimConfig, hardware_seed: u64) -> Result<Self, HycimError> {
        let encoded = problem.to_multi_inequality_qubo()?;
        // Validate hardware mapping eagerly so configuration errors
        // surface at build time, not first solve.
        let mut rng = StdRng::seed_from_u64(hardware_seed);
        let _ = BankHardwareState::build(
            &encoded,
            &config.filter,
            &config.crossbar,
            Assignment::zeros(encoded.dim()),
            &mut rng,
        )?;
        Ok(Self {
            problem: problem.clone(),
            encoded,
            config: config.clone(),
            hardware_seed,
        })
    }

    /// The problem in multi-inequality-QUBO form.
    pub fn encoded(&self) -> &MultiInequalityQubo {
        &self.encoded
    }

    /// The instance being solved.
    pub fn instance(&self) -> &P {
        &self.problem
    }

    /// Runs one annealing from an explicit initial configuration
    /// (which must satisfy every encoded constraint).
    ///
    /// # Panics
    ///
    /// Panics if `initial` violates any constraint or has the wrong
    /// length.
    pub fn solve_from(&self, initial: &Assignment, seed: u64) -> Solution<P> {
        let mut hw_rng = StdRng::seed_from_u64(self.hardware_seed);
        let mut state = BankHardwareState::build(
            &self.encoded,
            &self.config.filter,
            &self.config.crossbar,
            initial.clone(),
            &mut hw_rng,
        )
        .expect("mapping validated at construction");
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = run_annealing(&mut state, &self.config.anneal_settings(), &mut rng);
        let assignment = trace.best_assignment().clone();
        Solution::score(&self.problem, assignment, trace)
    }
}

impl<P: CopProblem> Engine<P> for BankEngine<P> {
    fn problem(&self) -> &P {
        &self.problem
    }

    fn backend(&self) -> &'static str {
        "bank"
    }

    fn solve(&self, seed: u64) -> Solution<P> {
        let mut rng = StdRng::seed_from_u64(seed);
        let initial = self.problem.initial(&mut rng);
        self.solve_from(&initial, seed)
    }
}

/// The D-QUBO baseline engine the paper compares against (Sec 4.3,
/// Fig. 10), generic over the problem being encoded.
#[derive(Debug, Clone)]
pub struct DquboEngine<P: CopProblem> {
    problem: P,
    form: DquboForm,
    config: DquboConfig,
}

/// The baseline solver of the paper's comparison: the D-QUBO engine
/// specialized to QKP.
pub type DquboSolver = DquboEngine<QkpInstance>;

impl<P: CopProblem> DquboEngine<P> {
    /// Transforms the problem with penalty auxiliaries and prepares
    /// the baseline engine.
    ///
    /// # Errors
    ///
    /// Returns [`HycimError`] if the transformation fails.
    pub fn new(problem: &P, config: &DquboConfig) -> Result<Self, HycimError> {
        let form = problem.to_dqubo(config.penalty, config.encoding)?;
        Ok(Self {
            problem: problem.clone(),
            form,
            config: config.clone(),
        })
    }

    /// The transformed D-QUBO form (dimension `n + n_aux`).
    pub fn form(&self) -> &DquboForm {
        &self.form
    }

    /// The instance being solved.
    pub fn instance(&self) -> &P {
        &self.problem
    }

    /// Runs one annealing from an explicit extended-space start.
    ///
    /// # Panics
    ///
    /// Panics if `initial.len() != self.form().dim()`.
    pub fn solve_from(&self, initial: &Assignment, seed: u64) -> Solution<P> {
        let mut state = DquboHardwareState::build(
            &self.form,
            self.config.bits,
            self.config.current_sigma_rel,
            initial.clone(),
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = run_annealing(&mut state, &self.config.anneal_settings(), &mut rng);
        // Decode the best extended configuration back to the problem
        // space; the filterless baseline may well land infeasible
        // (Fig. 10).
        let assignment = self.form.decode(trace.best_assignment());
        Solution::score(&self.problem, assignment, trace)
    }
}

impl<P: CopProblem> Engine<P> for DquboEngine<P> {
    fn problem(&self) -> &P {
        &self.problem
    }

    fn backend(&self) -> &'static str {
        "dqubo"
    }

    fn solve(&self, seed: u64) -> Solution<P> {
        let mut rng = StdRng::seed_from_u64(seed);
        // D-QUBO has no filter, so the baseline starts from an
        // arbitrary configuration of the extended space; lift a random
        // problem-space configuration and let SA sort out the
        // auxiliaries.
        let items = Assignment::random_with_density(self.form.num_items(), 0.3, &mut rng);
        let initial = self.form.lift(&items);
        self.solve_from(&initial, seed)
    }
}

/// Noise-free software reference engine on the same inequality-QUBO
/// form: exact constraint arithmetic, exact energies. Used to separate
/// algorithmic effects from hardware effects.
#[derive(Debug, Clone)]
pub struct SoftwareEngine<P: CopProblem> {
    problem: P,
    encoded: InequalityQubo,
    config: HyCimConfig,
}

/// The software reference solver specialized to QKP.
pub type SoftwareSolver = SoftwareEngine<QkpInstance>;

impl<P: CopProblem> SoftwareEngine<P> {
    /// Builds a software engine with the same annealing parameters.
    ///
    /// # Errors
    ///
    /// Returns [`HycimError`] if the problem cannot be encoded.
    pub fn new(problem: &P, config: &HyCimConfig) -> Result<Self, HycimError> {
        Ok(Self {
            problem: problem.clone(),
            encoded: problem.to_inequality_qubo()?,
            config: config.clone(),
        })
    }

    /// The problem in inequality-QUBO form.
    pub fn encoded(&self) -> &InequalityQubo {
        &self.encoded
    }

    /// Runs one annealing from an explicit feasible start.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is infeasible or has the wrong length.
    pub fn solve_from(&self, initial: &Assignment, seed: u64) -> Solution<P> {
        let mut state = hycim_anneal::SoftwareState::new(&self.encoded, initial.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = run_annealing(&mut state, &self.config.anneal_settings(), &mut rng);
        let assignment = trace.best_assignment().clone();
        Solution::score(&self.problem, assignment, trace)
    }
}

impl<P: CopProblem> Engine<P> for SoftwareEngine<P> {
    fn problem(&self) -> &P {
        &self.problem
    }

    fn backend(&self) -> &'static str {
        "software"
    }

    fn solve(&self, seed: u64) -> Solution<P> {
        let mut rng = StdRng::seed_from_u64(seed);
        let initial = self.problem.initial(&mut rng);
        self.solve_from(&initial, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hycim_cop::generator::QkpGenerator;

    fn fig7e() -> QkpInstance {
        let mut inst = QkpInstance::new(vec![10, 6, 8], vec![4, 7, 2], 9).unwrap();
        inst.set_pair_profit(0, 1, 3);
        inst.set_pair_profit(0, 2, 7);
        inst.set_pair_profit(1, 2, 2);
        inst
    }

    #[test]
    fn hycim_solves_fig7e() {
        let solver =
            HyCimSolver::new(&fig7e(), &HyCimConfig::default().with_sweeps(50), 1).unwrap();
        let solution = solver.solve(2);
        assert!(solution.feasible);
        assert_eq!(solution.value(), 25);
        assert!(solution.is_success(25));
        assert_eq!(solution.objective, -25.0);
    }

    #[test]
    fn software_solves_fig7e() {
        let solver =
            SoftwareSolver::new(&fig7e(), &HyCimConfig::default().with_sweeps(50)).unwrap();
        let solution = solver.solve(3);
        assert_eq!(solution.value(), 25);
    }

    #[test]
    fn solutions_are_seed_deterministic() {
        let solver =
            HyCimSolver::new(&fig7e(), &HyCimConfig::default().with_sweeps(20), 7).unwrap();
        assert_eq!(solver.solve(11).value(), solver.solve(11).value());
        assert_eq!(
            solver.solve(11).reported_energy,
            solver.solve(11).reported_energy
        );
    }

    #[test]
    fn hycim_result_is_always_feasible() {
        for seed in 0..5 {
            let inst = QkpGenerator::new(40, 0.5).generate(seed);
            let solver =
                HyCimSolver::new(&inst, &HyCimConfig::default().with_sweeps(100), seed).unwrap();
            let solution = solver.solve(seed);
            assert!(
                solution.feasible,
                "HyCiM produced infeasible at seed {seed}"
            );
            assert!(solution.value() > 0);
        }
    }

    #[test]
    fn trace_recording_toggles() {
        let solver = HyCimSolver::new(
            &fig7e(),
            &HyCimConfig::default().with_sweeps(10).with_trace(),
            1,
        )
        .unwrap();
        assert!(!solver.solve(1).trace.energies().is_empty());
        let solver2 =
            HyCimSolver::new(&fig7e(), &HyCimConfig::default().with_sweeps(10), 1).unwrap();
        assert!(solver2.solve(1).trace.energies().is_empty());
    }

    #[test]
    fn oversized_weights_fail_at_build() {
        // Item weight 100 > filter column limit 64.
        let inst = QkpInstance::new(vec![5, 5], vec![100, 3], 50).unwrap();
        assert!(HyCimSolver::new(&inst, &HyCimConfig::default(), 1).is_err());
    }

    #[test]
    fn dqubo_baseline_runs_and_decodes() {
        let inst = QkpGenerator::new(10, 0.5)
            .with_capacity_range(20, 60)
            .generate(1);
        let solver = DquboSolver::new(&inst, &DquboConfig::default().with_sweeps(50)).unwrap();
        let solution = solver.solve(2);
        assert_eq!(solution.assignment.len(), 10);
        // Either feasible with a matching value or marked infeasible
        // with zero.
        if solution.feasible {
            assert_eq!(solution.value(), inst.value(&solution.assignment));
        } else {
            assert_eq!(solution.value(), 0);
        }
    }

    #[test]
    fn dqubo_binary_encoding_shrinks_dimension() {
        use hycim_qubo::dqubo::AuxEncoding;
        let inst = QkpGenerator::new(10, 0.5)
            .with_capacity_range(100, 200)
            .generate(3);
        let one_hot = DquboSolver::new(&inst, &DquboConfig::default()).unwrap();
        let binary = DquboSolver::new(
            &inst,
            &DquboConfig::default().with_encoding(AuxEncoding::Binary),
        )
        .unwrap();
        assert!(binary.form().dim() < one_hot.form().dim());
    }

    #[test]
    fn dqubo_success_rate_is_low_on_benchmark_style_instances() {
        use hycim_cop::solvers;
        // The headline Fig. 10 contrast, at reduced scale: the penalty
        // baseline fails much more often than 50%.
        let mut successes = 0;
        let runs = 8;
        for seed in 0..runs {
            let inst = QkpGenerator::new(20, 0.5).generate(seed);
            let (_, best) = solvers::best_known(&inst, 10, seed);
            let solver = DquboSolver::new(&inst, &DquboConfig::default().with_sweeps(100)).unwrap();
            if solver.solve(seed).is_success(best) {
                successes += 1;
            }
        }
        assert!(
            successes <= runs / 2,
            "D-QUBO baseline unexpectedly strong: {successes}/{runs}"
        );
    }

    #[test]
    fn dqubo_deterministic_in_seed() {
        let inst = QkpGenerator::new(8, 0.5)
            .with_capacity_range(10, 30)
            .generate(5);
        let solver = DquboSolver::new(&inst, &DquboConfig::default().with_sweeps(20)).unwrap();
        assert_eq!(solver.solve(9).value(), solver.solve(9).value());
    }

    #[test]
    fn generic_engine_solves_raw_inequality_qubo() {
        use hycim_qubo::{LinearConstraint, QuboMatrix};
        let mut q = QuboMatrix::zeros(3);
        q.set(0, 0, -10.0);
        q.set(2, 2, -8.0);
        q.set(0, 2, -14.0);
        let iq = InequalityQubo::new(q, LinearConstraint::new(vec![4, 7, 2], 9).unwrap()).unwrap();
        let engine = HyCimEngine::new(&iq, &HyCimConfig::default().with_sweeps(60), 5).unwrap();
        let solution = engine.solve(6);
        assert_eq!(solution.objective, -32.0);
        assert!(iq.is_feasible(&solution.assignment));
    }

    #[test]
    fn unmappable_raw_problem_rejected() {
        use hycim_qubo::{LinearConstraint, QuboMatrix};
        let q = QuboMatrix::zeros(2);
        let iq = InequalityQubo::new(q, LinearConstraint::new(vec![100, 1], 50).unwrap()).unwrap();
        assert!(HyCimEngine::new(&iq, &HyCimConfig::default(), 1).is_err());
    }

    #[test]
    fn backend_tags() {
        let inst = fig7e();
        let config = HyCimConfig::default().with_sweeps(5);
        assert_eq!(
            HyCimSolver::new(&inst, &config, 1).unwrap().backend(),
            "hycim"
        );
        assert_eq!(
            SoftwareSolver::new(&inst, &config).unwrap().backend(),
            "software"
        );
        assert_eq!(
            DquboSolver::new(&inst, &DquboConfig::default())
                .unwrap()
                .backend(),
            "dqubo"
        );
        assert_eq!(
            BankEngine::new(&inst, &config, 1).unwrap().backend(),
            "bank"
        );
    }

    #[test]
    fn bank_engine_solves_fig7e_via_single_constraint_bank() {
        // A single-constraint problem runs on a 1-filter bank and
        // reaches the same optimum as the single-filter pipeline.
        let engine = BankEngine::new(&fig7e(), &HyCimConfig::default().with_sweeps(50), 1).unwrap();
        assert_eq!(engine.encoded().num_constraints(), 1);
        let solution = engine.solve(2);
        assert!(solution.feasible);
        assert_eq!(solution.value(), 25);
    }

    #[test]
    fn bank_engine_results_are_seed_deterministic() {
        let bp = hycim_cop::binpack::BinPacking::new(vec![4, 5, 3, 6], 9, 2).unwrap();
        let engine = BankEngine::new(&bp, &HyCimConfig::default().with_sweeps(30), 7).unwrap();
        let a = engine.solve(11);
        let b = engine.solve(11);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.reported_energy, b.reported_energy);
    }

    #[test]
    fn bank_engine_rejects_unmappable_constraints() {
        use hycim_qubo::{LinearConstraint, MultiInequalityQubo, QuboMatrix};
        // Weight 100 > the filter's 64-unit column limit: the raw
        // multi-form problem cannot be programmed.
        let mq = MultiInequalityQubo::new(
            QuboMatrix::zeros(2),
            vec![LinearConstraint::new(vec![100, 1], 50).unwrap()],
        )
        .unwrap();
        // Route through the raw-problem impl: a MultiInequalityQubo is
        // not itself a CopProblem, so check via the state directly.
        let mut rng = StdRng::seed_from_u64(1);
        assert!(BankHardwareState::build(
            &mq,
            &HyCimConfig::default().filter,
            &HyCimConfig::default().crossbar,
            Assignment::zeros(2),
            &mut rng,
        )
        .is_err());
    }
}
