use std::error::Error;
use std::fmt;

use hycim_cim::CimError;
use hycim_cop::CopError;
use hycim_qubo::QuboError;

/// Errors produced by the HyCiM framework: wraps the failures of the
/// transformation layer, the problem layer, and the CiM hardware
/// models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum HycimError {
    /// Error from the QUBO/transformation layer.
    Qubo(QuboError),
    /// Error from the COP layer.
    Cop(CopError),
    /// Error from the CiM circuit models.
    Cim(CimError),
}

impl fmt::Display for HycimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HycimError::Qubo(e) => write!(f, "qubo layer: {e}"),
            HycimError::Cop(e) => write!(f, "cop layer: {e}"),
            HycimError::Cim(e) => write!(f, "cim layer: {e}"),
        }
    }
}

impl Error for HycimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HycimError::Qubo(e) => Some(e),
            HycimError::Cop(e) => Some(e),
            HycimError::Cim(e) => Some(e),
        }
    }
}

impl From<QuboError> for HycimError {
    fn from(e: QuboError) -> Self {
        HycimError::Qubo(e)
    }
}

impl From<CopError> for HycimError {
    fn from(e: CopError) -> Self {
        HycimError::Cop(e)
    }
}

impl From<CimError> for HycimError {
    fn from(e: CimError) -> Self {
        HycimError::Cim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_and_displays() {
        let e: HycimError = QuboError::EmptyProblem.into();
        assert!(e.to_string().contains("qubo layer"));
        assert!(Error::source(&e).is_some());
        let e: HycimError = CopError::ZeroCapacity.into();
        assert!(e.to_string().contains("cop layer"));
        let e: HycimError = CimError::EmptyProblem.into();
        assert!(e.to_string().contains("cim layer"));
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<HycimError>();
    }
}
