//! Property-based tests of the annealing engine.

use hycim_anneal::{
    AnnealState, Annealer, ConstantSchedule, FlipOutcome, GeometricSchedule, LinearSchedule,
    PenaltyState, Schedule, SoftwareState,
};
use hycim_cop::generator::QkpGenerator;
use hycim_qubo::dqubo::{AuxEncoding, PenaltyWeights};
use hycim_qubo::Assignment;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// All schedules produce non-negative, finite temperatures.
    #[test]
    fn schedules_are_sane(t0 in 0.1f64..1000.0, alpha in 0.01f64..1.0, iter in 0usize..10_000) {
        let g = GeometricSchedule::new(t0, alpha);
        let l = LinearSchedule::new(t0);
        let c = ConstantSchedule::new(t0);
        for s in [&g as &dyn Schedule, &l, &c] {
            let t = s.temperature(iter, 10_000);
            prop_assert!(t.is_finite() && t >= 0.0);
        }
    }

    /// Trace bookkeeping: accepted + rejected + infeasible always
    /// equals the iteration count, and the best energy is a lower
    /// bound on every recorded energy.
    #[test]
    fn trace_invariants(seed in any::<u64>(), n in 4usize..20, iters in 10usize..400) {
        let inst = QkpGenerator::new(n, 0.5).generate(seed);
        let iq = inst.to_inequality_qubo().expect("valid");
        let mut state = SoftwareState::new(&iq, Assignment::zeros(n));
        let annealer = Annealer::new(GeometricSchedule::new(50.0, 0.99), iters);
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = annealer.run(&mut state, &mut rng);
        prop_assert_eq!(trace.iterations(), iters);
        prop_assert_eq!(trace.energies().len(), iters + 1);
        for &e in trace.energies() {
            prop_assert!(trace.best_energy() <= e + 1e-9);
        }
        prop_assert!(iq.is_feasible(trace.best_assignment()));
    }

    /// Zero-temperature descent is monotone for any problem.
    #[test]
    fn greedy_descent_is_monotone(seed in any::<u64>(), n in 4usize..16) {
        let inst = QkpGenerator::new(n, 0.75).generate(seed);
        let iq = inst.to_inequality_qubo().expect("valid");
        let mut state = SoftwareState::new(&iq, Assignment::zeros(n));
        let annealer = Annealer::new(ConstantSchedule::new(0.0), 200);
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = annealer.run(&mut state, &mut rng);
        for w in trace.energies().windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-9);
        }
    }

    /// Pair probes are algebraically consistent: probing (i, j) equals
    /// the sequential flips' total delta.
    #[test]
    fn pair_probe_matches_sequential(seed in any::<u64>(), n in 4usize..12) {
        let inst = QkpGenerator::new(n, 1.0).generate(seed);
        let iq = inst.to_inequality_qubo().expect("valid");
        let mut state = SoftwareState::new(&iq, Assignment::zeros(n));
        let mut rng = StdRng::seed_from_u64(seed);
        let (i, j) = (0, n - 1);
        if let FlipOutcome::Feasible { delta } = state.probe_pair(i, j, &mut rng) {
            let before = state.energy();
            state.commit_pair(i, j, delta);
            let expected = iq.objective_energy(state.assignment());
            prop_assert!((state.energy() - expected).abs() < 1e-9);
            prop_assert!((state.energy() - before - delta).abs() < 1e-9);
        }
    }

    /// PenaltyState never vetoes and its energy matches the exact form
    /// after arbitrary committed walks.
    #[test]
    fn penalty_state_consistency(seed in any::<u64>(), n in 3usize..8, steps in 1usize..60) {
        let inst = QkpGenerator::new(n, 0.5)
            .with_capacity_range(5, 40)
            .generate(seed);
        let form = inst
            .to_dqubo(PenaltyWeights::PAPER, AuxEncoding::Binary)
            .expect("transformable");
        let mut state = PenaltyState::new(&form, Assignment::zeros(form.dim()));
        let mut rng = StdRng::seed_from_u64(seed);
        for s in 0..steps {
            let i = s % form.dim();
            match state.probe_flip(i, &mut rng) {
                FlipOutcome::Feasible { delta } => state.commit_flip(i, delta),
                FlipOutcome::Infeasible => prop_assert!(false, "penalty state vetoed"),
            }
        }
        prop_assert!((state.energy() - form.energy(state.assignment())).abs() < 1e-6);
    }

    /// The local-field backend is bit-identical to the dense path on
    /// integer-valued instances: the full annealing run — every RNG
    /// draw, accept decision, and recorded energy — matches exactly.
    #[test]
    fn software_runs_match_dense_bit_for_bit(
        seed in any::<u64>(),
        n in 4usize..24,
        iters in 20usize..300,
    ) {
        let inst = QkpGenerator::new(n, 0.5).generate(seed);
        let iq = inst.to_inequality_qubo().expect("valid");
        let annealer = Annealer::new(GeometricSchedule::new(50.0, 0.995), iters);
        let mut rng_local = StdRng::seed_from_u64(seed);
        let mut local = SoftwareState::new(&iq, Assignment::zeros(n));
        let trace_local = annealer.run(&mut local, &mut rng_local);
        let mut rng_dense = StdRng::seed_from_u64(seed);
        let mut dense = SoftwareState::new(&iq, Assignment::zeros(n)).with_dense_deltas();
        let trace_dense = annealer.run(&mut dense, &mut rng_dense);
        prop_assert_eq!(trace_local, trace_dense);
        prop_assert_eq!(local.assignment(), dense.assignment());
        prop_assert_eq!(local.energy(), dense.energy());
    }

    /// Same bit-identity law for the penalty (D-QUBO) state.
    #[test]
    fn penalty_runs_match_dense_bit_for_bit(
        seed in any::<u64>(),
        n in 3usize..10,
        iters in 20usize..200,
    ) {
        let inst = QkpGenerator::new(n, 0.5)
            .with_capacity_range(5, 40)
            .generate(seed);
        let form = inst
            .to_dqubo(PenaltyWeights::PAPER, AuxEncoding::Binary)
            .expect("transformable");
        let annealer = Annealer::new(GeometricSchedule::new(50.0, 0.99), iters);
        let mut rng_local = StdRng::seed_from_u64(seed);
        let mut local = PenaltyState::new(&form, Assignment::zeros(form.dim()));
        let trace_local = annealer.run(&mut local, &mut rng_local);
        let mut rng_dense = StdRng::seed_from_u64(seed);
        let mut dense = PenaltyState::new(&form, Assignment::zeros(form.dim())).with_dense_deltas();
        let trace_dense = annealer.run(&mut dense, &mut rng_dense);
        prop_assert_eq!(trace_local, trace_dense);
        prop_assert_eq!(local.assignment(), dense.assignment());
    }
}
