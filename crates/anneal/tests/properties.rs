//! Property-based tests of the annealing engine.

use hycim_anneal::{
    AnnealState, Annealer, ConstantSchedule, FlipOutcome, GeometricSchedule, LinearSchedule,
    PenaltyState, Schedule, SoftwareState,
};
use hycim_cop::generator::QkpGenerator;
use hycim_qubo::dqubo::{AuxEncoding, PenaltyWeights};
use hycim_qubo::Assignment;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// All schedules produce non-negative, finite temperatures.
    #[test]
    fn schedules_are_sane(t0 in 0.1f64..1000.0, alpha in 0.01f64..1.0, iter in 0usize..10_000) {
        let g = GeometricSchedule::new(t0, alpha);
        let l = LinearSchedule::new(t0);
        let c = ConstantSchedule::new(t0);
        for s in [&g as &dyn Schedule, &l, &c] {
            let t = s.temperature(iter, 10_000);
            prop_assert!(t.is_finite() && t >= 0.0);
        }
    }

    /// Trace bookkeeping: accepted + rejected + infeasible always
    /// equals the iteration count, and the best energy is a lower
    /// bound on every recorded energy.
    #[test]
    fn trace_invariants(seed in any::<u64>(), n in 4usize..20, iters in 10usize..400) {
        let inst = QkpGenerator::new(n, 0.5).generate(seed);
        let iq = inst.to_inequality_qubo().expect("valid");
        let mut state = SoftwareState::new(&iq, Assignment::zeros(n));
        let annealer = Annealer::new(GeometricSchedule::new(50.0, 0.99), iters);
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = annealer.run(&mut state, &mut rng);
        prop_assert_eq!(trace.iterations(), iters);
        prop_assert_eq!(trace.energies().len(), iters + 1);
        for &e in trace.energies() {
            prop_assert!(trace.best_energy() <= e + 1e-9);
        }
        prop_assert!(iq.is_feasible(trace.best_assignment()));
    }

    /// Zero-temperature descent is monotone for any problem.
    #[test]
    fn greedy_descent_is_monotone(seed in any::<u64>(), n in 4usize..16) {
        let inst = QkpGenerator::new(n, 0.75).generate(seed);
        let iq = inst.to_inequality_qubo().expect("valid");
        let mut state = SoftwareState::new(&iq, Assignment::zeros(n));
        let annealer = Annealer::new(ConstantSchedule::new(0.0), 200);
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = annealer.run(&mut state, &mut rng);
        for w in trace.energies().windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-9);
        }
    }

    /// Pair probes are algebraically consistent: probing (i, j) equals
    /// the sequential flips' total delta.
    #[test]
    fn pair_probe_matches_sequential(seed in any::<u64>(), n in 4usize..12) {
        let inst = QkpGenerator::new(n, 1.0).generate(seed);
        let iq = inst.to_inequality_qubo().expect("valid");
        let mut state = SoftwareState::new(&iq, Assignment::zeros(n));
        let mut rng = StdRng::seed_from_u64(seed);
        let (i, j) = (0, n - 1);
        if let FlipOutcome::Feasible { delta } = state.probe_pair(i, j, &mut rng) {
            let before = state.energy();
            state.commit_pair(i, j, delta);
            let expected = iq.objective_energy(state.assignment());
            prop_assert!((state.energy() - expected).abs() < 1e-9);
            prop_assert!((state.energy() - before - delta).abs() < 1e-9);
        }
    }

    /// PenaltyState never vetoes and its energy matches the exact form
    /// after arbitrary committed walks.
    #[test]
    fn penalty_state_consistency(seed in any::<u64>(), n in 3usize..8, steps in 1usize..60) {
        let inst = QkpGenerator::new(n, 0.5)
            .with_capacity_range(5, 40)
            .generate(seed);
        let form = inst
            .to_dqubo(PenaltyWeights::PAPER, AuxEncoding::Binary)
            .expect("transformable");
        let mut state = PenaltyState::new(&form, Assignment::zeros(form.dim()));
        let mut rng = StdRng::seed_from_u64(seed);
        for s in 0..steps {
            let i = s % form.dim();
            match state.probe_flip(i, &mut rng) {
                FlipOutcome::Feasible { delta } => state.commit_flip(i, delta),
                FlipOutcome::Infeasible => prop_assert!(false, "penalty state vetoed"),
            }
        }
        prop_assert!((state.energy() - form.energy(state.assignment())).abs() < 1e-6);
    }

    /// The local-field backend is bit-identical to the dense path on
    /// integer-valued instances: the full annealing run — every RNG
    /// draw, accept decision, and recorded energy — matches exactly.
    #[test]
    fn software_runs_match_dense_bit_for_bit(
        seed in any::<u64>(),
        n in 4usize..24,
        iters in 20usize..300,
    ) {
        let inst = QkpGenerator::new(n, 0.5).generate(seed);
        let iq = inst.to_inequality_qubo().expect("valid");
        let annealer = Annealer::new(GeometricSchedule::new(50.0, 0.995), iters);
        let mut rng_local = StdRng::seed_from_u64(seed);
        let mut local = SoftwareState::new(&iq, Assignment::zeros(n));
        let trace_local = annealer.run(&mut local, &mut rng_local);
        let mut rng_dense = StdRng::seed_from_u64(seed);
        let mut dense = SoftwareState::new(&iq, Assignment::zeros(n)).with_dense_deltas();
        let trace_dense = annealer.run(&mut dense, &mut rng_dense);
        prop_assert_eq!(trace_local, trace_dense);
        prop_assert_eq!(local.assignment(), dense.assignment());
        prop_assert_eq!(local.energy(), dense.energy());
    }

    /// Same bit-identity law for the penalty (D-QUBO) state.
    #[test]
    fn penalty_runs_match_dense_bit_for_bit(
        seed in any::<u64>(),
        n in 3usize..10,
        iters in 20usize..200,
    ) {
        let inst = QkpGenerator::new(n, 0.5)
            .with_capacity_range(5, 40)
            .generate(seed);
        let form = inst
            .to_dqubo(PenaltyWeights::PAPER, AuxEncoding::Binary)
            .expect("transformable");
        let annealer = Annealer::new(GeometricSchedule::new(50.0, 0.99), iters);
        let mut rng_local = StdRng::seed_from_u64(seed);
        let mut local = PenaltyState::new(&form, Assignment::zeros(form.dim()));
        let trace_local = annealer.run(&mut local, &mut rng_local);
        let mut rng_dense = StdRng::seed_from_u64(seed);
        let mut dense = PenaltyState::new(&form, Assignment::zeros(form.dim())).with_dense_deltas();
        let trace_dense = annealer.run(&mut dense, &mut rng_dense);
        prop_assert_eq!(trace_local, trace_dense);
        prop_assert_eq!(local.assignment(), dense.assignment());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The run-level packed bit-identity law: a 64-lane packed sweep
    /// run over a max-cut or spin-glass instance equals 64 independent
    /// scalar `LocalFieldState` sweep runs — same best energies, best
    /// assignments, final energies, and aggregate move counts — when
    /// lane `k` consumes the RNG stream seeded for replica `k`.
    #[test]
    fn packed_run_bit_identical_to_scalar_replicas(
        seed in any::<u64>(),
        n in 8usize..40,
        family in 0usize..2,
        sweeps in 2usize..12,
    ) {
        use hycim_anneal::{run_packed_sweeps, run_replica_scalar, SweepSchedule};
        use hycim_cop::maxcut::MaxCut;
        use hycim_cop::spinglass::SpinGlass;
        use hycim_cop::CopProblem;
        use hycim_qubo::LANES;

        let iq = if family == 0 {
            CopProblem::to_inequality_qubo(&MaxCut::random(n, 0.2, seed)).expect("encodes")
        } else {
            CopProblem::to_inequality_qubo(&SpinGlass::random_binary(n.max(2), seed).expect("n >= 2"))
                .expect("encodes")
        };
        let lane_seed = |k: usize| seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(k as u64);
        let mut rngs: Vec<StdRng> =
            (0..LANES).map(|k| StdRng::seed_from_u64(lane_seed(k))).collect();
        let initials: Vec<Assignment> = rngs
            .iter_mut()
            .map(|rng| CopProblem::initial(&iq, rng))
            .collect();
        let schedule = SweepSchedule::cooling_to(40.0, 0.02, sweeps);

        let packed = run_packed_sweeps(&iq, &initials, sweeps, &schedule, &mut rngs);

        let (mut acc, mut rej, mut inf) = (0u64, 0u64, 0u64);
        for (k, initial) in initials.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(lane_seed(k));
            let _ = CopProblem::initial(&iq, &mut rng); // advance past the initial draw
            let scalar = run_replica_scalar(&iq, initial.clone(), sweeps, &schedule, &mut rng);
            prop_assert_eq!(
                packed.best_energies[k].to_bits(),
                scalar.best_energy.to_bits(),
                "lane {} best energy", k
            );
            prop_assert_eq!(
                &packed.best_assignments[k], &scalar.best_assignment,
                "lane {} best assignment", k
            );
            prop_assert_eq!(
                packed.final_energies[k].to_bits(),
                scalar.final_energy.to_bits(),
                "lane {} final energy", k
            );
            acc += scalar.accepted;
            rej += scalar.rejected;
            inf += scalar.infeasible;
        }
        prop_assert_eq!((packed.accepted, packed.rejected, packed.infeasible), (acc, rej, inf));
    }
}
