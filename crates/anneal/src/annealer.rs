use rand::rngs::StdRng;
use rand::Rng;

use crate::{AnnealState, AnnealTrace, FlipOutcome, Schedule};

/// The Metropolis simulated-annealing loop of the paper's SA logic
/// (Fig. 6(b)).
///
/// Each iteration: generate a new configuration (single-bit flip of
/// the current one), submit it to the problem's feasibility check
/// (HyCiM: the inequality filter), and — for admissible moves — accept
/// with probability `min(1, exp(−ΔE/T))`.
///
/// # Example
///
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct Annealer<S: Schedule> {
    schedule: S,
    iterations: usize,
    record_trace: bool,
    swap_probability: f64,
}

/// The paper-calibrated exchange-move fraction (Sec 4): half of the
/// proposed moves swap one selected bit for one unselected bit. This
/// is the single source of truth — the solver configurations in
/// `hycim-core` default to the same value.
pub const DEFAULT_SWAP_PROBABILITY: f64 = 0.5;

/// Below this value of `−Δ/T`, `exp` is dominated by every nonzero
/// uniform draw: the RNG's `f64` samples are multiples of 2⁻⁵³
/// (≈ 1.11e-16), and `exp(−37)` ≈ 8.5e-17 < 2⁻⁵³, so `u < exp(arg)`
/// is false for every `u > 0`. Skipping `exp` there changes no
/// decision.
const EXP_DOMINATED: f64 = -37.0;

/// Uphill moves with `Δ ≥ 37.5·T` are rejected by every nonzero
/// uniform draw: `−Δ/T ≤ −37.5·(1 − 2⁻⁵²) < −37` even after the
/// division's half-ulp rounding, so the comparison against
/// [`EXP_DOMINATED`] is provably lost before any randomness is
/// consumed. The 0.5 margin over `−EXP_DOMINATED` absorbs the
/// rounding.
pub(crate) const DRAW_DOMINATED: f64 = 37.5;

/// The shared Metropolis acceptance test: accept downhill moves
/// unconditionally, uphill moves with probability `exp(−Δ/T)` — drawn
/// against one uniform sample consumed *only* for uphill moves at
/// positive temperature. The production loops in this crate (the
/// [`Annealer`] and scalar parallel tempering) funnel through this
/// function; the sweep-synchronous loops share
/// [`metropolis_accept_sweep`] instead. Within each pair the accept
/// decisions — and the RNG stream consumption — stay comparable
/// move-for-move.
///
/// The result is *exactly* `u < exp(−Δ/T)` for the drawn `u`: the
/// `EXP_DOMINATED` shortcut only skips `exp` where the comparison is
/// provably false (see the constant), and a `u == 0.0` draw accepts
/// iff `exp` has not underflowed to zero.
#[inline]
pub fn metropolis_accept(delta: f64, temperature: f64, rng: &mut StdRng) -> bool {
    if delta <= 0.0 {
        return true;
    }
    if temperature <= 0.0 {
        return false;
    }
    let u = rng.random::<f64>();
    let arg = -delta / temperature;
    if u == 0.0 {
        return arg.exp() > 0.0;
    }
    arg > EXP_DOMINATED && u < arg.exp()
}

/// The *sweep-reference* Metropolis test: the same acceptance rule as
/// [`metropolis_accept`], except that a deterministically-rejected
/// uphill move — `Δ ≥ 37.5·T`, where the acceptance probability is
/// smaller than every representable nonzero uniform sample (see
/// `DRAW_DOMINATED`) — is rejected *without consuming a draw*. In
/// the cold tail of an anneal nearly every proposal is in this
/// regime, so skipping the futile draws is the packed sweep's single
/// biggest saving; the RNG stream diverges from [`metropolis_accept`]
/// after the first skip, which is why this is a separate function.
///
/// Both sides of the packed bit-identity law — the packed 64-lane
/// sweep and the scalar sweep reference
/// ([`run_replica_scalar`](crate::run_replica_scalar)) — funnel
/// through this test, so lane `k`'s decisions and draw consumption
/// stay aligned move-for-move. The production [`Annealer`] keeps the
/// always-draw [`metropolis_accept`].
#[inline]
pub fn metropolis_accept_sweep(delta: f64, temperature: f64, rng: &mut StdRng) -> bool {
    if delta <= 0.0 {
        return true;
    }
    if temperature <= 0.0 || delta >= DRAW_DOMINATED * temperature {
        return false;
    }
    let u = rng.random::<f64>();
    let arg = -delta / temperature;
    if u == 0.0 {
        return arg.exp() > 0.0;
    }
    arg > EXP_DOMINATED && u < arg.exp()
}

impl<S: Schedule> Annealer<S> {
    /// Creates an annealer running `iterations` iterations under
    /// `schedule`, recording the full energy trace. By default
    /// [`DEFAULT_SWAP_PROBABILITY`] of the moves are exchange
    /// (pair-flip) moves — see
    /// [`with_swap_probability`](Self::with_swap_probability).
    ///
    /// # Panics
    ///
    /// Panics if `iterations == 0`.
    pub fn new(schedule: S, iterations: usize) -> Self {
        assert!(iterations > 0, "need at least one iteration");
        Self {
            schedule,
            iterations,
            record_trace: true,
            swap_probability: DEFAULT_SWAP_PROBABILITY,
        }
    }

    /// Disables per-iteration energy recording (saves memory in bulk
    /// success-rate experiments).
    pub fn without_trace(mut self) -> Self {
        self.record_trace = false;
        self
    }

    /// Sets the fraction of moves proposed as exchanges (one selected
    /// bit swapped with one unselected bit, probed as a single move).
    /// Exchange moves let a capacity-filtered knapsack SA replace an
    /// item without the uphill remove-then-add intermediate; `0.0`
    /// gives a pure single-flip neighborhood.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `0.0..=1.0`.
    pub fn with_swap_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.swap_probability = p;
        self
    }

    /// Number of iterations per run.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The schedule in use.
    pub fn schedule(&self) -> &S {
        &self.schedule
    }

    /// Runs the annealing loop to completion, mutating `state` in
    /// place and returning the trace. Deterministic in `rng`.
    pub fn run<T: AnnealState>(&self, state: &mut T, rng: &mut StdRng) -> AnnealTrace {
        let n = state.dim();
        let mut trace = AnnealTrace::with_capacity(
            state.energy(),
            state.assignment().clone(),
            self.record_trace,
            self.iterations,
        );
        for iter in 0..self.iterations {
            let temperature = self.schedule.temperature(iter, self.iterations);
            let pair = if self.swap_probability > 0.0 && rng.random::<f64>() < self.swap_probability
            {
                propose_exchange(state.assignment(), rng)
            } else {
                None
            };
            let (outcome, bits) = match pair {
                Some((i, j)) => (state.probe_pair(i, j, rng), (i, Some(j))),
                None => {
                    let i = rng.random_range(0..n);
                    (state.probe_flip(i, rng), (i, None))
                }
            };
            match outcome {
                FlipOutcome::Infeasible => {
                    // Paper Fig. 3: infeasible configurations are sent
                    // back to the SA logic; no QUBO computation happens.
                    trace.count_infeasible();
                }
                FlipOutcome::Feasible { delta } => {
                    if metropolis_accept(delta, temperature, rng) {
                        match bits {
                            (i, Some(j)) => state.commit_pair(i, j, delta),
                            (i, None) => state.commit_flip(i, delta),
                        }
                        trace.count_accept();
                        // Only record as the reserved best after the
                        // problem re-verifies the configuration
                        // (hardware re-runs the inequality filter).
                        if state.energy() < trace.best_energy() && state.verify_best(rng) {
                            trace.update_best(state.energy(), state.assignment());
                        }
                    } else {
                        trace.count_reject();
                    }
                }
            }
            trace.record_iteration(state.energy(), self.record_trace);
        }
        trace
    }
}

/// Picks one selected and one unselected bit for an exchange move;
/// falls back to `None` (→ single flip) when the configuration is all
/// zeros or all ones. The degeneracy check reads the O(1) cached
/// popcount, so proposing costs O(1) expected — no bit scans.
fn propose_exchange(x: &hycim_qubo::Assignment, rng: &mut StdRng) -> Option<(usize, usize)> {
    let n = x.len();
    let ones = x.ones();
    if ones == 0 || ones == n {
        return None;
    }
    // Rejection-sample both sides; expected iterations are small for
    // any non-degenerate density.
    let i = loop {
        let c = rng.random_range(0..n);
        if x.get(c) {
            break c;
        }
    };
    let j = loop {
        let c = rng.random_range(0..n);
        if !x.get(c) {
            break c;
        }
    };
    Some((i, j))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConstantSchedule, GeometricSchedule, PenaltyState, SoftwareState};
    use hycim_cop::generator::QkpGenerator;
    use hycim_cop::solvers;
    use hycim_qubo::dqubo::{AuxEncoding, PenaltyWeights};
    use hycim_qubo::{Assignment, InequalityQubo, LinearConstraint, QuboMatrix};
    use rand::SeedableRng;

    fn fig7e() -> InequalityQubo {
        let mut q = QuboMatrix::zeros(3);
        q.set(0, 0, -10.0);
        q.set(1, 1, -6.0);
        q.set(2, 2, -8.0);
        q.set(0, 1, -6.0);
        q.set(0, 2, -14.0);
        q.set(1, 2, -4.0);
        InequalityQubo::new(q, LinearConstraint::new(vec![4, 7, 2], 9).unwrap()).unwrap()
    }

    #[test]
    fn solves_fig7e_to_optimum() {
        // The chip demo of Fig. 7(f): reaches E = −32 within a handful
        // of iterations.
        let iq = fig7e();
        let annealer = Annealer::new(GeometricSchedule::new(15.0, 0.85), 100);
        let mut rng = StdRng::seed_from_u64(5);
        let mut state = SoftwareState::new(&iq, Assignment::zeros(3));
        let trace = annealer.run(&mut state, &mut rng);
        assert_eq!(trace.best_energy(), -32.0);
        assert_eq!(
            trace.best_assignment(),
            &Assignment::from_bits([true, false, true])
        );
    }

    #[test]
    fn greedy_descent_never_accepts_uphill() {
        let iq = fig7e();
        let annealer = Annealer::new(ConstantSchedule::new(0.0), 200);
        let mut rng = StdRng::seed_from_u64(6);
        let mut state = SoftwareState::new(&iq, Assignment::zeros(3));
        let trace = annealer.run(&mut state, &mut rng);
        // Energies must be monotone non-increasing at T = 0.
        assert!(trace.energies().windows(2).all(|w| w[1] <= w[0] + 1e-12));
    }

    #[test]
    fn trace_counts_sum_to_iterations() {
        let iq = fig7e();
        let annealer = Annealer::new(GeometricSchedule::new(10.0, 0.99), 500);
        let mut rng = StdRng::seed_from_u64(7);
        let mut state = SoftwareState::new(&iq, Assignment::zeros(3));
        let trace = annealer.run(&mut state, &mut rng);
        assert_eq!(trace.iterations(), 500);
        assert_eq!(trace.energies().len(), 501);
    }

    #[test]
    fn runs_are_seed_deterministic() {
        let iq = fig7e();
        let annealer = Annealer::new(GeometricSchedule::new(10.0, 0.95), 300);
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut state = SoftwareState::new(&iq, Assignment::zeros(3));
            annealer.run(&mut state, &mut rng)
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn hycim_state_stays_feasible_throughout() {
        let inst = QkpGenerator::new(30, 0.5).generate(8);
        let iq = inst.to_inequality_qubo().unwrap();
        let annealer = Annealer::new(GeometricSchedule::new(100.0, 0.99), 1000);
        let mut rng = StdRng::seed_from_u64(9);
        let mut state = SoftwareState::new(&iq, Assignment::zeros(30));
        let trace = annealer.run(&mut state, &mut rng);
        assert!(iq.is_feasible(state.assignment()));
        assert!(iq.is_feasible(trace.best_assignment()));
        assert!(trace.rejected_infeasible() > 0, "filter never fired");
    }

    #[test]
    fn software_sa_reaches_95_percent_on_small_qkp() {
        // The paper's success criterion on exhaustively solvable sizes.
        let mut successes = 0;
        for seed in 0..10 {
            let inst = QkpGenerator::new(15, 0.5).generate(seed);
            let (_, opt) = solvers::exhaustive(&inst).unwrap();
            let iq = inst.to_inequality_qubo().unwrap();
            let annealer = Annealer::new(GeometricSchedule::for_energy_scale(100.0, 4000), 4000)
                .without_trace();
            let mut rng = StdRng::seed_from_u64(seed);
            let mut state = SoftwareState::new(&iq, Assignment::zeros(15));
            let trace = annealer.run(&mut state, &mut rng);
            let value = -trace.best_energy();
            if value >= 0.95 * opt as f64 {
                successes += 1;
            }
        }
        assert!(successes >= 9, "only {successes}/10 runs reached 95%");
    }

    #[test]
    fn dqubo_sa_gets_trapped_more_often() {
        // The qualitative Fig. 10 effect at small scale: penalty-form
        // SA ends infeasible or suboptimal far more often than the
        // filtered form.
        let mut dqubo_bad = 0;
        let mut hycim_bad = 0;
        let runs = 10;
        for seed in 0..runs {
            let inst = QkpGenerator::new(12, 0.75).generate(seed + 100);
            let (_, opt) = solvers::exhaustive(&inst).unwrap();
            let iq = inst.to_inequality_qubo().unwrap();
            let form = inst
                .to_dqubo(PenaltyWeights::PAPER, AuxEncoding::OneHot)
                .unwrap();

            let mut rng = StdRng::seed_from_u64(seed);
            let annealer =
                Annealer::new(GeometricSchedule::for_energy_scale(100.0, 800), 800).without_trace();

            let mut hs = SoftwareState::new(&iq, Assignment::zeros(12));
            let ht = annealer.run(&mut hs, &mut rng);
            if -ht.best_energy() < 0.95 * opt as f64 {
                hycim_bad += 1;
            }

            let mut ds = PenaltyState::new(&form, Assignment::zeros(form.dim()));
            let dt = annealer.run(&mut ds, &mut rng);
            let best_items = form.decode(dt.best_assignment());
            let ok = inst.is_feasible(&best_items)
                && inst.value(&best_items) as f64 >= 0.95 * opt as f64;
            if !ok {
                dqubo_bad += 1;
            }
        }
        assert!(
            dqubo_bad > hycim_bad,
            "expected D-QUBO to fail more often: D-QUBO {dqubo_bad}/{runs}, HyCiM {hycim_bad}/{runs}"
        );
    }
}
