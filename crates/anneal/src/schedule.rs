use std::fmt;

/// An annealing temperature schedule: temperature as a function of the
/// iteration index.
///
/// # Example
///
/// ```
/// use hycim_anneal::{GeometricSchedule, Schedule};
///
/// let s = GeometricSchedule::new(10.0, 0.5);
/// assert_eq!(s.temperature(0, 100), 10.0);
/// assert_eq!(s.temperature(2, 100), 2.5);
/// ```
pub trait Schedule {
    /// Temperature at iteration `iter` of `total` iterations. Must be
    /// non-negative.
    fn temperature(&self, iter: usize, total: usize) -> f64;
}

/// Geometric cooling `T_k = T₀ · αᵏ` — the standard hardware-annealer
/// schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeometricSchedule {
    t0: f64,
    alpha: f64,
}

impl GeometricSchedule {
    /// Creates a geometric schedule.
    ///
    /// # Panics
    ///
    /// Panics if `t0 <= 0` or `alpha` is outside `(0, 1]`.
    pub fn new(t0: f64, alpha: f64) -> Self {
        assert!(
            t0 > 0.0 && t0.is_finite(),
            "initial temperature must be positive"
        );
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self { t0, alpha }
    }

    /// A schedule tuned for QKP profit scales: starts near the largest
    /// profit coefficient and decays to ~1% of it over `total`
    /// iterations.
    pub fn for_energy_scale(scale: f64, total: usize) -> Self {
        let t0 = scale.max(1.0);
        // α such that t0·α^total = 0.01·t0.
        let alpha = (0.01f64).powf(1.0 / total.max(1) as f64);
        Self { t0, alpha }
    }

    /// Initial temperature.
    pub fn t0(&self) -> f64 {
        self.t0
    }

    /// Cooling factor per iteration.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl Schedule for GeometricSchedule {
    fn temperature(&self, iter: usize, _total: usize) -> f64 {
        self.t0 * self.alpha.powi(iter as i32)
    }
}

impl fmt::Display for GeometricSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "geometric(T₀={}, α={})", self.t0, self.alpha)
    }
}

/// Linear cooling `T_k = T₀ · (1 − k/total)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearSchedule {
    t0: f64,
}

impl LinearSchedule {
    /// Creates a linear schedule.
    ///
    /// # Panics
    ///
    /// Panics if `t0 <= 0`.
    pub fn new(t0: f64) -> Self {
        assert!(
            t0 > 0.0 && t0.is_finite(),
            "initial temperature must be positive"
        );
        Self { t0 }
    }

    /// Initial temperature.
    pub fn t0(&self) -> f64 {
        self.t0
    }
}

impl Schedule for LinearSchedule {
    fn temperature(&self, iter: usize, total: usize) -> f64 {
        let frac = 1.0 - iter as f64 / total.max(1) as f64;
        self.t0 * frac.max(0.0)
    }
}

impl fmt::Display for LinearSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "linear(T₀={})", self.t0)
    }
}

/// Constant temperature (Metropolis sampling without cooling).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantSchedule {
    t: f64,
}

impl ConstantSchedule {
    /// Creates a constant schedule. A temperature of zero is allowed
    /// and yields pure greedy descent.
    ///
    /// # Panics
    ///
    /// Panics if `t < 0` or `t` is not finite.
    pub fn new(t: f64) -> Self {
        assert!(
            t >= 0.0 && t.is_finite(),
            "temperature must be non-negative"
        );
        Self { t }
    }
}

impl Schedule for ConstantSchedule {
    fn temperature(&self, _iter: usize, _total: usize) -> f64 {
        self.t
    }
}

impl fmt::Display for ConstantSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "constant(T={})", self.t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_decays() {
        let s = GeometricSchedule::new(100.0, 0.9);
        assert!(s.temperature(10, 0) < s.temperature(5, 0));
        assert!(s.temperature(1000, 0) > 0.0);
    }

    #[test]
    fn for_energy_scale_hits_one_percent() {
        let s = GeometricSchedule::for_energy_scale(100.0, 1000);
        let end = s.temperature(1000, 1000);
        assert!((end - 1.0).abs() < 0.01, "end temperature {end}");
    }

    #[test]
    fn linear_reaches_zero() {
        let s = LinearSchedule::new(10.0);
        assert_eq!(s.temperature(0, 100), 10.0);
        assert_eq!(s.temperature(100, 100), 0.0);
        assert_eq!(s.temperature(150, 100), 0.0);
    }

    #[test]
    fn constant_is_constant() {
        let s = ConstantSchedule::new(3.0);
        assert_eq!(s.temperature(0, 10), s.temperature(9, 10));
    }

    #[test]
    fn zero_constant_allowed() {
        assert_eq!(ConstantSchedule::new(0.0).temperature(5, 10), 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn geometric_validates_alpha() {
        let _ = GeometricSchedule::new(1.0, 1.5);
    }

    #[test]
    fn display() {
        assert!(GeometricSchedule::new(1.0, 0.5)
            .to_string()
            .contains("geometric"));
        assert!(LinearSchedule::new(1.0).to_string().contains("linear"));
        assert!(ConstantSchedule::new(1.0).to_string().contains("constant"));
    }
}
