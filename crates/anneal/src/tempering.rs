//! Parallel tempering (replica exchange) — an optional upgrade over
//! plain SA for rugged QKP landscapes; listed as an extension in
//! DESIGN.md. Several replicas anneal at fixed, geometrically spaced
//! temperatures and periodically propose state swaps between adjacent
//! temperatures with the standard exchange acceptance
//! `min(1, exp((1/T_a − 1/T_b)(E_a − E_b)))`.

use rand::rngs::StdRng;
use rand::Rng;

use crate::{AnnealState, FlipOutcome};

/// Configuration of a parallel-tempering run.
#[derive(Debug, Clone, PartialEq)]
pub struct TemperingConfig {
    /// Number of replicas (temperature rungs).
    pub replicas: usize,
    /// Lowest (coldest) temperature.
    pub t_min: f64,
    /// Highest (hottest) temperature.
    pub t_max: f64,
    /// Metropolis steps between exchange attempts.
    pub steps_per_exchange: usize,
    /// Total exchange rounds.
    pub rounds: usize,
}

impl TemperingConfig {
    /// A reasonable default ladder for profit-scale ~100 problems.
    pub fn standard() -> Self {
        Self {
            replicas: 8,
            t_min: 0.5,
            t_max: 100.0,
            steps_per_exchange: 200,
            rounds: 50,
        }
    }

    /// Geometrically spaced temperature ladder, coldest first.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (fewer than 2
    /// replicas, non-positive temperatures, or `t_min >= t_max`).
    pub fn ladder(&self) -> Vec<f64> {
        assert!(self.replicas >= 2, "need at least two replicas");
        assert!(
            self.t_min > 0.0 && self.t_max > self.t_min,
            "need 0 < t_min < t_max"
        );
        let ratio = (self.t_max / self.t_min).powf(1.0 / (self.replicas - 1) as f64);
        (0..self.replicas)
            .map(|k| self.t_min * ratio.powi(k as i32))
            .collect()
    }
}

impl Default for TemperingConfig {
    fn default() -> Self {
        Self::standard()
    }
}

/// Result of a tempering run.
#[derive(Debug, Clone, PartialEq)]
pub struct TemperingResult {
    /// Best energy seen across all replicas.
    pub best_energy: f64,
    /// Configuration achieving it.
    pub best_assignment: hycim_qubo::Assignment,
    /// Accepted replica exchanges.
    pub exchanges_accepted: usize,
    /// Attempted replica exchanges.
    pub exchanges_attempted: usize,
}

impl TemperingResult {
    /// Exchange acceptance ratio.
    pub fn exchange_rate(&self) -> f64 {
        if self.exchanges_attempted == 0 {
            return 0.0;
        }
        self.exchanges_accepted as f64 / self.exchanges_attempted as f64
    }
}

/// Runs parallel tempering over states created by `make_state` (one
/// per replica; all must describe the same problem). Deterministic in
/// `rng`.
///
/// Replica *states* are exchanged by swapping the state objects
/// between temperature rungs, which is exact for any [`AnnealState`]
/// implementation.
///
/// # Panics
///
/// Panics on a degenerate configuration (see
/// [`TemperingConfig::ladder`]).
pub fn run_tempering<T, F>(
    config: &TemperingConfig,
    mut make_state: F,
    rng: &mut StdRng,
) -> TemperingResult
where
    T: AnnealState,
    F: FnMut(usize) -> T,
{
    let ladder = config.ladder();
    let mut states: Vec<T> = (0..config.replicas).map(&mut make_state).collect();
    let mut best_energy = f64::INFINITY;
    let mut best_assignment = states[0].assignment().clone();
    let mut accepted = 0;
    let mut attempted = 0;

    for _round in 0..config.rounds {
        // Metropolis sweeps at each rung.
        for (state, &t) in states.iter_mut().zip(&ladder) {
            let n = state.dim();
            for _ in 0..config.steps_per_exchange {
                let i = rng.random_range(0..n);
                if let FlipOutcome::Feasible { delta } = state.probe_flip(i, rng) {
                    let accept = delta <= 0.0 || rng.random::<f64>() < (-delta / t).exp();
                    if accept {
                        state.commit_flip(i, delta);
                        if state.energy() < best_energy && state.verify_best(rng) {
                            best_energy = state.energy();
                            best_assignment = state.assignment().clone();
                        }
                    }
                }
            }
        }
        // Adjacent exchanges, alternating parity each round.
        let start = _round % 2;
        for k in (start..config.replicas - 1).step_by(2) {
            attempted += 1;
            let (ta, tb) = (ladder[k], ladder[k + 1]);
            let (ea, eb) = (states[k].energy(), states[k + 1].energy());
            let arg = (1.0 / ta - 1.0 / tb) * (ea - eb);
            if arg >= 0.0 || rng.random::<f64>() < arg.exp() {
                states.swap(k, k + 1);
                accepted += 1;
            }
        }
    }

    TemperingResult {
        best_energy,
        best_assignment,
        exchanges_accepted: accepted,
        exchanges_attempted: attempted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SoftwareState;
    use hycim_cop::generator::QkpGenerator;
    use hycim_cop::solvers;
    use hycim_qubo::Assignment;
    use rand::SeedableRng;

    #[test]
    fn ladder_is_geometric_and_ascending() {
        let config = TemperingConfig::standard();
        let ladder = config.ladder();
        assert_eq!(ladder.len(), 8);
        assert!((ladder[0] - 0.5).abs() < 1e-12);
        assert!((ladder[7] - 100.0).abs() < 1e-9);
        for w in ladder.windows(3) {
            let r1 = w[1] / w[0];
            let r2 = w[2] / w[1];
            assert!((r1 - r2).abs() < 1e-9, "ladder not geometric");
        }
    }

    #[test]
    fn tempering_solves_small_qkp() {
        let inst = QkpGenerator::new(15, 0.75).generate(1);
        let (_, opt) = solvers::exhaustive(&inst).unwrap();
        let iq = inst.to_inequality_qubo().unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let result = run_tempering(
            &TemperingConfig::standard(),
            |_k| SoftwareState::new(&iq, Assignment::zeros(15)),
            &mut rng,
        );
        assert!(
            -result.best_energy >= 0.95 * opt as f64,
            "tempering reached {} of optimum {opt}",
            -result.best_energy
        );
        assert!(iq.is_feasible(&result.best_assignment));
    }

    #[test]
    fn exchanges_happen() {
        let inst = QkpGenerator::new(20, 0.5).generate(3);
        let iq = inst.to_inequality_qubo().unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let result = run_tempering(
            &TemperingConfig::standard(),
            |_k| SoftwareState::new(&iq, Assignment::zeros(20)),
            &mut rng,
        );
        assert!(result.exchanges_attempted > 0);
        assert!(
            result.exchange_rate() > 0.05,
            "exchange rate {:.3} suspiciously low",
            result.exchange_rate()
        );
    }

    #[test]
    #[should_panic(expected = "two replicas")]
    fn degenerate_ladder_panics() {
        let config = TemperingConfig {
            replicas: 1,
            ..TemperingConfig::standard()
        };
        let _ = config.ladder();
    }

    #[test]
    fn deterministic_in_seed() {
        let inst = QkpGenerator::new(10, 0.5).generate(5);
        let iq = inst.to_inequality_qubo().unwrap();
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            run_tempering(
                &TemperingConfig {
                    replicas: 4,
                    rounds: 10,
                    steps_per_exchange: 50,
                    ..TemperingConfig::standard()
                },
                |_| SoftwareState::new(&iq, Assignment::zeros(10)),
                &mut rng,
            )
            .best_energy
        };
        assert_eq!(run(7), run(7));
    }
}
