//! Parallel tempering (replica exchange) — an optional upgrade over
//! plain SA for rugged QKP landscapes; listed as an extension in
//! DESIGN.md. Several replicas anneal at fixed, geometrically spaced
//! temperatures and periodically propose state swaps between adjacent
//! temperatures with the standard exchange acceptance
//! `min(1, exp((1/T_a − 1/T_b)(E_a − E_b)))`.
//!
//! Two implementations share that exchange rule:
//!
//! * [`run_tempering`] — the generic scalar version over any
//!   [`AnnealState`] (which, since the `DeltaEngine` rework, probes
//!   maintained local fields in O(1) — no dense row scans), funneling
//!   accepts through the shared
//!   [`metropolis_accept`].
//! * [`run_packed_tempering`] — the bit-parallel rebuild over all
//!   [`LANES`] lanes of a [`PackedSoftwareState`]: a 64-rung
//!   temperature ladder spread across the lanes, with deterministic
//!   even/odd swap sweeps. A swap moves *temperatures*, not spins:
//!   the rung↔lane permutation is updated in O(1) while each lane
//!   keeps its own configuration, fields, and RNG stream — so
//!   exchange decisions (drawn from one dedicated swap stream) never
//!   perturb the per-lane streams, and the whole run is reproducible
//!   from (lane seeds, swap seed) alone.

use hycim_qubo::{Assignment, InequalityQubo, LANES};
use rand::rngs::StdRng;
use rand::Rng;

use crate::annealer::metropolis_accept;
use crate::packed::PackedSoftwareState;
use crate::{AnnealState, FlipOutcome};

/// Configuration of a parallel-tempering run.
#[derive(Debug, Clone, PartialEq)]
pub struct TemperingConfig {
    /// Number of replicas (temperature rungs).
    pub replicas: usize,
    /// Lowest (coldest) temperature.
    pub t_min: f64,
    /// Highest (hottest) temperature.
    pub t_max: f64,
    /// Metropolis steps between exchange attempts.
    pub steps_per_exchange: usize,
    /// Total exchange rounds.
    pub rounds: usize,
}

impl TemperingConfig {
    /// A reasonable default ladder for profit-scale ~100 problems.
    pub fn standard() -> Self {
        Self {
            replicas: 8,
            t_min: 0.5,
            t_max: 100.0,
            steps_per_exchange: 200,
            rounds: 50,
        }
    }

    /// Geometrically spaced temperature ladder, coldest first.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (fewer than 2
    /// replicas, non-positive temperatures, or `t_min >= t_max`).
    pub fn ladder(&self) -> Vec<f64> {
        assert!(self.replicas >= 2, "need at least two replicas");
        assert!(
            self.t_min > 0.0 && self.t_max > self.t_min,
            "need 0 < t_min < t_max"
        );
        let ratio = (self.t_max / self.t_min).powf(1.0 / (self.replicas - 1) as f64);
        (0..self.replicas)
            .map(|k| self.t_min * ratio.powi(k as i32))
            .collect()
    }
}

impl Default for TemperingConfig {
    fn default() -> Self {
        Self::standard()
    }
}

/// Result of a tempering run.
#[derive(Debug, Clone, PartialEq)]
pub struct TemperingResult {
    /// Best energy seen across all replicas.
    pub best_energy: f64,
    /// Configuration achieving it.
    pub best_assignment: hycim_qubo::Assignment,
    /// Accepted replica exchanges.
    pub exchanges_accepted: usize,
    /// Attempted replica exchanges.
    pub exchanges_attempted: usize,
}

impl TemperingResult {
    /// Exchange acceptance ratio.
    pub fn exchange_rate(&self) -> f64 {
        if self.exchanges_attempted == 0 {
            return 0.0;
        }
        self.exchanges_accepted as f64 / self.exchanges_attempted as f64
    }
}

/// Runs parallel tempering over states created by `make_state` (one
/// per replica; all must describe the same problem). Deterministic in
/// `rng`.
///
/// Replica *states* are exchanged by swapping the state objects
/// between temperature rungs, which is exact for any [`AnnealState`]
/// implementation.
///
/// # Panics
///
/// Panics on a degenerate configuration (see
/// [`TemperingConfig::ladder`]).
pub fn run_tempering<T, F>(
    config: &TemperingConfig,
    mut make_state: F,
    rng: &mut StdRng,
) -> TemperingResult
where
    T: AnnealState,
    F: FnMut(usize) -> T,
{
    let ladder = config.ladder();
    let mut states: Vec<T> = (0..config.replicas).map(&mut make_state).collect();
    let mut best_energy = f64::INFINITY;
    let mut best_assignment = states[0].assignment().clone();
    let mut accepted = 0;
    let mut attempted = 0;

    for _round in 0..config.rounds {
        // Metropolis sweeps at each rung.
        for (state, &t) in states.iter_mut().zip(&ladder) {
            let n = state.dim();
            for _ in 0..config.steps_per_exchange {
                let i = rng.random_range(0..n);
                if let FlipOutcome::Feasible { delta } = state.probe_flip(i, rng) {
                    if metropolis_accept(delta, t, rng) {
                        state.commit_flip(i, delta);
                        if state.energy() < best_energy && state.verify_best(rng) {
                            best_energy = state.energy();
                            best_assignment = state.assignment().clone();
                        }
                    }
                }
            }
        }
        // Adjacent exchanges, alternating parity each round.
        let start = _round % 2;
        for k in (start..config.replicas - 1).step_by(2) {
            attempted += 1;
            let (ta, tb) = (ladder[k], ladder[k + 1]);
            let (ea, eb) = (states[k].energy(), states[k + 1].energy());
            let arg = (1.0 / ta - 1.0 / tb) * (ea - eb);
            if arg >= 0.0 || rng.random::<f64>() < arg.exp() {
                states.swap(k, k + 1);
                accepted += 1;
            }
        }
    }

    TemperingResult {
        best_energy,
        best_assignment,
        exchanges_accepted: accepted,
        exchanges_attempted: attempted,
    }
}

/// Configuration of a bit-parallel tempering run: a geometric
/// [`LANES`]-rung ladder with `sweeps_per_exchange` packed sweeps
/// between deterministic even/odd exchange rounds.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedTemperingConfig {
    /// Lowest (coldest) temperature — rung 0.
    pub t_min: f64,
    /// Highest (hottest) temperature — rung [`LANES`]` − 1`.
    pub t_max: f64,
    /// Full packed sweeps between exchange rounds.
    pub sweeps_per_exchange: usize,
    /// Total exchange rounds.
    pub rounds: usize,
}

impl PackedTemperingConfig {
    /// A default ladder for profit-scale ~100 problems.
    pub fn standard() -> Self {
        Self {
            t_min: 0.5,
            t_max: 100.0,
            sweeps_per_exchange: 2,
            rounds: 25,
        }
    }

    /// The geometric 64-rung temperature ladder, coldest first.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < t_min < t_max` and both `sweeps_per_exchange`
    /// and `rounds` are positive.
    pub fn ladder(&self) -> [f64; LANES] {
        assert!(
            self.t_min > 0.0 && self.t_max > self.t_min,
            "need 0 < t_min < t_max"
        );
        assert!(
            self.sweeps_per_exchange > 0 && self.rounds > 0,
            "need positive sweeps_per_exchange and rounds"
        );
        let ratio = (self.t_max / self.t_min).powf(1.0 / (LANES - 1) as f64);
        let mut ladder = [0.0; LANES];
        for (r, t) in ladder.iter_mut().enumerate() {
            *t = self.t_min * ratio.powi(r as i32);
        }
        ladder
    }
}

impl Default for PackedTemperingConfig {
    fn default() -> Self {
        Self::standard()
    }
}

/// Result of a bit-parallel tempering run.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedTemperingResult {
    /// Best energy across all lanes.
    pub best_energy: f64,
    /// Configuration achieving it.
    pub best_assignment: Assignment,
    /// Lane that achieved it (lowest index on ties).
    pub best_lane: usize,
    /// Accepted rung exchanges.
    pub exchanges_accepted: usize,
    /// Attempted rung exchanges.
    pub exchanges_attempted: usize,
    /// Accepted moves across all lanes.
    pub accepted: u64,
    /// Metropolis-rejected moves across all lanes.
    pub rejected: u64,
    /// Filter-vetoed moves across all lanes.
    pub infeasible: u64,
}

impl PackedTemperingResult {
    /// Exchange acceptance ratio.
    pub fn exchange_rate(&self) -> f64 {
        if self.exchanges_attempted == 0 {
            return 0.0;
        }
        self.exchanges_accepted as f64 / self.exchanges_attempted as f64
    }
}

/// Parallel tempering over the 64 packed lanes: lane `k` starts at
/// `initials[k]` on rung `k` of the ladder; every round runs
/// `sweeps_per_exchange` packed sweeps and then one deterministic
/// exchange pass over adjacent rung pairs — even-based pairs
/// `(0,1), (2,3), …` on even rounds, odd-based pairs `(1,2), (3,4), …`
/// on odd rounds.
///
/// A swap exchanges the two lanes' *rungs* (an O(1) permutation
/// update); spins, fields, loads, and per-lane RNG streams stay put.
/// This is statistically identical to swapping configurations but
/// avoids touching 64-bit columns, and it keeps lane `k`'s stream
/// `rngs[k]` consuming exactly one draw per uphill feasible probe
/// regardless of the exchange outcomes — the exchange draws come only
/// from `swap_rng` (one uniform per uphill exchange attempt).
///
/// # Panics
///
/// Panics on a degenerate configuration (see
/// [`PackedTemperingConfig::ladder`]) or lane-count mismatches.
pub fn run_packed_tempering(
    problem: &InequalityQubo,
    initials: &[Assignment],
    config: &PackedTemperingConfig,
    rngs: &mut [StdRng],
    swap_rng: &mut StdRng,
) -> PackedTemperingResult {
    let ladder = config.ladder();
    let mut state = PackedSoftwareState::new(problem, initials);
    let mut rung_of_lane: [usize; LANES] = core::array::from_fn(|k| k);
    let mut lane_of_rung: [usize; LANES] = core::array::from_fn(|r| r);
    let mut temperatures = [0.0f64; LANES];
    let mut exchanges_accepted = 0;
    let mut exchanges_attempted = 0;

    for round in 0..config.rounds {
        for (k, t) in temperatures.iter_mut().enumerate() {
            *t = ladder[rung_of_lane[k]];
        }
        for _ in 0..config.sweeps_per_exchange {
            state.sweep(&temperatures, rngs);
        }
        for r in ((round % 2)..LANES - 1).step_by(2) {
            exchanges_attempted += 1;
            let (a, b) = (lane_of_rung[r], lane_of_rung[r + 1]);
            let arg = (1.0 / ladder[r] - 1.0 / ladder[r + 1]) * (state.energy(a) - state.energy(b));
            if arg >= 0.0 || swap_rng.random::<f64>() < arg.exp() {
                lane_of_rung.swap(r, r + 1);
                rung_of_lane[a] = r + 1;
                rung_of_lane[b] = r;
                exchanges_accepted += 1;
            }
        }
    }

    let mut best_lane = 0;
    for k in 1..LANES {
        if state.best_energy(k) < state.best_energy(best_lane) {
            best_lane = k;
        }
    }
    let (accepted, rejected, infeasible) = state.counts();
    PackedTemperingResult {
        best_energy: state.best_energy(best_lane),
        best_assignment: state.best_assignment(best_lane),
        best_lane,
        exchanges_accepted,
        exchanges_attempted,
        accepted,
        rejected,
        infeasible,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SoftwareState;
    use hycim_cop::generator::QkpGenerator;
    use hycim_cop::solvers;
    use hycim_qubo::Assignment;
    use rand::SeedableRng;

    #[test]
    fn ladder_is_geometric_and_ascending() {
        let config = TemperingConfig::standard();
        let ladder = config.ladder();
        assert_eq!(ladder.len(), 8);
        assert!((ladder[0] - 0.5).abs() < 1e-12);
        assert!((ladder[7] - 100.0).abs() < 1e-9);
        for w in ladder.windows(3) {
            let r1 = w[1] / w[0];
            let r2 = w[2] / w[1];
            assert!((r1 - r2).abs() < 1e-9, "ladder not geometric");
        }
    }

    #[test]
    fn tempering_solves_small_qkp() {
        let inst = QkpGenerator::new(15, 0.75).generate(1);
        let (_, opt) = solvers::exhaustive(&inst).unwrap();
        let iq = inst.to_inequality_qubo().unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let result = run_tempering(
            &TemperingConfig::standard(),
            |_k| SoftwareState::new(&iq, Assignment::zeros(15)),
            &mut rng,
        );
        assert!(
            -result.best_energy >= 0.95 * opt as f64,
            "tempering reached {} of optimum {opt}",
            -result.best_energy
        );
        assert!(iq.is_feasible(&result.best_assignment));
    }

    #[test]
    fn exchanges_happen() {
        let inst = QkpGenerator::new(20, 0.5).generate(3);
        let iq = inst.to_inequality_qubo().unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let result = run_tempering(
            &TemperingConfig::standard(),
            |_k| SoftwareState::new(&iq, Assignment::zeros(20)),
            &mut rng,
        );
        assert!(result.exchanges_attempted > 0);
        assert!(
            result.exchange_rate() > 0.05,
            "exchange rate {:.3} suspiciously low",
            result.exchange_rate()
        );
    }

    #[test]
    #[should_panic(expected = "two replicas")]
    fn degenerate_ladder_panics() {
        let config = TemperingConfig {
            replicas: 1,
            ..TemperingConfig::standard()
        };
        let _ = config.ladder();
    }

    #[test]
    fn deterministic_in_seed() {
        let inst = QkpGenerator::new(10, 0.5).generate(5);
        let iq = inst.to_inequality_qubo().unwrap();
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            run_tempering(
                &TemperingConfig {
                    replicas: 4,
                    rounds: 10,
                    steps_per_exchange: 50,
                    ..TemperingConfig::standard()
                },
                |_| SoftwareState::new(&iq, Assignment::zeros(10)),
                &mut rng,
            )
            .best_energy
        };
        assert_eq!(run(7), run(7));
    }

    fn packed_setup(n: usize, seed: u64) -> (InequalityQubo, Vec<Assignment>, Vec<StdRng>) {
        use hycim_cop::CopProblem;
        let inst = QkpGenerator::new(n, 0.6).generate(seed);
        let iq = inst.to_inequality_qubo().unwrap();
        let mut rngs: Vec<StdRng> = (0..LANES)
            .map(|k| StdRng::seed_from_u64(seed ^ (k as u64 + 1)))
            .collect();
        let initials: Vec<Assignment> = rngs
            .iter_mut()
            .map(|rng| CopProblem::initial(&iq, rng))
            .collect();
        (iq, initials, rngs)
    }

    #[test]
    fn packed_tempering_solves_small_qkp() {
        let inst = QkpGenerator::new(15, 0.75).generate(1);
        let (_, opt) = solvers::exhaustive(&inst).unwrap();
        let (iq, initials, mut rngs) = {
            use hycim_cop::CopProblem;
            let iq = inst.to_inequality_qubo().unwrap();
            let mut rngs: Vec<StdRng> = (0..LANES)
                .map(|k| StdRng::seed_from_u64(k as u64 + 1))
                .collect();
            let initials: Vec<Assignment> = rngs
                .iter_mut()
                .map(|rng| CopProblem::initial(&iq, rng))
                .collect();
            (iq, initials, rngs)
        };
        let mut swap_rng = StdRng::seed_from_u64(2);
        let result = run_packed_tempering(
            &iq,
            &initials,
            &PackedTemperingConfig::standard(),
            &mut rngs,
            &mut swap_rng,
        );
        assert!(
            -result.best_energy >= 0.95 * opt as f64,
            "packed tempering reached {} of optimum {opt}",
            -result.best_energy
        );
        assert!(iq.is_feasible(&result.best_assignment));
        assert!(result.exchanges_attempted > 0);
        assert!(
            result.exchange_rate() > 0.05,
            "exchange rate {:.3} suspiciously low",
            result.exchange_rate()
        );
    }

    #[test]
    fn packed_tempering_is_deterministic_in_its_seeds() {
        let run = || {
            let (iq, initials, mut rngs) = packed_setup(18, 9);
            let mut swap_rng = StdRng::seed_from_u64(77);
            run_packed_tempering(
                &iq,
                &initials,
                &PackedTemperingConfig {
                    rounds: 6,
                    ..PackedTemperingConfig::standard()
                },
                &mut rngs,
                &mut swap_rng,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn packed_exchange_schedule_alternates_parity() {
        // Round 0 proposes the 32 even-based pairs, round 1 the 31
        // odd-based pairs; counts are exact because the schedule is
        // deterministic no matter what the lanes do.
        let (iq, initials, mut rngs) = packed_setup(12, 4);
        let mut swap_rng = StdRng::seed_from_u64(5);
        let result = run_packed_tempering(
            &iq,
            &initials,
            &PackedTemperingConfig {
                sweeps_per_exchange: 1,
                rounds: 2,
                ..PackedTemperingConfig::standard()
            },
            &mut rngs,
            &mut swap_rng,
        );
        assert_eq!(result.exchanges_attempted, 32 + 31);
    }

    #[test]
    #[should_panic(expected = "t_min < t_max")]
    fn packed_degenerate_ladder_panics() {
        let config = PackedTemperingConfig {
            t_min: 2.0,
            t_max: 1.0,
            ..PackedTemperingConfig::standard()
        };
        let _ = config.ladder();
    }
}
