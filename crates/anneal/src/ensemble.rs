//! Multi-start annealing — the paper's evaluation protocol runs many
//! SA instances from Monte-Carlo-sampled initial configurations
//! (Sec 4.3) and keeps the best; this module packages that pattern.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{AnnealState, AnnealTrace, Annealer, Schedule};

/// Outcome of an ensemble run: the best trace plus per-start results.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleResult {
    /// Index of the winning start.
    pub best_index: usize,
    /// Best energy across the ensemble.
    pub best_energy: f64,
    /// Every run's trace, in start order.
    pub traces: Vec<AnnealTrace>,
}

impl EnsembleResult {
    /// The winning trace.
    pub fn best_trace(&self) -> &AnnealTrace {
        &self.traces[self.best_index]
    }

    /// Energies of all runs, in start order.
    pub fn energies(&self) -> Vec<f64> {
        self.traces.iter().map(AnnealTrace::best_energy).collect()
    }

    /// Fraction of runs whose best energy is within `tolerance`
    /// (relative) of the ensemble best — an intra-ensemble success
    /// rate.
    pub fn consensus(&self, tolerance: f64) -> f64 {
        if self.traces.is_empty() {
            return 0.0;
        }
        let threshold = self.best_energy * (1.0 - tolerance.abs().min(1.0));
        let hits = self
            .traces
            .iter()
            .filter(|t| t.best_energy() <= threshold)
            .count();
        hits as f64 / self.traces.len() as f64
    }
}

/// Runs `make_state` → anneal for each of `starts` seeds, returning
/// every trace and the winner. Deterministic in `base_seed`.
///
/// # Panics
///
/// Panics if `starts == 0`.
///
/// # Example
///
/// ```
/// use hycim_anneal::ensemble::run_ensemble;
/// use hycim_anneal::{Annealer, GeometricSchedule, SoftwareState};
/// use hycim_qubo::{Assignment, InequalityQubo, LinearConstraint, QuboMatrix};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut q = QuboMatrix::zeros(2);
/// q.set(0, 0, -5.0);
/// let iq = InequalityQubo::new(q, LinearConstraint::new(vec![1, 1], 2)?)?;
/// let annealer = Annealer::new(GeometricSchedule::new(5.0, 0.9), 50).without_trace();
/// let result = run_ensemble(4, 7, &annealer, |_seed| {
///     SoftwareState::new(&iq, Assignment::zeros(2))
/// });
/// assert_eq!(result.best_energy, -5.0);
/// # Ok(())
/// # }
/// ```
pub fn run_ensemble<S, T, F>(
    starts: usize,
    base_seed: u64,
    annealer: &Annealer<S>,
    mut make_state: F,
) -> EnsembleResult
where
    S: Schedule,
    T: AnnealState,
    F: FnMut(u64) -> T,
{
    assert!(starts > 0, "need at least one start");
    let mut traces = Vec::with_capacity(starts);
    let mut best_index = 0;
    let mut best_energy = f64::INFINITY;
    for k in 0..starts {
        let seed = base_seed.wrapping_add(k as u64);
        let mut state = make_state(seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = annealer.run(&mut state, &mut rng);
        if trace.best_energy() < best_energy {
            best_energy = trace.best_energy();
            best_index = k;
        }
        traces.push(trace);
    }
    EnsembleResult {
        best_index,
        best_energy,
        traces,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GeometricSchedule, SoftwareState};
    use hycim_cop::generator::QkpGenerator;
    use hycim_cop::solvers;
    use hycim_qubo::Assignment;

    #[test]
    fn ensemble_never_loses_to_single_run() {
        let inst = QkpGenerator::new(20, 0.5).generate(1);
        let iq = inst.to_inequality_qubo().unwrap();
        let annealer =
            Annealer::new(GeometricSchedule::for_energy_scale(100.0, 2000), 2000).without_trace();
        let ensemble = run_ensemble(6, 3, &annealer, |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            SoftwareState::new(&iq, solvers::random_feasible(&inst, &mut rng))
        });
        assert_eq!(ensemble.traces.len(), 6);
        for t in &ensemble.traces {
            assert!(ensemble.best_energy <= t.best_energy());
        }
        assert_eq!(ensemble.best_trace().best_energy(), ensemble.best_energy);
    }

    #[test]
    fn consensus_counts_near_best_runs() {
        let inst = QkpGenerator::new(15, 0.75).generate(2);
        let iq = inst.to_inequality_qubo().unwrap();
        let annealer =
            Annealer::new(GeometricSchedule::for_energy_scale(100.0, 3000), 3000).without_trace();
        let ensemble = run_ensemble(8, 4, &annealer, |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            SoftwareState::new(&iq, solvers::random_feasible(&inst, &mut rng))
        });
        let c = ensemble.consensus(0.05);
        assert!((0.0..=1.0).contains(&c));
        assert!(c > 0.0, "winner itself always counts");
        // Full tolerance admits everyone.
        assert_eq!(ensemble.consensus(1.0), 1.0);
    }

    #[test]
    fn deterministic_in_base_seed() {
        let inst = QkpGenerator::new(10, 0.5).generate(5);
        let iq = inst.to_inequality_qubo().unwrap();
        let annealer = Annealer::new(GeometricSchedule::new(20.0, 0.99), 300).without_trace();
        let run = |seed| {
            run_ensemble(3, seed, &annealer, |s| {
                let mut rng = StdRng::seed_from_u64(s);
                SoftwareState::new(&iq, solvers::random_feasible(&inst, &mut rng))
            })
            .best_energy
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    #[should_panic(expected = "at least one start")]
    fn zero_starts_panics() {
        let inst = QkpGenerator::new(5, 0.5).generate(6);
        let iq = inst.to_inequality_qubo().unwrap();
        let annealer = Annealer::new(GeometricSchedule::new(5.0, 0.9), 10);
        let _ = run_ensemble(0, 0, &annealer, |_| {
            SoftwareState::new(&iq, Assignment::zeros(5))
        });
    }
}
