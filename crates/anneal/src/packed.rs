//! Bit-parallel 64-replica annealing over [`PackedReplicaState`]
//! bitplanes, plus the scalar sweep reference it is proven against.
//!
//! One [`PackedSoftwareState::sweep`] proposes every variable once in
//! each of the 64 lanes: the CSR row, constraint weight, and spin
//! bitplane of variable `i` are loaded once, each lane runs the exact
//! inequality veto and the shared
//! [`metropolis_accept_sweep`] on its
//! own RNG stream, and the accepting lanes are committed with one
//! masked bitplane update.
//!
//! # The bit-identity contract
//!
//! [`run_packed_sweeps`] over lanes `0..64` produces *bit-identical*
//! trajectories to 64 independent [`run_replica_scalar`] runs (one
//! scalar [`SoftwareState`] with maintained
//! [`LocalFieldState`](hycim_qubo::LocalFieldState) fields per lane),
//! provided lane `k` consumes the RNG stream seeded for replica `k`.
//! The alignment is move-for-move:
//!
//! * both propose variables in the same sequential sweep order
//!   `i = 0..n`, with the temperature updated once per sweep;
//! * the veto (`load ± w > capacity`) uses the same integer
//!   arithmetic and consumes no randomness;
//! * deltas come from maintained fields kept bit-identical by
//!   construction (see [`hycim_qubo::packed`]);
//! * accept decisions funnel through the one shared
//!   [`metropolis_accept_sweep`], so
//!   lane `k` draws exactly when its scalar twin draws (one uniform
//!   per uphill feasible probe that is not deterministically
//!   rejected — see the function's draw-skip rule).
//!
//! The law is pinned by proptests here (state level) and in
//! `hycim-core` (engine level, under the `replica_seed` contract).

use hycim_qubo::{Assignment, InequalityQubo, PackedReplicaState, LANES};
use rand::rngs::StdRng;

use crate::annealer::metropolis_accept_sweep;
use crate::{AnnealState, FlipOutcome, SoftwareState};

/// A per-*sweep* geometric cooling schedule: `T(s) = t0 · αˢ`.
///
/// The packed loop anneals sweep-synchronously (all 64 lanes share
/// one temperature per sweep), so the schedule is indexed by sweep —
/// unlike [`GeometricSchedule`](crate::GeometricSchedule), which the
/// scalar [`Annealer`](crate::Annealer) indexes by iteration. Keeping
/// the type separate keeps the two cooling granularities from being
/// confused.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSchedule {
    t0: f64,
    alpha: f64,
}

impl SweepSchedule {
    /// Creates the schedule `T(s) = t0 · αˢ`.
    ///
    /// # Panics
    ///
    /// Panics unless `t0 > 0` and `0 < α <= 1`.
    pub fn new(t0: f64, alpha: f64) -> Self {
        assert!(t0 > 0.0, "initial temperature must be positive");
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self { t0, alpha }
    }

    /// The schedule cooling from `t0` to `t0 · t_end_fraction` over
    /// `sweeps` sweeps.
    ///
    /// # Panics
    ///
    /// Panics unless `t0 > 0`, `0 < t_end_fraction <= 1`, and
    /// `sweeps > 0`.
    pub fn cooling_to(t0: f64, t_end_fraction: f64, sweeps: usize) -> Self {
        assert!(sweeps > 0, "need at least one sweep");
        assert!(
            t_end_fraction > 0.0 && t_end_fraction <= 1.0,
            "end fraction must be in (0, 1]"
        );
        Self::new(t0, t_end_fraction.powf(1.0 / sweeps as f64))
    }

    /// Temperature of sweep `s`.
    pub fn temperature(&self, sweep: usize) -> f64 {
        self.t0 * self.alpha.powi(sweep as i32)
    }

    /// Initial temperature.
    pub fn t0(&self) -> f64 {
        self.t0
    }

    /// Per-sweep cooling factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

/// 64 exact software replicas of one inequality-QUBO problem, packed:
/// bitplane spins + per-lane maintained fields ([`PackedReplicaState`])
/// joined with per-lane constraint loads, tracked energies, and
/// best-so-far snapshots — the packed counterpart of 64 independent
/// [`SoftwareState`]s.
#[derive(Debug, Clone)]
pub struct PackedSoftwareState {
    problem: InequalityQubo,
    fields: PackedReplicaState,
    loads: Vec<u64>,
    energies: Vec<f64>,
    best_energies: Vec<f64>,
    /// Bit `k` of `best_planes[i]` = lane `k`'s best-so-far value of
    /// variable `i` (same layout as the live planes).
    best_planes: Vec<u64>,
    /// `Σwᵢ ≤ capacity`: every subset load satisfies the constraint,
    /// so the inequality veto can never fire (true for the
    /// unconstrained max-cut/spin-glass encodings) and the sweep can
    /// skip the per-lane load checks without changing any decision.
    veto_free: bool,
    /// Per-sweep scratch: the `(variable, mask)` commits of the sweep
    /// in flight, so best-so-far snapshots can be deferred to one
    /// reconstruction per improving lane at sweep end (best energy is
    /// monotone within a lane, so only its *last* improvement of the
    /// sweep needs the configuration materialized).
    commit_log: Vec<(u32, u64)>,
    /// `best_pos[k]`: index into `commit_log` just past lane `k`'s
    /// latest improving commit this sweep — the suffix to undo.
    best_pos: [u32; LANES],
    accepted: u64,
    rejected: u64,
    infeasible: u64,
}

impl PackedSoftwareState {
    /// Creates the packed state from exactly [`LANES`] feasible
    /// initial configurations (lane `k` starts at `initials[k]`).
    ///
    /// # Panics
    ///
    /// Panics if `initials.len() != LANES`, any length mismatches the
    /// problem, or any configuration is infeasible.
    pub fn new(problem: &InequalityQubo, initials: &[Assignment]) -> Self {
        assert_eq!(
            initials.len(),
            LANES,
            "packed state needs exactly {LANES} initial configurations, got {}",
            initials.len()
        );
        for (k, x) in initials.iter().enumerate() {
            assert!(
                problem.is_feasible(x),
                "lane {k} initial configuration must be feasible"
            );
        }
        let fields = PackedReplicaState::new(problem.objective(), initials);
        let loads: Vec<u64> = initials
            .iter()
            .map(|x| problem.constraint().load(x))
            .collect();
        // CSR-walk energies are bit-identical to the scalar states'
        // dense `objective_energy` (see `lane_energy`) at O(nnz) per
        // lane instead of O(n²).
        let energies: Vec<f64> = (0..LANES).map(|k| fields.lane_energy(k)).collect();
        let constraint = problem.constraint();
        let veto_free = constraint
            .weights()
            .iter()
            .try_fold(0u64, |acc, &w| acc.checked_add(w))
            .is_some_and(|total| total <= constraint.capacity());
        let best_planes = fields.planes().to_vec();
        Self {
            problem: problem.clone(),
            fields,
            best_energies: energies.clone(),
            loads,
            energies,
            best_planes,
            veto_free,
            commit_log: Vec::new(),
            best_pos: [0; LANES],
            accepted: 0,
            rejected: 0,
            infeasible: 0,
        }
    }

    /// Number of variables.
    pub fn dim(&self) -> usize {
        self.fields.dim()
    }

    /// The underlying problem.
    pub fn problem(&self) -> &InequalityQubo {
        &self.problem
    }

    /// Lane `k`'s current tracked energy.
    pub fn energy(&self, k: usize) -> f64 {
        self.energies[k]
    }

    /// Lane `k`'s current constraint load `Σwᵢxᵢ`.
    pub fn load(&self, k: usize) -> u64 {
        self.loads[k]
    }

    /// Lane `k`'s best energy so far.
    pub fn best_energy(&self, k: usize) -> f64 {
        self.best_energies[k]
    }

    /// Lane `k`'s best-so-far configuration.
    pub fn best_assignment(&self, k: usize) -> Assignment {
        Assignment::from_bits(self.best_planes.iter().map(|plane| (plane >> k) & 1 == 1))
    }

    /// Lane `k`'s current configuration.
    pub fn lane_assignment(&self, k: usize) -> Assignment {
        self.fields.lane_assignment(k)
    }

    /// Aggregate (accepted, Metropolis-rejected, vetoed) move counts
    /// across all lanes.
    pub fn counts(&self) -> (u64, u64, u64) {
        (self.accepted, self.rejected, self.infeasible)
    }

    /// Mean `|h_i|` over all variables and lanes of the *current*
    /// fields — the deterministic (RNG-free) energy-scale probe the
    /// packed engine calibrates its initial temperature from. Scalar
    /// twins can recompute it from the same initial configurations.
    pub fn mean_abs_field(&self) -> f64 {
        let n = self.dim();
        if n == 0 {
            return 0.0;
        }
        let sum: f64 = (0..n)
            .flat_map(|i| self.fields.fields_row(i).iter().map(|h| h.abs()))
            .sum();
        sum / (n * LANES) as f64
    }

    /// Runs one sequential sweep: proposes flipping each variable
    /// `i = 0..n` once in every lane. Lane `k` anneals at
    /// `temperatures[k]` and consumes randomness only from `rngs[k]`
    /// (one uniform draw per uphill feasible probe — exactly the
    /// scalar reference's consumption). Accepting lanes of each
    /// variable are committed with one masked bitplane update.
    ///
    /// # Panics
    ///
    /// Panics unless `temperatures` and `rngs` both have [`LANES`]
    /// entries.
    pub fn sweep(&mut self, temperatures: &[f64], rngs: &mut [StdRng]) {
        assert_eq!(temperatures.len(), LANES, "need one temperature per lane");
        assert_eq!(rngs.len(), LANES, "need one RNG stream per lane");
        let temperatures: &[f64; LANES] = temperatures.try_into().expect("length asserted");
        let rngs: &mut [StdRng; LANES] = rngs.try_into().expect("length asserted");
        let capacity = self.problem.constraint().capacity();
        let weights = self.problem.constraint().weights();
        let veto_free = self.veto_free;
        let (mut accepted, mut rejected, mut infeasible) = (0u64, 0u64, 0u64);
        let mut deltas = [0.0f64; LANES];
        let mut improved = 0u64;
        // Per-lane draw-skip thresholds: an uphill `Δ ≥ 37.5·T_k` is
        // rejected by `metropolis_accept_sweep` *before* it draws (see
        // `DRAW_DOMINATED`), with the identical `mul` + `cmp`, so that
        // whole branch folds into the phase-1 mask. A lane with
        // `T_k ≤ 0` also rejects draw-free, and its threshold
        // `37.5·T_k ≤ 0` is below every uphill delta — same verdict.
        let mut thresholds = [0.0f64; LANES];
        for (th, t) in thresholds.iter_mut().zip(temperatures) {
            *th = crate::annealer::DRAW_DOMINATED * *t;
        }
        self.commit_log.clear();
        for (i, &w) in weights.iter().enumerate() {
            let word = self.fields.plane(i);
            // Phase 1 (branchless, vectorizable): all 64 lane deltas
            // and the downhill mask from one read of the field row.
            let row: &[f64; LANES] = self
                .fields
                .fields_row(i)
                .try_into()
                .expect("field rows span LANES");
            for (k, (d, h)) in deltas.iter_mut().zip(row).enumerate() {
                *d = if (word >> k) & 1 == 1 { -*h } else { *h };
            }
            let mut downhill = 0u64;
            let mut draw_free_reject = 0u64;
            for (k, (d, th)) in deltas.iter().zip(&thresholds).enumerate() {
                downhill |= u64::from(*d <= 0.0) << k;
                draw_free_reject |= u64::from(*d >= *th) << k;
            }
            // Inequality veto, skipped when `veto_free` proves the
            // filter can never fire. Consumes no randomness (scalar
            // parity: `probe_flip` returns `Infeasible` before any
            // draw).
            let mut vetoed = 0u64;
            if !veto_free && w != 0 {
                for (k, &load) in self.loads.iter().enumerate() {
                    let new_load = if (word >> k) & 1 == 1 {
                        load - w
                    } else {
                        load + w
                    };
                    vetoed |= u64::from(new_load > capacity) << k;
                }
            }
            // Phase 2: feasible downhill lanes accept outright without
            // touching their RNGs (exactly the shared test's
            // `delta <= 0` branch), draw-dominated uphill lanes reject
            // outright (its draw-skip branch); only the remaining
            // feasible uphill lanes run `metropolis_accept_sweep`,
            // each on its own stream, so lane order is free. In the
            // cold tail of a schedule this mask is almost always
            // empty, making frozen sweeps RNG- and branch-free.
            let mut commit_mask = downhill & !vetoed;
            let mut pending = !downhill & !draw_free_reject & !vetoed;
            while pending != 0 {
                let k = pending.trailing_zeros() as usize & (LANES - 1);
                pending &= pending - 1;
                if metropolis_accept_sweep(deltas[k], temperatures[k], &mut rngs[k]) {
                    commit_mask |= 1u64 << k;
                }
            }
            infeasible += u64::from(vetoed.count_ones());
            let committed = u64::from(commit_mask.count_ones());
            accepted += committed;
            rejected += u64::from((!vetoed).count_ones()) - committed;
            // Phase 3: one masked bitplane commit, then per-accepted-
            // lane load/energy/best bookkeeping. Best snapshots are
            // deferred: only the improvement *position* is recorded.
            if commit_mask != 0 {
                self.fields.commit_masked(i, commit_mask);
                self.commit_log.push((i as u32, commit_mask));
                let mut m = commit_mask;
                while m != 0 {
                    let k = m.trailing_zeros() as usize & (LANES - 1);
                    m &= m - 1;
                    if w != 0 {
                        self.loads[k] = if (word >> k) & 1 == 1 {
                            self.loads[k] - w
                        } else {
                            self.loads[k] + w
                        };
                    }
                    self.energies[k] += deltas[k];
                    if self.energies[k] < self.best_energies[k] {
                        self.best_energies[k] = self.energies[k];
                        improved |= 1u64 << k;
                        self.best_pos[k] = self.commit_log.len() as u32;
                    }
                }
            }
        }
        // Materialize the deferred snapshots: copy each improving
        // lane's live bit column, then XOR-undo the commits made after
        // its last improvement (the suffix of the log).
        while improved != 0 {
            let k = improved.trailing_zeros() as usize & (LANES - 1);
            improved &= improved - 1;
            let bit = 1u64 << k;
            for (best, live) in self.best_planes.iter_mut().zip(self.fields.planes()) {
                *best = (*best & !bit) | (live & bit);
            }
            for &(i, mask) in &self.commit_log[self.best_pos[k] as usize..] {
                if mask & bit != 0 {
                    self.best_planes[i as usize] ^= bit;
                }
            }
        }
        self.accepted += accepted;
        self.rejected += rejected;
        self.infeasible += infeasible;
    }
}

/// Outcome of a packed multi-sweep run: per-lane bests and finals plus
/// aggregate move counts.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedRunOutcome {
    /// Lane `k`'s best energy.
    pub best_energies: Vec<f64>,
    /// Lane `k`'s best configuration.
    pub best_assignments: Vec<Assignment>,
    /// Lane `k`'s final tracked energy.
    pub final_energies: Vec<f64>,
    /// Accepted moves across all lanes.
    pub accepted: u64,
    /// Metropolis-rejected moves across all lanes.
    pub rejected: u64,
    /// Filter-vetoed moves across all lanes.
    pub infeasible: u64,
}

impl PackedRunOutcome {
    /// The lane with the lowest best energy (lowest index on ties).
    pub fn best_lane(&self) -> usize {
        let mut best = 0;
        for k in 1..self.best_energies.len() {
            if self.best_energies[k] < self.best_energies[best] {
                best = k;
            }
        }
        best
    }
}

/// Runs `sweeps` independent-lane annealing sweeps (every lane cools
/// on the same per-sweep schedule) and returns the per-lane outcomes.
/// Lane `k` reads randomness only from `rngs[k]`; the run is
/// bit-identical to 64 [`run_replica_scalar`] calls on the same
/// initials, schedule, and RNG streams.
///
/// # Panics
///
/// Panics on lane-count mismatches (see [`PackedSoftwareState::new`]).
pub fn run_packed_sweeps(
    problem: &InequalityQubo,
    initials: &[Assignment],
    sweeps: usize,
    schedule: &SweepSchedule,
    rngs: &mut [StdRng],
) -> PackedRunOutcome {
    let mut state = PackedSoftwareState::new(problem, initials);
    let mut temperatures = [0.0f64; LANES];
    for sweep in 0..sweeps {
        let t = schedule.temperature(sweep);
        temperatures.fill(t);
        state.sweep(&temperatures, rngs);
    }
    collect_outcome(&state)
}

fn collect_outcome(state: &PackedSoftwareState) -> PackedRunOutcome {
    let (accepted, rejected, infeasible) = state.counts();
    PackedRunOutcome {
        best_energies: (0..LANES).map(|k| state.best_energy(k)).collect(),
        best_assignments: (0..LANES).map(|k| state.best_assignment(k)).collect(),
        final_energies: (0..LANES).map(|k| state.energy(k)).collect(),
        accepted,
        rejected,
        infeasible,
    }
}

/// Outcome of one scalar reference replica.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaOutcome {
    /// Best energy seen.
    pub best_energy: f64,
    /// Configuration achieving it.
    pub best_assignment: Assignment,
    /// Final tracked energy.
    pub final_energy: f64,
    /// Accepted moves.
    pub accepted: u64,
    /// Metropolis-rejected moves.
    pub rejected: u64,
    /// Filter-vetoed moves.
    pub infeasible: u64,
}

/// The scalar twin of one packed lane: a sequential-sweep annealing
/// loop over a [`SoftwareState`] (maintained local fields), proposing
/// `i = 0..n` per sweep with the per-sweep temperature and the shared
/// [`metropolis_accept`](crate::metropolis_accept). This is the
/// reference side of the packed bit-identity law — *not* the
/// production [`Annealer`](crate::Annealer), which proposes randomly
/// and mixes in exchange moves.
///
/// # Panics
///
/// Panics if `initial` is infeasible or mismatches the problem.
pub fn run_replica_scalar(
    problem: &InequalityQubo,
    initial: Assignment,
    sweeps: usize,
    schedule: &SweepSchedule,
    rng: &mut StdRng,
) -> ReplicaOutcome {
    let mut state = SoftwareState::new(problem, initial);
    let n = state.dim();
    let mut best_energy = state.energy();
    let mut best_assignment = state.assignment().clone();
    let (mut accepted, mut rejected, mut infeasible) = (0u64, 0u64, 0u64);
    for sweep in 0..sweeps {
        let t = schedule.temperature(sweep);
        for i in 0..n {
            match state.probe_flip(i, rng) {
                FlipOutcome::Infeasible => infeasible += 1,
                FlipOutcome::Feasible { delta } => {
                    if metropolis_accept_sweep(delta, t, rng) {
                        state.commit_flip(i, delta);
                        accepted += 1;
                        if state.energy() < best_energy {
                            best_energy = state.energy();
                            best_assignment = state.assignment().clone();
                        }
                    } else {
                        rejected += 1;
                    }
                }
            }
        }
    }
    ReplicaOutcome {
        best_energy,
        best_assignment,
        final_energy: state.energy(),
        accepted,
        rejected,
        infeasible,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hycim_cop::generator::QkpGenerator;
    use hycim_cop::maxcut::MaxCut;
    use hycim_cop::CopProblem;
    use rand::SeedableRng;

    fn lane_rngs(seed: u64) -> Vec<StdRng> {
        (0..LANES)
            .map(|k| StdRng::seed_from_u64(seed.wrapping_add(k as u64)))
            .collect()
    }

    fn lane_initials(problem: &InequalityQubo, seed: u64) -> Vec<Assignment> {
        let mut rngs = lane_rngs(seed);
        rngs.iter_mut()
            .map(|rng| CopProblem::initial(problem, rng))
            .collect()
    }

    #[test]
    fn packed_run_matches_64_scalar_replicas_bitwise() {
        for (name, iq) in [
            (
                "maxcut",
                CopProblem::to_inequality_qubo(&MaxCut::random(40, 0.15, 1)).unwrap(),
            ),
            (
                "qkp",
                QkpGenerator::new(30, 0.4)
                    .generate(2)
                    .to_inequality_qubo()
                    .unwrap(),
            ),
        ] {
            let initials = lane_initials(&iq, 10);
            let schedule = SweepSchedule::cooling_to(25.0, 0.01, 30);
            let mut rngs = lane_rngs(99);
            let packed = run_packed_sweeps(&iq, &initials, 30, &schedule, &mut rngs);
            let (mut accepted, mut rejected, mut infeasible) = (0u64, 0u64, 0u64);
            for (k, initial) in initials.iter().enumerate() {
                let mut rng = StdRng::seed_from_u64(99u64.wrapping_add(k as u64));
                let scalar = run_replica_scalar(&iq, initial.clone(), 30, &schedule, &mut rng);
                assert_eq!(
                    packed.best_energies[k].to_bits(),
                    scalar.best_energy.to_bits(),
                    "{name}: lane {k} best energy diverged"
                );
                assert_eq!(
                    packed.best_assignments[k], scalar.best_assignment,
                    "{name}: lane {k} best assignment diverged"
                );
                assert_eq!(
                    packed.final_energies[k].to_bits(),
                    scalar.final_energy.to_bits(),
                    "{name}: lane {k} final energy diverged"
                );
                accepted += scalar.accepted;
                rejected += scalar.rejected;
                infeasible += scalar.infeasible;
            }
            assert_eq!(
                (packed.accepted, packed.rejected, packed.infeasible),
                (accepted, rejected, infeasible),
                "{name}: aggregate counts diverged"
            );
        }
    }

    #[test]
    fn packed_lanes_keep_caches_and_feasibility_consistent() {
        let iq = QkpGenerator::new(25, 0.5)
            .generate(3)
            .to_inequality_qubo()
            .unwrap();
        let initials = lane_initials(&iq, 4);
        let schedule = SweepSchedule::cooling_to(30.0, 0.05, 20);
        let mut rngs = lane_rngs(5);
        let mut state = PackedSoftwareState::new(&iq, &initials);
        let mut temps = [0.0f64; LANES];
        for sweep in 0..20 {
            temps.fill(schedule.temperature(sweep));
            state.sweep(&temps, &mut rngs);
        }
        for k in 0..LANES {
            let x = state.lane_assignment(k);
            assert!(iq.is_feasible(&x), "lane {k} walked infeasible");
            assert!(
                (state.energy(k) - iq.objective_energy(&x)).abs() < 1e-6,
                "lane {k} energy cache diverged"
            );
            assert_eq!(state.load(k), iq.constraint().load(&x), "lane {k} load");
            assert!(iq.is_feasible(&state.best_assignment(k)));
            assert!(state.best_energy(k) <= state.energy(k) + 1e-12);
        }
    }

    #[test]
    fn sweep_schedule_cools_geometrically_to_the_end_fraction() {
        let s = SweepSchedule::cooling_to(100.0, 0.01, 50);
        assert_eq!(s.temperature(0), 100.0);
        let t_end = s.temperature(50);
        assert!((t_end - 1.0).abs() < 1e-9, "T(50) = {t_end}");
        assert!(s.alpha() < 1.0 && s.alpha() > 0.0);
    }

    #[test]
    fn best_lane_breaks_ties_low() {
        let outcome = PackedRunOutcome {
            best_energies: vec![-1.0, -3.0, -3.0, 0.0],
            best_assignments: vec![Assignment::zeros(1); 4],
            final_energies: vec![0.0; 4],
            accepted: 0,
            rejected: 0,
            infeasible: 0,
        };
        assert_eq!(outcome.best_lane(), 1);
    }
}
