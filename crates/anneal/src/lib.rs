//! Simulated-annealing engine for the HyCiM reproduction (paper
//! Sec 3.4, Fig. 6(b)).
//!
//! The paper's SA logic generates a new input configuration each
//! iteration, sends it through the inequality filter, computes the
//! QUBO energy on the crossbar for feasible configurations, and
//! accepts/rejects per the Metropolis criterion at the current
//! annealing temperature. Infeasible configurations bounce straight
//! back for the next iteration.
//!
//! This crate factors that loop into:
//!
//! * [`AnnealState`] — the problem-side contract: probe the energy
//!   delta of a single-bit flip (which a filter may veto), commit the
//!   flip. Implemented here for exact software evaluation
//!   ([`SoftwareState`], [`PenaltyState`]) and in `hycim-core` for the
//!   hardware-backed pipelines.
//! * [`Schedule`] — annealing temperature schedules
//!   ([`GeometricSchedule`], [`LinearSchedule`], [`ConstantSchedule`]).
//! * [`Annealer`] — the Metropolis loop, producing an [`AnnealTrace`]
//!   (the energy-evolution curves of paper Fig. 7(f)).
//! * [`ensemble`] — multi-start ensembles over independent seeds (the
//!   paper's Monte-Carlo protocol draws 1000 initial states per
//!   instance, Sec 4.3).
//! * [`packed`] — bit-parallel 64-replica annealing over `u64` spin
//!   bitplanes ([`PackedSoftwareState`]): one CSR sweep advances all
//!   64 lanes, bit-identically to 64 scalar sweep-reference runs
//!   ([`run_replica_scalar`]) on per-lane RNG streams.
//! * [`tempering`] — parallel tempering / replica exchange: the
//!   generic scalar [`tempering::run_tempering`] plus the packed-lane
//!   [`tempering::run_packed_tempering`] (temperature ladder across
//!   the 64 lanes, deterministic even/odd swap sweeps).
//!
//! Every accept decision in the crate goes through a shared
//! Metropolis test: production loops use [`metropolis_accept`], and
//! both sides of the packed-vs-scalar bit-identity laws use
//! [`metropolis_accept_sweep`], which additionally skips the uniform
//! draw for uphill moves that every draw would reject — so packed
//! and scalar sweeps keep the same RNG cadence by construction.
//!
//! # Example
//!
//! ```
//! use hycim_anneal::{Annealer, GeometricSchedule, SoftwareState};
//! use hycim_qubo::{Assignment, InequalityQubo, LinearConstraint, QuboMatrix};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut q = QuboMatrix::zeros(3);
//! q.set(0, 0, -10.0);
//! q.set(2, 2, -8.0);
//! q.set(0, 2, -14.0);
//! let iq = InequalityQubo::new(q, LinearConstraint::new(vec![4, 7, 2], 9)?)?;
//! let mut state = SoftwareState::new(&iq, Assignment::zeros(3));
//! let annealer = Annealer::new(GeometricSchedule::new(20.0, 0.9), 200);
//! let mut rng = StdRng::seed_from_u64(7);
//! let trace = annealer.run(&mut state, &mut rng);
//! assert_eq!(trace.best_energy(), -32.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod annealer;
pub mod ensemble;
pub mod packed;
mod schedule;
mod state;
pub mod tempering;
mod trace;

pub use annealer::{
    metropolis_accept, metropolis_accept_sweep, Annealer, DEFAULT_SWAP_PROBABILITY,
};
pub use packed::{
    run_packed_sweeps, run_replica_scalar, PackedRunOutcome, PackedSoftwareState, ReplicaOutcome,
    SweepSchedule,
};
pub use schedule::{ConstantSchedule, GeometricSchedule, LinearSchedule, Schedule};
pub use state::{AnnealState, FlipOutcome, PenaltyState, SoftwareState};
pub use tempering::{run_packed_tempering, PackedTemperingConfig, PackedTemperingResult};
pub use trace::AnnealTrace;
