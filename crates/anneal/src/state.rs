use hycim_qubo::dqubo::DquboForm;
use hycim_qubo::{Assignment, DeltaEngine, InequalityQubo};
use rand::rngs::StdRng;

/// Result of probing a single-bit flip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlipOutcome {
    /// The flipped configuration was vetoed by the feasibility check
    /// (HyCiM's inequality filter, paper Fig. 3): the SA logic moves to
    /// the next iteration without an energy computation.
    Infeasible,
    /// The flip is admissible; `delta` is the (possibly noisy) energy
    /// change the hardware reported.
    Feasible {
        /// Energy change `E(x·flip) − E(x)`.
        delta: f64,
    },
}

/// The problem-side contract of the SA loop: a current configuration
/// with incremental flip probing.
///
/// Implementations keep whatever caches they need (current load for
/// the filter, maintained local fields, current energy) so that
/// [`probe_flip`] runs in O(1) and [`commit_flip`] in O(deg(i))
/// rather than O(n²) — matching the one-shot evaluation cadence of
/// the CiM hardware. See
/// [`hycim_qubo::local_field`] for the field-maintenance scheme and
/// its drift/refresh story.
///
/// [`probe_flip`]: AnnealState::probe_flip
/// [`commit_flip`]: AnnealState::commit_flip
pub trait AnnealState {
    /// Number of binary variables.
    fn dim(&self) -> usize;

    /// Current configuration.
    fn assignment(&self) -> &Assignment;

    /// Current (tracked) energy.
    fn energy(&self) -> f64;

    /// Probes flipping bit `i` without committing. The RNG feeds any
    /// hardware noise models.
    fn probe_flip(&mut self, i: usize, rng: &mut StdRng) -> FlipOutcome;

    /// Commits the most recently probed flip of bit `i`, updating the
    /// internal caches. `delta` must be the value returned by the
    /// matching [`probe_flip`](Self::probe_flip).
    fn commit_flip(&mut self, i: usize, delta: f64);

    /// Probes flipping bits `i` and `j` together (one SA move — the
    /// exchange neighborhood that lets a knapsack SA swap an item out
    /// for a better one without an uphill intermediate).
    ///
    /// # Panics
    ///
    /// Implementations may panic if `i == j`.
    fn probe_pair(&mut self, i: usize, j: usize, rng: &mut StdRng) -> FlipOutcome;

    /// Commits the most recently probed pair flip of `i` and `j`.
    fn commit_pair(&mut self, i: usize, j: usize, delta: f64);

    /// Re-verifies the *current* configuration before the SA logic
    /// records it as the reserved best solution `x_o` (paper
    /// Fig. 6(b): accepted solutions pass through the inequality
    /// evaluation again). Hardware states re-run the filter here so a
    /// rare noisy false-feasible admission cannot survive as the
    /// final answer; exact states return `true`.
    fn verify_best(&mut self, _rng: &mut StdRng) -> bool {
        true
    }
}

/// Exact software evaluation of the paper's inequality-QUBO form: the
/// constraint is checked with integer arithmetic and energies carry no
/// hardware noise. This is the noise-free reference the hardware
/// pipelines are validated against.
#[derive(Debug, Clone)]
pub struct SoftwareState {
    problem: InequalityQubo,
    x: Assignment,
    load: u64,
    energy: f64,
    deltas: DeltaEngine,
}

impl SoftwareState {
    /// Creates a state at `initial`, which must satisfy the constraint.
    ///
    /// # Panics
    ///
    /// Panics if `initial.len()` mismatches the problem or `initial`
    /// is infeasible (the paper's SA starts from filtered
    /// configurations).
    pub fn new(problem: &InequalityQubo, initial: Assignment) -> Self {
        assert!(
            problem.is_feasible(&initial),
            "initial configuration must be feasible"
        );
        let load = problem.constraint().load(&initial);
        let energy = problem.objective_energy(&initial);
        let deltas = DeltaEngine::local(problem.objective(), &initial);
        Self {
            problem: problem.clone(),
            x: initial,
            load,
            energy,
            deltas,
        }
    }

    /// Switches to dense O(n) row-scan deltas (no maintained local
    /// fields). Only the benchmark harness and the equivalence tests
    /// want this; the default local-field backend computes the same
    /// deltas in O(1).
    pub fn with_dense_deltas(mut self) -> Self {
        self.deltas = DeltaEngine::dense();
        self
    }

    /// Current constraint load `Σwᵢxᵢ`.
    pub fn load(&self) -> u64 {
        self.load
    }

    /// The underlying problem.
    pub fn problem(&self) -> &InequalityQubo {
        &self.problem
    }
}

impl AnnealState for SoftwareState {
    fn dim(&self) -> usize {
        self.problem.dim()
    }

    fn assignment(&self) -> &Assignment {
        &self.x
    }

    fn energy(&self) -> f64 {
        self.energy
    }

    fn probe_flip(&mut self, i: usize, _rng: &mut StdRng) -> FlipOutcome {
        let w = self.problem.constraint().weights()[i];
        let new_load = if self.x.get(i) {
            self.load - w
        } else {
            self.load + w
        };
        if new_load > self.problem.constraint().capacity() {
            return FlipOutcome::Infeasible;
        }
        FlipOutcome::Feasible {
            delta: self.deltas.flip_delta(self.problem.objective(), &self.x, i),
        }
    }

    fn commit_flip(&mut self, i: usize, delta: f64) {
        let w = self.problem.constraint().weights()[i];
        if self.x.flip(i) {
            self.load += w;
        } else {
            self.load -= w;
        }
        self.deltas.commit_flip(&self.x, i);
        self.energy += delta;
    }

    fn probe_pair(&mut self, i: usize, j: usize, _rng: &mut StdRng) -> FlipOutcome {
        assert_ne!(i, j, "pair flip needs two distinct bits");
        let w = self.problem.constraint().weights();
        let signed = |on: bool, weight: u64| {
            if on {
                -(weight as i64)
            } else {
                weight as i64
            }
        };
        let new_load = self.load as i64 + signed(self.x.get(i), w[i]) + signed(self.x.get(j), w[j]);
        debug_assert!(new_load >= 0);
        if new_load as u64 > self.problem.constraint().capacity() {
            return FlipOutcome::Infeasible;
        }
        FlipOutcome::Feasible {
            delta: self
                .deltas
                .pair_delta(self.problem.objective(), &self.x, i, j),
        }
    }

    fn commit_pair(&mut self, i: usize, j: usize, delta: f64) {
        let w = self.problem.constraint().weights();
        for (bit, weight) in [(i, w[i]), (j, w[j])] {
            if self.x.flip(bit) {
                self.load += weight;
            } else {
                self.load -= weight;
            }
        }
        self.deltas.commit_pair(&self.x, i, j);
        self.energy += delta;
    }
}

/// Exact software evaluation of the D-QUBO (penalty) form: every flip
/// is admissible — there is no filter — and constraint violations only
/// appear as penalty energy, which is exactly how the baseline gets
/// trapped in infeasible regions (paper Fig. 10).
#[derive(Debug, Clone)]
pub struct PenaltyState {
    form: DquboForm,
    x: Assignment,
    energy: f64,
    deltas: DeltaEngine,
}

impl PenaltyState {
    /// Creates a state at `initial` over the extended `n + n_aux`
    /// variable space.
    ///
    /// # Panics
    ///
    /// Panics if `initial.len() != form.dim()`.
    pub fn new(form: &DquboForm, initial: Assignment) -> Self {
        assert_eq!(initial.len(), form.dim(), "configuration length mismatch");
        let energy = form.energy(&initial);
        let deltas = DeltaEngine::local(form.matrix(), &initial);
        Self {
            form: form.clone(),
            x: initial,
            energy,
            deltas,
        }
    }

    /// Switches to dense O(n) row-scan deltas — see
    /// [`SoftwareState::with_dense_deltas`].
    pub fn with_dense_deltas(mut self) -> Self {
        self.deltas = DeltaEngine::dense();
        self
    }

    /// The underlying D-QUBO form.
    pub fn form(&self) -> &DquboForm {
        &self.form
    }

    /// Item part of the current configuration.
    pub fn item_assignment(&self) -> Assignment {
        self.form.decode(&self.x)
    }
}

impl AnnealState for PenaltyState {
    fn dim(&self) -> usize {
        self.form.dim()
    }

    fn assignment(&self) -> &Assignment {
        &self.x
    }

    fn energy(&self) -> f64 {
        self.energy
    }

    fn probe_flip(&mut self, i: usize, _rng: &mut StdRng) -> FlipOutcome {
        FlipOutcome::Feasible {
            delta: self.deltas.flip_delta(self.form.matrix(), &self.x, i),
        }
    }

    fn commit_flip(&mut self, i: usize, delta: f64) {
        self.x.flip(i);
        self.deltas.commit_flip(&self.x, i);
        self.energy += delta;
    }

    fn probe_pair(&mut self, i: usize, j: usize, _rng: &mut StdRng) -> FlipOutcome {
        assert_ne!(i, j, "pair flip needs two distinct bits");
        FlipOutcome::Feasible {
            delta: self.deltas.pair_delta(self.form.matrix(), &self.x, i, j),
        }
    }

    fn commit_pair(&mut self, i: usize, j: usize, delta: f64) {
        self.x.flip(i);
        self.x.flip(j);
        self.deltas.commit_pair(&self.x, i, j);
        self.energy += delta;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hycim_qubo::dqubo::{AuxEncoding, PenaltyWeights};
    use hycim_qubo::{LinearConstraint, QuboMatrix};
    use rand::{Rng, SeedableRng};

    fn fig7e() -> InequalityQubo {
        let mut q = QuboMatrix::zeros(3);
        q.set(0, 0, -10.0);
        q.set(1, 1, -6.0);
        q.set(2, 2, -8.0);
        q.set(0, 1, -6.0);
        q.set(0, 2, -14.0);
        q.set(1, 2, -4.0);
        InequalityQubo::new(q, LinearConstraint::new(vec![4, 7, 2], 9).unwrap()).unwrap()
    }

    #[test]
    fn software_state_tracks_energy_and_load() {
        let iq = fig7e();
        let mut state = SoftwareState::new(&iq, Assignment::zeros(3));
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(state.energy(), 0.0);
        // Flip item 0 in.
        match state.probe_flip(0, &mut rng) {
            FlipOutcome::Feasible { delta } => {
                assert_eq!(delta, -10.0);
                state.commit_flip(0, delta);
            }
            FlipOutcome::Infeasible => panic!("item 0 alone is feasible"),
        }
        assert_eq!(state.load(), 4);
        assert_eq!(state.energy(), -10.0);
        assert_eq!(
            state.energy(),
            iq.objective_energy(state.assignment()),
            "tracked energy diverged"
        );
    }

    #[test]
    fn software_state_vetoes_infeasible_flips() {
        let iq = fig7e();
        // Start with items 0 and 2 (load 6); adding item 1 (w=7) → 13 > 9.
        let mut state = SoftwareState::new(&iq, Assignment::from_bits([true, false, true]));
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(state.probe_flip(1, &mut rng), FlipOutcome::Infeasible);
        // Removing item 0 is always feasible.
        assert!(matches!(
            state.probe_flip(0, &mut rng),
            FlipOutcome::Feasible { .. }
        ));
    }

    #[test]
    #[should_panic(expected = "feasible")]
    fn software_state_rejects_infeasible_start() {
        let iq = fig7e();
        let _ = SoftwareState::new(&iq, Assignment::ones_vec(3));
    }

    #[test]
    fn random_walk_keeps_caches_consistent() {
        let iq = fig7e();
        let mut state = SoftwareState::new(&iq, Assignment::zeros(3));
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..500 {
            let i = rng.random_range(0..3);
            if let FlipOutcome::Feasible { delta } = state.probe_flip(i, &mut rng) {
                state.commit_flip(i, delta);
                let expected = iq.objective_energy(state.assignment());
                assert!(
                    (state.energy() - expected).abs() < 1e-9,
                    "energy cache diverged"
                );
                assert_eq!(state.load(), iq.constraint().load(state.assignment()));
                assert!(iq.is_feasible(state.assignment()));
            }
        }
    }

    #[test]
    fn penalty_state_allows_infeasible_moves() {
        let iq = fig7e();
        let form = DquboForm::transform(
            iq.objective(),
            iq.constraint(),
            PenaltyWeights::PAPER,
            AuxEncoding::OneHot,
        )
        .unwrap();
        let mut state = PenaltyState::new(&form, Assignment::zeros(form.dim()));
        let mut rng = StdRng::seed_from_u64(4);
        // Walk into an infeasible region freely: flip all three items in.
        for i in 0..3 {
            match state.probe_flip(i, &mut rng) {
                FlipOutcome::Feasible { delta } => state.commit_flip(i, delta),
                FlipOutcome::Infeasible => panic!("penalty state never vetoes"),
            }
        }
        let x = state.item_assignment();
        assert!(!iq.is_feasible(&x), "walked into infeasible region");
        // Energy matches the exact form evaluation.
        assert!((state.energy() - form.energy(state.assignment())).abs() < 1e-9);
    }
}
