use hycim_qubo::Assignment;

/// Record of one annealing run: the energy evolution (paper Fig. 7(f))
/// plus acceptance statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealTrace {
    energies: Vec<f64>,
    best_energy: f64,
    best_assignment: Assignment,
    accepted: usize,
    rejected_metropolis: usize,
    rejected_infeasible: usize,
}

impl AnnealTrace {
    /// Creates an empty trace at the initial state. Public so
    /// downstream crates can construct traces in tests and adapters.
    pub fn new(initial_energy: f64, initial: Assignment, record: bool) -> Self {
        Self::with_capacity(initial_energy, initial, record, 0)
    }

    /// Like [`new`](Self::new), but preallocates room for `iterations`
    /// recorded energies (plus the initial one) when recording is
    /// enabled, so the hot loop never reallocates mid-run. The
    /// annealer passes its iteration count here.
    pub fn with_capacity(
        initial_energy: f64,
        initial: Assignment,
        record: bool,
        iterations: usize,
    ) -> Self {
        let energies = if record {
            let mut e = Vec::with_capacity(iterations + 1);
            e.push(initial_energy);
            e
        } else {
            Vec::new()
        };
        Self {
            energies,
            best_energy: initial_energy,
            best_assignment: initial,
            accepted: 0,
            rejected_metropolis: 0,
            rejected_infeasible: 0,
        }
    }

    /// Builds a finished trace from an already-run loop's outcome —
    /// the adapter for drivers that keep their own counters (the
    /// bit-parallel packed engine aggregates 64 lanes into one trace).
    /// No per-iteration energies are recorded.
    pub fn from_counts(
        best_energy: f64,
        best_assignment: Assignment,
        accepted: usize,
        rejected_metropolis: usize,
        rejected_infeasible: usize,
    ) -> Self {
        Self {
            energies: Vec::new(),
            best_energy,
            best_assignment,
            accepted,
            rejected_metropolis,
            rejected_infeasible,
        }
    }

    pub(crate) fn record_iteration(&mut self, energy: f64, record: bool) {
        if record {
            self.energies.push(energy);
        }
    }

    pub(crate) fn update_best(&mut self, energy: f64, x: &Assignment) {
        if energy < self.best_energy {
            self.best_energy = energy;
            self.best_assignment = x.clone();
        }
    }

    pub(crate) fn count_accept(&mut self) {
        self.accepted += 1;
    }

    pub(crate) fn count_reject(&mut self) {
        self.rejected_metropolis += 1;
    }

    pub(crate) fn count_infeasible(&mut self) {
        self.rejected_infeasible += 1;
    }

    /// Energy after each iteration (index 0 = initial energy). Empty
    /// if the run was executed without trace recording.
    pub fn energies(&self) -> &[f64] {
        &self.energies
    }

    /// Best (lowest) energy observed.
    pub fn best_energy(&self) -> f64 {
        self.best_energy
    }

    /// Configuration achieving the best energy.
    pub fn best_assignment(&self) -> &Assignment {
        &self.best_assignment
    }

    /// Number of accepted moves.
    pub fn accepted(&self) -> usize {
        self.accepted
    }

    /// Number of moves rejected by the Metropolis criterion.
    pub fn rejected_metropolis(&self) -> usize {
        self.rejected_metropolis
    }

    /// Number of moves vetoed by the feasibility check (the paper's
    /// "infeasible configurations returned to SA logic").
    pub fn rejected_infeasible(&self) -> usize {
        self.rejected_infeasible
    }

    /// Total iterations executed.
    pub fn iterations(&self) -> usize {
        self.accepted + self.rejected_metropolis + self.rejected_infeasible
    }

    /// Annealing iterations until the run first touched its best
    /// energy — the deterministic time-to-target proxy the study
    /// harness and the wire protocol report (index 0 = already optimal
    /// at the initial configuration, also the fallback for runs
    /// executed without trace recording).
    pub fn iters_to_best(&self) -> usize {
        self.energies
            .iter()
            .position(|&e| e == self.best_energy)
            .unwrap_or(0)
    }

    /// Fraction of iterations spent on infeasible proposals — the
    /// quantity HyCiM's filter keeps from wasting crossbar energy.
    pub fn infeasible_fraction(&self) -> f64 {
        if self.iterations() == 0 {
            return 0.0;
        }
        self.rejected_infeasible as f64 / self.iterations() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bookkeeping() {
        let mut t = AnnealTrace::new(0.0, Assignment::zeros(2), true);
        t.count_accept();
        t.count_reject();
        t.count_infeasible();
        t.record_iteration(-1.0, true);
        t.update_best(-1.0, &Assignment::from_bits([true, false]));
        assert_eq!(t.iterations(), 3);
        assert_eq!(t.best_energy(), -1.0);
        assert_eq!(t.energies(), &[0.0, -1.0]);
        assert_eq!(t.iters_to_best(), 1);
        assert!((t.infeasible_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(t.best_assignment().ones(), 1);
    }

    #[test]
    fn best_never_worsens() {
        let mut t = AnnealTrace::new(-5.0, Assignment::zeros(1), false);
        t.update_best(-3.0, &Assignment::ones_vec(1));
        assert_eq!(t.best_energy(), -5.0);
        assert_eq!(t.best_assignment().ones(), 0);
    }

    #[test]
    fn unrecorded_trace_is_empty() {
        let t = AnnealTrace::new(1.0, Assignment::zeros(1), false);
        assert!(t.energies().is_empty());
        assert_eq!(t.infeasible_fraction(), 0.0);
        assert_eq!(t.iters_to_best(), 0);
    }
}
