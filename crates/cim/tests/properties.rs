//! Property-based tests of the CiM circuit invariants.

use hycim_cim::crossbar::{Crossbar, CrossbarConfig};
use hycim_cim::filter::{ComparatorConfig, FilterConfig, InequalityFilter};
use hycim_cim::Fidelity;
use hycim_fefet::VariationModel;
use hycim_qubo::{Assignment, QuboMatrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ideal_filter_config(fidelity: Fidelity) -> FilterConfig {
    FilterConfig::default()
        .with_variation(VariationModel::none())
        .with_comparator(ComparatorConfig::ideal())
        .with_fidelity(fidelity)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The ideal filter computes exactly `Σwᵢxᵢ ≤ C` in both
    /// fidelities, for arbitrary weights and capacities in range.
    #[test]
    fn ideal_filter_matches_arithmetic(
        weights in proptest::collection::vec(0u64..=64, 1..20),
        cap_raw in 1u64..200,
        x_bits in proptest::collection::vec(any::<bool>(), 20),
        seed in any::<u64>(),
    ) {
        let n = weights.len();
        let capacity = cap_raw.min(64 * n as u64).max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        for fidelity in [Fidelity::Fast, Fidelity::DeviceAccurate] {
            let filter = InequalityFilter::build(
                &weights, capacity, &ideal_filter_config(fidelity), &mut rng,
            ).expect("in-range weights");
            let x = Assignment::from_bits(x_bits[..n].iter().copied());
            let load: u64 = weights.iter().zip(x.iter())
                .filter(|(_, b)| *b).map(|(w, _)| *w).sum();
            prop_assert_eq!(
                filter.classify(&x, &mut rng).is_feasible(),
                load <= capacity,
                "fidelity {} load {} cap {}", fidelity, load, capacity
            );
        }
    }

    /// The filter's ML voltage is monotone non-increasing in the load:
    /// heavier configurations never read higher.
    #[test]
    fn ml_is_monotone_in_load(
        loads in proptest::collection::vec(0u64..=1000, 2..10),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let filter = InequalityFilter::build(
            &[50; 20], 500, &ideal_filter_config(Fidelity::Fast), &mut rng,
        ).expect("valid");
        let mut sorted = loads.clone();
        sorted.sort_unstable();
        let mls: Vec<f64> = sorted.iter()
            .map(|&l| filter.classify_load(l, &mut rng).ml())
            .collect();
        for w in mls.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-12, "ML rose with load: {:?}", mls);
        }
    }

    /// An ideal crossbar reproduces integer QUBO energies exactly when
    /// the coefficients fit the bit budget.
    #[test]
    fn ideal_crossbar_is_exact(
        coeffs in proptest::collection::vec(-100i64..=100, 1..=28),
        seed in any::<u64>(),
    ) {
        // Fill an upper-triangular matrix from the coefficient list.
        let n = ((-1.0 + (1.0 + 8.0 * coeffs.len() as f64).sqrt()) / 2.0).floor() as usize;
        prop_assume!(n >= 1);
        let mut q = QuboMatrix::zeros(n);
        let mut it = coeffs.into_iter();
        for i in 0..n {
            for j in i..n {
                q.set(i, j, it.next().unwrap_or(0) as f64);
            }
        }
        let cfg = CrossbarConfig::paper().with_variation(VariationModel::none());
        let mut rng = StdRng::seed_from_u64(seed);
        let xbar = Crossbar::program(&q, &cfg, &mut rng).expect("programmable");
        let x = Assignment::random(n, &mut rng);
        prop_assert!((xbar.compute_energy(&x, &mut rng) - q.energy(&x)).abs() < 1e-6);
    }

    /// Crossbar readout noise sigma is monotone in the active cell
    /// count and zero for zero cells.
    #[test]
    fn readout_sigma_monotone(a in 0usize..10_000, b in 0usize..10_000, seed in any::<u64>()) {
        let mut q = QuboMatrix::zeros(4);
        q.set(0, 1, -5.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let xbar = Crossbar::program(&q, &CrossbarConfig::paper(), &mut rng).expect("ok");
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(xbar.readout_sigma(lo) <= xbar.readout_sigma(hi));
        prop_assert_eq!(xbar.readout_sigma(0), 0.0);
    }
}

/// Device-accurate and fast filter paths agree in mean ML voltage.
#[test]
fn filter_fidelities_agree_in_mean() {
    let weights: Vec<u64> = (1..=30).map(|i| (i * 7) % 50 + 1).collect();
    let mut rng = StdRng::seed_from_u64(99);
    let dev = InequalityFilter::build(
        &weights,
        300,
        &FilterConfig::default().with_fidelity(Fidelity::DeviceAccurate),
        &mut rng,
    )
    .unwrap();
    let fast = InequalityFilter::build(
        &weights,
        300,
        &FilterConfig::default().with_fidelity(Fidelity::Fast),
        &mut rng,
    )
    .unwrap();
    let x = Assignment::from_bits((0..30).map(|i| i % 3 == 0));
    let avg = |f: &InequalityFilter, rng: &mut StdRng| {
        (0..200).map(|_| f.classify(&x, rng).ml()).sum::<f64>() / 200.0
    };
    let m_dev = avg(&dev, &mut rng);
    let m_fast = avg(&fast, &mut rng);
    let unit = hycim_cim::MatchlineConfig::default().unit_drop();
    assert!(
        (m_dev - m_fast).abs() < 3.0 * unit,
        "means differ by {} units",
        (m_dev - m_fast).abs() / unit
    );
}
