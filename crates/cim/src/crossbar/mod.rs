//! The FeFET-based CiM crossbar computing QUBO energies (paper
//! Sec 3.4, Fig. 6(a)).
//!
//! The QUBO matrix is stored upper-triangular, each column as an
//! `n × M` bit-sliced subarray of 1FeFET1R cells. A QUBO computation
//! applies the input configuration to gates and drains simultaneously
//! (single-transistor multiplication, Fig. 2(c)), digitizes column
//! currents with per-column ADCs, and accumulates bit-plane codes in
//! shift-add logic.

mod adc;
mod array;
mod mapping;
mod programming;

pub use adc::{Adc, AdcConfig};
pub use array::{Crossbar, CrossbarConfig};
pub use mapping::{CrossbarMapping, MAX_CROSSBAR_DIM};
pub use programming::{ProgrammingEngine, ProgrammingReport};
