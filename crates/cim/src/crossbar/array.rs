use std::fmt;

use hycim_fefet::VariationModel;
use hycim_qubo::{Assignment, QuboMatrix};
use rand::Rng;

use crate::crossbar::{Adc, AdcConfig, CrossbarMapping};
use crate::{CimError, Fidelity};

/// Construction parameters for a [`Crossbar`].
#[derive(Debug, Clone)]
pub struct CrossbarConfig {
    /// Magnitude quantization bits `M` (paper: `⌈log₂(Q_ij)MAX⌉`,
    /// 7 for HyCiM on the benchmark set).
    pub bits: u32,
    /// ADC resolution in bits (one ADC per column, Fig. 6(a)).
    pub adc_bits: u32,
    /// ADC noise in LSBs.
    pub adc_noise_lsb: f64,
    /// Device variability (propagates into per-cell currents in
    /// device-accurate mode and into aggregate noise in fast mode).
    pub variation: VariationModel,
    /// Simulation fidelity.
    pub fidelity: Fidelity,
}

impl CrossbarConfig {
    /// The paper's HyCiM crossbar setting: 7-bit matrix quantization,
    /// 8-bit ADCs.
    pub fn paper() -> Self {
        Self {
            bits: 7,
            adc_bits: 8,
            adc_noise_lsb: 0.3,
            variation: VariationModel::paper(),
            fidelity: Fidelity::default(),
        }
    }

    /// Overrides the matrix quantization bit width.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0 || bits > 62`.
    pub fn with_bits(mut self, bits: u32) -> Self {
        assert!(bits > 0 && bits <= 62, "bits must be in 1..=62");
        self.bits = bits;
        self
    }

    /// Overrides the variability model.
    pub fn with_variation(mut self, variation: VariationModel) -> Self {
        self.variation = variation;
        self
    }

    /// Overrides the fidelity.
    pub fn with_fidelity(mut self, fidelity: Fidelity) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// Overrides the ADC resolution.
    ///
    /// # Panics
    ///
    /// Panics if `adc_bits == 0 || adc_bits > 24`.
    pub fn with_adc_bits(mut self, adc_bits: u32) -> Self {
        assert!(adc_bits > 0 && adc_bits <= 24, "adc bits must be in 1..=24");
        self.adc_bits = adc_bits;
        self
    }
}

impl Default for CrossbarConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// The FeFET-based CiM crossbar computing `xᵀQx` (paper Sec 3.4,
/// Fig. 6(a)).
///
/// During a QUBO computation the input vector drives gates (via the WL
/// driver) and drains (via the SL/DL decoder) simultaneously; each
/// conducting cell contributes one clamped unit current, column
/// currents are digitized by per-column ADCs, and shift-add logic
/// accumulates the bit-plane codes into the energy value.
///
/// # Example
///
/// ```
/// use hycim_cim::crossbar::{Crossbar, CrossbarConfig};
/// use hycim_qubo::{Assignment, QuboMatrix};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), hycim_cim::CimError> {
/// let mut q = QuboMatrix::zeros(3);
/// q.set(0, 0, -10.0);
/// q.set(0, 2, -14.0);
/// q.set(2, 2, -8.0);
/// let mut rng = StdRng::seed_from_u64(5);
/// let xbar = Crossbar::program(&q, &CrossbarConfig::default(), &mut rng)?;
/// let x = Assignment::from_bits([true, false, true]);
/// let e = xbar.compute_energy(&x, &mut rng);
/// assert!((e - (-32.0)).abs() < 1.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Crossbar {
    mapping: CrossbarMapping,
    adc: Adc,
    config: CrossbarConfig,
    /// Cached dequantized matrix for the fast path and ideal reads.
    dequantized: QuboMatrix,
}

impl Crossbar {
    /// Quantizes and programs `q` into the crossbar.
    ///
    /// # Errors
    ///
    /// Propagates [`CimError::EmptyProblem`] /
    /// [`CimError::MatrixTooLarge`] from the mapping.
    pub fn program<R: Rng + ?Sized>(
        q: &QuboMatrix,
        config: &CrossbarConfig,
        rng: &mut R,
    ) -> Result<Self, CimError> {
        let _ = rng; // array-level D2D effects are folded into read noise
        let mapping = CrossbarMapping::new(q, config.bits)?;
        let adc = Adc::new(AdcConfig::new(
            config.adc_bits,
            q.dim().max(1),
            config.adc_noise_lsb,
        ));
        let dequantized = mapping.dequantized();
        Ok(Self {
            mapping,
            adc,
            config: config.clone(),
            dequantized,
        })
    }

    /// Matrix dimension `n`.
    pub fn dim(&self) -> usize {
        self.mapping.dim()
    }

    /// Quantization bit width `M`.
    pub fn bits(&self) -> u32 {
        self.mapping.bits()
    }

    /// The bit-plane mapping.
    pub fn mapping(&self) -> &CrossbarMapping {
        &self.mapping
    }

    /// The matrix the crossbar effectively stores (quantized then
    /// dequantized).
    pub fn stored_matrix(&self) -> &QuboMatrix {
        &self.dequantized
    }

    /// Noise-free energy of the *stored* (quantized) matrix — the
    /// value an ideal readout would produce.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn ideal_energy(&self, x: &Assignment) -> f64 {
        self.dequantized.energy(x)
    }

    /// One full analog QUBO computation `xᵀQx` (paper Fig. 6(a)):
    /// bit-plane column currents → ADC codes → shift-add → scaled
    /// energy.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn compute_energy<R: Rng + ?Sized>(&self, x: &Assignment, rng: &mut R) -> f64 {
        assert_eq!(x.len(), self.dim(), "input length mismatch");
        match self.config.fidelity {
            Fidelity::DeviceAccurate => self.compute_device(x, rng),
            Fidelity::Fast => self.compute_fast(x, rng),
        }
    }

    /// Device-accurate path: per-cell currents with relative noise,
    /// per-column-per-bitplane ADC conversion.
    fn compute_device<R: Rng + ?Sized>(&self, x: &Assignment, rng: &mut R) -> f64 {
        let sigma = self.config.variation.current_sigma_rel();
        let mut total = 0.0_f64;
        for (negative, sign) in [(false, 1.0f64), (true, -1.0)] {
            for b in 0..self.bits() {
                let weight = (1u64 << b) as f64;
                for col in 0..self.dim() {
                    if !x.get(col) {
                        continue;
                    }
                    // Column current: one unit per conducting cell
                    // (gate row i driven by x_i, drain by x_col).
                    let mut current_units = 0.0;
                    for &row in self.mapping.plane_rows(negative, b, col) {
                        if x.get(row as usize) {
                            current_units +=
                                self.config.variation.sample_current_factor(rng).max(0.0);
                        }
                    }
                    if current_units == 0.0 {
                        continue;
                    }
                    let _ = sigma;
                    let code = self.adc.sample_count(current_units, rng);
                    total += sign * weight * code as f64;
                }
            }
        }
        total * self.mapping.scale()
    }

    /// Fast path: exact plane counts + ADC quantization + aggregate
    /// Gaussian noise with the same variance the per-cell path has.
    fn compute_fast<R: Rng + ?Sized>(&self, x: &Assignment, rng: &mut R) -> f64 {
        let sigma_rel = self.config.variation.current_sigma_rel();
        let mut total = 0.0_f64;
        let mut active_weighted_cells = 0.0_f64;
        for (negative, sign) in [(false, 1.0f64), (true, -1.0)] {
            for b in 0..self.bits() {
                let weight = (1u64 << b) as f64;
                for col in 0..self.dim() {
                    if !x.get(col) {
                        continue;
                    }
                    let count = self
                        .mapping
                        .plane_rows(negative, b, col)
                        .iter()
                        .filter(|&&row| x.get(row as usize))
                        .count();
                    if count == 0 {
                        continue;
                    }
                    let code = self.adc.sample_count(count as f64, rng);
                    total += sign * weight * code as f64;
                    active_weighted_cells += weight * weight * count as f64;
                }
            }
        }
        if sigma_rel > 0.0 && active_weighted_cells > 0.0 {
            total += gaussian(rng) * sigma_rel * active_weighted_cells.sqrt();
        }
        total * self.mapping.scale()
    }

    /// Standard deviation of the hardware readout noise for a
    /// configuration activating `active_cells` weighted cells,
    /// expressed in energy units. Exposed so the SA hot loop can model
    /// readout noise without a full array pass (see DESIGN.md §2).
    pub fn readout_sigma(&self, active_cells: usize) -> f64 {
        self.config.variation.current_sigma_rel()
            * (active_cells as f64).sqrt()
            * self.mapping.scale()
    }
}

impl fmt::Display for Crossbar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Crossbar(n={}, M={} bits, {})",
            self.dim(),
            self.bits(),
            self.adc
        )
    }
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random::<f64>();
        if u1 > f64::MIN_POSITIVE {
            let u2: f64 = rng.random::<f64>();
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_integer_qubo(n: usize, seed: u64, max: i64) -> QuboMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut q = QuboMatrix::zeros(n);
        for i in 0..n {
            for j in i..n {
                if rng.random_bool(0.6) {
                    q.set(i, j, rng.random_range(-max..=max) as f64);
                }
            }
        }
        q
    }

    #[test]
    fn ideal_crossbar_reproduces_exact_energy() {
        // Integer coefficients ≤ 100, 7 bits, no noise → exact.
        let q = random_integer_qubo(12, 1, 100);
        let cfg = CrossbarConfig::paper().with_variation(VariationModel::none());
        let mut rng = StdRng::seed_from_u64(2);
        let xbar = Crossbar::program(&q, &cfg, &mut rng).unwrap();
        for _ in 0..30 {
            let x = Assignment::random(12, &mut rng);
            let e = xbar.compute_energy(&x, &mut rng);
            assert!(
                (e - q.energy(&x)).abs() < 1e-6,
                "ideal crossbar error: {e} vs {}",
                q.energy(&x)
            );
        }
    }

    #[test]
    fn device_and_fast_agree_in_expectation() {
        let q = random_integer_qubo(10, 3, 100);
        let mut rng = StdRng::seed_from_u64(4);
        let dev = Crossbar::program(
            &q,
            &CrossbarConfig::paper().with_fidelity(Fidelity::DeviceAccurate),
            &mut rng,
        )
        .unwrap();
        let fast = Crossbar::program(
            &q,
            &CrossbarConfig::paper().with_fidelity(Fidelity::Fast),
            &mut rng,
        )
        .unwrap();
        let x = Assignment::random(10, &mut rng);
        let avg = |xb: &Crossbar, rng: &mut StdRng| {
            (0..300).map(|_| xb.compute_energy(&x, rng)).sum::<f64>() / 300.0
        };
        let m_dev = avg(&dev, &mut rng);
        let m_fast = avg(&fast, &mut rng);
        let scale = q.max_abs_element();
        assert!(
            (m_dev - m_fast).abs() < 0.05 * scale,
            "means differ: device {m_dev}, fast {m_fast}"
        );
    }

    #[test]
    fn noise_scales_with_active_cells() {
        let q = random_integer_qubo(16, 5, 100);
        let mut rng = StdRng::seed_from_u64(6);
        let xbar = Crossbar::program(&q, &CrossbarConfig::paper(), &mut rng).unwrap();
        let spread = |x: &Assignment, rng: &mut StdRng| {
            let es: Vec<f64> = (0..200).map(|_| xbar.compute_energy(x, rng)).collect();
            let m = es.iter().sum::<f64>() / es.len() as f64;
            (es.iter().map(|e| (e - m).powi(2)).sum::<f64>() / es.len() as f64).sqrt()
        };
        let sparse = Assignment::from_bits((0..16).map(|i| i < 2));
        let dense = Assignment::ones_vec(16);
        assert!(spread(&dense, &mut rng) > spread(&sparse, &mut rng));
    }

    #[test]
    fn coarse_quantization_distorts_energy() {
        // The D-QUBO failure mode: huge (Q)MAX forces coarse levels.
        let mut q = QuboMatrix::zeros(3);
        q.set(0, 0, -1.0e6); // dominates the scale
        q.set(1, 1, -10.0); // gets crushed at low bit width
        q.set(2, 2, -7.0);
        let cfg = CrossbarConfig::paper()
            .with_bits(8)
            .with_variation(VariationModel::none());
        let mut rng = StdRng::seed_from_u64(7);
        let xbar = Crossbar::program(&q, &cfg, &mut rng).unwrap();
        let x = Assignment::from_bits([false, true, true]);
        let e = xbar.compute_energy(&x, &mut rng);
        // True energy −17, but the 8-bit grid over 10⁶ has LSB ≈ 3922:
        // the small coefficients vanish entirely.
        assert_eq!(e, 0.0, "expected small coefficients to be crushed, got {e}");
    }

    #[test]
    fn readout_sigma_is_monotone() {
        let q = random_integer_qubo(8, 8, 50);
        let mut rng = StdRng::seed_from_u64(9);
        let xbar = Crossbar::program(&q, &CrossbarConfig::paper(), &mut rng).unwrap();
        assert!(xbar.readout_sigma(100) > xbar.readout_sigma(10));
        assert_eq!(xbar.readout_sigma(0), 0.0);
    }
}
