use std::fmt;

use hycim_qubo::quant::QuantizedMatrix;
use hycim_qubo::QuboMatrix;

use crate::CimError;

/// Bit-sliced crossbar mapping of a QUBO matrix (paper Fig. 6(a)).
///
/// Each column `Aⱼ` of the upper-triangular `Q` is mapped onto an
/// `n × M` subarray at `M`-bit magnitude quantization, one bit per
/// 1FeFET1R cell. Negative coefficients (HyCiM's negated profits) are
/// stored in a parallel *negative* plane set whose column sums are
/// subtracted digitally after the ADCs — the standard two-array
/// signed-weight CiM scheme.
///
/// # Example
///
/// ```
/// use hycim_cim::crossbar::CrossbarMapping;
/// use hycim_qubo::QuboMatrix;
///
/// # fn main() -> Result<(), hycim_cim::CimError> {
/// let mut q = QuboMatrix::zeros(3);
/// q.set(0, 0, -10.0);
/// q.set(0, 2, -7.0);
/// let map = CrossbarMapping::new(&q, 7)?;
/// assert_eq!(map.dim(), 3);
/// assert_eq!(map.bits(), 7);
/// assert_eq!(map.total_cells(), 3 * 3 * 7 * 2); // pos + neg planes
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CrossbarMapping {
    dim: usize,
    bits: u32,
    scale: f64,
    /// `planes[sign][bit][col]` = sorted row indices whose cell stores
    /// a 1 for that (sign, bit, column). sign 0 = positive, 1 = negative.
    planes: [Vec<Vec<Vec<u32>>>; 2],
}

/// Hard cap on the mapped dimension; protects against accidentally
/// programming a D-QUBO-sized matrix (n ≈ 2600, hundreds of millions
/// of cells) into an explicit cell array.
pub const MAX_CROSSBAR_DIM: usize = 4096;

impl CrossbarMapping {
    /// Quantizes `q` to `bits` magnitude bits and builds the bit-plane
    /// layout.
    ///
    /// # Errors
    ///
    /// * [`CimError::EmptyProblem`] for a zero-dimension matrix.
    /// * [`CimError::MatrixTooLarge`] if `q.dim() > MAX_CROSSBAR_DIM`.
    pub fn new(q: &QuboMatrix, bits: u32) -> Result<Self, CimError> {
        if q.dim() == 0 {
            return Err(CimError::EmptyProblem);
        }
        if q.dim() > MAX_CROSSBAR_DIM {
            return Err(CimError::MatrixTooLarge {
                dim: q.dim(),
                limit: MAX_CROSSBAR_DIM,
            });
        }
        let quant = QuantizedMatrix::quantize(q, bits);
        let dim = q.dim();
        let empty_planes = || vec![vec![Vec::new(); dim]; bits as usize];
        let mut planes = [empty_planes(), empty_planes()];
        for &(i, j, level) in quant.levels() {
            let sign = usize::from(level < 0);
            let mag = level.unsigned_abs();
            for b in 0..bits {
                if mag >> b & 1 == 1 {
                    // Upper-triangular convention of Fig. 6(a): the cell
                    // for coefficient (i, j), i ≤ j, sits at row i of
                    // column j's subarray.
                    planes[sign][b as usize][j].push(i as u32);
                }
            }
        }
        Ok(Self {
            dim,
            bits,
            scale: quant.scale(),
            planes,
        })
    }

    /// Matrix dimension `n`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Magnitude bit width `M`.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Scale factor from integer levels to coefficient values.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Row indices storing a 1 in the given (sign, bit, column) plane
    /// slice. `negative = false` selects the positive plane.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= self.bits()` or `col >= self.dim()`.
    pub fn plane_rows(&self, negative: bool, bit: u32, col: usize) -> &[u32] {
        &self.planes[usize::from(negative)][bit as usize][col]
    }

    /// Number of programmed (1-storing) cells.
    pub fn programmed_cells(&self) -> usize {
        self.planes.iter().flatten().flatten().map(Vec::len).sum()
    }

    /// Total physical cells allocated: `n × n × M` per sign plane.
    pub fn total_cells(&self) -> usize {
        self.dim * self.dim * self.bits as usize * 2
    }

    /// Reconstructs the dequantized matrix the crossbar effectively
    /// stores (coefficients rounded to the quantization grid).
    pub fn dequantized(&self) -> QuboMatrix {
        let mut q = QuboMatrix::zeros(self.dim);
        for (sign_idx, sign) in [(0usize, 1.0f64), (1, -1.0)] {
            for b in 0..self.bits {
                for col in 0..self.dim {
                    for &row in &self.planes[sign_idx][b as usize][col] {
                        q.add(row as usize, col, sign * ((1u64 << b) as f64) * self.scale);
                    }
                }
            }
        }
        q
    }
}

impl fmt::Display for CrossbarMapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CrossbarMapping(n={}, M={} bits, {} programmed cells)",
            self.dim,
            self.bits,
            self.programmed_cells()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hycim_qubo::Assignment;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_qubo(n: usize, seed: u64, max: f64) -> QuboMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut q = QuboMatrix::zeros(n);
        for i in 0..n {
            for j in i..n {
                if rng.random_bool(0.6) {
                    q.set(i, j, rng.random_range(-max..max));
                }
            }
        }
        q
    }

    #[test]
    fn dequantized_matches_quantizer() {
        let q = random_qubo(10, 1, 100.0);
        let map = CrossbarMapping::new(&q, 7).unwrap();
        let direct = QuantizedMatrix::quantize(&q, 7).dequantize();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let x = Assignment::random(10, &mut rng);
            assert!(
                (map.dequantized().energy(&x) - direct.energy(&x)).abs() < 1e-9,
                "mapping disagrees with quantizer"
            );
        }
    }

    #[test]
    fn integer_matrices_map_losslessly() {
        // Integer coefficients within the bit budget survive exactly —
        // the HyCiM case ((Q)MAX = 100 at 7 bits).
        let mut q = QuboMatrix::zeros(4);
        q.set(0, 0, -100.0);
        q.set(0, 1, -37.0);
        q.set(2, 3, -1.0);
        q.set(1, 1, 64.0);
        let map = CrossbarMapping::new(&q, 7).unwrap();
        let back = map.dequantized();
        for (i, j, v) in q.iter_nonzero() {
            assert!(
                (back.get(i, j) - v).abs() < 1e-9,
                "({i},{j}): {} != {v}",
                back.get(i, j)
            );
        }
    }

    #[test]
    fn rejects_oversized_matrix() {
        let q = QuboMatrix::zeros(MAX_CROSSBAR_DIM + 1);
        assert!(matches!(
            CrossbarMapping::new(&q, 4),
            Err(CimError::MatrixTooLarge { .. })
        ));
    }

    #[test]
    fn rejects_empty_matrix() {
        let q = QuboMatrix::zeros(0);
        assert!(matches!(
            CrossbarMapping::new(&q, 4),
            Err(CimError::EmptyProblem)
        ));
    }

    #[test]
    fn plane_rows_are_upper_triangular() {
        let q = random_qubo(8, 3, 50.0);
        let map = CrossbarMapping::new(&q, 6).unwrap();
        for sign in [false, true] {
            for b in 0..6 {
                for col in 0..8 {
                    for &row in map.plane_rows(sign, b, col) {
                        assert!(row as usize <= col, "cell below diagonal");
                    }
                }
            }
        }
    }

    #[test]
    fn cell_counts() {
        let mut q = QuboMatrix::zeros(2);
        q.set(0, 0, 3.0); // 0b11 at 2-bit scale → depends on scale
        let map = CrossbarMapping::new(&q, 2).unwrap();
        assert_eq!(map.total_cells(), 2 * 2 * 2 * 2);
        assert!(map.programmed_cells() >= 1);
    }
}
