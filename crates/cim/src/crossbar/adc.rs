use std::fmt;

use rand::Rng;

/// Column ADC of the CiM crossbar (paper Fig. 6(a)): digitizes a
/// column current into a code that the shift-add logic accumulates.
///
/// The column current is `count × I_unit` where `count` is the number
/// of conducting cells; the ADC quantizes it with
/// `LSB = full_scale / (2^bits − 1)` plus Gaussian integral
/// non-linearity noise (in LSBs).
///
/// # Example
///
/// ```
/// use hycim_cim::crossbar::{Adc, AdcConfig};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let adc = Adc::new(AdcConfig::ideal(8, 100));
/// let mut rng = StdRng::seed_from_u64(1);
/// // 8 bits over 100 cells: every count is resolved exactly.
/// assert_eq!(adc.sample_count(42.0, &mut rng), 42);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AdcConfig {
    /// Resolution in bits.
    pub bits: u32,
    /// Largest cell count the full scale must represent (the number of
    /// rows feeding one column).
    pub max_count: usize,
    /// INL/readout noise sigma in LSBs.
    pub noise_lsb: f64,
}

impl AdcConfig {
    /// An ideal (noise-free) ADC.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0` or `bits > 24` or `max_count == 0`.
    pub fn ideal(bits: u32, max_count: usize) -> Self {
        Self::new(bits, max_count, 0.0)
    }

    /// Paper-like ADC: 8-bit with 0.3 LSB noise.
    pub fn paper(max_count: usize) -> Self {
        Self::new(8, max_count, 0.3)
    }

    /// Fully custom configuration.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0` or `bits > 24`, `max_count == 0`, or
    /// `noise_lsb < 0`.
    pub fn new(bits: u32, max_count: usize, noise_lsb: f64) -> Self {
        assert!(bits > 0 && bits <= 24, "adc bits must be in 1..=24");
        assert!(max_count > 0, "max count must be positive");
        assert!(noise_lsb >= 0.0, "noise must be non-negative");
        Self {
            bits,
            max_count,
            noise_lsb,
        }
    }

    /// Counts per LSB: `max_count / (2^bits − 1)`, at least one count
    /// resolved per code when the resolution suffices.
    pub fn counts_per_lsb(&self) -> f64 {
        self.max_count as f64 / ((1u64 << self.bits) - 1) as f64
    }
}

/// A column ADC instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Adc {
    config: AdcConfig,
}

impl Adc {
    /// Creates an ADC from its configuration.
    pub fn new(config: AdcConfig) -> Self {
        Self { config }
    }

    /// Configuration in use.
    pub fn config(&self) -> &AdcConfig {
        &self.config
    }

    /// Digitizes a (possibly fractional, noisy) conducting-cell count
    /// and returns the reconstructed count estimate.
    ///
    /// With enough resolution (`2^bits − 1 ≥ max_count`) and zero
    /// noise this is exact rounding; otherwise quantization error and
    /// INL noise appear, which is exactly how limited ADC precision
    /// degrades large D-QUBO matrices.
    pub fn sample_count<R: Rng + ?Sized>(&self, count: f64, rng: &mut R) -> u64 {
        let lsb = self.config.counts_per_lsb();
        let noisy = if self.config.noise_lsb > 0.0 {
            count + gaussian(rng) * self.config.noise_lsb * lsb
        } else {
            count
        };
        let code = (noisy / lsb)
            .round()
            .clamp(0.0, ((1u64 << self.config.bits) - 1) as f64);
        (code * lsb).round() as u64
    }
}

impl fmt::Display for Adc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Adc({} bits, {} counts full scale, {:.2} LSB noise)",
            self.config.bits, self.config.max_count, self.config.noise_lsb
        )
    }
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random::<f64>();
        if u1 > f64::MIN_POSITIVE {
            let u2: f64 = rng.random::<f64>();
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_adc_is_exact_when_resolution_suffices() {
        let adc = Adc::new(AdcConfig::ideal(8, 100));
        let mut rng = StdRng::seed_from_u64(1);
        for count in 0..=100u64 {
            assert_eq!(adc.sample_count(count as f64, &mut rng), count);
        }
    }

    #[test]
    fn coarse_adc_quantizes() {
        // 3 bits over 100 counts: LSB ≈ 14.3 counts.
        let adc = Adc::new(AdcConfig::ideal(3, 100));
        let mut rng = StdRng::seed_from_u64(2);
        let out = adc.sample_count(50.0, &mut rng);
        assert_ne!(out, 50);
        assert!((out as f64 - 50.0).abs() <= adc.config().counts_per_lsb());
    }

    #[test]
    fn clamps_at_full_scale() {
        let adc = Adc::new(AdcConfig::ideal(4, 15));
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(adc.sample_count(1000.0, &mut rng), 15);
    }

    #[test]
    fn noise_perturbs_codes() {
        let adc = Adc::new(AdcConfig::new(8, 100, 2.0));
        let mut rng = StdRng::seed_from_u64(4);
        let samples: Vec<u64> = (0..100).map(|_| adc.sample_count(50.0, &mut rng)).collect();
        assert!(
            samples.iter().any(|&s| s != samples[0]),
            "noise had no effect"
        );
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        assert!((mean - 50.0).abs() < 2.0, "noise is biased: mean {mean}");
    }

    #[test]
    #[should_panic(expected = "adc bits")]
    fn zero_bits_rejected() {
        let _ = AdcConfig::ideal(0, 10);
    }
}
