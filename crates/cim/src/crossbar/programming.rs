//! Pulse-accurate crossbar programming: the write/verify cycle that
//! turns a bit-plane mapping into physical device states, using the
//! Preisach polarization model of [`hycim_fefet::preisach`].
//!
//! The paper's measurement protocol erases and reprograms the whole
//! chip before every run (Fig. 7(f)); this module models that cycle —
//! erase, program pulses per the target level, read-verify, retry —
//! and reports write statistics, connecting the device-physics layer
//! to the array layer end to end.

use hycim_fefet::preisach::PolarizationState;
use hycim_fefet::{MultiLevelSpec, VariationModel, WritePulse};
use rand::Rng;

/// Outcome of programming one array of target levels.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgrammingReport {
    /// Cells programmed.
    pub cells: usize,
    /// Total write pulses issued (including erases and retries).
    pub pulses: usize,
    /// Cells that failed verification even after retries.
    pub failures: usize,
    /// Worst final threshold-voltage error (V) among verified cells.
    pub worst_vt_error: f64,
}

impl ProgrammingReport {
    /// Average pulses per cell.
    pub fn pulses_per_cell(&self) -> f64 {
        if self.cells == 0 {
            return 0.0;
        }
        self.pulses as f64 / self.cells as f64
    }

    /// Whether every cell verified.
    pub fn all_verified(&self) -> bool {
        self.failures == 0
    }
}

/// Write/verify engine with bounded retries.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgrammingEngine {
    spec: MultiLevelSpec,
    /// Accept a cell when its threshold is within this margin (V) of
    /// the target level's nominal threshold.
    verify_margin: f64,
    /// Maximum program attempts per cell after the initial erase.
    max_retries: usize,
}

impl ProgrammingEngine {
    /// Engine with the paper-style margin: a quarter of the level
    /// pitch, tight enough that every staircase read voltage stays on
    /// the right side of the written threshold.
    pub fn new(spec: &MultiLevelSpec) -> Self {
        let pitch = (spec.threshold(0) - spec.threshold(spec.max_level()))
            / f64::from(spec.max_level().max(1));
        Self {
            spec: spec.clone(),
            verify_margin: pitch / 4.0,
            max_retries: 8,
        }
    }

    /// Overrides the verify margin (V).
    ///
    /// # Panics
    ///
    /// Panics if `margin <= 0`.
    pub fn with_verify_margin(mut self, margin: f64) -> Self {
        assert!(margin > 0.0, "margin must be positive");
        self.verify_margin = margin;
        self
    }

    /// Programs one device to `level` with write/verify, returning the
    /// pulse count and final Vt error, or `None` if verification never
    /// passed. `vt_offset` is the device's fixed mismatch (the write
    /// loop *cannot see it directly* — it only reads back the shifted
    /// threshold, like real write-verify hardware).
    pub fn program_cell<R: Rng + ?Sized>(
        &self,
        level: u8,
        vt_offset: f64,
        _rng: &mut R,
    ) -> Option<(usize, f64)> {
        let mut p = PolarizationState::new(&self.spec);
        let target = self.spec.threshold(level);
        let mut pulses = 1; // the initial saturating erase
        p.apply_pulse(&WritePulse::erase(-4.0, 2000.0));
        if level == 0 {
            let err = (p.threshold_voltage() + vt_offset - target).abs() - vt_offset.abs();
            return Some((pulses, err.max(0.0)));
        }
        // Coarse shot: the analytic pulse for the nominal level.
        p.program_level(level, &self.spec);
        pulses += 2; // program_level = erase + program
                     // Verify/trim loop: nudge with short pulses until the *read*
                     // threshold (device Vt + offset) is inside the margin.
        for _ in 0..self.max_retries {
            let read_vt = p.threshold_voltage() + vt_offset;
            let err = read_vt - target;
            if err.abs() <= self.verify_margin {
                return Some((pulses, err.abs()));
            }
            // Too high → polarize more (program); too low → erase a bit.
            let pulse = if err > 0.0 {
                WritePulse::program(3.0, 8.0)
            } else {
                WritePulse::erase(-3.0, 8.0)
            };
            p.apply_pulse(&pulse);
            pulses += 1;
        }
        let final_err = (p.threshold_voltage() + vt_offset - target).abs();
        if final_err <= self.verify_margin {
            Some((pulses, final_err))
        } else {
            None
        }
    }

    /// Programs a whole array of target levels with per-cell sampled
    /// device mismatch, aggregating statistics.
    pub fn program_array<R: Rng + ?Sized>(
        &self,
        levels: &[u8],
        variation: &VariationModel,
        rng: &mut R,
    ) -> ProgrammingReport {
        let mut pulses = 0;
        let mut failures = 0;
        let mut worst = 0.0f64;
        for &level in levels {
            let offset = variation.sample_d2d_offset(rng);
            match self.program_cell(level, offset, rng) {
                Some((p, err)) => {
                    pulses += p;
                    worst = worst.max(err);
                }
                None => failures += 1,
            }
        }
        ProgrammingReport {
            cells: levels.len(),
            pulses,
            failures,
            worst_vt_error: worst,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spec() -> MultiLevelSpec {
        MultiLevelSpec::paper_filter()
    }

    #[test]
    fn ideal_cells_program_first_try() {
        let engine = ProgrammingEngine::new(&spec());
        let mut rng = StdRng::seed_from_u64(1);
        for level in 0..=4u8 {
            let (pulses, err) = engine
                .program_cell(level, 0.0, &mut rng)
                .expect("ideal cell verifies");
            assert!(pulses <= 4, "level {level} took {pulses} pulses");
            assert!(err <= engine.verify_margin, "level {level} err {err}");
        }
    }

    #[test]
    fn mismatched_cells_need_trim_pulses() {
        let engine = ProgrammingEngine::new(&spec());
        let mut rng = StdRng::seed_from_u64(2);
        // +80 mV offset: outside the 125 mV margin? No — inside. Use
        // an offset beyond the margin so trimming must engage.
        let offset = engine.verify_margin * 1.5;
        let (pulses_ideal, _) = engine.program_cell(3, 0.0, &mut rng).unwrap();
        let (pulses_off, err) = engine.program_cell(3, offset, &mut rng).expect("trimmable");
        assert!(pulses_off > pulses_ideal, "no trim pulses issued");
        assert!(err <= engine.verify_margin);
    }

    #[test]
    fn array_programming_statistics() {
        let engine = ProgrammingEngine::new(&spec());
        let mut rng = StdRng::seed_from_u64(3);
        let levels: Vec<u8> = (0..64).map(|i| (i % 5) as u8).collect();
        let report = engine.program_array(&levels, &VariationModel::paper(), &mut rng);
        assert_eq!(report.cells, 64);
        assert!(report.all_verified(), "{} failures", report.failures);
        assert!(report.pulses_per_cell() >= 1.0);
        assert!(report.worst_vt_error <= engine.verify_margin);
    }

    #[test]
    fn hopeless_margin_reports_failures() {
        let engine = ProgrammingEngine::new(&spec()).with_verify_margin(1e-6);
        let mut rng = StdRng::seed_from_u64(4);
        // Huge mismatch that trimming cannot fully cancel at 1 µV margin.
        let result = engine.program_cell(2, 0.3, &mut rng);
        assert!(result.is_none(), "expected verification failure");
    }

    #[test]
    #[should_panic(expected = "margin")]
    fn zero_margin_rejected() {
        let _ = ProgrammingEngine::new(&spec()).with_verify_margin(0.0);
    }
}
