use std::fmt;

/// Simulation fidelity of the analog CiM blocks.
///
/// Both fidelities share the same nominal transfer function; they
/// differ only in how non-idealities are sampled (see DESIGN.md §2).
///
/// # Example
///
/// ```
/// use hycim_cim::Fidelity;
/// assert_eq!(Fidelity::default(), Fidelity::Fast);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Fidelity {
    /// Every cell's current is simulated individually with full device
    /// variability (threshold offsets, cycle-to-cycle shifts, current
    /// noise). Used for the validation figures (Fig. 5(f), 7(d), 8).
    DeviceAccurate,
    /// The analytically equivalent aggregate response with
    /// statistically matched Gaussian noise (σ scaled by √cells).
    /// Used inside the SA hot loop, where the paper's protocol implies
    /// billions of evaluations.
    #[default]
    Fast,
}

impl fmt::Display for Fidelity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fidelity::DeviceAccurate => f.write_str("device-accurate"),
            Fidelity::Fast => f.write_str("fast"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_default() {
        assert_eq!(Fidelity::Fast.to_string(), "fast");
        assert_eq!(Fidelity::DeviceAccurate.to_string(), "device-accurate");
        assert_eq!(Fidelity::default(), Fidelity::Fast);
    }
}
