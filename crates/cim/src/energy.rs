//! Per-operation energy model for the CiM blocks.
//!
//! The paper argues HyCiM's hardware reduction "indicates improved
//! energy efficiency" (Sec 4.2) without tabulating joules; this model
//! makes the comparison concrete so the ablation benches can report
//! energy-per-SA-iteration for both pipelines. Magnitudes follow
//! standard 28 nm CiM estimates: dynamic energy `C·V²` for matchlines,
//! per-conversion ADC energy, and per-cell read energy `I·V·t`.

use std::fmt;

use crate::MatchlineConfig;

/// Energy model constants (joules per elementary operation).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Matchline precharge energy per evaluation: `C_ML · VDD²`.
    pub ml_precharge: f64,
    /// Energy per conducting cell per phase: `I · V_DL · t_phase`.
    pub cell_read: f64,
    /// Energy per 8-bit ADC conversion (typical 28 nm SAR: ~1 pJ).
    pub adc_conversion: f64,
    /// Energy per comparator decision.
    pub comparator_decision: f64,
    /// Digital SA-logic energy per iteration (move generation,
    /// accept/reject bookkeeping).
    pub sa_logic_iteration: f64,
}

impl EnergyModel {
    /// Defaults derived from the paper's electrical parameters.
    pub fn paper() -> Self {
        let ml = MatchlineConfig::paper();
        Self {
            ml_precharge: ml.c_ml * ml.vdd * ml.vdd,
            cell_read: ml.cell_current * 0.05 * ml.phase_time,
            adc_conversion: 1.0e-12,
            comparator_decision: 0.1e-12,
            sa_logic_iteration: 5.0e-12,
        }
    }

    /// Energy of one inequality-filter evaluation: two matchline
    /// precharges (working + replica), the conducting cell-phases on
    /// both arrays, and one comparator decision.
    ///
    /// `load` is `Σwᵢxᵢ` (conducting cell-phases on the working array)
    /// and `capacity` the replica's constant load.
    pub fn filter_eval(&self, load: u64, capacity: u64) -> f64 {
        2.0 * self.ml_precharge
            + (load + capacity) as f64 * self.cell_read
            + self.comparator_decision
    }

    /// Energy of one filter-*bank* evaluation: `k` concurrent
    /// matchline evaluations, one per constraint. Each filter pays
    /// its own working+replica precharge, its conducting cell-phases
    /// (`loadₖ + capacityₖ`), and one comparator decision — the bank
    /// shares the 4-phase read in *time* (one filter latency) but not
    /// in *energy*: every matchline still precharges and discharges.
    ///
    /// `loads` and `capacities` are index-aligned per constraint.
    ///
    /// # Panics
    ///
    /// Panics if `loads.len() != capacities.len()` or both are empty.
    pub fn bank_eval(&self, loads: &[u64], capacities: &[u64]) -> f64 {
        assert_eq!(
            loads.len(),
            capacities.len(),
            "one load per bank constraint"
        );
        assert!(!loads.is_empty(), "a bank holds at least one filter");
        loads
            .iter()
            .zip(capacities)
            .map(|(&l, &c)| self.filter_eval(l, c))
            .sum()
    }

    /// Energy of one bank-pipeline SA iteration: always a full bank
    /// evaluation (`k` matchline evaluations); the crossbar fires only
    /// when **every** filter admits the configuration — the
    /// multi-constraint generalization of
    /// [`hycim_iteration`](Self::hycim_iteration).
    pub fn bank_iteration(
        &self,
        loads: &[u64],
        capacities: &[u64],
        feasible: bool,
        active_columns: usize,
        bits: u32,
        active_cells: usize,
    ) -> f64 {
        let mut e = self.bank_eval(loads, capacities) + self.sa_logic_iteration;
        if feasible {
            e += self.crossbar_vmv(active_columns, bits, active_cells);
        }
        e
    }

    /// Energy of one crossbar QUBO computation over an `n`-dimension,
    /// `bits`-bit matrix with `active_cells` conducting cells:
    /// cell reads + one ADC conversion per active column per bit plane
    /// per sign.
    pub fn crossbar_vmv(&self, active_columns: usize, bits: u32, active_cells: usize) -> f64 {
        active_cells as f64 * self.cell_read
            + (active_columns as f64) * f64::from(bits) * 2.0 * self.adc_conversion
    }

    /// Energy of one HyCiM SA iteration: always a filter evaluation;
    /// the crossbar fires only for feasible configurations (paper
    /// Fig. 3 — infeasible inputs never reach the crossbar, which is
    /// where the efficiency comes from).
    pub fn hycim_iteration(
        &self,
        load: u64,
        capacity: u64,
        feasible: bool,
        active_columns: usize,
        bits: u32,
        active_cells: usize,
    ) -> f64 {
        let mut e = self.filter_eval(load, capacity) + self.sa_logic_iteration;
        if feasible {
            e += self.crossbar_vmv(active_columns, bits, active_cells);
        }
        e
    }

    /// Energy of one D-QUBO SA iteration: a full crossbar computation
    /// on the expanded `(n+C)`-dimension matrix every iteration.
    pub fn dqubo_iteration(&self, active_columns: usize, bits: u32, active_cells: usize) -> f64 {
        self.crossbar_vmv(active_columns, bits, active_cells) + self.sa_logic_iteration
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::paper()
    }
}

impl fmt::Display for EnergyModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "EnergyModel(ML {:.2e} J, ADC {:.2e} J)",
            self.ml_precharge, self.adc_conversion
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_eval_scales_with_load() {
        let m = EnergyModel::paper();
        assert!(m.filter_eval(100, 50) > m.filter_eval(10, 50));
    }

    #[test]
    fn infeasible_hycim_iterations_skip_the_crossbar() {
        let m = EnergyModel::paper();
        let feasible = m.hycim_iteration(90, 100, true, 50, 7, 2000);
        let infeasible = m.hycim_iteration(90, 100, false, 50, 7, 2000);
        assert!(feasible > infeasible);
        let saved = feasible - infeasible;
        assert!((saved - m.crossbar_vmv(50, 7, 2000)).abs() < 1e-18);
    }

    #[test]
    fn dqubo_iteration_dwarfs_hycim_at_paper_scale() {
        // HyCiM: n=100 columns at 7 bits. D-QUBO: n≈1300 columns at
        // ~20 bits with ~50× the active cells.
        let m = EnergyModel::paper();
        let hycim = m.hycim_iteration(1250, 1300, true, 50, 7, 2500);
        let dqubo = m.dqubo_iteration(700, 20, 125_000);
        assert!(
            dqubo > 5.0 * hycim,
            "expected D-QUBO ≫ HyCiM per iteration: {dqubo:.2e} vs {hycim:.2e}"
        );
    }

    #[test]
    fn bank_eval_sums_per_constraint_filter_evals() {
        let m = EnergyModel::paper();
        let loads = [30u64, 50, 10];
        let caps = [40u64, 60, 20];
        let expected: f64 = loads
            .iter()
            .zip(&caps)
            .map(|(&l, &c)| m.filter_eval(l, c))
            .sum();
        assert!((m.bank_eval(&loads, &caps) - expected).abs() < 1e-24);
        // A 1-filter bank costs exactly one filter evaluation.
        assert_eq!(m.bank_eval(&[30], &[40]), m.filter_eval(30, 40));
        // More constraints cost proportionally more matchline energy.
        assert!(m.bank_eval(&loads, &caps) > 2.0 * m.filter_eval(50, 60) * 0.9);
    }

    #[test]
    fn infeasible_bank_iterations_skip_the_crossbar() {
        let m = EnergyModel::paper();
        let loads = [90u64, 40];
        let caps = [100u64, 50];
        let feasible = m.bank_iteration(&loads, &caps, true, 50, 7, 2000);
        let infeasible = m.bank_iteration(&loads, &caps, false, 50, 7, 2000);
        let saved = feasible - infeasible;
        assert!((saved - m.crossbar_vmv(50, 7, 2000)).abs() < 1e-18);
        // The k-filter bank pays more per iteration than one filter
        // but far less than the D-QUBO crossbar blowup.
        assert!(infeasible > m.hycim_iteration(90, 100, false, 50, 7, 2000) * 0.99);
    }

    #[test]
    #[should_panic(expected = "one load per bank constraint")]
    fn bank_eval_rejects_mismatched_lengths() {
        let _ = EnergyModel::paper().bank_eval(&[1, 2], &[3]);
    }

    #[test]
    fn precharge_matches_cv2() {
        let m = EnergyModel::paper();
        // C=100 pF, VDD=2 V → 4e-10 J.
        assert!((m.ml_precharge - 4.0e-10).abs() < 1e-18);
    }
}
