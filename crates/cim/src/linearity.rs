//! Current-linearity measurement of a FeFET CiM array — the
//! experimental protocol behind paper Fig. 7(d): on the fabricated
//! 32×32 chip, the summed read current is measured against the number
//! of activated cells; good linearity validates that the crossbar's
//! analog accumulation faithfully counts conducting cells.

use hycim_fefet::{FefetCell, MultiLevelSpec, VariationModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One linearity measurement: for each activation count `k`, the mean
/// and standard deviation of the summed array current across repeated
/// measurements (paper Fig. 7(d) plots current vs number of activated
/// cells with experimental scatter).
#[derive(Debug, Clone, PartialEq)]
pub struct LinearitySweep {
    /// Activation counts measured (0..=max_cells).
    pub counts: Vec<usize>,
    /// Mean summed current per count (A).
    pub mean_current: Vec<f64>,
    /// Standard deviation across measurements (A).
    pub std_current: Vec<f64>,
}

impl LinearitySweep {
    /// Least-squares slope of mean current vs count (A per cell).
    pub fn slope(&self) -> f64 {
        let n = self.counts.len() as f64;
        let sx: f64 = self.counts.iter().map(|&c| c as f64).sum();
        let sy: f64 = self.mean_current.iter().sum();
        let sxx: f64 = self.counts.iter().map(|&c| (c as f64).powi(2)).sum();
        let sxy: f64 = self
            .counts
            .iter()
            .zip(&self.mean_current)
            .map(|(&c, &i)| c as f64 * i)
            .sum();
        (n * sxy - sx * sy) / (n * sxx - sx * sx)
    }

    /// Coefficient of determination R² of the linear fit — the
    /// "good linearity" metric of Fig. 7(d).
    pub fn r_squared(&self) -> f64 {
        let slope = self.slope();
        let n = self.counts.len() as f64;
        let mean_y = self.mean_current.iter().sum::<f64>() / n;
        let mean_x = self.counts.iter().map(|&c| c as f64).sum::<f64>() / n;
        let intercept = mean_y - slope * mean_x;
        let ss_res: f64 = self
            .counts
            .iter()
            .zip(&self.mean_current)
            .map(|(&c, &y)| (y - (slope * c as f64 + intercept)).powi(2))
            .sum();
        let ss_tot: f64 = self
            .mean_current
            .iter()
            .map(|&y| (y - mean_y).powi(2))
            .sum();
        if ss_tot == 0.0 {
            return 1.0;
        }
        1.0 - ss_res / ss_tot
    }
}

/// Runs the Fig. 7(d) protocol on a simulated `rows × cols` chip:
/// program all cells ON, activate `k = 0..=max_active` cells, and
/// measure the summed current over `measurements` independent seeded
/// runs (the paper uses a 32×32 chip and sweeps to 32 cells).
///
/// # Panics
///
/// Panics if `max_active > rows * cols` or `measurements == 0`.
///
/// # Example
///
/// ```
/// use hycim_cim::linearity::measure_linearity;
/// use hycim_fefet::VariationModel;
///
/// let sweep = measure_linearity(32, 32, 32, 9, &VariationModel::paper(), 42);
/// // ~2 µA per activated cell, highly linear.
/// assert!((sweep.slope() - 2.0e-6).abs() < 0.2e-6);
/// assert!(sweep.r_squared() > 0.999);
/// ```
pub fn measure_linearity(
    rows: usize,
    cols: usize,
    max_active: usize,
    measurements: usize,
    variation: &VariationModel,
    seed: u64,
) -> LinearitySweep {
    assert!(
        max_active <= rows * cols,
        "cannot activate more cells than exist"
    );
    assert!(measurements > 0, "need at least one measurement");
    let spec = MultiLevelSpec::paper_binary();
    let vread = spec.read_voltage(1);
    let mut rng = StdRng::seed_from_u64(seed);

    // Fabricate the chip once: every cell programmed ON.
    let mut cells: Vec<FefetCell> = (0..rows * cols)
        .map(|_| {
            let mut c = FefetCell::sample(&spec, variation, &mut rng);
            c.program(1);
            c
        })
        .collect();

    let counts: Vec<usize> = (0..=max_active).collect();
    let mut mean_current = Vec::with_capacity(counts.len());
    let mut std_current = Vec::with_capacity(counts.len());
    for &k in &counts {
        let mut samples = Vec::with_capacity(measurements);
        for m in 0..measurements {
            // Each measurement re-erases and re-programs the chip
            // (per the paper's Fig. 7(f) protocol), which re-rolls
            // cycle-to-cycle state; choose k distinct cells.
            let mut order: Vec<usize> = (0..rows * cols).collect();
            for i in (1..order.len()).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            let _ = m;
            let total: f64 = order[..k]
                .iter()
                .map(|&idx| cells[idx].current(vread, &mut rng))
                .sum();
            samples.push(total);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        mean_current.push(mean);
        std_current.push(var.sqrt());
    }
    // Keep the chip alive until the end (mirrors reprogramming).
    cells.clear();
    LinearitySweep {
        counts,
        mean_current,
        std_current,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_chip_is_perfectly_linear() {
        let sweep = measure_linearity(8, 8, 16, 3, &VariationModel::none(), 1);
        assert!(sweep.r_squared() > 0.999999);
        // Slope sits just below the 2 µA clamp (series blend with the
        // FeFET's finite ON resistance).
        assert!((sweep.slope() - 2.0e-6).abs() < 0.1e-6);
        assert!(sweep.std_current.iter().all(|&s| s < 1e-9));
    }

    #[test]
    fn paper_chip_linearity_matches_fig7d() {
        // 32×32, sweep to 32 cells, 9 measurements: slope ≈ 2 µA/cell,
        // maximum ≈ 64 µA — the Fig. 7(d) axes.
        let sweep = measure_linearity(32, 32, 32, 9, &VariationModel::paper(), 2);
        assert_eq!(sweep.counts.len(), 33);
        assert!(sweep.r_squared() > 0.999, "R² = {}", sweep.r_squared());
        let max = sweep.mean_current.last().unwrap();
        assert!((55e-6..75e-6).contains(max), "max current {max:.2e}");
    }

    #[test]
    fn variability_produces_scatter() {
        let noisy = measure_linearity(16, 16, 16, 9, &VariationModel::paper(), 3);
        let mid = noisy.counts.len() / 2;
        assert!(noisy.std_current[mid] > 0.0);
    }

    #[test]
    #[should_panic(expected = "activate")]
    fn overlarge_activation_panics() {
        let _ = measure_linearity(2, 2, 5, 1, &VariationModel::none(), 4);
    }
}
