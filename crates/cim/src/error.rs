use std::error::Error;
use std::fmt;

/// Errors produced by the CiM circuit substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CimError {
    /// An item weight cannot be decomposed into the array's cells
    /// (`w > rows × max_cell_level`).
    WeightTooLarge {
        /// Item index.
        item: usize,
        /// The weight that does not fit.
        weight: u64,
        /// Largest representable weight per column.
        limit: u64,
    },
    /// The capacity cannot be encoded in the replica array.
    CapacityTooLarge {
        /// Requested capacity.
        capacity: u64,
        /// Largest encodable capacity.
        limit: u64,
    },
    /// Array dimensions do not match the input configuration.
    DimensionMismatch {
        /// Columns in the array.
        expected: usize,
        /// Length of the supplied configuration.
        found: usize,
    },
    /// A matrix does not fit the crossbar's dimensions or bit budget.
    MatrixTooLarge {
        /// Matrix dimension requested.
        dim: usize,
        /// Crossbar dimension available.
        limit: usize,
    },
    /// The problem has zero variables.
    EmptyProblem,
}

impl fmt::Display for CimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CimError::WeightTooLarge {
                item,
                weight,
                limit,
            } => write!(
                f,
                "item {item} weight {weight} exceeds per-column limit {limit}"
            ),
            CimError::CapacityTooLarge { capacity, limit } => {
                write!(f, "capacity {capacity} exceeds replica limit {limit}")
            }
            CimError::DimensionMismatch { expected, found } => {
                write!(
                    f,
                    "dimension mismatch: array has {expected} columns, input has {found}"
                )
            }
            CimError::MatrixTooLarge { dim, limit } => {
                write!(f, "matrix dimension {dim} exceeds crossbar limit {limit}")
            }
            CimError::EmptyProblem => write!(f, "problem has zero variables"),
        }
    }
}

impl Error for CimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = CimError::WeightTooLarge {
            item: 3,
            weight: 99,
            limit: 64,
        };
        assert!(e.to_string().contains("item 3"));
        assert!(e.to_string().contains("99"));
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<CimError>();
    }
}
