use std::fmt;

/// Electrical parameters of a matchline (paper Fig. 4(a)): supply
/// voltage, matchline capacitance, per-phase integration time and the
/// clamped cell current.
///
/// The defaults are chosen so one unit of stored weight discharges the
/// ML by a fixed `ΔV_unit = I·t / C_ML` (paper Eq. 7) of 0.2 mV, which
/// keeps the largest possible discharge of the paper's 16×100 array
/// (`Σw = 6400` units → 1.28 V) inside the 2 V supply — i.e. the ML
/// never rails, preserving the linear relationship of Eq. 8–9.
///
/// # Example
///
/// ```
/// use hycim_cim::MatchlineConfig;
///
/// let cfg = MatchlineConfig::default();
/// assert!((cfg.unit_drop() - 0.2e-3).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MatchlineConfig {
    /// Precharge voltage, VDD (paper: 2 V).
    pub vdd: f64,
    /// Matchline capacitance C_ML (F).
    pub c_ml: f64,
    /// Integration time per staircase phase (s).
    pub phase_time: f64,
    /// Clamped per-cell ON current (A); 2 µA by default, matching the
    /// 1FeFET1R clamp.
    pub cell_current: f64,
}

impl MatchlineConfig {
    /// Paper-calibrated defaults (see type-level docs).
    pub fn paper() -> Self {
        Self {
            vdd: 2.0,
            // The interconnected matchlines of a 16×100 array present a
            // large aggregate capacitance; 100 pF gives
            // ΔV_unit = 2 µA · 10 ns / 100 pF = 0.2 mV.
            c_ml: 100.0e-12,
            phase_time: 10.0e-9,
            cell_current: 2.0e-6,
        }
    }

    /// Voltage drop caused by one conducting cell in one phase:
    /// `ΔV_unit = I·t / C_ML`.
    pub fn unit_drop(&self) -> f64 {
        self.cell_current * self.phase_time / self.c_ml
    }

    /// Largest number of unit drops before the ML rails at 0 V.
    pub fn units_to_rail(&self) -> f64 {
        self.vdd / self.unit_drop()
    }
}

impl Default for MatchlineConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// A matchline being discharged during a filter evaluation: precharge
/// to VDD, then integrate cell currents phase by phase (paper
/// Fig. 4(c)).
#[derive(Debug, Clone, PartialEq)]
pub struct Matchline {
    config: MatchlineConfig,
    voltage: f64,
}

impl Matchline {
    /// Precharges a matchline to VDD.
    pub fn precharged(config: &MatchlineConfig) -> Self {
        Self {
            config: config.clone(),
            voltage: config.vdd,
        }
    }

    /// Current matchline voltage (V), clamped to `[0, VDD]`.
    pub fn voltage(&self) -> f64 {
        self.voltage
    }

    /// Configuration in use.
    pub fn config(&self) -> &MatchlineConfig {
        &self.config
    }

    /// Integrates a total cell current `i_total` (A) for one phase,
    /// discharging the line. The voltage clamps at ground.
    pub fn integrate_phase(&mut self, i_total: f64) {
        let dv = i_total * self.config.phase_time / self.config.c_ml;
        self.voltage = (self.voltage - dv).max(0.0);
    }

    /// Applies `n` ideal unit drops at once (the fast path).
    pub fn discharge_units(&mut self, units: f64) {
        self.voltage = (self.voltage - units * self.config.unit_drop()).max(0.0);
    }

    /// Re-precharges to VDD for the next evaluation.
    pub fn precharge(&mut self) {
        self.voltage = self.config.vdd;
    }
}

impl fmt::Display for Matchline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Matchline({:.4} V / VDD {:.1} V)",
            self.voltage, self.config.vdd
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_calibrated() {
        let cfg = MatchlineConfig::default();
        assert_eq!(cfg.vdd, 2.0);
        // 6400 units (full 16×100 array at max weight) stay on-scale.
        assert!(cfg.units_to_rail() > 6400.0);
    }

    #[test]
    fn unit_drop_equals_integration_of_clamp_current() {
        let cfg = MatchlineConfig::default();
        let mut ml_a = Matchline::precharged(&cfg);
        let mut ml_b = Matchline::precharged(&cfg);
        ml_a.integrate_phase(cfg.cell_current); // one cell, one phase
        ml_b.discharge_units(1.0);
        assert!((ml_a.voltage() - ml_b.voltage()).abs() < 1e-15);
    }

    #[test]
    fn discharge_is_linear_in_units() {
        // The property behind paper Eq. 8: ML ∝ −Σwᵢxᵢ.
        let cfg = MatchlineConfig::default();
        let v = |units: f64| {
            let mut ml = Matchline::precharged(&cfg);
            ml.discharge_units(units);
            ml.voltage()
        };
        let d1 = v(0.0) - v(100.0);
        let d2 = v(100.0) - v(200.0);
        assert!((d1 - d2).abs() < 1e-12);
    }

    #[test]
    fn clamps_at_ground() {
        let cfg = MatchlineConfig::default();
        let mut ml = Matchline::precharged(&cfg);
        ml.discharge_units(1e9);
        assert_eq!(ml.voltage(), 0.0);
        ml.precharge();
        assert_eq!(ml.voltage(), cfg.vdd);
    }
}
