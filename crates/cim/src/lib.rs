//! Computing-in-memory circuit substrate for the HyCiM reproduction.
//!
//! Builds the two CiM blocks of the paper's framework (Fig. 3) on top
//! of the [`hycim_fefet`] device models:
//!
//! * [`filter`] — the **FeFET-based inequality filter** (Sec 3.3,
//!   Fig. 4–5): a working matchline array storing the decomposed item
//!   weights, a replica array encoding the capacity, and a 2-stage
//!   voltage comparator. Classifies input configurations as feasible
//!   (`Σwᵢxᵢ ≤ C`) or infeasible in one 4-phase evaluation.
//! * [`crossbar`] — the **FeFET-based CiM crossbar** (Sec 3.4,
//!   Fig. 6(a)): a bit-sliced array storing the QUBO matrix at M-bit
//!   quantization that computes `xᵀQx` via analog column currents,
//!   ADCs and shift-add accumulation.
//! * [`linearity`] — the current-vs-activated-cells measurement
//!   protocol of the fabricated 32×32 chip (Fig. 7(d)).
//! * [`area`] / [`energy`] — hardware overhead models behind the
//!   saving comparison of Fig. 9(c).
//!
//! Every analog block supports two fidelities ([`Fidelity`]):
//! `DeviceAccurate` simulates each cell's current with full device
//! variability (used by the validation figures), while `Fast` uses the
//! analytically equivalent aggregate with statistically matched noise
//! (used inside the SA hot loop — see DESIGN.md §2).
//!
//! # Example
//!
//! ```
//! use hycim_cim::filter::{FilterConfig, InequalityFilter};
//! use hycim_qubo::Assignment;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), hycim_cim::CimError> {
//! // The paper's Fig. 5(f) example: 4x₁ + 7x₂ + 2x₃ ≤ 9.
//! let mut rng = StdRng::seed_from_u64(1);
//! let filter = InequalityFilter::build(&[4, 7, 2], 9, &FilterConfig::default(), &mut rng)?;
//! let feasible = filter.classify(&Assignment::from_bits([true, false, true]), &mut rng);
//! assert!(feasible.is_feasible());
//! let infeasible = filter.classify(&Assignment::from_bits([true, true, true]), &mut rng);
//! assert!(!infeasible.is_feasible());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod crossbar;
pub mod energy;
mod error;
mod fidelity;
pub mod filter;
pub mod linearity;
mod matchline;

pub use error::CimError;
pub use fidelity::Fidelity;
pub use matchline::{Matchline, MatchlineConfig};
